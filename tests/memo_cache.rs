//! Launch memoization: a warm launch must return bit-identical
//! [`KernelStats`] *and* reproduce the kernel's memory effects without
//! simulating, the cache must respect its capacity bound, honor the
//! `G80_SIM_MEMO` off switch, and serve hits across threads.
//!
//! The memo/dedup selectors are process-global, so everything runs inside
//! one `#[test]` (parallel test threads would race the toggles).

use g80::isa::builder::KernelBuilder;
use g80::isa::{Kernel, Value};
use g80::sim::{
    clear_memo_cache, launch, memo_counters, reset_memo_counters, set_dedup, set_memo,
    set_memo_capacity, Dedup, DeviceMemory, GpuConfig, KernelStats, LaunchDims, Memo,
};

const N: u32 = 4096;
const TPB: u32 = 128;

/// `y[i] = x[i] * mult` — the immediate lands in the instruction stream, so
/// each multiplier is a distinct kernel *content* (distinct memo identity).
fn scale_kernel(mult: u32) -> Kernel {
    let mut b = KernelBuilder::new("scale");
    let xs = b.param();
    let ys = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let xa = b.iadd(byte, xs);
    let v = b.ld_global(xa, 0);
    let w = b.imul(v, mult);
    let ya = b.iadd(byte, ys);
    b.st_global(ya, 0, w);
    b.build()
}

fn fresh_input() -> DeviceMemory {
    let mem = DeviceMemory::new(2 * N * 4);
    for i in 0..N {
        mem.write(i * 4, Value::from_u32(i.wrapping_mul(2654435761)));
    }
    mem
}

fn run(cfg: &GpuConfig, k: &Kernel, mem: &DeviceMemory) -> KernelStats {
    launch(
        cfg,
        k,
        LaunchDims {
            grid: (N / TPB, 1),
            block: (TPB, 1, 1),
        },
        &[Value::from_u32(0), Value::from_u32(N * 4)],
        mem,
    )
    .expect("launch")
}

fn output_words(mem: &DeviceMemory) -> Vec<u32> {
    (0..N).map(|i| mem.read((N + i) * 4).as_u32()).collect()
}

macro_rules! assert_fields_eq {
    ($label:expr, $a:expr, $b:expr, [$($f:ident),+ $(,)?]) => {
        $(assert_eq!(
            $a.$f, $b.$f,
            "{}: KernelStats field `{}` differs between cold and warm launches",
            $label, stringify!($f)
        );)+
    };
}

fn assert_stats_identical(label: &str, a: &KernelStats, b: &KernelStats) {
    assert_fields_eq!(
        label,
        a,
        b,
        [
            name,
            cycles,
            elapsed,
            warp_instructions,
            thread_instructions,
            flops,
            by_class,
            global_ld_transactions,
            global_st_transactions,
            global_bytes,
            coalesced_half_warps,
            uncoalesced_half_warps,
            smem_conflict_extra_cycles,
            divergent_branches,
            tex_hits,
            tex_misses,
            const_hits,
            const_misses,
            atomic_transactions,
            stall_cycles,
            blocks_executed,
            regs_per_thread,
            smem_per_block,
            threads_per_block,
            blocks_per_sm,
            max_simultaneous_threads,
            total_threads,
        ]
    );
}

#[test]
fn memo_hits_evictions_and_threads() {
    // Exact hit/miss counts don't survive an armed fault injector (the
    // chaos CI job): absorbed retries re-probe the cache and injected
    // memo-site faults force extra misses by design.
    if g80::sim::fault::armed() {
        return;
    }
    set_dedup(Dedup::Off); // isolate the memo axis
    set_memo(Memo::On);
    set_memo_capacity(128);
    // Force the disk tier off: the exact counts below reason about the
    // in-process LRU alone (a warm G80_SIM_DISK_CACHE dir would turn the
    // capacity-1 eviction scenario's expected misses into disk hits).
    g80::sim::set_disk_cache(None);
    clear_memo_cache();
    reset_memo_counters();
    let cfg = GpuConfig::geforce_8800_gtx();

    // ---- cold miss, then warm hit: stats and memory effects identical ----
    let k3 = scale_kernel(3);
    let m1 = fresh_input();
    let cold = run(&cfg, &k3, &m1);
    let c = memo_counters();
    assert_eq!((c.hits, c.misses), (0, 1), "{c:?}");
    let m2 = fresh_input();
    let warm = run(&cfg, &k3, &m2);
    let c = memo_counters();
    assert_eq!((c.hits, c.misses), (1, 1), "{c:?}");
    assert_stats_identical("warm hit", &cold, &warm);
    assert_eq!(
        output_words(&m1),
        output_words(&m2),
        "a memo hit must replay the recorded memory delta"
    );
    assert_eq!(
        m2.read((N + 5) * 4).as_u32(),
        5u32.wrapping_mul(2654435761).wrapping_mul(3)
    );

    // ---- memo off: the cache is bypassed entirely ----
    set_memo(Memo::Off);
    reset_memo_counters();
    let off = run(&cfg, &k3, &fresh_input());
    let c = memo_counters();
    assert_eq!(
        (c.hits, c.misses),
        (0, 0),
        "memo off must not touch the cache: {c:?}"
    );
    assert_stats_identical("memo off", &cold, &off);
    set_memo(Memo::On);

    // ---- capacity 1: the second distinct launch evicts the first ----
    set_memo_capacity(1);
    clear_memo_cache();
    reset_memo_counters();
    let k5 = scale_kernel(5);
    run(&cfg, &k3, &fresh_input()); // miss, cached
    run(&cfg, &k5, &fresh_input()); // miss, evicts k3
    run(&cfg, &k3, &fresh_input()); // miss again (was evicted), evicts k5
    run(&cfg, &k3, &fresh_input()); // hit
    let c = memo_counters();
    assert_eq!((c.hits, c.misses), (1, 3), "capacity-1 eviction: {c:?}");

    // ---- cross-thread hits: one warm entry serves 8 threads ----
    set_memo_capacity(128);
    clear_memo_cache();
    reset_memo_counters();
    let k7 = scale_kernel(7);
    let seed = fresh_input();
    let base = run(&cfg, &k7, &seed); // cold, records
    let expected = output_words(&seed);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mem = fresh_input();
                    let stats = run(&cfg, &k7, &mem);
                    (stats, output_words(&mem))
                })
            })
            .collect();
        for h in handles {
            let (stats, out) = h.join().expect("memo thread panicked");
            assert_stats_identical("cross-thread", &base, &stats);
            assert_eq!(out, expected);
        }
    });
    let c = memo_counters();
    assert_eq!(
        (c.hits, c.misses),
        (8, 1),
        "all threads must hit the warm entry: {c:?}"
    );
    assert!((c.hit_rate() - 8.0 / 9.0).abs() < 1e-9, "{c:?}");

    set_memo(Memo::On);
    set_dedup(Dedup::On);
}
