//! End-to-end daemon contract, over real sockets:
//!
//! * **golden cross-check** — eight concurrent tenants each run their own
//!   kernel through the daemon; every returned `KernelStats` and memory
//!   delta is bit-identical to an in-process `launch` of the same spec;
//! * **fairness** — a heavyweight tenant saturating the pool with large
//!   fresh-content launches does not starve a probe fleet: probe p99
//!   stays under a generous ceiling, and every probe still returns
//!   bit-identical stats;
//! * **quotas** — over-budget launches come back as typed `Rejected`,
//!   a zero-depth queue as typed `Throttled`; the connection survives
//!   both and keeps serving.

use g80::isa::builder::KernelBuilder;
use g80::isa::{Kernel, Value};
use g80::serve::{serve, Addr, Client, Quota, ServeConfig, WireError, WireLaunch};
use g80::sim::{launch, DeviceMemory, GpuConfig, LaunchDims};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TPB: u32 = 64;

/// `out[i] = in[i] * mult + salt` — the constants land in the instruction
/// stream, so each (mult, salt) pair is distinct kernel content.
fn scale_kernel(name: &str, mult: u32, salt: u32) -> Kernel {
    let mut b = KernelBuilder::new(name);
    let xs = b.param();
    let ys = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let xa = b.iadd(byte, xs);
    let v = b.ld_global(xa, 0);
    let w = b.imul(v, mult);
    let w = b.iadd(w, salt);
    let ya = b.iadd(byte, ys);
    b.st_global(ya, 0, w);
    b.build()
}

/// A spec processing `n` elements in-place-adjacent (input words at 0,
/// output words at n*4), with deterministic per-tenant input.
fn scale_spec(name: &str, mult: u32, salt: u32, n: u32) -> WireLaunch {
    let mut spec = WireLaunch::new(
        scale_kernel(name, mult, salt),
        LaunchDims {
            grid: (n / TPB, 1),
            block: (TPB, 1, 1),
        },
        vec![Value::from_u32(0), Value::from_u32(n * 4)],
        2 * n * 4,
    );
    spec.writes = (0..n)
        .map(|i| (i * 4, i.wrapping_mul(2654435761).wrapping_add(salt)))
        .collect();
    spec
}

/// Runs `spec` in-process on a fresh memory and returns
/// (stats, sparse delta) exactly as the daemon computes them.
fn run_inprocess(cfg: &GpuConfig, spec: &WireLaunch) -> (g80::sim::KernelStats, Vec<(u32, u32)>) {
    let mem = DeviceMemory::new(spec.mem_bytes);
    for &(addr, word) in &spec.writes {
        mem.write(addr, Value(word));
    }
    let before = mem.snapshot_words();
    let stats = launch(cfg, &spec.kernel, spec.dims, &spec.params, &mem).expect("launch");
    let after = mem.snapshot_words();
    let delta = before
        .iter()
        .zip(after.iter())
        .enumerate()
        .filter(|(_, (b, a))| b != a)
        .map(|(i, (_, a))| ((i * 4) as u32, *a))
        .collect();
    (stats, delta)
}

fn start_daemon(quota: Quota) -> (g80::serve::Server, Addr) {
    let cfg = ServeConfig {
        addr: Addr::parse("tcp:127.0.0.1:0").unwrap(),
        quota,
        gpu: GpuConfig::geforce_8800_gtx(),
        ..ServeConfig::default()
    };
    let server = serve(cfg).expect("bind daemon");
    let addr = server.local_addr().clone();
    (server, addr)
}

fn stop_daemon(server: g80::serve::Server, addr: &Addr) {
    let mut admin = Client::connect(addr, "admin").expect("admin connect");
    admin.shutdown().expect("shutdown");
    server.join().expect("drain");
}

#[test]
fn eight_tenants_get_bit_identical_stats() {
    let (server, addr) = start_daemon(Quota::default());
    let gpu = GpuConfig::geforce_8800_gtx();

    let workers: Vec<_> = (0..8u32)
        .map(|t| {
            let addr = addr.clone();
            let gpu = gpu.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, &format!("tenant-{t}")).expect("connect");
                // Distinct content per tenant AND per iteration: nothing
                // can hide behind another tenant's memo entry having the
                // same stats by construction.
                for iter in 0..4u32 {
                    let spec = scale_spec("sd_golden", 3 + t, t << 8 | iter, 512);
                    let (want_stats, want_delta) = run_inprocess(&gpu, &spec);
                    let (report, delta) = client
                        .launch(&spec)
                        .expect("transport")
                        .expect("typed error");
                    assert_eq!(report.stats.cycles, want_stats.cycles, "tenant {t}");
                    assert_eq!(
                        report.stats.warp_instructions, want_stats.warp_instructions,
                        "tenant {t}"
                    );
                    assert_eq!(
                        report.stats.stall_cycles, want_stats.stall_cycles,
                        "tenant {t}"
                    );
                    assert_eq!(report.stats.by_class, want_stats.by_class, "tenant {t}");
                    assert_eq!(
                        report.stats.global_bytes, want_stats.global_bytes,
                        "tenant {t}"
                    );
                    assert_eq!(delta, want_delta, "tenant {t} memory delta");
                }
                // The streamed path returns the same reports.
                let specs: Vec<_> = (0..3u32)
                    .map(|i| scale_spec("sd_batch", 3 + t, t << 8 | 0x1000 | i, 256))
                    .collect();
                let (items, _counters, _net) = client
                    .batch(&specs)
                    .expect("transport")
                    .expect("typed error");
                assert_eq!(items.len(), 3);
                for (i, (item, spec)) in items.iter().zip(&specs).enumerate() {
                    let report = item.as_ref().expect("item ok");
                    let (want_stats, _) = run_inprocess(&gpu, spec);
                    assert_eq!(
                        report.stats.cycles, want_stats.cycles,
                        "tenant {t} item {i}"
                    );
                    assert_eq!(
                        report.stats.warp_instructions, want_stats.warp_instructions,
                        "tenant {t} item {i}"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("tenant thread");
    }

    assert!(server.requests_served() >= 8 * 5);
    stop_daemon(server, &addr);
}

#[test]
fn probe_fleet_p99_is_bounded_under_heavyweight_tenant() {
    let (server, addr) = start_daemon(Quota::default());

    // The heavyweight: 4096-block launches with fresh content every
    // iteration (the salt lands in the instruction stream), so each one
    // must actually simulate through the shared pool — no memo shortcuts.
    let stop = Arc::new(AtomicBool::new(false));
    let heavy = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr, "heavy").expect("connect");
            let mut iter = 0u32;
            loop {
                let spec = scale_spec("sd_heavy", 7, 0xbeef_0000 | iter, 4096 * TPB);
                client
                    .launch(&spec)
                    .expect("transport")
                    .expect("heavy launch");
                iter += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            iter
        })
    };

    // Probe fleet: small launches that ride the caller-runs fast path, so
    // admission fairness (not pool queueing) is what the ceiling tests.
    let probes: Vec<_> = (0..4u32)
        .map(|p| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, &format!("probe-{p}")).expect("connect");
                let gpu = GpuConfig::geforce_8800_gtx();
                let spec = scale_spec("sd_probe", 11 + p, p << 4, 256);
                let (want_stats, _) = run_inprocess(&gpu, &spec);
                let mut latencies = Vec::with_capacity(24);
                for _ in 0..24 {
                    let t0 = Instant::now();
                    let (report, _) = client
                        .launch(&spec)
                        .expect("transport")
                        .expect("probe launch");
                    latencies.push(t0.elapsed());
                    assert_eq!(report.stats.cycles, want_stats.cycles, "probe {p}");
                }
                latencies.sort_unstable();
                latencies[latencies.len() - 1 - latencies.len() / 100]
            })
        })
        .collect();

    let mut worst_p99 = Duration::ZERO;
    for p in probes {
        worst_p99 = worst_p99.max(p.join().expect("probe thread"));
    }
    stop.store(true, Ordering::Relaxed);
    let heavy_iters = heavy.join().expect("heavy thread");
    assert!(heavy_iters > 0, "the heavyweight tenant never ran");

    // Generous ceiling: a 256-thread probe simulates in well under a
    // millisecond; the bound catches starvation (probes queued behind
    // 4096-block launches), not scheduler jitter.
    assert!(
        worst_p99 < Duration::from_millis(1000),
        "probe p99 {worst_p99:?} under heavyweight load"
    );
    stop_daemon(server, &addr);
}

#[test]
fn quota_violations_are_typed_and_survivable() {
    // Daemon A: per-launch cap of 4 blocks.
    let (server, addr) = start_daemon(Quota {
        max_blocks_per_launch: 4,
        ..Quota::default()
    });
    let mut client = Client::connect(&addr, "greedy").expect("connect");
    let big = scale_spec("sd_big", 3, 1, 16 * TPB); // 16 blocks > cap 4
    match client.launch(&big).expect("transport") {
        Err(WireError::Rejected(reason)) => {
            assert!(reason.contains('4'), "reason should name the cap: {reason}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Same connection still serves an in-budget launch afterwards.
    let small = scale_spec("sd_small", 3, 2, 4 * TPB);
    let (report, _) = client
        .launch(&small)
        .expect("transport")
        .expect("in-budget launch");
    assert!(report.stats.cycles > 0);
    stop_daemon(server, &addr);

    // Daemon B: zero queue depth — every admission throttles.
    let (server, addr) = start_daemon(Quota {
        max_queued: 0,
        ..Quota::default()
    });
    let mut client = Client::connect(&addr, "throttled").expect("connect");
    match client.launch(&small).expect("transport") {
        Err(WireError::Throttled(_)) => {}
        other => panic!("expected Throttled, got {other:?}"),
    }
    // The connection survives a throttle too (a real client would back
    // off and resend; here the quota makes every retry throttle again).
    match client.launch(&small).expect("transport") {
        Err(WireError::Throttled(_)) => {}
        other => panic!("expected Throttled again, got {other:?}"),
    }
    stop_daemon(server, &addr);
}
