//! Golden-stats equivalence: the predecoded and compiled engines must be
//! pure host-side optimizations. Every workload here runs on the frozen
//! reference engine (`g80_sim::reference`), the predecoded engine
//! (`g80_sim::sm`), and the compiled region engine
//! (`g80_sim::compiled`) — and the resulting [`KernelStats`] must match
//! **field for field, bit for bit**: cycles, stall attribution, traffic
//! counters, everything. A single diverging counter means the optimization
//! changed simulated timing and is a bug.
//!
//! The same contract covers the executor axis: the pooled work-stealing
//! executor must produce stats bit-identical to the frozen per-launch
//! `thread::scope` spawn baseline, so every workload also runs under
//! `Executor::SpawnPerLaunch` and `Executor::Pooled`, crossed with the
//! dedup and memo axes, on both optimized engines.
//!
//! The engine/executor selectors are process-global, so all workloads run
//! inside one `#[test]` (the default parallel test runner would otherwise
//! race the toggles).

use g80::apps::cp::CoulombicPotential;
use g80::apps::matmul::{MatMul, Variant};
use g80::apps::mriq::MriQ;
use g80::apps::rc5::Rc5;
use g80::apps::sad::SadApp;
use g80::apps::saxpy::Saxpy;
use g80::apps::tpacf::Tpacf;
use g80::sim::{
    clear_memo_cache, set_dedup, set_engine, set_executor, set_memo, set_rows, Dedup, Engine,
    Executor, KernelStats, Memo, Rows,
};

/// Asserts the named fields equal between the two runs.
macro_rules! assert_fields_eq {
    ($label:expr, $a:expr, $b:expr, [$($f:ident),+ $(,)?]) => {
        $(assert_eq!(
            $a.$f, $b.$f,
            "{}: KernelStats field `{}` differs between engines",
            $label, stringify!($f)
        );)+
    };
}

fn assert_stats_identical(label: &str, a: &KernelStats, b: &KernelStats) {
    assert_fields_eq!(
        label,
        a,
        b,
        [
            name,
            cycles,
            elapsed,
            warp_instructions,
            thread_instructions,
            flops,
            by_class,
            global_ld_transactions,
            global_st_transactions,
            global_bytes,
            coalesced_half_warps,
            uncoalesced_half_warps,
            smem_conflict_extra_cycles,
            divergent_branches,
            tex_hits,
            tex_misses,
            const_hits,
            const_misses,
            atomic_transactions,
            stall_cycles,
            blocks_executed,
            regs_per_thread,
            smem_per_block,
            threads_per_block,
            blocks_per_sm,
            max_simultaneous_threads,
            total_threads,
        ]
    );
}

/// Runs the workload on all three engines, then crosses the two optimized
/// engines with both executors, block-class dedup on/off, and cold/warm
/// through the launch memo cache — the stats must be bit-identical across
/// every axis.
fn check(label: &str, mut run: impl FnMut() -> KernelStats) {
    // Equivalence axes must each be isolated: engine/executor runs compare
    // real simulations, not cache replays.
    set_memo(Memo::Off);
    set_dedup(Dedup::Off);

    set_engine(Engine::Reference);
    let reference = run();
    set_engine(Engine::Predecoded);
    let predecoded = run();
    assert_stats_identical(label, &reference, &predecoded);

    // Compiled engine: straight-line regions execute through the lowered
    // bytecode evaluator, interior instructions through timing-only steps —
    // and every counter must still match the reference bit for bit.
    set_engine(Engine::Compiled);
    let compiled = run();
    assert_stats_identical(&format!("{label} [compiled]"), &reference, &compiled);

    // Engine × executor × dedup × memo cross, on both optimized engines.
    for engine in [Engine::Predecoded, Engine::Compiled] {
        set_engine(engine);
        let tag = format!("{label} {engine:?}");

        // Executor axis.
        set_executor(Executor::SpawnPerLaunch);
        let spawned = run();
        set_executor(Executor::Pooled);
        let pooled = run();
        assert_stats_identical(&format!("{tag} [executor]"), &spawned, &pooled);

        // Dedup axis: block-class dedup (and donor-SM reuse) engages only
        // where the witness machinery proves equivalence, so on *every*
        // workload the stats must be bit-identical to the plain run.
        set_dedup(Dedup::On);
        let deduped = run();
        assert_stats_identical(&format!("{tag} [dedup]"), &pooled, &deduped);

        // Memo axis: a cold run records, a warm run replays from the cache —
        // both must match the uncached stats bit for bit.
        set_memo(Memo::On);
        clear_memo_cache();
        let cold = run();
        assert_stats_identical(&format!("{tag} [memo cold]"), &deduped, &cold);
        let warm = run();
        assert_stats_identical(&format!("{tag} [memo warm]"), &cold, &warm);
        set_memo(Memo::Off);
        set_dedup(Dedup::Off);
    }

    // Row-structure axis: lane-row shape tracking (uniform/affine tags with
    // closed-form degree computation) is a pure host-side optimization, so
    // forcing the eager full-row baseline must reproduce the same stats on
    // all three engines, bit for bit.
    let prev_rows = g80::sim::rows();
    set_rows(Rows::Full);
    set_engine(Engine::Reference);
    let full_reference = run();
    assert_stats_identical(
        &format!("{label} [rows=full reference]"),
        &reference,
        &full_reference,
    );
    for engine in [Engine::Predecoded, Engine::Compiled] {
        set_engine(engine);
        let full = run();
        assert_stats_identical(
            &format!("{label} {engine:?} [rows=full]"),
            &reference,
            &full,
        );
        set_dedup(Dedup::On);
        let full_dedup = run();
        assert_stats_identical(
            &format!("{label} {engine:?} [rows=full dedup]"),
            &reference,
            &full_dedup,
        );
        set_dedup(Dedup::Off);
    }
    set_rows(prev_rows);
    set_engine(Engine::Predecoded);
}

#[test]
fn stats_bit_identical_across_engines() {
    // Restore the default engine even if an assertion fires mid-way would
    // not matter (the process dies), but later tests in other binaries run
    // in separate processes, so no cross-contamination either way.

    // Matrix multiplication across the paper's Figure-8 tiling space: the
    // scheduler shapes differ enormously between these variants (occupancy,
    // barrier traffic, unrolled instruction mix).
    let mm = MatMul { n: 64 };
    let (a, b) = mm.generate(7);
    for v in [
        Variant::Naive,
        Variant::Tiled {
            tile: 8,
            unroll: false,
        },
        Variant::Tiled {
            tile: 16,
            unroll: false,
        },
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        Variant::Prefetch { tile: 16 },
        Variant::RegTiled { tile: 16 },
    ] {
        check(&format!("matmul {}", v.label()), || mm.run(v, &a, &b).1);
    }

    // Section-5 applications, chosen to cover every engine path: coalesced
    // and uncoalesced global traffic, shared memory with bank conflicts,
    // constant and texture caches, SFU ops, atomics, and divergence.

    // SAXPY: streaming coalesced loads/stores.
    let sx = Saxpy {
        n: 1 << 14,
        alpha: 2.5,
    };
    let (x, y) = sx.generate(11);
    check("saxpy", || sx.run(&x, &y).1);

    // RC5: integer-heavy, shared memory, emulated rotates.
    let rc5 = Rc5 {
        n_keys: 1 << 10,
        ..Rc5::default()
    };
    check("rc5", || rc5.run(false).1);

    // TPACF: shared-memory histogram with atomics and divergence.
    let tp = Tpacf { n: 512 };
    let sky = tp.generate(13);
    check("tpacf", || tp.run(&sky).1);

    // MRI-Q: constant memory + SFU trigonometry.
    let mq = MriQ {
        n_voxels: 1024,
        n_k: 256,
    };
    let mdata = mq.generate(17);
    check("mri-q", || mq.run(&mdata, true).2);

    // CP: constant-memory atom data, FMA-dense.
    let cp = CoulombicPotential {
        grid: 64,
        n_atoms: 64,
        spacing: 0.5,
    };
    let atoms = cp.generate(19);
    check("cp", || cp.run(&atoms, true).1);

    // SAD: texture-cache reference frame.
    let sad = SadApp {
        width: 64,
        height: 48,
    };
    let (cur, reff) = sad.generate(23);
    check("sad", || sad.run(&cur, &reff, true).1);

    set_engine(Engine::Predecoded);
    set_memo(Memo::On);
    set_dedup(Dedup::On);
}
