//! The fault-injection harness and the degradation contract it enforces:
//!
//! * **watchdog** — a non-terminating kernel aborts with
//!   `LaunchError::Watchdog` (partial stats attached) under both engines
//!   and both executors, instead of hanging the pool;
//! * **mixed-validity batches** — one invalid or panicking entry degrades
//!   to its own `Err`; every sibling's stats and memory match solo runs;
//! * **pool respawn** — injected worker deaths are absorbed: workers are
//!   respawned, no task is lost, results stay bit-identical;
//! * **memo corruption** — a corrupted cache entry is detected by checksum
//!   on the next probe, evicted, and re-simulated to identical stats;
//! * **soak** — every site × both kinds × three seeds, with absorb-and-
//!   retry off: the process never aborts, every launch-level `Err` is
//!   injected-class, and a disarmed re-run is bit-identical to a golden
//!   run taken before any fault fired.
//!
//! The fault/watchdog toggles are process-global, so everything runs inside
//! one `#[test]` (parallel test threads would race the toggles).

use g80::isa::builder::KernelBuilder;
use g80::isa::{Kernel, Value};
use g80::sim::fault::{self, FaultConfig, FaultKind, Site};
use g80::sim::{
    clear_memo_cache, launch, launch_batch, memo_counters, set_dedup, set_disk_cache, set_engine,
    set_executor, set_faults, set_memo, set_memo_capacity, set_watchdog_cycles, Dedup,
    DeviceMemory, Engine, Executor, GpuConfig, KernelStats, LaunchDims, LaunchError, LaunchSpec,
    Memo,
};

const TPB: u32 = 64;

/// `out[i] = in[i] * mult + salt` — `mult`/`salt` land in the instruction
/// stream, so each pair is distinct kernel *content* (fresh decode, fresh
/// memo identity).
fn scale_kernel(mult: u32, salt: u32) -> Kernel {
    let mut b = KernelBuilder::new("fi_scale");
    let xs = b.param();
    let ys = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let xa = b.iadd(byte, xs);
    let v = b.ld_global(xa, 0);
    let w = b.imul(v, mult);
    let w = b.iadd(w, salt);
    let ya = b.iadd(byte, ys);
    b.st_global(ya, 0, w);
    b.build()
}

/// A kernel that branches back to its own entry forever.
fn spin_kernel() -> Kernel {
    let mut b = KernelBuilder::new("fi_spin");
    let p = b.param();
    let top = b.new_label();
    b.bind(top);
    let tid = b.tid_x();
    let byte = b.shl(tid, 2u32);
    let a = b.iadd(byte, p);
    b.st_global(a, 0, tid);
    b.bra(top);
    b.build()
}

/// A kernel that stores far past any test memory (a genuine bug: the
/// simulator panics with its out-of-bounds message).
fn oob_kernel() -> Kernel {
    let mut b = KernelBuilder::new("fi_oob");
    let _p = b.param();
    let tid = b.tid_x();
    let byte = b.shl(tid, 2u32);
    let addr = b.iadd(byte, 1u32 << 28);
    b.st_global(addr, 0, tid);
    b.build()
}

fn fresh_input(n: u32) -> DeviceMemory {
    let mem = DeviceMemory::new(2 * n * 4);
    for i in 0..n {
        mem.write(i * 4, Value::from_u32(i.wrapping_mul(2654435761)));
    }
    mem
}

fn run_scale(cfg: &GpuConfig, k: &Kernel, mem: &DeviceMemory, n: u32) -> KernelStats {
    try_run_scale(cfg, k, mem, n).expect("launch")
}

fn try_run_scale(
    cfg: &GpuConfig,
    k: &Kernel,
    mem: &DeviceMemory,
    n: u32,
) -> Result<KernelStats, LaunchError> {
    launch(
        cfg,
        k,
        LaunchDims {
            grid: (n / TPB, 1),
            block: (TPB, 1, 1),
        },
        &[Value::from_u32(0), Value::from_u32(n * 4)],
        mem,
    )
}

fn output_words(mem: &DeviceMemory, n: u32) -> Vec<u32> {
    (0..n).map(|i| mem.read((n + i) * 4).as_u32()).collect()
}

/// Resets every process-global toggle to the harness-off defaults. The disk
/// tier is forced off (even if `G80_SIM_DISK_CACHE` is set in the CI env):
/// the exact-count assertions below reason about the in-process LRU alone,
/// and the soak arms its own private disk directory.
fn disarm_all() {
    set_faults(None);
    fault::set_retry(true);
    set_watchdog_cycles(None);
    set_memo(Memo::On);
    set_memo_capacity(256);
    set_dedup(Dedup::On);
    set_engine(Engine::Predecoded);
    set_executor(Executor::Pooled);
    set_disk_cache(None);
    clear_memo_cache();
}

#[test]
fn fault_injection_and_degradation() {
    disarm_all();
    let cfg = GpuConfig::geforce_8800_gtx();

    // Golden run *before* any fault ever fires: the degradation contract
    // says a disarmed re-run at the very end must reproduce this bit for
    // bit.
    const GN: u32 = 1024;
    let golden_kernel = scale_kernel(3, 7);
    let golden_mem = fresh_input(GN);
    let golden = run_scale(&cfg, &golden_kernel, &golden_mem, GN);
    let golden_out = output_words(&golden_mem, GN);

    watchdog_aborts_runaway_kernels(&cfg);
    mixed_validity_batch_isolates_failures(&cfg);
    pool_respawns_dead_workers(&cfg);
    memo_corruption_is_detected_and_resimulated(&cfg);
    soak_every_site_both_kinds(&cfg);
    compiled_engine_degrades_identically(&cfg);

    // ---- degradation contract: disarmed re-run is bit-identical ----
    disarm_all();
    let mem = fresh_input(GN);
    let again = run_scale(&cfg, &golden_kernel, &mem, GN);
    assert_eq!(golden.cycles, again.cycles, "golden cycles drifted");
    assert_eq!(golden.warp_instructions, again.warp_instructions);
    assert_eq!(golden.stall_cycles, again.stall_cycles);
    assert_eq!(golden.by_class, again.by_class);
    assert_eq!(golden.global_bytes, again.global_bytes);
    assert_eq!(golden_out, output_words(&mem, GN), "golden output drifted");
}

fn watchdog_aborts_runaway_kernels(cfg: &GpuConfig) {
    disarm_all();
    let spin = spin_kernel();
    const BUDGET: u64 = 50_000;
    for engine in [Engine::Predecoded, Engine::Reference, Engine::Compiled] {
        for exec in [Executor::Pooled, Executor::SpawnPerLaunch] {
            set_engine(engine);
            set_executor(exec);
            set_watchdog_cycles(Some(BUDGET));
            let mem = DeviceMemory::new(1 << 12);
            let r = launch(
                cfg,
                &spin,
                LaunchDims {
                    grid: (2, 1),
                    block: (32, 1, 1),
                },
                &[Value::from_u32(0)],
                &mem,
            );
            match r {
                Err(LaunchError::Watchdog {
                    kernel,
                    budget,
                    cycles,
                    warp_instructions,
                }) => {
                    assert_eq!(kernel, "fi_spin", "{engine:?}/{exec:?}");
                    assert_eq!(budget, BUDGET, "{engine:?}/{exec:?}");
                    assert!(cycles >= BUDGET, "{engine:?}/{exec:?}: {cycles}");
                    assert!(warp_instructions > 0, "{engine:?}/{exec:?}");
                }
                other => panic!("{engine:?}/{exec:?}: expected Watchdog, got {other:?}"),
            }
            // The budget is not latched: with the watchdog off the same
            // process still simulates terminating kernels normally.
            set_watchdog_cycles(None);
            let mem = fresh_input(256);
            run_scale(
                cfg,
                &scale_kernel(2, engine as u32 * 2 + exec as u32),
                &mem,
                256,
            );
        }
    }
    disarm_all();
}

fn mixed_validity_batch_isolates_failures(cfg: &GpuConfig) {
    disarm_all();
    const N: u32 = 512;
    let good = scale_kernel(5, 11);
    let oob = oob_kernel();

    // Solo references on fresh memories.
    let solo_mem = fresh_input(N);
    let solo = run_scale(cfg, &good, &solo_mem, N);
    let solo_out = output_words(&solo_mem, N);

    let m0 = fresh_input(N);
    let m1 = fresh_input(N);
    let m2 = fresh_input(N);
    let m3 = fresh_input(N);
    let params = [Value::from_u32(0), Value::from_u32(N * 4)];
    let dims_ok = LaunchDims {
        grid: (N / TPB, 1),
        block: (TPB, 1, 1),
    };
    let specs = vec![
        LaunchSpec {
            kernel: &good,
            dims: dims_ok,
            params: &params,
            mem: &m0,
        },
        // Invalid at validation time: zero-thread block.
        LaunchSpec {
            kernel: &good,
            dims: LaunchDims {
                grid: (1, 1),
                block: (0, 1, 1),
            },
            params: &params,
            mem: &m1,
        },
        // Panics mid-simulation: out-of-bounds store.
        LaunchSpec {
            kernel: &oob,
            dims: LaunchDims {
                grid: (1, 1),
                block: (32, 1, 1),
            },
            params: &params[..1],
            mem: &m2,
        },
        LaunchSpec {
            kernel: &good,
            dims: dims_ok,
            params: &params,
            mem: &m3,
        },
    ];
    for exec in [Executor::Pooled, Executor::SpawnPerLaunch] {
        set_executor(exec);
        clear_memo_cache();
        let results = launch_batch(cfg, &specs);
        assert_eq!(results.len(), 4);
        let ok0 = results[0].as_ref().expect("entry 0 valid");
        assert!(
            matches!(results[1], Err(LaunchError::BadBlockDims(_))),
            "{exec:?}: {:?}",
            results[1]
        );
        match &results[2] {
            Err(e @ LaunchError::Panic(msg)) => {
                assert!(msg.contains("out of bounds"), "{exec:?}: {msg}");
                assert!(!e.is_injected(), "a real bug must not look injected");
            }
            other => panic!("{exec:?}: expected Panic, got {other:?}"),
        }
        let ok3 = results[3].as_ref().expect("entry 3 valid");
        // No cross-contamination: the surviving entries match solo runs.
        for (label, stats, mem) in [("entry 0", ok0, &m0), ("entry 3", ok3, &m3)] {
            assert_eq!(stats.cycles, solo.cycles, "{exec:?} {label}");
            assert_eq!(
                stats.warp_instructions, solo.warp_instructions,
                "{exec:?} {label}"
            );
            assert_eq!(output_words(mem, N), solo_out, "{exec:?} {label}");
        }
    }
    disarm_all();
}

fn pool_respawns_dead_workers(cfg: &GpuConfig) {
    disarm_all();
    // Memo off: every launch must actually simulate (and thus exercise the
    // pool) instead of replaying the first launch from the cache.
    set_memo(Memo::Off);
    const N: u32 = 1024;
    let k = scale_kernel(9, 13);
    let clean_mem = fresh_input(N);
    let clean = run_scale(cfg, &k, &clean_mem, N);
    let clean_out = output_words(&clean_mem, N);

    // Kill workers (panic kind, pool.worker only). Worker deaths are
    // invisible to tasks — the site is polled before a task is stolen — so
    // every launch must still succeed with bit-identical results.
    let deaths_before = fault::worker_deaths();
    set_faults(Some(
        FaultConfig::new(0xdead, 0.5, Some(FaultKind::Panic)).only(Site::PoolWorker),
    ));
    for _ in 0..8 {
        let mem = fresh_input(N);
        let stats = run_scale(cfg, &k, &mem, N);
        assert_eq!(stats.cycles, clean.cycles);
        assert_eq!(output_words(&mem, N), clean_out);
    }
    // The site is polled only when a worker steals (the scope owner drains
    // its own queue too, and on a small host it can win every race), so
    // force worker participation: a pair of tasks that rendezvous can only
    // finish if two threads run them — at least one is a pool worker, and
    // every worker pass polls the site. Repeat until a death lands (the
    // deterministic schedule at rate 0.5 cannot stay silent for long).
    for round in 0..500 {
        if fault::worker_deaths() > deaths_before {
            break;
        }
        let barrier = std::sync::Barrier::new(2);
        let b = &barrier;
        let tasks: Vec<_> = (1u32..=2)
            .map(|i| {
                move || {
                    b.wait();
                    i
                }
            })
            .collect();
        let out = g80::sim::pool::run_tasks(tasks);
        assert_eq!(out, vec![1, 2], "round {round}");
    }
    set_faults(None);
    assert!(
        fault::worker_deaths() > deaths_before,
        "no worker death was injected at rate 0.5"
    );
    // The pool is still functional at its configured width's behavior:
    // another clean launch drains normally.
    let mem = fresh_input(N);
    assert_eq!(run_scale(cfg, &k, &mem, N).cycles, clean.cycles);
    disarm_all();
}

fn memo_corruption_is_detected_and_resimulated(cfg: &GpuConfig) {
    disarm_all();
    const N: u32 = 512;
    let k = scale_kernel(17, 23);

    // Cold launch with the store path corrupting every entry it records.
    set_faults(Some(
        FaultConfig::new(1, 1.0, Some(FaultKind::Typed)).only(Site::MemoStore),
    ));
    let m1 = fresh_input(N);
    let first = run_scale(cfg, &k, &m1, N);
    set_faults(None);

    // The corrupted entry must be caught by its checksum on the next probe,
    // evicted, and the launch re-simulated — identical stats, counted as a
    // miss, and the replacement entry is clean (third launch hits).
    let before = memo_counters();
    let m2 = fresh_input(N);
    let second = run_scale(cfg, &k, &m2, N);
    let mid = memo_counters();
    assert_eq!(
        mid.misses - before.misses,
        1,
        "corrupted entry must degrade to a miss"
    );
    assert_eq!(mid.hits, before.hits, "corrupted entry must not hit");
    let m3 = fresh_input(N);
    let third = run_scale(cfg, &k, &m3, N);
    let after = memo_counters();
    assert_eq!(after.hits - mid.hits, 1, "re-recorded entry must hit");
    for (label, s, m) in [("second", &second, &m2), ("third", &third, &m3)] {
        assert_eq!(s.cycles, first.cycles, "{label}");
        assert_eq!(s.warp_instructions, first.warp_instructions, "{label}");
        assert_eq!(output_words(m, N), output_words(&m1, N), "{label}");
    }

    // Load-path tampering: a typed memo.load fault marks the probed entry
    // tampered, which evicts and re-simulates exactly like corruption.
    set_faults(Some(
        FaultConfig::new(2, 1.0, Some(FaultKind::Typed)).only(Site::MemoLoad),
    ));
    let m4 = fresh_input(N);
    let fourth = run_scale(cfg, &k, &m4, N);
    set_faults(None);
    assert_eq!(fourth.cycles, first.cycles);
    assert_eq!(output_words(&m4, N), output_words(&m1, N));
    disarm_all();
}

/// The compiled engine rides the same degradation machinery: the decode and
/// sm.step fault sites still fire while regions execute through the lowered
/// evaluator, every surfaced error is injected-class, and a disarmed re-run
/// reproduces the compiled golden stats and memory bit for bit.
fn compiled_engine_degrades_identically(cfg: &GpuConfig) {
    disarm_all();
    set_engine(Engine::Compiled);
    set_memo(Memo::Off); // every launch must simulate and poll sm.step
    const N: u32 = 512;
    let k = scale_kernel(21, 29);
    let golden_mem = fresh_input(N);
    let golden = run_scale(cfg, &k, &golden_mem, N);
    let golden_out = output_words(&golden_mem, N);

    fault::set_retry(false);
    let mut injected_errs = 0u64;
    let (decode_before, sm_before) = (fault::raised(Site::Decode), fault::raised(Site::SmStep));
    for (seed, kind) in [(41u64, FaultKind::Typed), (43, FaultKind::Panic)] {
        set_faults(Some(
            FaultConfig::new(seed, 0.15, Some(kind))
                .only(Site::Decode)
                .also(Site::SmStep),
        ));
        for iter in 0..24u32 {
            // Distinct content per iteration: each pays a fresh decode.
            let ki = scale_kernel(21, 1 << 20 | iter << 1 | (kind as u32 & 1));
            let mem = fresh_input(N);
            match try_run_scale(cfg, &ki, &mem, N) {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.is_injected(), "compiled tier leaked a real error: {e}");
                    injected_errs += 1;
                }
            }
        }
        set_faults(None);
    }
    fault::set_retry(true);
    assert!(
        injected_errs > 0,
        "no fault surfaced under the compiled tier"
    );
    assert!(
        fault::raised(Site::Decode) > decode_before,
        "isa.decode never fired under the compiled tier"
    );
    assert!(
        fault::raised(Site::SmStep) > sm_before,
        "sm.step never fired under the compiled tier"
    );

    // Disarmed, the compiled tier still reproduces its golden run exactly.
    let mem = fresh_input(N);
    let again = run_scale(cfg, &k, &mem, N);
    assert_eq!(
        golden.cycles, again.cycles,
        "compiled golden cycles drifted"
    );
    assert_eq!(golden.warp_instructions, again.warp_instructions);
    assert_eq!(golden.stall_cycles, again.stall_cycles);
    assert_eq!(golden_out, output_words(&mem, N));
    disarm_all();
}

fn soak_every_site_both_kinds(cfg: &GpuConfig) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    disarm_all();
    const N: u32 = 256;

    // The memo.disk site only polls while the disk tier is enabled, so the
    // soak runs against a private cache directory: every recorded miss
    // publishes (one poll) and every LRU miss probes (another poll).
    let disk_dir = std::env::temp_dir().join(format!("g80-fi-soak-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    set_disk_cache(Some(disk_dir.clone()));

    // Absorb-and-retry OFF: every injected fault must surface — as a typed
    // per-launch Err, a classified injected panic, or (device layer) a
    // typed CudaError — and never as a process abort or a wedged pool.
    fault::set_retry(false);
    let mut launches = 0u64;
    let mut injected_errs = 0u64;
    for (si, &seed) in [101u64, 202, 303].iter().enumerate() {
        for (ki, kind) in [FaultKind::Typed, FaultKind::Panic].into_iter().enumerate() {
            set_faults(Some(FaultConfig::new(seed, 0.08, Some(kind))));
            for iter in 0..20u32 {
                // Distinct kernel content per iteration: every iteration
                // pays a fresh decode (isa.decode site) and a fresh memo
                // identity (memo.store site on success).
                let salt = (si as u32) << 16 | (ki as u32) << 8 | iter;
                let k = scale_kernel(3, salt);
                let body = || {
                    let mut dev = g80::cuda::Device::new(4 * N * 4);
                    // try_* twins: typed device faults come back as values.
                    let x = match dev.try_alloc::<u32>(N as usize) {
                        Ok(b) => b,
                        Err(e) => {
                            assert!(
                                matches!(e, g80::cuda::CudaError::InjectedFault { .. }),
                                "real device error in soak: {e}"
                            );
                            return (0u64, 0u64);
                        }
                    };
                    let data: Vec<u32> = (0..N).map(|i| i.wrapping_mul(2654435761)).collect();
                    if let Err(e) = dev.try_copy_to_device(&x, &data) {
                        assert!(
                            matches!(e, g80::cuda::CudaError::InjectedFault { .. }),
                            "{e}"
                        );
                        return (0, 0);
                    }
                    // Launch twice: the repeat exercises the memo.load site
                    // on a warm entry.
                    let mut l = 0u64;
                    let mut e = 0u64;
                    for _ in 0..2 {
                        let mem = fresh_input(N);
                        l += 1;
                        match try_run_scale(cfg, &k, &mem, N) {
                            Ok(_) => {}
                            Err(err) => {
                                assert!(
                                    err.is_injected(),
                                    "soak surfaced a non-injected launch error: {err}"
                                );
                                e += 1;
                            }
                        }
                    }
                    (l, e)
                };
                match catch_unwind(AssertUnwindSafe(body)) {
                    Ok((l, e)) => {
                        launches += l;
                        injected_errs += e;
                    }
                    Err(p) => assert!(
                        fault::is_injected_payload(p.as_ref()),
                        "soak leaked a real panic: {:?}",
                        fault::payload_str(p.as_ref())
                    ),
                }
            }
            set_faults(None);
        }
    }
    fault::set_retry(true);

    assert!(launches > 0);
    assert!(
        injected_errs > 0,
        "rate 0.08 over {launches} launches fired no launch-level fault"
    );
    for site in Site::ALL {
        if site == Site::ServeDecode {
            // Polled per decoded frame by the g80-serve daemon, which this
            // in-process soak never runs; tests/serve_chaos.rs soaks it.
            continue;
        }
        assert!(
            fault::raised(site) > 0,
            "site {} never fired during the soak",
            site.name()
        );
    }
    // The pool survived: a clean fleet drains with correct results.
    let sums = g80::sim::pool::run_tasks((0..32u64).map(|i| move || i * 3).collect::<Vec<_>>());
    assert_eq!(sums, (0..32u64).map(|i| i * 3).collect::<Vec<_>>());
    let _ = std::fs::remove_dir_all(&disk_dir);
    disarm_all();
}
