//! Cross-crate integration tests: kernels built with `g80-isa`, launched
//! through `g80-cuda` onto `g80-sim`, analysed with `g80-core`, covering
//! the paper's end-to-end claims.

use g80::apps::matmul::{MatMul, Variant};
use g80::cuda::Device;
use g80::isa::builder::{KernelBuilder, Unroll};
use g80::isa::inst::Operand;
use g80::sim::GpuConfig;
use g80::tune::{estimate, kernel_occupancy, Bottleneck, LimitingResource};

#[test]
fn matmul_all_variants_agree_with_reference() {
    let mm = MatMul { n: 96 };
    let (a, b) = mm.generate(1);
    let want = mm.cpu_reference(&a, &b);
    for v in [
        Variant::Naive,
        Variant::Tiled {
            tile: 8,
            unroll: false,
        },
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        Variant::Prefetch { tile: 16 },
    ] {
        let (got, _, _) = mm.run(v, &a, &b);
        let err = g80::apps::common::max_rel_error(&got, &want);
        assert!(err < 1e-5, "{}: err {err}", v.label());
    }
}

#[test]
fn section4_ordering_holds_end_to_end() {
    let mm = MatMul { n: 128 };
    let (a, b) = mm.generate(2);
    let gflops = |v| mm.run(v, &a, &b).1.gflops();
    let naive = gflops(Variant::Naive);
    let tiled = gflops(Variant::Tiled {
        tile: 16,
        unroll: false,
    });
    let unrolled = gflops(Variant::Tiled {
        tile: 16,
        unroll: true,
    });
    assert!(tiled > 2.5 * naive, "tiling: {naive} -> {tiled}");
    assert!(unrolled > 1.5 * tiled, "unrolling: {tiled} -> {unrolled}");
}

#[test]
fn occupancy_calculator_matches_launch_reality() {
    // Whatever the calculator predicts, the launcher must schedule.
    let cfg = GpuConfig::geforce_8800_gtx();
    let mm = MatMul { n: 64 };
    let (a, b) = mm.generate(3);
    for v in [
        Variant::Naive,
        Variant::Tiled {
            tile: 8,
            unroll: true,
        },
        Variant::Tiled {
            tile: 16,
            unroll: false,
        },
    ] {
        let k = mm.kernel(v);
        let edge = v.block_edge();
        let predicted = kernel_occupancy(&cfg, &k, edge * edge);
        let (_, stats, _) = mm.run(v, &a, &b);
        assert_eq!(
            predicted.blocks_per_sm,
            stats.blocks_per_sm,
            "{}: calculator vs scheduler",
            v.label()
        );
    }
}

#[test]
fn the_four_principles_in_one_kernel_family() {
    // Principle 1 (latency hiding), 2 (on-chip reuse), 3 (coalescing +
    // conflicts), 4 (no global sync) — all visible from one tiled matmul
    // run's counters.
    let mm = MatMul { n: 128 };
    let (a, b) = mm.generate(4);
    let (_, stats, _) = mm.run(
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        &a,
        &b,
    );

    // P1: full occupancy was reachable and latency mostly hidden.
    assert_eq!(stats.blocks_per_sm, 3);
    // P2: shared memory cut DRAM traffic ~16x below the naive version.
    let (_, naive, _) = mm.run(Variant::Naive, &a, &b);
    assert!(naive.global_bytes > 8 * stats.global_bytes);
    // P3: the cooperative tile loads coalesce; the tile reads are
    // broadcast/conflict-free.
    assert_eq!(stats.uncoalesced_half_warps, 0);
    assert_eq!(stats.smem_conflict_extra_cycles, 0);
    // P4: a single kernel launch suffices — barriers only inside blocks.
    assert!(stats.by_class[&g80::isa::InstClass::Barrier] > 0);
}

#[test]
fn device_roundtrip_and_occupancy_limits() {
    let mut dev = Device::new(1 << 16);
    let buf = dev.alloc::<f32>(512);
    dev.copy_to_device(&buf, &vec![1.5f32; 512]);

    // A deliberately register-hungry kernel must be rejected at 512
    // threads/block and accepted at 128.
    let build = || {
        let mut b = KernelBuilder::new("hungry");
        let p = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        let vals: Vec<_> = (0..20).map(|i| b.ld_global(a, i * 4)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.fadd(acc, v);
        }
        b.st_global(a, 0, acc);
        b.build()
    };
    let k = build();
    assert!(k.regs_per_thread > 16);
    assert!(dev
        .launch(&k, (1, 1), (512, 1, 1), &[buf.as_param()])
        .is_err());
    assert!(dev
        .launch(&k, (1, 1), (128, 1, 1), &[buf.as_param()])
        .is_ok());
}

#[test]
fn analytical_model_brackets_measured_performance() {
    // The Section 4 estimate must bound what the simulator delivers.
    let cfg = GpuConfig::geforce_8800_gtx();
    let mm = MatMul { n: 128 };
    let (a, b) = mm.generate(5);
    for v in [
        Variant::Naive,
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
    ] {
        let (_, stats, _) = mm.run(v, &a, &b);
        let est = estimate(&cfg, &stats);
        assert!(
            stats.gflops() <= est.potential_gflops * 1.05,
            "{}: measured {} above potential {}",
            v.label(),
            stats.gflops(),
            est.potential_gflops
        );
        assert!(
            est.efficiency > 0.15,
            "{}: eff {}",
            v.label(),
            est.efficiency
        );
    }
    let (_, naive, _) = mm.run(Variant::Naive, &a, &b);
    assert_eq!(
        estimate(&cfg, &naive).bottleneck,
        Bottleneck::MemoryBandwidth
    );
}

#[test]
fn occupancy_limiters_cover_all_resources() {
    let cfg = GpuConfig::geforce_8800_gtx();
    use g80::tune::occupancy;
    assert_eq!(
        occupancy(&cfg, 10, 0, 256).limiter,
        LimitingResource::ThreadContexts
    );
    assert_eq!(
        occupancy(&cfg, 11, 0, 256).limiter,
        LimitingResource::Registers
    );
    assert_eq!(
        occupancy(&cfg, 8, 6 * 1024, 128).limiter,
        LimitingResource::SharedMemory
    );
    assert_eq!(
        occupancy(&cfg, 8, 0, 32).limiter,
        LimitingResource::BlockSlots
    );
}

#[test]
fn compiler_optimization_levels_are_consistent() {
    // O0 / O1 / O2 builds of the same kernel must agree functionally and
    // get monotonically leaner.
    use g80::isa::{BuildOptions, OptLevel};
    let build = |opt| {
        let mut b = KernelBuilder::new("levels");
        let p = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        let acc = b.mov(Operand::imm_f(0.0));
        b.for_range(0u32, 16u32, 1, Unroll::Full, |b, i| {
            let scaled = b.imul(i, 4u32); // folds to a constant
            let v = b.ld_global(a, 0);
            let f = b.un(g80::isa::UnOp::CvtU2F, scaled);
            let t = b.fadd(v, f);
            b.ffma_to(acc, t, 0.5f32, acc);
        });
        b.st_global(a, 0, acc);
        b.build_with(BuildOptions {
            opt,
            max_regs: None,
        })
    };
    let k0 = build(OptLevel::O0);
    let k2 = build(OptLevel::O2);
    assert!(k2.code.len() < k0.code.len());
    assert!(k2.regs_per_thread <= k0.regs_per_thread);

    let run = |k: &g80::isa::Kernel| {
        let mut d = Device::new(4096);
        let buf = d.alloc::<f32>(64);
        d.copy_to_device(&buf, &(0..64).map(|i| i as f32).collect::<Vec<_>>());
        d.launch(k, (1, 1), (64, 1, 1), &[buf.as_param()]).unwrap();
        d.copy_from_device(&buf)
    };
    assert_eq!(run(&k0), run(&k2));
}

#[test]
fn deterministic_across_repeated_launches() {
    let mm = MatMul { n: 96 };
    let (a, b) = mm.generate(6);
    let v = Variant::Tiled {
        tile: 16,
        unroll: true,
    };
    let (o1, s1, _) = mm.run(v, &a, &b);
    let (o2, s2, _) = mm.run(v, &a, &b);
    assert_eq!(o1, o2);
    assert_eq!(s1.cycles, s2.cycles);
    assert_eq!(s1.warp_instructions, s2.warp_instructions);
    assert_eq!(s1.global_bytes, s2.global_bytes);
}
