//! Concurrency equivalence for the shared worker pool: many host threads
//! launching into one `DeviceMemory` at once must each observe exactly the
//! stats a serial launch produces. The pool moves *where* SM tasks execute,
//! never *what* they compute — these tests pin that down under real
//! contention (all launches' tasks interleave in one task queue set).

use g80::isa::builder::KernelBuilder;
use g80::isa::Value;
use g80::sim::{launch, launch_batch, DeviceMemory, GpuConfig, LaunchDims, LaunchSpec};

/// Streaming kernel: out[i] = i * 3 for the global thread index i — every
/// launch writes the same values, so concurrent launches are idempotent.
fn streaming_kernel() -> g80::isa::Kernel {
    let mut b = KernelBuilder::new("stream3");
    let p = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let v = b.imul(i, 3u32);
    let byte = b.shl(i, 2u32);
    let a = b.iadd(byte, p);
    b.st_global(a, 0, v);
    b.build()
}

#[test]
fn eight_host_threads_match_the_serial_run() {
    let cfg = GpuConfig::geforce_8800_gtx();
    let k = streaming_kernel();
    let dims = LaunchDims {
        grid: (8, 1),
        block: (128, 1, 1),
    };
    let params = [Value::from_u32(0)];
    let mem = DeviceMemory::new(8 * 128 * 4);

    let serial = launch(&cfg, &k, dims, &params, &mem).unwrap();

    let all: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| launch(&cfg, &k, dims, &params, &mem).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for stats in &all {
        assert_eq!(stats.cycles, serial.cycles);
        assert_eq!(stats.warp_instructions, serial.warp_instructions);
        assert_eq!(stats.stall_cycles, serial.stall_cycles);
        assert_eq!(stats.global_bytes, serial.global_bytes);
        assert_eq!(stats.blocks_executed, serial.blocks_executed);
    }
    for i in 0..8 * 128u32 {
        assert_eq!(mem.read(i * 4).as_u32(), i * 3);
    }
}

#[test]
fn concurrent_batches_from_many_threads_stay_deterministic() {
    let cfg = GpuConfig::geforce_8800_gtx();
    let k = streaming_kernel();
    let params = [Value::from_u32(0)];
    // Four grid sizes → four distinct expected stats, launched from four
    // threads as batches, repeatedly, all sharing one memory.
    let grids = [1u32, 2, 4, 8];
    let mem = DeviceMemory::new(8 * 128 * 4);
    let dims = |g: u32| LaunchDims {
        grid: (g, 1),
        block: (128, 1, 1),
    };
    let serial: Vec<_> = grids
        .iter()
        .map(|&g| launch(&cfg, &k, dims(g), &params, &mem).unwrap())
        .collect();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let specs: Vec<LaunchSpec> = grids
                    .iter()
                    .map(|&g| LaunchSpec {
                        kernel: &k,
                        dims: dims(g),
                        params: &params,
                        mem: &mem,
                    })
                    .collect();
                for (want, got) in serial.iter().zip(launch_batch(&cfg, &specs)) {
                    let got = got.unwrap();
                    assert_eq!(got.cycles, want.cycles);
                    assert_eq!(got.warp_instructions, want.warp_instructions);
                    assert_eq!(got.blocks_executed, want.blocks_executed);
                }
            });
        }
    });
}
