//! Block-class deduplication: dedup-on must be a pure host-side
//! optimization. For an eligible kernel the fast-forwarded launch must
//! produce [`KernelStats`] and output memory bit-identical to the full
//! simulation; kernels whose timing depends on data must never engage the
//! witness machinery at all.
//!
//! The dedup/memo selectors are process-global, so everything runs inside
//! one `#[test]` (parallel test threads would race the toggles).

use g80::isa::builder::KernelBuilder;
use g80::isa::{CmpOp, Kernel, Pred, Scalar, Value};
use g80::sim::{
    launch, memo_counters, reset_memo_counters, set_dedup, set_engine, set_executor, set_memo,
    Dedup, DeviceMemory, Engine, Executor, GpuConfig, KernelStats, LaunchDims, Memo,
};

macro_rules! assert_fields_eq {
    ($label:expr, $a:expr, $b:expr, [$($f:ident),+ $(,)?]) => {
        $(assert_eq!(
            $a.$f, $b.$f,
            "{}: KernelStats field `{}` differs between dedup modes",
            $label, stringify!($f)
        );)+
    };
}

fn assert_stats_identical(label: &str, a: &KernelStats, b: &KernelStats) {
    assert_fields_eq!(
        label,
        a,
        b,
        [
            name,
            cycles,
            elapsed,
            warp_instructions,
            thread_instructions,
            flops,
            by_class,
            global_ld_transactions,
            global_st_transactions,
            global_bytes,
            coalesced_half_warps,
            uncoalesced_half_warps,
            smem_conflict_extra_cycles,
            divergent_branches,
            tex_hits,
            tex_misses,
            const_hits,
            const_misses,
            atomic_transactions,
            stall_cycles,
            blocks_executed,
            regs_per_thread,
            smem_per_block,
            threads_per_block,
            blocks_per_sm,
            max_simultaneous_threads,
            total_threads,
        ]
    );
}

/// Large enough that the scheduler reaches a periodic steady state: the
/// DRAM-channel stagger takes several block generations to settle, and only
/// then can a refill-boundary snapshot recur.
const BLOCKS: u32 = 2048;
/// Small grid for the cases that must *not* fast-forward (eligibility and
/// witness-mismatch gates fire within the first generation).
const SMALL_BLOCKS: u32 = 512;
const TPB: u32 = 64;
const N: u32 = BLOCKS * TPB;
const SMALL_N: u32 = SMALL_BLOCKS * TPB;

/// Streaming `y[i] = x[i] + x[i]`: every block issues the identical
/// instruction/coalescing pattern, the ideal dedup target.
fn streaming_kernel() -> Kernel {
    let mut b = KernelBuilder::new("stream_double");
    let xs = b.param();
    let ys = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let xa = b.iadd(byte, xs);
    let v = b.ld_global(xa, 0);
    let d = b.fadd(v, v);
    let ya = b.iadd(byte, ys);
    b.st_global(ya, 0, d);
    b.build()
}

/// Gather `y[i] = src[idx[i]]`: the second load's address comes from
/// memory, so timing is data-dependent and dedup must stay out.
fn gather_kernel() -> Kernel {
    let mut b = KernelBuilder::new("gather");
    let idx = b.param();
    let src = b.param();
    let dst = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let ia = b.iadd(byte, idx);
    let j = b.ld_global(ia, 0);
    let jbyte = b.shl(j, 2u32);
    let sa = b.iadd(jbyte, src);
    let v = b.ld_global(sa, 0);
    let da = b.iadd(byte, dst);
    b.st_global(da, 0, v);
    b.build()
}

/// Eligible by taint (the branch predicate is pure ctaid), but odd and even
/// blocks execute different paths. Round-robin assignment gives every SM a
/// single parity, so donor-SM reuse legitimately fast-forwards the SMs that
/// match the donor's class while the others must be *detected* as
/// mismatching and fall back to full simulation — still bit-identical.
fn block_parity_kernel() -> Kernel {
    let mut b = KernelBuilder::new("block_parity");
    let out = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let addr = b.iadd(byte, out);
    let bit = b.and(cta, 1u32);
    let odd = b.setp(CmpOp::Ne, Scalar::U32, bit, 0u32);
    let acc = b.mov(i);
    b.if_(Pred::if_true(odd), |b| {
        let extra = b.imul(acc, 3u32);
        let extra = b.iadd(extra, 7u32);
        b.st_global(addr, 0, extra);
    });
    b.if_(Pred::if_false(odd), |b| {
        b.st_global(addr, 0, acc);
    });
    b.build()
}

/// Diverges on `(ctaid >> 4) & 1`: with 16 SMs the parity alternates
/// between *resident slots of the same SM*, so sibling witnesses mismatch at
/// representative promotion, the recorder invalidates itself, and no block
/// anywhere may fast-forward — full simulation, still bit-identical.
fn gen_parity_kernel() -> Kernel {
    let mut b = KernelBuilder::new("gen_parity");
    let out = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let addr = b.iadd(byte, out);
    let gen = b.shr(cta, 4u32);
    let bit = b.and(gen, 1u32);
    let odd = b.setp(CmpOp::Ne, Scalar::U32, bit, 0u32);
    let acc = b.mov(i);
    b.if_(Pred::if_true(odd), |b| {
        let extra = b.imul(acc, 3u32);
        let extra = b.iadd(extra, 7u32);
        b.st_global(addr, 0, extra);
    });
    b.if_(Pred::if_false(odd), |b| {
        b.st_global(addr, 0, acc);
    });
    b.build()
}

fn dims(blocks: u32) -> LaunchDims {
    LaunchDims {
        grid: (blocks, 1),
        block: (TPB, 1, 1),
    }
}

#[test]
fn dedup_bit_identical_and_gated() {
    // Exact dedup counter assertions don't survive an armed fault injector
    // (the chaos CI job): absorbed launch retries re-run SMs and skew the
    // process-wide counters.
    if g80::sim::fault::armed() {
        return;
    }
    // Isolate the axis under test: no memo cache, default engine/executor.
    set_memo(Memo::Off);
    set_engine(Engine::Predecoded);
    set_executor(Executor::Pooled);
    let cfg = GpuConfig::geforce_8800_gtx();

    // ---- eligible kernel: dedup engages and is bit-identical ----
    let k = streaming_kernel();
    let run = |d: Dedup| {
        set_dedup(d);
        let mem = DeviceMemory::new(2 * N * 4);
        for i in 0..N {
            mem.write(i * 4, Value::from_f32(i as f32 * 0.5));
        }
        let stats = launch(
            &cfg,
            &k,
            dims(BLOCKS),
            &[Value::from_u32(0), Value::from_u32(N * 4)],
            &mem,
        )
        .expect("streaming launch");
        let out: Vec<u32> = (0..N).map(|i| mem.read((N + i) * 4).as_u32()).collect();
        (stats, out)
    };
    let (off_stats, off_out) = run(Dedup::Off);
    reset_memo_counters();
    let (on_stats, on_out) = run(Dedup::On);
    let c = memo_counters();
    assert!(
        c.dedup_fast_blocks > 0,
        "dedup never fast-forwarded a block on the ideal workload: {c:?}"
    );
    assert_eq!(
        c.dedup_fast_blocks + c.dedup_sim_blocks,
        BLOCKS as u64,
        "every block must be either fast-forwarded or simulated: {c:?}"
    );
    assert_eq!(c.dedup_fallbacks, 0, "uniform workload must not fall back");
    assert_stats_identical("stream_double", &off_stats, &on_stats);
    assert_eq!(off_out, on_out, "dedup changed output memory");
    assert_eq!(on_out[5], Value::from_f32(5.0 * 0.5 * 2.0).0);

    // ---- data-dependent kernel: witness machinery never engages ----
    let g = gather_kernel();
    set_dedup(Dedup::On);
    reset_memo_counters();
    let mem = DeviceMemory::new(3 * SMALL_N * 4);
    for i in 0..SMALL_N {
        mem.write(i * 4, Value::from_u32((i * 7 + 3) % SMALL_N)); // idx
        mem.write((SMALL_N + i) * 4, Value::from_u32(i ^ 0xabcd)); // src
    }
    let stats = launch(
        &cfg,
        &g,
        dims(SMALL_BLOCKS),
        &[
            Value::from_u32(0),
            Value::from_u32(SMALL_N * 4),
            Value::from_u32(2 * SMALL_N * 4),
        ],
        &mem,
    )
    .expect("gather launch");
    let c = memo_counters();
    assert_eq!(
        (c.dedup_fast_blocks, c.dedup_sim_blocks, c.dedup_fallbacks),
        (0, 0, 0),
        "data-dependent kernel must be ineligible for dedup: {c:?}"
    );
    assert_eq!(stats.blocks_executed, SMALL_BLOCKS as u64);
    let j = (5 * 7 + 3) % SMALL_N;
    assert_eq!(mem.read((2 * SMALL_N + 5) * 4).as_u32(), j ^ 0xabcd);

    // ---- SM-parity divergence: donor mismatch falls back, bit-identical ----
    // Each SM's queue is single-parity, so the even SMs reuse the donor
    // while every odd SM's replay must *fail verification* and resimulate.
    let p = block_parity_kernel();
    let run = |k: &Kernel, d: Dedup| {
        set_dedup(d);
        let mem = DeviceMemory::new(SMALL_N * 4);
        let stats = launch(&cfg, k, dims(SMALL_BLOCKS), &[Value::from_u32(0)], &mem)
            .expect("parity launch");
        let out: Vec<u32> = (0..SMALL_N).map(|i| mem.read(i * 4).as_u32()).collect();
        (stats, out)
    };
    let (off_stats, off_out) = run(&p, Dedup::Off);
    reset_memo_counters();
    let (on_stats, on_out) = run(&p, Dedup::On);
    let c = memo_counters();
    assert!(
        c.dedup_fallbacks > 0,
        "odd-parity SMs must fail donor verification and fall back: {c:?}"
    );
    assert_stats_identical("block_parity", &off_stats, &on_stats);
    assert_eq!(off_out, on_out);
    assert_eq!(on_out[TPB as usize], (TPB * 3 + 7)); // block 1 is odd
    assert_eq!(on_out[0], 0); // block 0 is even

    // ---- within-SM divergence: recorder invalidates, nothing fast ----
    let g = gen_parity_kernel();
    let (off_stats, off_out) = run(&g, Dedup::Off);
    reset_memo_counters();
    let (on_stats, on_out) = run(&g, Dedup::On);
    let c = memo_counters();
    assert_eq!(
        c.dedup_fast_blocks, 0,
        "mismatching sibling witnesses must prevent fast-forwarding: {c:?}"
    );
    assert_stats_identical("gen_parity", &off_stats, &on_stats);
    assert_eq!(off_out, on_out);
    let i = 16 * TPB; // block 16 is generation-odd
    assert_eq!(on_out[i as usize], i * 3 + 7);
    assert_eq!(on_out[0], 0); // block 0 is generation-even

    set_dedup(Dedup::On);
    set_memo(Memo::On);
}
