//! Determinism across worker counts: with `G80_SIM_THREADS=1` the pool has
//! a single worker (plus the participating scope owner), and every
//! simulated statistic must still match the per-launch spawn baseline
//! bit for bit. This binary owns its process, so setting the variable
//! before the pool's first use is safe — worker count is latched lazily on
//! first launch. The default-pool equivalent of this comparison runs in
//! `golden_stats.rs`; CI additionally runs the whole suite under
//! `G80_SIM_THREADS=1`.

use g80::apps::matmul::{MatMul, Variant};
use g80::sim::{set_executor, Executor};

#[test]
fn single_worker_pool_matches_spawn_baseline() {
    // Must happen before anything touches the pool in this process.
    std::env::set_var("G80_SIM_THREADS", "1");

    let mm = MatMul { n: 64 };
    let (a, b) = mm.generate(5);
    let variants = [
        Variant::Naive,
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        Variant::RegTiled { tile: 16 },
    ];

    set_executor(Executor::SpawnPerLaunch);
    let spawned: Vec<_> = variants.iter().map(|&v| mm.run(v, &a, &b)).collect();

    set_executor(Executor::Pooled);
    let pooled_single = mm.run_batch(&variants, &a, &b);

    for ((sc, ss, _), (pc, ps, _)) in spawned.iter().zip(&pooled_single) {
        assert_eq!(sc, pc, "results differ under a single-worker pool");
        assert_eq!(ss.cycles, ps.cycles);
        assert_eq!(ss.warp_instructions, ps.warp_instructions);
        assert_eq!(ss.stall_cycles, ps.stall_cycles);
        assert_eq!(ss.global_bytes, ps.global_bytes);
    }
}
