//! Chaos contract for the serve layer: injected faults at the
//! `serve.decode` site surface as *typed responses on a surviving
//! connection*, never as dropped connections or a dead daemon.
//!
//! * typed kind → `WireError::Fault { site: "serve.decode" }`;
//! * panic kind → `WireError::Panic("injected panic at ...")` — the
//!   handler's unwind is caught, the frame stream stays synchronized;
//! * both classify as injected, so the client's transparent retry
//!   absorbs them at partial rates and launches stay bit-identical;
//! * disarmed, the same connection serves normally and the daemon drains
//!   cleanly.
//!
//! Plus the *network* chaos matrix (`G80_SERVE_NET_FAULTS` /
//! [`g80::serve::set_net_faults`]): seeded transport faults on the wire
//! itself —
//!
//! * a mid-stream disconnect during a streamed sweep is survived by
//!   reconnect-and-replay, and `SweepResult::from_parts_with_net`
//!   reassembles the same result the clean wire produced;
//! * frame corruption at rate 1.0 yields typed errors (`BadFrame`, CRC
//!   mismatches) on a bounded schedule — never a panic, never a hang —
//!   and the same connection recovers bit-identically once disarmed;
//! * a slow-loris client stalled mid-frame is reaped by the read
//!   deadline, freeing its connection slot (and while it holds the only
//!   slot, new tenants are shed with a typed `Overloaded`).
//!
//! Both fault layers are process-global toggles, so every test
//! serializes on one lock.

use g80::isa::builder::KernelBuilder;
use g80::isa::Value;
use g80::serve::{
    serve, set_net_faults, Addr, Client, NetFaultConfig, NetFaultKind, Quota, Request, Response,
    ServeConfig, WireError, WireLaunch,
};
use g80::sim::fault::{self, FaultConfig, FaultKind, Site};
use g80::sim::{set_faults, GpuConfig, LaunchDims};
use g80::tune::tuner::{Sample, SweepResult};
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes every test in this binary: both fault layers are
/// process-global, and the in-process daemon shares them.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    let g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_faults(None);
    set_net_faults(None);
    g
}

fn probe_spec(salt: u32) -> WireLaunch {
    let mut b = KernelBuilder::new("sc_probe");
    let p = b.param();
    let tid = b.tid_x();
    let byte = b.shl(tid, 2u32);
    let addr = b.iadd(byte, p);
    let v = b.ld_global(addr, 0);
    let w = b.iadd(v, salt);
    b.st_global(addr, 0, w);
    let mut spec = WireLaunch::new(
        b.build(),
        LaunchDims {
            grid: (4, 1),
            block: (64, 1, 1),
        },
        vec![Value::from_u32(0)],
        4 * 64 * 4,
    );
    spec.writes = (0..4 * 64).map(|i| (i * 4, i * 3)).collect();
    spec
}

#[test]
fn serve_decode_faults_are_typed_and_survivable() {
    let _guard = chaos_guard();
    let server = serve(ServeConfig {
        addr: Addr::parse("tcp:127.0.0.1:0").unwrap(),
        quota: Quota::default(),
        gpu: GpuConfig::geforce_8800_gtx(),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = server.local_addr().clone();

    let mut client = Client::connect(&addr, "chaos").expect("connect");
    client.set_retry_injected(false);
    let spec = probe_spec(5);
    let req = Request::Launch(spec.clone());

    // Golden response on the untampered connection.
    let (golden, golden_delta) = match client.request_raw(&req).expect("transport") {
        Response::Launch { result } => result.expect("clean launch"),
        other => panic!("unexpected response {other:?}"),
    };
    assert!(!golden_delta.is_empty(), "the probe writes memory");

    // ---- typed kind, rate 1.0: every frame is tampered ----
    let raised_before = fault::raised(Site::ServeDecode);
    set_faults(Some(
        FaultConfig::new(0x5e27e, 1.0, Some(FaultKind::Typed)).only(Site::ServeDecode),
    ));
    for _ in 0..3 {
        match client.request_raw(&req).expect("connection must survive") {
            Response::Error(e) => {
                assert!(e.is_injected(), "{e:?}");
                match e {
                    WireError::Fault { site } => assert_eq!(site, "serve.decode"),
                    other => panic!("expected a typed Fault, got {other:?}"),
                }
            }
            other => panic!("expected a typed Fault, got {other:?}"),
        }
    }

    // ---- panic kind: the unwind is caught, the connection survives ----
    set_faults(Some(
        FaultConfig::new(0x5e27e, 1.0, Some(FaultKind::Panic)).only(Site::ServeDecode),
    ));
    match client.request_raw(&req).expect("connection must survive") {
        Response::Error(e) => {
            assert!(e.is_injected(), "{e:?}");
            match e {
                WireError::Panic(msg) => assert!(
                    msg.starts_with("injected panic at "),
                    "panic payload should classify: {msg}"
                ),
                other => panic!("expected a typed Panic, got {other:?}"),
            }
        }
        other => panic!("expected a typed Panic, got {other:?}"),
    }
    assert!(
        fault::raised(Site::ServeDecode) > raised_before,
        "the serve.decode site never fired"
    );

    // ---- disarmed: the SAME connection serves bit-identically ----
    set_faults(None);
    match client.request_raw(&req).expect("transport") {
        Response::Launch { result } => {
            let (report, delta) = result.expect("clean launch after chaos");
            assert_eq!(report.stats.cycles, golden.stats.cycles);
            assert_eq!(
                report.stats.warp_instructions,
                golden.stats.warp_instructions
            );
            assert_eq!(delta, golden_delta);
        }
        other => panic!("unexpected response {other:?}"),
    }

    // ---- partial rate + transparent retry: chaos is invisible ----
    set_faults(Some(
        FaultConfig::new(0xc4a05, 0.5, Some(FaultKind::Typed)).only(Site::ServeDecode),
    ));
    client.set_retry_injected(true);
    for i in 0..8u32 {
        let (report, delta) = client
            .launch(&spec)
            .expect("transport")
            .expect("retry must absorb injected faults");
        assert_eq!(report.stats.cycles, golden.stats.cycles, "iter {i}");
        assert_eq!(delta, golden_delta, "iter {i}");
    }
    set_faults(None);

    let mut admin = Client::connect(&addr, "admin").expect("admin connect");
    admin.shutdown().expect("clean shutdown");
    server.join().expect("drain");
}

fn default_daemon() -> (g80::serve::Server, Addr) {
    let server = serve(ServeConfig {
        addr: Addr::parse("tcp:127.0.0.1:0").unwrap(),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = server.local_addr().clone();
    (server, addr)
}

/// Mid-stream disconnects during a streamed sweep: the client must
/// reconnect and replay until the whole stream lands, the reassembled
/// `SweepResult` must match the clean wire bit-for-bit, and the fault
/// tally must show the recovery actually happened (the schedule fired).
#[test]
fn mid_stream_disconnect_resumes_sweep_via_replay() {
    let _guard = chaos_guard();
    let (server, addr) = default_daemon();
    let mut client = Client::connect(&addr, "sweeper").expect("connect");
    let specs: Vec<WireLaunch> = (0..12u32).map(|i| probe_spec(100 + i)).collect();

    // Golden: the clean wire.
    let (golden_items, golden_counters, golden_net) = client
        .sweep(&specs)
        .expect("clean transport")
        .expect("clean sweep");
    assert!(
        !golden_net.any(),
        "clean wire reported transport faults: {golden_net:?}"
    );
    let to_samples = |items: &[Result<g80::sim::LaunchReport, WireError>]| -> Vec<Sample<u32>> {
        items
            .iter()
            .enumerate()
            .map(|(i, r)| Sample {
                config: i as u32,
                stats: r.as_ref().expect("item ok").stats.clone(),
            })
            .collect()
    };
    let golden = SweepResult::from_parts(to_samples(&golden_items), golden_counters);

    // Armed: disconnect-only faults on every wire site. The seed/rate pair
    // is fixed and was verified to fire at least one mid-stream disconnect
    // against this deterministic schedule.
    set_net_faults(Some(NetFaultConfig::only(
        0xD15C_0441,
        0.03,
        NetFaultKind::Disconnect,
    )));
    let (items, counters, net) = client
        .sweep(&specs)
        .expect("recovery must absorb disconnects")
        .expect("typed error under chaos");
    set_net_faults(None);

    assert!(
        net.reconnects >= 1,
        "the fault schedule never forced a reconnect — pick a hotter seed: {net:?}"
    );
    let chaos = SweepResult::from_parts_with_net(to_samples(&items), counters, net);
    assert_eq!(chaos.samples.len(), golden.samples.len());
    assert_eq!(chaos.best, golden.best, "replay changed the sweep winner");
    for (i, (c, g)) in chaos.samples.iter().zip(&golden.samples).enumerate() {
        assert_eq!(c.stats.cycles, g.stats.cycles, "item {i}");
        assert_eq!(
            c.stats.warp_instructions, g.stats.warp_instructions,
            "item {i}"
        );
        assert_eq!(c.stats.global_bytes, g.stats.global_bytes, "item {i}");
    }
    assert!(chaos.net.reconnects >= 1);

    let mut admin = Client::connect(&addr, "admin").expect("admin connect");
    admin.shutdown().expect("clean shutdown");
    server.join().expect("drain");
}

/// Corruption at rate 1.0 — every frame in every direction gets a bit
/// flipped. Nothing decodes garbled: each exchange terminates promptly
/// with a typed `BadFrame` or a CRC-mismatch error, the connection never
/// desynchronizes, and once disarmed the SAME connection serves
/// bit-identically.
#[test]
fn corrupt_storm_is_typed_bounded_and_recoverable() {
    let _guard = chaos_guard();
    let (server, addr) = default_daemon();
    let mut client = Client::connect(&addr, "storm").expect("connect");
    client.set_retry_injected(false);
    let spec = probe_spec(77);
    let req = Request::Launch(spec.clone());
    let (golden, golden_delta) = match client.request_raw(&req).expect("transport") {
        Response::Launch { result } => result.expect("clean launch"),
        other => panic!("unexpected response {other:?}"),
    };

    set_net_faults(Some(NetFaultConfig::only(
        0xBADC_0DE5,
        1.0,
        NetFaultKind::Corrupt,
    )));
    for i in 0..4 {
        let t0 = Instant::now();
        match client.request_raw(&req) {
            // Our request was caught by the daemon's CRC and answered with
            // a typed BadFrame that happened to survive the return trip.
            Ok(Response::Error(WireError::BadFrame(_))) => {}
            Ok(other) => panic!("corrupt frame decoded to {other:?} (iter {i})"),
            // The response frame was corrupted on its way back.
            Err(e) => assert!(
                g80::serve::is_crc_mismatch(&e),
                "expected a CRC mismatch, got {e:?} (iter {i})"
            ),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "a corrupt exchange must fail fast, took {:?}",
            t0.elapsed()
        );
    }
    // The recovering path gives up with an error after bounded retries —
    // it must not spin forever against a wire that corrupts everything.
    let t0 = Instant::now();
    let recovered = client.launch(&spec);
    assert!(
        matches!(&recovered, Ok(Err(_)) | Err(_)),
        "launch succeeded through rate-1.0 corruption: {recovered:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "bounded retries took {:?}",
        t0.elapsed()
    );

    // Disarmed: the same connection is still synchronized.
    set_net_faults(None);
    let (report, delta) = client
        .launch(&spec)
        .expect("transport after storm")
        .expect("launch after storm");
    assert_eq!(report.stats.cycles, golden.stats.cycles);
    assert_eq!(
        report.stats.warp_instructions,
        golden.stats.warp_instructions
    );
    assert_eq!(delta, golden_delta);

    let mut admin = Client::connect(&addr, "admin").expect("admin connect");
    admin.shutdown().expect("clean shutdown");
    server.join().expect("drain");
}

/// A slow-loris tenant — two header bytes, then silence — must be reaped
/// by the mid-frame deadline, and its connection slot handed to the next
/// tenant. While it squats on the only slot, new connections get a typed
/// `Overloaded` shed, not a hang.
#[test]
fn slow_client_is_reaped_and_slot_freed() {
    let _guard = chaos_guard();
    let server = serve(ServeConfig {
        addr: Addr::parse("tcp:127.0.0.1:0").unwrap(),
        read_timeout: Some(Duration::from_millis(400)),
        max_conns: 1,
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = server.local_addr().clone();

    // The slow-loris: starts a frame, never finishes it.
    let mut loris = g80::serve::net::connect(&addr).expect("loris connect");
    loris.write_all(&[0x10, 0x00]).expect("partial header");
    loris.flush().expect("flush");
    // Let the accept loop claim the only slot for the loris.
    std::thread::sleep(Duration::from_millis(150));

    // Second tenant while the slot is squatted: typed shed, fast failure.
    let shed_attempt = Client::connect(&addr, "tenant-2");
    assert!(
        shed_attempt.is_err(),
        "connect must fail while the only slot is held"
    );
    assert!(server.shed() >= 1, "the refusal was not a counted shed");

    // The mid-frame deadline reaps the loris...
    let t0 = Instant::now();
    while server.reaped() == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "slow-loris was never reaped"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // ...and the freed slot serves the next tenant normally.
    let mut c2 =
        Client::connect_retry(&addr, "tenant-2", Duration::from_secs(10)).expect("slot freed");
    c2.launch(&probe_spec(9))
        .expect("transport")
        .expect("launch");
    drop(loris);
    c2.shutdown().expect("clean shutdown");
    server.join().expect("drain");
}
