//! Chaos contract for the serve layer: injected faults at the
//! `serve.decode` site surface as *typed responses on a surviving
//! connection*, never as dropped connections or a dead daemon.
//!
//! * typed kind → `WireError::Fault { site: "serve.decode" }`;
//! * panic kind → `WireError::Panic("injected panic at ...")` — the
//!   handler's unwind is caught, the frame stream stays synchronized;
//! * both classify as injected, so the client's transparent retry
//!   absorbs them at partial rates and launches stay bit-identical;
//! * disarmed, the same connection serves normally and the daemon drains
//!   cleanly.
//!
//! One `#[test]`: the fault toggles are process-global.

use g80::isa::builder::KernelBuilder;
use g80::isa::Value;
use g80::serve::{
    serve, Addr, Client, Quota, Request, Response, ServeConfig, WireError, WireLaunch,
};
use g80::sim::fault::{self, FaultConfig, FaultKind, Site};
use g80::sim::{set_faults, GpuConfig, LaunchDims};

fn probe_spec(salt: u32) -> WireLaunch {
    let mut b = KernelBuilder::new("sc_probe");
    let p = b.param();
    let tid = b.tid_x();
    let byte = b.shl(tid, 2u32);
    let addr = b.iadd(byte, p);
    let v = b.ld_global(addr, 0);
    let w = b.iadd(v, salt);
    b.st_global(addr, 0, w);
    let mut spec = WireLaunch::new(
        b.build(),
        LaunchDims {
            grid: (4, 1),
            block: (64, 1, 1),
        },
        vec![Value::from_u32(0)],
        4 * 64 * 4,
    );
    spec.writes = (0..4 * 64).map(|i| (i * 4, i * 3)).collect();
    spec
}

#[test]
fn serve_decode_faults_are_typed_and_survivable() {
    set_faults(None);
    let server = serve(ServeConfig {
        addr: Addr::parse("tcp:127.0.0.1:0").unwrap(),
        quota: Quota::default(),
        gpu: GpuConfig::geforce_8800_gtx(),
    })
    .expect("bind daemon");
    let addr = server.local_addr().clone();

    let mut client = Client::connect(&addr, "chaos").expect("connect");
    client.set_retry_injected(false);
    let spec = probe_spec(5);
    let req = Request::Launch(spec.clone());

    // Golden response on the untampered connection.
    let (golden, golden_delta) = match client.request_raw(&req).expect("transport") {
        Response::Launch { result } => result.expect("clean launch"),
        other => panic!("unexpected response {other:?}"),
    };
    assert!(!golden_delta.is_empty(), "the probe writes memory");

    // ---- typed kind, rate 1.0: every frame is tampered ----
    let raised_before = fault::raised(Site::ServeDecode);
    set_faults(Some(
        FaultConfig::new(0x5e27e, 1.0, Some(FaultKind::Typed)).only(Site::ServeDecode),
    ));
    for _ in 0..3 {
        match client.request_raw(&req).expect("connection must survive") {
            Response::Error(e) => {
                assert!(e.is_injected(), "{e:?}");
                match e {
                    WireError::Fault { site } => assert_eq!(site, "serve.decode"),
                    other => panic!("expected a typed Fault, got {other:?}"),
                }
            }
            other => panic!("expected a typed Fault, got {other:?}"),
        }
    }

    // ---- panic kind: the unwind is caught, the connection survives ----
    set_faults(Some(
        FaultConfig::new(0x5e27e, 1.0, Some(FaultKind::Panic)).only(Site::ServeDecode),
    ));
    match client.request_raw(&req).expect("connection must survive") {
        Response::Error(e) => {
            assert!(e.is_injected(), "{e:?}");
            match e {
                WireError::Panic(msg) => assert!(
                    msg.starts_with("injected panic at "),
                    "panic payload should classify: {msg}"
                ),
                other => panic!("expected a typed Panic, got {other:?}"),
            }
        }
        other => panic!("expected a typed Panic, got {other:?}"),
    }
    assert!(
        fault::raised(Site::ServeDecode) > raised_before,
        "the serve.decode site never fired"
    );

    // ---- disarmed: the SAME connection serves bit-identically ----
    set_faults(None);
    match client.request_raw(&req).expect("transport") {
        Response::Launch { result } => {
            let (report, delta) = result.expect("clean launch after chaos");
            assert_eq!(report.stats.cycles, golden.stats.cycles);
            assert_eq!(
                report.stats.warp_instructions,
                golden.stats.warp_instructions
            );
            assert_eq!(delta, golden_delta);
        }
        other => panic!("unexpected response {other:?}"),
    }

    // ---- partial rate + transparent retry: chaos is invisible ----
    set_faults(Some(
        FaultConfig::new(0xc4a05, 0.5, Some(FaultKind::Typed)).only(Site::ServeDecode),
    ));
    client.set_retry_injected(true);
    for i in 0..8u32 {
        let (report, delta) = client
            .launch(&spec)
            .expect("transport")
            .expect("retry must absorb injected faults");
        assert_eq!(report.stats.cycles, golden.stats.cycles, "iter {i}");
        assert_eq!(delta, golden_delta, "iter {i}");
    }
    set_faults(None);

    let mut admin = Client::connect(&addr, "admin").expect("admin connect");
    admin.shutdown().expect("clean shutdown");
    server.join().expect("drain");
}
