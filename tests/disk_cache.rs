//! Persistent disk-tier integration: publish → replay bit-identity across a
//! cold LRU, concurrent publish/load on a shared directory, corruption and
//! version-skew eviction (truncate, bit flip, header rewrite), and
//! byte-budget compaction.
//!
//! The disk/memo toggles are process-global, so everything runs inside one
//! `#[test]` (parallel test threads would race the toggles).

use g80::isa::builder::KernelBuilder;
use g80::isa::{Kernel, Value};
use g80::sim::{
    clear_memo_cache, launch, memo_counters, set_dedup, set_disk_cache, set_disk_cache_cap,
    set_memo, set_memo_capacity, Dedup, DeviceMemory, GpuConfig, KernelStats, LaunchDims, Memo,
};
use std::fs;
use std::path::{Path, PathBuf};

const N: u32 = 256;
const TPB: u32 = 64;

/// `out[i] = in[i] * mult + salt` — the constants land in the instruction
/// stream, so each pair is distinct kernel content (fresh memo identity).
fn scale_kernel(mult: u32, salt: u32) -> Kernel {
    let mut b = KernelBuilder::new("disk_scale");
    let xs = b.param();
    let ys = b.param();
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let xa = b.iadd(byte, xs);
    let v = b.ld_global(xa, 0);
    let w = b.imul(v, mult);
    let w = b.iadd(w, salt);
    let ya = b.iadd(byte, ys);
    b.st_global(ya, 0, w);
    b.build()
}

fn fresh_input() -> DeviceMemory {
    let mem = DeviceMemory::new(2 * N * 4);
    for i in 0..N {
        mem.write(i * 4, Value::from_u32(i.wrapping_mul(2654435761)));
    }
    mem
}

fn run(cfg: &GpuConfig, k: &Kernel, mem: &DeviceMemory) -> KernelStats {
    launch(
        cfg,
        k,
        LaunchDims {
            grid: (N / TPB, 1),
            block: (TPB, 1, 1),
        },
        &[Value::from_u32(0), Value::from_u32(N * 4)],
        mem,
    )
    .expect("launch")
}

fn output_words(mem: &DeviceMemory) -> Vec<u32> {
    (0..N).map(|i| mem.read((N + i) * 4).as_u32()).collect()
}

fn assert_stats_identical(label: &str, a: &KernelStats, b: &KernelStats) {
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits(), "{label}: elapsed");
    assert_eq!(
        a.warp_instructions, b.warp_instructions,
        "{label}: warp_instructions"
    );
    assert_eq!(
        a.thread_instructions, b.thread_instructions,
        "{label}: thread_instructions"
    );
    assert_eq!(a.by_class, b.by_class, "{label}: by_class");
    assert_eq!(a.stall_cycles, b.stall_cycles, "{label}: stall_cycles");
    assert_eq!(a.global_bytes, b.global_bytes, "{label}: global_bytes");
    assert_eq!(
        a.blocks_executed, b.blocks_executed,
        "{label}: blocks_executed"
    );
}

/// A fresh private cache directory for one scenario.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("g80-disk-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every entry file under the two-level sharded cache directory.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(shards) = fs::read_dir(dir) else {
        return out;
    };
    for shard in shards.flatten() {
        let Ok(files) = fs::read_dir(shard.path()) else {
            continue;
        };
        for f in files.flatten() {
            if f.metadata().is_ok_and(|m| m.is_file()) {
                out.push(f.path());
            }
        }
    }
    out.sort();
    out
}

fn total_bytes(dir: &Path) -> u64 {
    entry_files(dir)
        .iter()
        .filter_map(|p| fs::metadata(p).ok())
        .map(|m| m.len())
        .sum()
}

#[test]
fn disk_tier_end_to_end() {
    // Exact counter assertions don't survive an armed fault injector (the
    // chaos CI arms memo.disk itself), and the tier never probes while the
    // memo is globally off (the G80_SIM_MEMO=off CI arm).
    if g80::sim::fault::armed() || g80::sim::memo() == Memo::Off {
        return;
    }
    set_memo(Memo::On);
    set_dedup(Dedup::Off);
    set_memo_capacity(256);
    set_disk_cache_cap(1 << 30);
    let cfg = GpuConfig::geforce_8800_gtx();

    replay_is_bit_identical(&cfg);
    concurrent_publish_and_load(&cfg);
    corruption_is_evicted_and_resimulated(&cfg);
    version_skew_is_rejected(&cfg);
    compaction_enforces_byte_budget(&cfg);

    set_disk_cache(None);
}

/// Cold simulate → publish; clear the LRU; the replay must come back from
/// disk bit-identical (stats and memory effects), count as a disk hit (not
/// a miss), and promote into the LRU so the next repeat is an LRU hit.
fn replay_is_bit_identical(cfg: &GpuConfig) {
    let dir = scratch_dir("replay");
    set_disk_cache(Some(dir.clone()));
    clear_memo_cache();

    let k = scale_kernel(3, 7);
    let m1 = fresh_input();
    let c0 = memo_counters();
    let cold = run(cfg, &k, &m1);
    let out1 = output_words(&m1);
    let c1 = memo_counters();
    assert_eq!(c1.misses - c0.misses, 1, "cold launch must simulate");
    assert_eq!(
        entry_files(&dir).len(),
        1,
        "the recorded miss must spill exactly one entry"
    );

    clear_memo_cache(); // kill the in-process tier; only the disk remains
    let m2 = fresh_input();
    let warm = run(cfg, &k, &m2);
    let c2 = memo_counters();
    assert_eq!(c2.disk_hits - c1.disk_hits, 1, "replay must hit the disk");
    assert_eq!(
        c2.misses, c1.misses,
        "a disk hit is not a miss (nothing simulated)"
    );
    assert_eq!(c2.hits, c1.hits, "a disk hit is not an LRU hit");
    assert_stats_identical("disk replay", &cold, &warm);
    assert_eq!(out1, output_words(&m2), "replayed memory delta drifted");

    // Promotion: the disk hit re-seeded the LRU, so the next repeat is
    // served in-process without touching the disk.
    let m3 = fresh_input();
    let third = run(cfg, &k, &m3);
    let c3 = memo_counters();
    assert_eq!(c3.hits - c2.hits, 1, "promoted entry must hit the LRU");
    assert_eq!(c3.disk_hits, c2.disk_hits);
    assert_stats_identical("promoted replay", &cold, &third);

    set_disk_cache(None);
    let _ = fs::remove_dir_all(&dir);
}

/// Many threads hammer one shared directory with a capacity-1 LRU (so
/// nearly every lookup falls through to the disk and every simulation
/// publishes). The atomic temp-file + rename protocol must never let a
/// reader observe a torn entry: every launch returns stats bit-identical
/// to a clean reference.
fn concurrent_publish_and_load(cfg: &GpuConfig) {
    // References simulated with the whole cache machinery off.
    set_memo(Memo::Off);
    let kernels: Vec<Kernel> = (0..4).map(|i| scale_kernel(5 + i, 11 + i)).collect();
    let refs: Vec<(KernelStats, Vec<u32>)> = kernels
        .iter()
        .map(|k| {
            let m = fresh_input();
            let s = run(cfg, k, &m);
            (s, output_words(&m))
        })
        .collect();

    let dir = scratch_dir("concurrent");
    set_memo(Memo::On);
    set_memo_capacity(1);
    set_disk_cache(Some(dir.clone()));
    clear_memo_cache();
    let c0 = memo_counters();

    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..3 {
                    for (k, (rs, ro)) in kernels.iter().zip(&refs) {
                        let m = fresh_input();
                        let stats = run(cfg, k, &m);
                        assert_stats_identical("concurrent", rs, &stats);
                        assert_eq!(*ro, output_words(&m), "concurrent memory drift");
                    }
                }
            });
        }
    });

    let c1 = memo_counters();
    assert!(
        c1.disk_hits > c0.disk_hits,
        "capacity-1 LRU over 8 threads must be served by the disk: {c1:?}"
    );
    assert_eq!(c1.disk_evictions, c0.disk_evictions, "no entry was corrupt");
    assert_eq!(
        entry_files(&dir).len(),
        kernels.len(),
        "one entry per distinct launch, no leaked temp files"
    );

    set_memo_capacity(256);
    set_disk_cache(None);
    let _ = fs::remove_dir_all(&dir);
}

/// Truncation and bit rot reuse the evict-and-resimulate contract: the bad
/// file is removed, the launch simulates fresh (bit-identical), and the
/// re-record publishes a clean replacement.
fn corruption_is_evicted_and_resimulated(cfg: &GpuConfig) {
    let dir = scratch_dir("corrupt");
    set_disk_cache(Some(dir.clone()));
    clear_memo_cache();

    let k = scale_kernel(17, 23);
    let m1 = fresh_input();
    let cold = run(cfg, &k, &m1);
    let out1 = output_words(&m1);

    for (label, mutate) in [
        (
            "truncation",
            (|bytes: &mut Vec<u8>| bytes.truncate(bytes.len() / 2)) as fn(&mut Vec<u8>),
        ),
        (
            "bit flip",
            (|bytes: &mut Vec<u8>| {
                let last = bytes.len() - 1;
                bytes[last] ^= 0x01;
            }) as fn(&mut Vec<u8>),
        ),
    ] {
        let files = entry_files(&dir);
        assert_eq!(files.len(), 1, "{label}: expected one entry to damage");
        let mut bytes = fs::read(&files[0]).unwrap();
        mutate(&mut bytes);
        fs::write(&files[0], &bytes).unwrap();

        clear_memo_cache();
        let c0 = memo_counters();
        let m = fresh_input();
        let again = run(cfg, &k, &m);
        let c1 = memo_counters();
        assert_eq!(
            c1.disk_evictions - c0.disk_evictions,
            1,
            "{label}: damaged entry must be evicted"
        );
        assert_eq!(
            c1.misses - c0.misses,
            1,
            "{label}: the launch must resimulate"
        );
        assert_eq!(c1.disk_hits, c0.disk_hits, "{label}: must not hit");
        assert_stats_identical(label, &cold, &again);
        assert_eq!(out1, output_words(&m), "{label}: memory drift");
        // The re-record republished a clean entry for the next round.
        assert_eq!(entry_files(&dir).len(), 1, "{label}: no clean republish");
    }

    set_disk_cache(None);
    let _ = fs::remove_dir_all(&dir);
}

/// An entry written by a different serializer version must be rejected (and
/// evicted) even though its checksum is internally consistent.
fn version_skew_is_rejected(cfg: &GpuConfig) {
    let dir = scratch_dir("skew");
    set_disk_cache(Some(dir.clone()));
    clear_memo_cache();

    let k = scale_kernel(29, 31);
    let m1 = fresh_input();
    let cold = run(cfg, &k, &m1);

    let files = entry_files(&dir);
    assert_eq!(files.len(), 1);
    // Bump the version field (bytes 4..8, after the 4-byte magic) without
    // touching the payload or its checksum.
    let mut bytes = fs::read(&files[0]).unwrap();
    let v = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    bytes[4..8].copy_from_slice(&(v + 1).to_le_bytes());
    fs::write(&files[0], &bytes).unwrap();

    clear_memo_cache();
    let c0 = memo_counters();
    let m = fresh_input();
    let again = run(cfg, &k, &m);
    let c1 = memo_counters();
    assert_eq!(
        c1.disk_evictions - c0.disk_evictions,
        1,
        "version-skewed entry must be evicted"
    );
    assert_eq!(c1.disk_hits, c0.disk_hits, "skewed entry must not hit");
    assert_stats_identical("version skew", &cold, &again);

    set_disk_cache(None);
    let _ = fs::remove_dir_all(&dir);
}

/// A tiny byte budget forces compaction: after publishing many entries the
/// directory's total size fits the cap and the oldest entries are gone.
fn compaction_enforces_byte_budget(cfg: &GpuConfig) {
    let dir = scratch_dir("compact");
    set_disk_cache(Some(dir.clone()));
    clear_memo_cache();

    // Size one entry, then budget roughly four of them.
    let probe = scale_kernel(37, 41);
    run(cfg, &probe, &fresh_input());
    let entry_bytes = total_bytes(&dir);
    assert!(entry_bytes > 0);
    let cap = entry_bytes * 4;
    set_disk_cache_cap(cap);

    let c0 = memo_counters();
    for i in 0..12u32 {
        let k = scale_kernel(43, 1000 + i);
        run(cfg, &k, &fresh_input());
    }
    let c1 = memo_counters();
    assert!(
        total_bytes(&dir) <= cap,
        "compaction must keep the directory within {cap} bytes, found {}",
        total_bytes(&dir)
    );
    assert!(
        c1.disk_evictions > c0.disk_evictions,
        "publishing 12 entries into a 4-entry budget must evict: {c1:?}"
    );
    let survivors = entry_files(&dir).len() as u64;
    assert!(
        survivors >= 1 && survivors * entry_bytes <= cap,
        "{survivors} survivors of ~{entry_bytes} bytes exceed the {cap}-byte cap"
    );

    set_disk_cache_cap(1 << 30);
    set_disk_cache(None);
    let _ = fs::remove_dir_all(&dir);
}
