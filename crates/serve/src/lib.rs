//! # g80-serve: simulation-as-a-service over the shared substrate
//!
//! One simulator process has expensive warm state: a work-stealing pool
//! sized to the host, a launch-memo LRU, and optionally a persistent disk
//! cache. This crate turns that process into a daemon so many clients —
//! tuning sweeps, CI probes, batch experiments — share the warmth instead
//! of each paying cold-start and duplicating identical launches.
//!
//! The pieces:
//!
//! * [`protocol`] — versioned, hand-rolled wire format: length-prefixed
//!   frames carrying typed [`Request`]/[`Response`] values. Kernels,
//!   launch dims, params, and initial memory travel in a [`WireLaunch`];
//!   results come back as serialized `LaunchReport`s with [`Served`]
//!   provenance and cache counters, so a client can tell *how* its answer
//!   was produced (simulated here, memo hit, disk hit).
//! * [`admission`] — per-tenant quotas (blocks per launch, in-flight
//!   blocks, queue depth) with round-robin fairness, so a tenant sweeping
//!   matmul-4096 cannot starve a probe fleet.
//! * [`server`] — the daemon: accept loop, per-connection threads, typed
//!   error responses for every failure (malformed frames, injected
//!   faults, panics, quota rejections, drain), never a dropped
//!   connection.
//! * [`client`] — blocking typed client with transparent retry of
//!   injected-fault errors, in-place re-request on frame corruption, and
//!   reconnect-and-replay (jittered exponential backoff) when the
//!   connection dies mid-request.
//! * [`framed`] — CRC-guarded framing over a [`net::Stream`]: every frame
//!   carries a CRC32 trailer, reads enforce idle/mid-frame deadlines, and
//!   the seeded [`netfault`] layer injects transport chaos at four sites
//!   (client/server × read/write) when `G80_SERVE_NET_FAULTS` is armed.
//! * [`netfault`] — deterministic per-site fault schedules (splitmix64
//!   over the call index): disconnects, truncation, bit corruption, frame
//!   splitting, stalls — bit-identical across reruns of the same seed.
//!
//! Every launch runs through `g80_sim::launch_reported` on the daemon's
//! process-wide pool and caches, so stats are bit-identical to an
//! in-process `launch` with the same `GpuConfig` — the golden cross-check
//! in `tests/serve_daemon.rs` asserts exactly that.
//!
//! [`Served`]: g80_sim::Served

pub mod admission;
pub mod client;
pub mod framed;
pub mod net;
pub mod netfault;
pub mod protocol;
pub mod server;

pub use admission::{Admission, Quota, Verdict};
pub use client::Client;
pub use framed::{is_crc_mismatch, FramedStream, Side};
pub use net::Addr;
pub use netfault::{
    net_fault_config, set_net_faults, NetFault, NetFaultConfig, NetFaultKind, NetSite,
};
pub use protocol::{Request, Response, WireError, WireLaunch, PROTOCOL_VERSION};
pub use server::{serve, ServeConfig, Server};
