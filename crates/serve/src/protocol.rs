//! The `g80-serve` wire protocol: versioned, typed, length-prefixed frames
//! carrying launch requests and streamed responses.
//!
//! Every message is one frame: a little-endian `u32` payload length,
//! that many payload bytes, then a little-endian `u32` CRC-32 of the
//! payload ([`g80_sim::wire::crc32`], added in protocol version 3 so
//! on-wire corruption is caught by an integrity check instead of
//! surfacing as a confusing decode failure — or worse, not at all).
//! Payloads are encoded with the canonical [`g80_sim::wire`] codec (same
//! rules as the disk cache tier: LE integers, u64-length-prefixed UTF-8
//! strings, strict decoding). The first payload byte is a message tag. A
//! connection opens with
//! [`Request::Hello`] / [`Response::HelloOk`] agreeing on
//! [`PROTOCOL_VERSION`]; afterwards each request produces one response,
//! except [`Request::Batch`] / [`Request::Sweep`], which stream one
//! [`Response::Item`] per spec followed by a [`Response::Done`] carrying
//! the daemon's cache-counter delta for the whole stream.
//!
//! Errors are *values*, not connection state: a malformed frame, a
//! failed CRC, a quota rejection, an overload shed, or a fault-injected
//! decode tamper all come back as [`Response::Error`] with a typed
//! [`WireError`], and the connection stays usable (a CRC failure
//! consumes exactly one frame — the length field was validated first, so
//! framing stays synchronized). Only a frame whose declared length
//! exceeds [`MAX_FRAME_BYTES`] closes the connection, because framing
//! itself can no longer be trusted.

use g80_isa::{
    AluOp, AtomOp, CmpOp, Inst, Kernel, Label, Operand, Pred, Reg, Scalar, SfuOp, Space,
    SpecialReg, UnOp, Value,
};
use g80_sim::wire::{crc32, Dec, Enc};
use g80_sim::{LaunchDims, LaunchError, LaunchReport, MemoCounters, NetCounters};
use std::io::{self, Read, Write};

/// Bumped on any incompatible change to the framing, the message tags, or
/// any embedded encoding (including [`g80_sim::wire::encode_stats`]).
/// Version 2 tracks the [`g80_sim::LaunchReport`] layout change that added
/// the row-shape counters. Version 3 appends a CRC-32 to every frame,
/// adds the `BadFrame`/`Overloaded` errors, the transport-fault counters
/// on [`Response::Done`], and the net-counter block in `LaunchReport`.
pub const PROTOCOL_VERSION: u16 = 3;

/// Upper bound on one frame's payload. A header above this is treated as a
/// framing desync and the connection is dropped.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Upper bound on the device memory one request may ask the daemon to
/// allocate (words are materialized server-side).
pub const MAX_MEM_BYTES: u32 = 256 << 20;

// ---- framing ---------------------------------------------------------------
//
// These are the *plain* codec functions over any Read/Write — the
// reference implementation of the v3 frame layout, used by tests and
// simple tooling. Live connections go through `crate::framed`, which
// produces byte-identical frames but adds deadlines and the injected
// transport-fault schedule.

/// Writes one CRC-trailed length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.flush()
}

/// Reads one frame and verifies its CRC. `Ok(None)` means the peer closed
/// the connection cleanly at a frame boundary; an oversized header is an
/// error (framing desync — the caller must drop the connection); a CRC
/// mismatch is an `InvalidData` error with the frame fully consumed, so
/// framing stays synchronized.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    match r.read_exact(&mut hdr) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(hdr);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header declares {len} bytes (max {MAX_FRAME_BYTES})"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc = [0u8; 4];
    r.read_exact(&mut crc)?;
    let wire = u32::from_le_bytes(crc);
    let computed = crc32(&payload);
    if wire != computed {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch: expected {wire:#010x}, got {computed:#010x}"),
        ));
    }
    Ok(Some(payload))
}

// ---- enum codecs -----------------------------------------------------------
//
// The ISA enums are C-like (no explicit discriminants), so `as u8` yields
// the declaration-order index; decoding indexes a declaration-order table.

macro_rules! enum_table {
    ($fn_name:ident, $t:ty, [$($v:ident),* $(,)?]) => {
        fn $fn_name(tag: u8) -> Option<$t> {
            const ALL: &[$t] = &[$(<$t>::$v),*];
            ALL.get(tag as usize).copied()
        }
    };
}

enum_table!(
    alu_from,
    AluOp,
    [
        FAdd, FSub, FMul, FMin, FMax, IAdd, ISub, IMul, UMin, UMax, IMin, IMax, And, Or, Xor, Shl,
        ShrU, ShrS, Rotl,
    ]
);
enum_table!(
    un_from,
    UnOp,
    [Mov, FNeg, FAbs, Not, CvtF2I, CvtI2F, CvtF2U, CvtU2F, FFloor]
);
enum_table!(sfu_from, SfuOp, [Rcp, Rsqrt, Sqrt, Sin, Cos, Ex2, Lg2]);
enum_table!(cmp_from, CmpOp, [Eq, Ne, Lt, Le, Gt, Ge]);
enum_table!(scalar_from, Scalar, [F32, U32, I32]);
enum_table!(space_from, Space, [Global, Shared, Const, Local, Tex]);
enum_table!(atom_from, AtomOp, [Add, Min, Max, Exch]);
enum_table!(
    special_from,
    SpecialReg,
    [TidX, TidY, TidZ, NtidX, NtidY, NtidZ, CtaidX, CtaidY, NctaidX, NctaidY]
);

fn enc_operand(e: &mut Enc, op: &Operand) {
    match op {
        Operand::Reg(r) => {
            e.u8(0);
            e.u32(r.0);
        }
        Operand::Imm(v) => {
            e.u8(1);
            e.u32(v.0);
        }
        Operand::Param(p) => {
            e.u8(2);
            e.u16(*p);
        }
        Operand::Special(s) => {
            e.u8(3);
            e.u8(*s as u8);
        }
    }
}

fn dec_operand(d: &mut Dec) -> Option<Operand> {
    Some(match d.u8()? {
        0 => Operand::Reg(Reg(d.u32()?)),
        1 => Operand::Imm(Value(d.u32()?)),
        2 => Operand::Param(d.u16()?),
        3 => Operand::Special(special_from(d.u8()?)?),
        _ => return None,
    })
}

fn enc_inst(e: &mut Enc, inst: &Inst) {
    match inst {
        Inst::Alu { op, dst, a, b } => {
            e.u8(0);
            e.u8(*op as u8);
            e.u32(dst.0);
            enc_operand(e, a);
            enc_operand(e, b);
        }
        Inst::Ffma { dst, a, b, c } => {
            e.u8(1);
            e.u32(dst.0);
            enc_operand(e, a);
            enc_operand(e, b);
            enc_operand(e, c);
        }
        Inst::Imad { dst, a, b, c } => {
            e.u8(2);
            e.u32(dst.0);
            enc_operand(e, a);
            enc_operand(e, b);
            enc_operand(e, c);
        }
        Inst::Un { op, dst, a } => {
            e.u8(3);
            e.u8(*op as u8);
            e.u32(dst.0);
            enc_operand(e, a);
        }
        Inst::Sfu { op, dst, a } => {
            e.u8(4);
            e.u8(*op as u8);
            e.u32(dst.0);
            enc_operand(e, a);
        }
        Inst::SetP { op, ty, dst, a, b } => {
            e.u8(5);
            e.u8(*op as u8);
            e.u8(*ty as u8);
            e.u32(dst.0);
            enc_operand(e, a);
            enc_operand(e, b);
        }
        Inst::Sel { dst, c, a, b } => {
            e.u8(6);
            e.u32(dst.0);
            enc_operand(e, c);
            enc_operand(e, a);
            enc_operand(e, b);
        }
        Inst::Ld {
            space,
            dst,
            addr,
            off,
        } => {
            e.u8(7);
            e.u8(*space as u8);
            e.u32(dst.0);
            enc_operand(e, addr);
            e.i32(*off);
        }
        Inst::St {
            space,
            addr,
            off,
            src,
        } => {
            e.u8(8);
            e.u8(*space as u8);
            enc_operand(e, addr);
            e.i32(*off);
            enc_operand(e, src);
        }
        Inst::Atom {
            op,
            space,
            dst,
            addr,
            off,
            src,
        } => {
            e.u8(9);
            e.u8(*op as u8);
            e.u8(*space as u8);
            match dst {
                Some(r) => {
                    e.u8(1);
                    e.u32(r.0);
                }
                None => e.u8(0),
            }
            enc_operand(e, addr);
            e.i32(*off);
            enc_operand(e, src);
        }
        Inst::Bra {
            target,
            reconv,
            pred,
        } => {
            e.u8(10);
            e.u32(target.0);
            e.u32(reconv.0);
            match pred {
                Some(p) => {
                    e.u8(1);
                    e.u32(p.reg.0);
                    e.u8(p.negate as u8);
                }
                None => e.u8(0),
            }
        }
        Inst::Bar => e.u8(11),
        Inst::Exit => e.u8(12),
    }
}

fn dec_inst(d: &mut Dec) -> Option<Inst> {
    Some(match d.u8()? {
        0 => Inst::Alu {
            op: alu_from(d.u8()?)?,
            dst: Reg(d.u32()?),
            a: dec_operand(d)?,
            b: dec_operand(d)?,
        },
        1 => Inst::Ffma {
            dst: Reg(d.u32()?),
            a: dec_operand(d)?,
            b: dec_operand(d)?,
            c: dec_operand(d)?,
        },
        2 => Inst::Imad {
            dst: Reg(d.u32()?),
            a: dec_operand(d)?,
            b: dec_operand(d)?,
            c: dec_operand(d)?,
        },
        3 => Inst::Un {
            op: un_from(d.u8()?)?,
            dst: Reg(d.u32()?),
            a: dec_operand(d)?,
        },
        4 => Inst::Sfu {
            op: sfu_from(d.u8()?)?,
            dst: Reg(d.u32()?),
            a: dec_operand(d)?,
        },
        5 => Inst::SetP {
            op: cmp_from(d.u8()?)?,
            ty: scalar_from(d.u8()?)?,
            dst: Reg(d.u32()?),
            a: dec_operand(d)?,
            b: dec_operand(d)?,
        },
        6 => Inst::Sel {
            dst: Reg(d.u32()?),
            c: dec_operand(d)?,
            a: dec_operand(d)?,
            b: dec_operand(d)?,
        },
        7 => Inst::Ld {
            space: space_from(d.u8()?)?,
            dst: Reg(d.u32()?),
            addr: dec_operand(d)?,
            off: d.i32()?,
        },
        8 => Inst::St {
            space: space_from(d.u8()?)?,
            addr: dec_operand(d)?,
            off: d.i32()?,
            src: dec_operand(d)?,
        },
        9 => Inst::Atom {
            op: atom_from(d.u8()?)?,
            space: space_from(d.u8()?)?,
            dst: match d.u8()? {
                0 => None,
                1 => Some(Reg(d.u32()?)),
                _ => return None,
            },
            addr: dec_operand(d)?,
            off: d.i32()?,
            src: dec_operand(d)?,
        },
        10 => Inst::Bra {
            target: Label(d.u32()?),
            reconv: Label(d.u32()?),
            pred: match d.u8()? {
                0 => None,
                1 => Some(Pred {
                    reg: Reg(d.u32()?),
                    negate: match d.u8()? {
                        0 => false,
                        1 => true,
                        _ => return None,
                    },
                }),
                _ => return None,
            },
        },
        11 => Inst::Bar,
        12 => Inst::Exit,
        _ => return None,
    })
}

fn enc_kernel(e: &mut Enc, k: &Kernel) {
    e.str(&k.name);
    e.u32(k.regs_per_thread);
    e.u32(k.smem_bytes);
    e.u16(k.num_params);
    e.u32(k.code.len() as u32);
    for inst in &k.code {
        enc_inst(e, inst);
    }
}

fn dec_kernel(d: &mut Dec) -> Option<Kernel> {
    let name = d.str()?;
    let regs_per_thread = d.u32()?;
    let smem_bytes = d.u32()?;
    let num_params = d.u16()?;
    let n = d.u32()?;
    // Each instruction is at least one tag byte, so `n` can never exceed
    // the bytes left — a cheap guard against allocation-bomb headers.
    if n as usize > d.remaining() {
        return None;
    }
    let mut code = Vec::with_capacity(n as usize);
    for _ in 0..n {
        code.push(dec_inst(d)?);
    }
    Some(Kernel {
        name,
        code,
        regs_per_thread,
        smem_bytes,
        num_params,
    })
}

// ---- launch specs ----------------------------------------------------------

/// A self-contained launch: the kernel, its launch geometry, and the full
/// initial device state, everything the daemon needs to reproduce
/// [`g80_sim::launch`] bit-for-bit. Initial memory contents travel as a
/// sparse `(byte address, word)` list; results come back the same way (the
/// daemon diffs device memory around the launch).
#[derive(Clone, Debug)]
pub struct WireLaunch {
    pub kernel: Kernel,
    pub dims: LaunchDims,
    pub params: Vec<Value>,
    /// Device memory size in bytes (capped at [`MAX_MEM_BYTES`]).
    pub mem_bytes: u32,
    /// Sparse initial writes: word values at word-aligned byte addresses.
    pub writes: Vec<(u32, u32)>,
    /// Constant-bank contents.
    pub const_bank: Vec<u32>,
    /// Texture binding (base byte address, length in bytes), if any.
    pub tex_binding: Option<(u32, u32)>,
}

impl WireLaunch {
    /// A spec with empty memory contents; populate `writes` / `const_bank`
    /// / `tex_binding` as needed.
    pub fn new(kernel: Kernel, dims: LaunchDims, params: Vec<Value>, mem_bytes: u32) -> Self {
        WireLaunch {
            kernel,
            dims,
            params,
            mem_bytes,
            writes: Vec::new(),
            const_bank: Vec::new(),
            tex_binding: None,
        }
    }

    fn encode_into(&self, e: &mut Enc) {
        enc_kernel(e, &self.kernel);
        e.u32(self.dims.grid.0);
        e.u32(self.dims.grid.1);
        e.u32(self.dims.block.0);
        e.u32(self.dims.block.1);
        e.u32(self.dims.block.2);
        e.u32(self.params.len() as u32);
        for p in &self.params {
            e.u32(p.0);
        }
        e.u32(self.mem_bytes);
        e.u32(self.writes.len() as u32);
        for &(a, w) in &self.writes {
            e.u32(a);
            e.u32(w);
        }
        e.u32(self.const_bank.len() as u32);
        for &w in &self.const_bank {
            e.u32(w);
        }
        match self.tex_binding {
            Some((base, len)) => {
                e.u8(1);
                e.u32(base);
                e.u32(len);
            }
            None => e.u8(0),
        }
    }

    fn decode_from(d: &mut Dec) -> Option<Self> {
        let kernel = dec_kernel(d)?;
        let dims = LaunchDims {
            grid: (d.u32()?, d.u32()?),
            block: (d.u32()?, d.u32()?, d.u32()?),
        };
        let n_params = d.u32()?;
        if n_params as usize > d.remaining() / 4 {
            return None;
        }
        let params = (0..n_params)
            .map(|_| d.u32().map(Value))
            .collect::<Option<Vec<_>>>()?;
        let mem_bytes = d.u32()?;
        let n_writes = d.u32()?;
        if n_writes as usize > d.remaining() / 8 {
            return None;
        }
        let mut writes = Vec::with_capacity(n_writes as usize);
        for _ in 0..n_writes {
            writes.push((d.u32()?, d.u32()?));
        }
        let n_const = d.u32()?;
        if n_const as usize > d.remaining() / 4 {
            return None;
        }
        let const_bank = (0..n_const).map(|_| d.u32()).collect::<Option<Vec<_>>>()?;
        let tex_binding = match d.u8()? {
            0 => None,
            1 => Some((d.u32()?, d.u32()?)),
            _ => return None,
        };
        Some(WireLaunch {
            kernel,
            dims,
            params,
            mem_bytes,
            writes,
            const_bank,
            tex_binding,
        })
    }
}

// ---- errors ----------------------------------------------------------------

/// A typed error response. [`g80_sim::LaunchError`]'s variants plus the
/// serve-layer conditions (malformed requests, admission-control verdicts,
/// drain). `Fault` over the wire carries an owned site-name string because
/// the client cannot reconstruct the `&'static str` the daemon saw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    BadBlockDims(String),
    BadGridDims(String),
    BlockDoesNotFit(String),
    BadParams(String),
    Watchdog {
        kernel: String,
        budget: u64,
        cycles: u64,
        warp_instructions: u64,
    },
    /// An injected fault surfaced as a typed response. `site` is the
    /// [`g80_sim::Site`] name — `"serve.decode"` for request-decode
    /// tampers; launch-layer sites only appear when absorb-and-retry is
    /// disabled daemon-side.
    Fault {
        site: String,
    },
    Panic(String),
    /// The request could not be decoded or fails static validation. The
    /// connection stays open; framing is still synchronized.
    Malformed(String),
    /// The request exceeds a hard per-tenant quota and can never run.
    Rejected(String),
    /// The tenant's admission queue is full; retry later.
    Throttled(String),
    /// The daemon is draining and accepts no further work.
    Shutdown,
    /// The request frame arrived with a failed CRC (on-wire corruption).
    /// The frame was consumed whole, so the connection stays synchronized
    /// and the client re-sends — launches are content-hash keyed, so the
    /// replay is idempotent.
    BadFrame(String),
    /// The daemon is at its connection cap and shed this connection
    /// before the handshake. Reconnect after `retry_after_ms`.
    Overloaded {
        retry_after_ms: u64,
    },
}

impl WireError {
    /// True when this error was manufactured by the fault injector (the
    /// serve-layer analogue of [`g80_sim::LaunchError::is_injected`]):
    /// clients absorb these by resending, mirroring the launch layer's
    /// absorb-and-retry.
    pub fn is_injected(&self) -> bool {
        match self {
            WireError::Fault { .. } => true,
            WireError::Panic(msg) => msg.starts_with("injected panic at "),
            _ => false,
        }
    }

    fn encode_into(&self, e: &mut Enc) {
        match self {
            WireError::BadBlockDims(s) => {
                e.u8(0);
                e.str(s);
            }
            WireError::BadGridDims(s) => {
                e.u8(1);
                e.str(s);
            }
            WireError::BlockDoesNotFit(s) => {
                e.u8(2);
                e.str(s);
            }
            WireError::BadParams(s) => {
                e.u8(3);
                e.str(s);
            }
            WireError::Watchdog {
                kernel,
                budget,
                cycles,
                warp_instructions,
            } => {
                e.u8(4);
                e.str(kernel);
                e.u64(*budget);
                e.u64(*cycles);
                e.u64(*warp_instructions);
            }
            WireError::Fault { site } => {
                e.u8(5);
                e.str(site);
            }
            WireError::Panic(s) => {
                e.u8(6);
                e.str(s);
            }
            WireError::Malformed(s) => {
                e.u8(7);
                e.str(s);
            }
            WireError::Rejected(s) => {
                e.u8(8);
                e.str(s);
            }
            WireError::Throttled(s) => {
                e.u8(9);
                e.str(s);
            }
            WireError::Shutdown => e.u8(10),
            WireError::BadFrame(s) => {
                e.u8(11);
                e.str(s);
            }
            WireError::Overloaded { retry_after_ms } => {
                e.u8(12);
                e.u64(*retry_after_ms);
            }
        }
    }

    fn decode_from(d: &mut Dec) -> Option<Self> {
        Some(match d.u8()? {
            0 => WireError::BadBlockDims(d.str()?),
            1 => WireError::BadGridDims(d.str()?),
            2 => WireError::BlockDoesNotFit(d.str()?),
            3 => WireError::BadParams(d.str()?),
            4 => WireError::Watchdog {
                kernel: d.str()?,
                budget: d.u64()?,
                cycles: d.u64()?,
                warp_instructions: d.u64()?,
            },
            5 => WireError::Fault { site: d.str()? },
            6 => WireError::Panic(d.str()?),
            7 => WireError::Malformed(d.str()?),
            8 => WireError::Rejected(d.str()?),
            9 => WireError::Throttled(d.str()?),
            10 => WireError::Shutdown,
            11 => WireError::BadFrame(d.str()?),
            12 => WireError::Overloaded {
                retry_after_ms: d.u64()?,
            },
            _ => return None,
        })
    }
}

impl From<&LaunchError> for WireError {
    fn from(e: &LaunchError) -> Self {
        match e {
            LaunchError::BadBlockDims(s) => WireError::BadBlockDims(s.clone()),
            LaunchError::BadGridDims(s) => WireError::BadGridDims(s.clone()),
            LaunchError::BlockDoesNotFit(s) => WireError::BlockDoesNotFit(s.clone()),
            LaunchError::BadParams(s) => WireError::BadParams(s.clone()),
            LaunchError::Watchdog {
                kernel,
                budget,
                cycles,
                warp_instructions,
            } => WireError::Watchdog {
                kernel: kernel.clone(),
                budget: *budget,
                cycles: *cycles,
                warp_instructions: *warp_instructions,
            },
            LaunchError::Fault { site } => WireError::Fault {
                site: (*site).to_string(),
            },
            LaunchError::Panic(s) => WireError::Panic(s.clone()),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadBlockDims(s) => write!(f, "BadBlockDims: {s}"),
            WireError::BadGridDims(s) => write!(f, "BadGridDims: {s}"),
            WireError::BlockDoesNotFit(s) => write!(f, "BlockDoesNotFit: {s}"),
            WireError::BadParams(s) => write!(f, "BadParams: {s}"),
            WireError::Watchdog {
                kernel,
                budget,
                cycles,
                ..
            } => write!(
                f,
                "Watchdog: kernel {kernel} exceeded {budget} cycles (at {cycles})"
            ),
            WireError::Fault { site } => write!(f, "Fault: injected fault at {site}"),
            WireError::Panic(s) => write!(f, "Panic: {s}"),
            WireError::Malformed(s) => write!(f, "Malformed: {s}"),
            WireError::Rejected(s) => write!(f, "Rejected: {s}"),
            WireError::Throttled(s) => write!(f, "Throttled: {s}"),
            WireError::Shutdown => write!(f, "Shutdown: daemon is draining"),
            WireError::BadFrame(s) => write!(f, "BadFrame: {s}"),
            WireError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "Overloaded: connection shed, retry after {retry_after_ms} ms"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---- messages --------------------------------------------------------------

/// A client-to-daemon message (one per frame).
#[derive(Clone, Debug)]
pub enum Request {
    /// Opens the conversation: protocol version check plus the tenant name
    /// the admission controller accounts this connection to.
    Hello { version: u16, tenant: String },
    /// One launch; responds [`Response::Launch`] with the report and the
    /// sparse memory delta.
    Launch(WireLaunch),
    /// Independent specs, each on its own device memory; streams
    /// [`Response::Item`] per spec (in order) then [`Response::Done`].
    /// Results carry reports only, no memory deltas.
    Batch(Vec<WireLaunch>),
    /// A tuning sweep: identical execution to `Batch`, tagged separately
    /// so the daemon may order/schedule sweeps differently in future
    /// versions. [`Response::Done`]'s counter delta is what a client feeds
    /// `SweepResult::from_parts`.
    Sweep(Vec<WireLaunch>),
    /// Asks the daemon to drain and exit; responds [`Response::ShutdownOk`].
    Shutdown,
}

fn enc_specs(e: &mut Enc, specs: &[WireLaunch]) {
    e.u32(specs.len() as u32);
    for s in specs {
        s.encode_into(e);
    }
}

fn dec_specs(d: &mut Dec) -> Option<Vec<WireLaunch>> {
    let n = d.u32()?;
    if n as usize > d.remaining() {
        return None;
    }
    (0..n).map(|_| WireLaunch::decode_from(d)).collect()
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(256);
        match self {
            Request::Hello { version, tenant } => {
                e.u8(0);
                e.u16(*version);
                e.str(tenant);
            }
            Request::Launch(spec) => {
                e.u8(1);
                spec.encode_into(&mut e);
            }
            Request::Batch(specs) => {
                e.u8(2);
                enc_specs(&mut e, specs);
            }
            Request::Sweep(specs) => {
                e.u8(3);
                enc_specs(&mut e, specs);
            }
            Request::Shutdown => e.u8(4),
        }
        e.0
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec(bytes);
        let req = match d.u8()? {
            0 => Request::Hello {
                version: d.u16()?,
                tenant: d.str()?,
            },
            1 => Request::Launch(WireLaunch::decode_from(&mut d)?),
            2 => Request::Batch(dec_specs(&mut d)?),
            3 => Request::Sweep(dec_specs(&mut d)?),
            4 => Request::Shutdown,
            _ => return None,
        };
        if !d.is_empty() {
            return None;
        }
        Some(req)
    }
}

/// A daemon-to-client message (one per frame).
#[derive(Clone, Debug)]
pub enum Response {
    /// Handshake accepted; `version` echoes the daemon's protocol version.
    HelloOk { version: u16 },
    /// Result of a [`Request::Launch`]: the report plus the sparse
    /// `(byte address, word)` delta of device memory across the launch.
    Launch {
        result: Result<(LaunchReport, Vec<(u32, u32)>), WireError>,
    },
    /// One spec's result within a `Batch`/`Sweep` stream.
    Item {
        index: u32,
        result: Result<LaunchReport, WireError>,
    },
    /// Terminates a `Batch`/`Sweep` stream; `counters` is the delta of the
    /// daemon's process-wide cache counters across the stream (shared by
    /// all tenants — cross-client provenance, see EXPERIMENTS.md), and
    /// `net` the matching delta of its transport-fault counters — the
    /// disconnects/retries/replays the daemon survived while the stream
    /// ran.
    Done {
        counters: MemoCounters,
        net: NetCounters,
    },
    /// Request-level typed failure (decode error, admission verdict,
    /// drain). The connection remains usable.
    Error(WireError),
    /// Drain acknowledged; the daemon exits once in-flight work completes.
    ShutdownOk,
}

fn enc_counters(e: &mut Enc, c: &MemoCounters) {
    e.u64(c.hits);
    e.u64(c.misses);
    e.u64(c.disk_hits);
    e.u64(c.disk_misses);
    e.u64(c.disk_evictions);
    e.u64(c.dedup_fast_blocks);
    e.u64(c.dedup_sim_blocks);
    e.u64(c.dedup_fallbacks);
}

fn dec_counters(d: &mut Dec) -> Option<MemoCounters> {
    Some(MemoCounters {
        hits: d.u64()?,
        misses: d.u64()?,
        disk_hits: d.u64()?,
        disk_misses: d.u64()?,
        disk_evictions: d.u64()?,
        dedup_fast_blocks: d.u64()?,
        dedup_sim_blocks: d.u64()?,
        dedup_fallbacks: d.u64()?,
    })
}

fn enc_net_counters(e: &mut Enc, n: &NetCounters) {
    e.u64(n.disconnects);
    e.u64(n.frames_retried);
    e.u64(n.bytes_resent);
    e.u64(n.reconnects);
}

fn dec_net_counters(d: &mut Dec) -> Option<NetCounters> {
    Some(NetCounters {
        disconnects: d.u64()?,
        frames_retried: d.u64()?,
        bytes_resent: d.u64()?,
        reconnects: d.u64()?,
    })
}

fn enc_report_result(e: &mut Enc, r: &Result<LaunchReport, WireError>) {
    match r {
        Ok(report) => {
            e.u8(1);
            report.encode_into(e);
        }
        Err(err) => {
            e.u8(0);
            err.encode_into(e);
        }
    }
}

fn dec_report_result(d: &mut Dec) -> Option<Result<LaunchReport, WireError>> {
    Some(match d.u8()? {
        1 => Ok(LaunchReport::decode_from(d)?),
        0 => Err(WireError::decode_from(d)?),
        _ => return None,
    })
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(256);
        match self {
            Response::HelloOk { version } => {
                e.u8(0);
                e.u16(*version);
            }
            Response::Launch { result } => {
                e.u8(1);
                match result {
                    Ok((report, delta)) => {
                        e.u8(1);
                        report.encode_into(&mut e);
                        e.u32(delta.len() as u32);
                        for &(a, w) in delta {
                            e.u32(a);
                            e.u32(w);
                        }
                    }
                    Err(err) => {
                        e.u8(0);
                        err.encode_into(&mut e);
                    }
                }
            }
            Response::Item { index, result } => {
                e.u8(2);
                e.u32(*index);
                enc_report_result(&mut e, result);
            }
            Response::Done { counters, net } => {
                e.u8(3);
                enc_counters(&mut e, counters);
                enc_net_counters(&mut e, net);
            }
            Response::Error(err) => {
                e.u8(4);
                err.encode_into(&mut e);
            }
            Response::ShutdownOk => e.u8(5),
        }
        e.0
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec(bytes);
        let resp = match d.u8()? {
            0 => Response::HelloOk { version: d.u16()? },
            1 => Response::Launch {
                result: match d.u8()? {
                    1 => {
                        let report = LaunchReport::decode_from(&mut d)?;
                        let n = d.u32()?;
                        if n as usize > d.remaining() / 8 {
                            return None;
                        }
                        let mut delta = Vec::with_capacity(n as usize);
                        for _ in 0..n {
                            delta.push((d.u32()?, d.u32()?));
                        }
                        Ok((report, delta))
                    }
                    0 => Err(WireError::decode_from(&mut d)?),
                    _ => return None,
                },
            },
            2 => Response::Item {
                index: d.u32()?,
                result: dec_report_result(&mut d)?,
            },
            3 => Response::Done {
                counters: dec_counters(&mut d)?,
                net: dec_net_counters(&mut d)?,
            },
            4 => Response::Error(WireError::decode_from(&mut d)?),
            5 => Response::ShutdownOk,
            _ => return None,
        };
        if !d.is_empty() {
            return None;
        }
        Some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::KernelBuilder;

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("proto_saxpy");
        let (x, y, a) = (b.param(), b.param(), b.param());
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let xa = b.iadd(byte, x);
        let ya = b.iadd(byte, y);
        let xv = b.ld_global(xa, 0);
        let yv = b.ld_global(ya, 0);
        let r = b.ffma(a, xv, yv);
        b.st_global(ya, 0, r);
        b.build()
    }

    fn sample_spec() -> WireLaunch {
        let mut spec = WireLaunch::new(
            sample_kernel(),
            LaunchDims {
                grid: (2, 1),
                block: (64, 1, 1),
            },
            vec![
                Value::from_u32(0),
                Value::from_u32(512),
                Value::from_f32(2.0),
            ],
            4096,
        );
        spec.writes = vec![(0, 0x3f80_0000), (512, 0x4000_0000)];
        spec.const_bank = vec![7, 8, 9];
        spec.tex_binding = Some((0, 1024));
        spec
    }

    #[test]
    fn kernel_roundtrips_bit_exact() {
        let k = sample_kernel();
        let mut e = Enc::with_capacity(256);
        enc_kernel(&mut e, &k);
        let mut d = Dec(&e.0);
        let back = dec_kernel(&mut d).expect("kernel decodes");
        assert!(d.is_empty());
        assert_eq!(k.name, back.name);
        assert_eq!(k.code, back.code);
        assert_eq!(k.regs_per_thread, back.regs_per_thread);
        assert_eq!(k.smem_bytes, back.smem_bytes);
        assert_eq!(k.num_params, back.num_params);
    }

    #[test]
    fn every_inst_shape_roundtrips() {
        use g80_isa::{AluOp, AtomOp, CmpOp, Scalar, SfuOp, Space, SpecialReg, UnOp};
        let insts = vec![
            Inst::Alu {
                op: AluOp::Rotl,
                dst: Reg(1),
                a: Operand::Special(SpecialReg::NctaidY),
                b: Operand::imm_i(-3),
            },
            Inst::Ffma {
                dst: Reg(2),
                a: Operand::imm_f(1.5),
                b: Reg(3).into(),
                c: Operand::Param(2),
            },
            Inst::Imad {
                dst: Reg(4),
                a: Reg(5).into(),
                b: Reg(6).into(),
                c: Operand::imm_u(9),
            },
            Inst::Un {
                op: UnOp::FFloor,
                dst: Reg(7),
                a: Reg(8).into(),
            },
            Inst::Sfu {
                op: SfuOp::Lg2,
                dst: Reg(9),
                a: Operand::imm_f(8.0),
            },
            Inst::SetP {
                op: CmpOp::Ge,
                ty: Scalar::I32,
                dst: Reg(10),
                a: Reg(11).into(),
                b: Operand::imm_i(-1),
            },
            Inst::Sel {
                dst: Reg(12),
                c: Reg(10).into(),
                a: Reg(11).into(),
                b: Reg(4).into(),
            },
            Inst::Ld {
                space: Space::Tex,
                dst: Reg(13),
                addr: Reg(1).into(),
                off: -8,
            },
            Inst::St {
                space: Space::Shared,
                addr: Reg(1).into(),
                off: 4,
                src: Reg(13).into(),
            },
            Inst::Atom {
                op: AtomOp::Exch,
                space: Space::Global,
                dst: Some(Reg(14)),
                addr: Reg(1).into(),
                off: 0,
                src: Reg(2).into(),
            },
            Inst::Atom {
                op: AtomOp::Add,
                space: Space::Shared,
                dst: None,
                addr: Reg(1).into(),
                off: 0,
                src: Reg(2).into(),
            },
            Inst::Bra {
                target: Label(3),
                reconv: Label(5),
                pred: Some(Pred::if_false(Reg(10))),
            },
            Inst::Bra {
                target: Label(0),
                reconv: Label(0),
                pred: None,
            },
            Inst::Bar,
            Inst::Exit,
        ];
        for inst in insts {
            let mut e = Enc::with_capacity(32);
            enc_inst(&mut e, &inst);
            let mut d = Dec(&e.0);
            assert_eq!(dec_inst(&mut d), Some(inst), "roundtrip of {inst:?}");
            assert!(d.is_empty());
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
                tenant: "probe-fleet".into(),
            },
            Request::Launch(sample_spec()),
            Request::Batch(vec![sample_spec(), sample_spec()]),
            Request::Sweep(vec![sample_spec()]),
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = req.encode();
            let back = Request::decode(&bytes).expect("request decodes");
            assert_eq!(bytes, back.encode(), "canonical re-encoding");
            match (&req, &back) {
                (Request::Launch(a), Request::Launch(b)) => {
                    assert_eq!(a.kernel.code, b.kernel.code);
                    assert_eq!(a.dims.grid, b.dims.grid);
                    assert_eq!(a.writes, b.writes);
                    assert_eq!(a.const_bank, b.const_bank);
                    assert_eq!(a.tex_binding, b.tex_binding);
                }
                (Request::Hello { tenant: a, .. }, Request::Hello { tenant: b, .. }) => {
                    assert_eq!(a, b)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn error_responses_roundtrip() {
        let errs = vec![
            WireError::BadBlockDims("x".into()),
            WireError::BadGridDims("x".into()),
            WireError::BlockDoesNotFit("x".into()),
            WireError::BadParams("x".into()),
            WireError::Watchdog {
                kernel: "k".into(),
                budget: 1,
                cycles: 2,
                warp_instructions: 3,
            },
            WireError::Fault {
                site: "serve.decode".into(),
            },
            WireError::Panic("boom".into()),
            WireError::Malformed("bad tag".into()),
            WireError::Rejected("too big".into()),
            WireError::Throttled("queue full".into()),
            WireError::Shutdown,
            WireError::BadFrame("crc mismatch".into()),
            WireError::Overloaded { retry_after_ms: 50 },
        ];
        for err in errs {
            let bytes = Response::Error(err.clone()).encode();
            match Response::decode(&bytes) {
                Some(Response::Error(back)) => assert_eq!(err, back),
                other => panic!("expected Error response, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_rejected() {
        let bytes = Request::Launch(sample_spec()).encode();
        assert!(Request::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Request::decode(&extended).is_none());
        assert!(Request::decode(&[99]).is_none(), "unknown tag");
    }

    #[test]
    fn frame_roundtrip_and_oversize_header() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        let bad = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(read_frame(&mut &bad[..]).is_err(), "oversize header");
    }

    #[test]
    fn frame_crc_rejects_any_flipped_bit() {
        let mut clean = Vec::new();
        write_frame(&mut clean, b"integrity").unwrap();
        // Flip each payload byte in turn: every corruption must be caught,
        // and the error must leave the reader at the next frame boundary.
        for i in 4..4 + b"integrity".len() {
            let mut bent = clean.clone();
            bent[i] ^= 0x40;
            let mut r = &bent[..];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {i}");
            assert!(r.is_empty(), "frame must be fully consumed on CRC failure");
        }
        // A flipped CRC trailer byte is also caught.
        let n = clean.len();
        let mut bent = clean.clone();
        bent[n - 1] ^= 1;
        assert!(read_frame(&mut &bent[..]).is_err());
    }

    #[test]
    fn injected_classification() {
        assert!(WireError::Fault {
            site: "serve.decode".into()
        }
        .is_injected());
        assert!(WireError::Panic("injected panic at serve.decode".into()).is_injected());
        assert!(!WireError::Panic("genuine bug".into()).is_injected());
        assert!(!WireError::Malformed("bad".into()).is_injected());
    }
}
