//! Deterministic transport-fault injection for the `g80-serve` wire.
//!
//! The network analogue of [`g80_sim::fault`]: `G80_SERVE_NET_FAULTS=
//! <seed>:<rate>[:kind]` arms a seeded schedule over four *sites* — the
//! client's and server's frame reads and writes — and every framed I/O
//! operation polls its site once. Whether the `index`-th operation at a
//! site faults, and how, is a pure function of `(seed, site, index)`
//! (splitmix64), so a chaos run replays bit-identically from its seed:
//! same disconnects at the same frame boundaries, same corrupted bytes,
//! same stalls.
//!
//! Kinds (`all` when omitted):
//!
//! * `disconnect` — the socket is torn down before the frame (pre) or in
//!   the middle of it (mid), chosen by a hash bit;
//! * `truncate` — a write sends the header and half the payload, then
//!   closes (the peer sees a mid-frame EOF);
//! * `corrupt` — one payload byte is flipped on the wire while the CRC
//!   still covers the original bytes, so the receiver's integrity check
//!   must catch it;
//! * `split` — the frame travels in dribbled chunks (writes) or is read a
//!   byte at a time / through a coalescing readahead (reads), exercising
//!   every partial-I/O path;
//! * `stall` — the operation sleeps 20–150 ms first, long enough to trip
//!   a tight server deadline, bounded so armed CI latency ceilings hold.
//!
//! Disarmed cost is one relaxed atomic load per frame operation, the same
//! zero-cost gate as the launch-layer harness. Tests override the env
//! with [`set_net_faults`]; the toggles are process-global, so tests that
//! arm them serialize.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Where a transport fault can strike: each side's frame reads and
/// writes schedule independently.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NetSite {
    ClientWrite,
    ClientRead,
    ServerWrite,
    ServerRead,
}

impl NetSite {
    pub const ALL: [NetSite; 4] = [
        NetSite::ClientWrite,
        NetSite::ClientRead,
        NetSite::ServerWrite,
        NetSite::ServerRead,
    ];

    /// Stable dotted name (fault-site table in the README).
    pub fn name(&self) -> &'static str {
        match self {
            NetSite::ClientWrite => "net.client.write",
            NetSite::ClientRead => "net.client.read",
            NetSite::ServerWrite => "net.server.write",
            NetSite::ServerRead => "net.server.read",
        }
    }
}

/// Which fault family the schedule draws from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Every kind, chosen per event by hash bits (the default).
    All,
    Disconnect,
    Truncate,
    Corrupt,
    Split,
    Stall,
}

/// Parsed `G80_SERVE_NET_FAULTS` configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NetFaultConfig {
    pub seed: u64,
    /// Per-frame-operation fault probability in `[0, 1]`.
    pub rate: f64,
    pub kind: NetFaultKind,
}

impl NetFaultConfig {
    pub fn new(seed: u64, rate: f64) -> Self {
        NetFaultConfig {
            seed,
            rate,
            kind: NetFaultKind::All,
        }
    }

    pub fn only(seed: u64, rate: f64, kind: NetFaultKind) -> Self {
        NetFaultConfig { seed, rate, kind }
    }
}

/// One concrete injected fault, fully determined by the schedule; the
/// framed layer interprets it for the operation at hand.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Tear the connection down before touching the frame.
    DisconnectPre,
    /// Tear it down with the frame partially transferred.
    DisconnectMid,
    /// Write side: send the header and half the payload, then close.
    /// Read side: equivalent to [`NetFault::DisconnectMid`].
    Truncate,
    /// Flip bit `bit` of payload byte `byte % len` on the wire; the CRC
    /// still covers the original bytes.
    Corrupt { byte: u64, bit: u8 },
    /// Transfer the frame through deliberately tiny I/O units.
    Split,
    /// Sleep `ms` (20–150) before the operation.
    Stall { ms: u64 },
}

// 0 = unresolved (consult the env), 1 = disarmed, 2 = armed.
static STATE: AtomicU8 = AtomicU8::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);
static RATE_BITS: AtomicU64 = AtomicU64::new(0);
// NetFaultKind as a small integer (0 = All .. 5 = Stall).
static KIND: AtomicU8 = AtomicU8::new(0);
/// Per-site poll counters: the call index feeding the decision hash.
static CALLS: [AtomicU64; 4] = [const { AtomicU64::new(0) }; 4];
/// Per-site counters of faults actually raised.
static RAISED: [AtomicU64; 4] = [const { AtomicU64::new(0) }; 4];

/// Cheap armed check: one relaxed load once resolved.
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => resolve_env(),
        2 => true,
        _ => false,
    }
}

#[cold]
fn resolve_env() -> bool {
    let cfg = std::env::var("G80_SERVE_NET_FAULTS")
        .ok()
        .and_then(|v| parse(&v));
    // Racing first reads parse the same env and resolve identically.
    store(cfg);
    cfg.is_some()
}

fn parse(v: &str) -> Option<NetFaultConfig> {
    let mut it = v.trim().split(':');
    let seed = it.next()?.parse::<u64>().ok()?;
    let rate = it.next()?.parse::<f64>().ok()?;
    if !(0.0..=1.0).contains(&rate) {
        return None;
    }
    let kind = match it.next() {
        None | Some("all") => NetFaultKind::All,
        Some("disconnect") => NetFaultKind::Disconnect,
        Some("truncate") => NetFaultKind::Truncate,
        Some("corrupt") => NetFaultKind::Corrupt,
        Some("split") => NetFaultKind::Split,
        Some("stall") => NetFaultKind::Stall,
        Some(_) => return None,
    };
    if it.next().is_some() {
        return None;
    }
    Some(NetFaultConfig { seed, rate, kind })
}

fn kind_to_u8(k: NetFaultKind) -> u8 {
    match k {
        NetFaultKind::All => 0,
        NetFaultKind::Disconnect => 1,
        NetFaultKind::Truncate => 2,
        NetFaultKind::Corrupt => 3,
        NetFaultKind::Split => 4,
        NetFaultKind::Stall => 5,
    }
}

fn kind_from_u8(v: u8) -> NetFaultKind {
    match v {
        1 => NetFaultKind::Disconnect,
        2 => NetFaultKind::Truncate,
        3 => NetFaultKind::Corrupt,
        4 => NetFaultKind::Split,
        5 => NetFaultKind::Stall,
        _ => NetFaultKind::All,
    }
}

fn store(cfg: Option<NetFaultConfig>) {
    for c in &CALLS {
        c.store(0, Ordering::SeqCst);
    }
    for r in &RAISED {
        r.store(0, Ordering::SeqCst);
    }
    match cfg {
        Some(c) => {
            SEED.store(c.seed, Ordering::SeqCst);
            RATE_BITS.store(c.rate.to_bits(), Ordering::SeqCst);
            KIND.store(kind_to_u8(c.kind), Ordering::SeqCst);
            STATE.store(2, Ordering::SeqCst);
        }
        None => STATE.store(1, Ordering::SeqCst),
    }
}

/// Arms (`Some`) or disarms (`None`) transport faults programmatically,
/// overriding `G80_SERVE_NET_FAULTS`, and resets the per-site schedules.
/// Process-wide; tests serialize around it.
pub fn set_net_faults(cfg: Option<NetFaultConfig>) {
    store(cfg);
}

/// The active configuration, if armed.
pub fn net_fault_config() -> Option<NetFaultConfig> {
    if !armed() {
        return None;
    }
    Some(NetFaultConfig {
        seed: SEED.load(Ordering::SeqCst),
        rate: f64::from_bits(RATE_BITS.load(Ordering::SeqCst)),
        kind: kind_from_u8(KIND.load(Ordering::SeqCst)),
    })
}

/// Faults raised at `site` since the schedule was last (re)armed.
pub fn raised(site: NetSite) -> u64 {
    RAISED[site as usize].load(Ordering::Relaxed)
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decides whether the `index`-th frame operation at `site` faults, and
/// how. Pure in (seed, site, index); every sub-parameter (mid vs pre
/// disconnect, corrupted byte/bit, stall length) comes from further hash
/// bits of the same draw.
pub fn decide(site: NetSite) -> Option<NetFault> {
    if !armed() {
        return None;
    }
    let index = CALLS[site as usize].fetch_add(1, Ordering::Relaxed);
    let seed = SEED.load(Ordering::Relaxed);
    let h = splitmix64(seed ^ splitmix64(((site as u64) << 56) ^ index));
    let rate = f64::from_bits(RATE_BITS.load(Ordering::Relaxed));
    if ((h >> 11) as f64) / ((1u64 << 53) as f64) >= rate {
        return None;
    }
    RAISED[site as usize].fetch_add(1, Ordering::Relaxed);
    let sub = splitmix64(h);
    let kind = match kind_from_u8(KIND.load(Ordering::Relaxed)) {
        NetFaultKind::All => [
            NetFaultKind::Disconnect,
            NetFaultKind::Truncate,
            NetFaultKind::Corrupt,
            NetFaultKind::Split,
            NetFaultKind::Stall,
        ][(sub % 5) as usize],
        k => k,
    };
    Some(match kind {
        NetFaultKind::Disconnect => {
            if sub & (1 << 8) == 0 {
                NetFault::DisconnectPre
            } else {
                NetFault::DisconnectMid
            }
        }
        NetFaultKind::Truncate => NetFault::Truncate,
        NetFaultKind::Corrupt => NetFault::Corrupt {
            byte: sub >> 16,
            bit: ((sub >> 9) & 7) as u8,
        },
        NetFaultKind::Split => NetFault::Split,
        NetFaultKind::Stall => NetFault::Stall {
            ms: 20 + (sub >> 16) % 131,
        },
        NetFaultKind::All => unreachable!(),
    })
}

/// Serializes unit tests (here and in [`crate::framed`]) that arm the
/// process-global schedule; the test binary runs tests concurrently.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_seed_rate_and_kind() {
        let c = parse("7:0.25").unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.rate, 0.25);
        assert_eq!(c.kind, NetFaultKind::All);
        assert_eq!(parse("1:0.5:corrupt").unwrap().kind, NetFaultKind::Corrupt);
        assert_eq!(parse("1:0.5:stall").unwrap().kind, NetFaultKind::Stall);
        assert_eq!(parse("1:0.5:all").unwrap().kind, NetFaultKind::All);
        assert!(parse("1:1.5").is_none(), "rate out of range");
        assert!(parse("1:0.5:gamma").is_none(), "unknown kind");
        assert!(parse("1:0.5:stall:x").is_none(), "trailing field");
        assert!(parse("nope").is_none());
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let _guard = test_guard();
        // Pure-schedule test: replays of the same seed agree call-for-call,
        // and sub-parameters stay within their documented ranges.
        set_net_faults(Some(NetFaultConfig::new(42, 0.3)));
        let first: Vec<Option<NetFault>> = (0..256).map(|_| decide(NetSite::ClientWrite)).collect();
        set_net_faults(Some(NetFaultConfig::new(42, 0.3)));
        let second: Vec<Option<NetFault>> =
            (0..256).map(|_| decide(NetSite::ClientWrite)).collect();
        assert_eq!(first, second, "same seed must replay bit-identically");
        let fired = first.iter().flatten().count();
        assert!(fired > 0, "rate 0.3 over 256 draws must fire");
        assert!(fired < 256, "rate 0.3 must not fire every draw");
        for f in first.iter().flatten() {
            if let NetFault::Stall { ms } = f {
                assert!((20..=150).contains(ms), "stall {ms} ms out of bounds");
            }
        }
        // Sites schedule independently: a different site draws a
        // different sequence from the same seed.
        set_net_faults(Some(NetFaultConfig::new(42, 0.3)));
        let other: Vec<Option<NetFault>> = (0..256).map(|_| decide(NetSite::ServerRead)).collect();
        assert_ne!(first, other, "sites must not share a schedule");
        set_net_faults(None);
    }

    #[test]
    fn only_kind_restricts_draws() {
        let _guard = test_guard();
        set_net_faults(Some(NetFaultConfig::only(9, 1.0, NetFaultKind::Corrupt)));
        for _ in 0..32 {
            match decide(NetSite::ServerWrite) {
                Some(NetFault::Corrupt { .. }) => {}
                other => panic!("expected Corrupt at rate 1.0, got {other:?}"),
            }
        }
        set_net_faults(None);
        assert_eq!(decide(NetSite::ServerWrite), None, "disarmed");
    }
}
