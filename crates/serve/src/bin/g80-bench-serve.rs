//! `g80-bench-serve`: load generator for a running `g80-serve` daemon.
//!
//! Spawns N tenant connections, each firing M probe launches
//! back-to-back, and reports aggregate throughput, latency percentiles,
//! and how many responses were served from a cache tier (the `Served`
//! provenance in each report). Used by the CI smoke job to prove the
//! cross-process disk tier works: a second daemon on the same
//! `G80_SIM_DISK_CACHE` directory must answer `--expect-warm` traffic
//! from cache.
//!
//! ```text
//! g80-bench-serve --addr tcp:127.0.0.1:7808 --tenants 8 --requests 32 \
//!                 [--p99-ms 500] [--expect-warm] [--shutdown]
//! ```
//!
//! Exit codes: 0 ok, 1 transport failure, 2 assertion breached
//! (`--p99-ms` ceiling or `--expect-warm` with zero cache hits).

use g80_isa::builder::KernelBuilder;
use g80_isa::{Kernel, Value};
use g80_serve::{Addr, Client, WireLaunch};
use g80_sim::{net_counters, LaunchDims, NetCounters, RowCounters};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    addr: Addr,
    tenants: usize,
    requests: usize,
    p99_ms: Option<f64>,
    expect_warm: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: Addr::Tcp("127.0.0.1:7808".into()),
        tenants: 8,
        requests: 32,
        p99_ms: None,
        expect_warm: false,
        shutdown: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<&str, String> {
            *i += 1;
            argv.get(*i)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--addr" => args.addr = Addr::parse(take(&mut i)?).map_err(|e| e.to_string())?,
            "--tenants" => args.tenants = take(&mut i)?.parse().map_err(|_| "bad --tenants")?,
            "--requests" => args.requests = take(&mut i)?.parse().map_err(|_| "bad --requests")?,
            "--p99-ms" => args.p99_ms = Some(take(&mut i)?.parse().map_err(|_| "bad --p99-ms")?),
            "--expect-warm" => args.expect_warm = true,
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if args.tenants == 0 || args.requests == 0 {
        return Err("--tenants and --requests must be positive".into());
    }
    Ok(args)
}

/// The probe: one small streaming kernel per tenant (distinct code per
/// tenant via the scale constant, so tenants don't trivially collapse
/// into one memo entry — cache hits come from each tenant's own repeats
/// or the disk tier).
fn probe_kernel(tenant: usize) -> Kernel {
    let mut b = KernelBuilder::new(&format!("serve_probe_{tenant}"));
    let p = b.param();
    let tid = b.tid_x();
    let byte = b.shl(tid, 2u32);
    let addr = b.iadd(byte, p);
    let v = b.ld_global(addr, 0);
    let w = b.fmul(v, 1.0 + tenant as f32);
    b.st_global(addr, 0, w);
    b.build()
}

/// Field-wise max — reports snapshot daemon process-wide totals, so the
/// max across reports is the latest daemon state any tenant observed.
fn net_max(a: &NetCounters, b: &NetCounters) -> NetCounters {
    NetCounters {
        disconnects: a.disconnects.max(b.disconnects),
        frames_retried: a.frames_retried.max(b.frames_retried),
        bytes_resent: a.bytes_resent.max(b.bytes_resent),
        reconnects: a.reconnects.max(b.reconnects),
    }
}

fn probe_spec(tenant: usize) -> WireLaunch {
    let dims = LaunchDims {
        grid: (8, 1),
        block: (128, 1, 1),
    };
    let mut spec = WireLaunch::new(
        probe_kernel(tenant),
        dims,
        vec![Value::from_u32(0)],
        8 * 128 * 4,
    );
    spec.writes = (0..8 * 128).map(|i| (i * 4, i)).collect();
    spec
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("g80-bench-serve: {e}");
            return ExitCode::from(1);
        }
    };

    let started = Instant::now();
    let net_before = net_counters();
    let workers: Vec<_> = (0..args.tenants)
        .map(|t| {
            let addr = args.addr.clone();
            let requests = args.requests;
            std::thread::spawn(
                move || -> std::io::Result<(Vec<Duration>, u64, RowCounters, NetCounters)> {
                    let mut client = Client::connect_retry(
                        &addr,
                        &format!("bench-{t}"),
                        Duration::from_secs(10),
                    )?;
                    let spec = probe_spec(t);
                    let mut latencies = Vec::with_capacity(requests);
                    let mut cache_hits = 0u64;
                    let mut rows = RowCounters::default();
                    let mut daemon_net = NetCounters::default();
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        let result = client.launch(&spec)?;
                        latencies.push(t0.elapsed());
                        match result {
                            Ok((report, _)) => {
                                if report.served.from_cache() {
                                    cache_hits += 1;
                                }
                                // Reports snapshot the daemon's process-wide
                                // totals; the field-wise max is the latest
                                // state this tenant observed.
                                rows.uniform = rows.uniform.max(report.rows.uniform);
                                rows.affine = rows.affine.max(report.rows.affine);
                                rows.full = rows.full.max(report.rows.full);
                                daemon_net = net_max(&daemon_net, &report.net);
                            }
                            Err(e) => {
                                return Err(std::io::Error::other(format!(
                                    "typed error from daemon: {e}"
                                )))
                            }
                        }
                    }
                    Ok((latencies, cache_hits, rows, daemon_net))
                },
            )
        })
        .collect();

    let mut latencies = Vec::new();
    let mut cache_hits = 0u64;
    let mut rows = RowCounters::default();
    let mut daemon_net = NetCounters::default();
    for w in workers {
        match w.join() {
            Ok(Ok((l, h, r, n))) => {
                latencies.extend(l);
                cache_hits += h;
                rows.uniform = rows.uniform.max(r.uniform);
                rows.affine = rows.affine.max(r.affine);
                rows.full = rows.full.max(r.full);
                daemon_net = net_max(&daemon_net, &n);
            }
            Ok(Err(e)) => {
                eprintln!("g80-bench-serve: tenant failed: {e}");
                return ExitCode::from(1);
            }
            Err(_) => {
                eprintln!("g80-bench-serve: tenant thread panicked");
                return ExitCode::from(1);
            }
        }
    }
    let wall = started.elapsed();

    latencies.sort_unstable();
    let total = latencies.len();
    let pct = |p: f64| latencies[((total - 1) as f64 * p) as usize];
    let req_per_s = total as f64 / wall.as_secs_f64();
    println!(
        "g80-bench-serve: {} tenants x {} requests in {:.3}s  ({:.1} req/s)",
        args.tenants,
        args.requests,
        wall.as_secs_f64(),
        req_per_s
    );
    println!(
        "g80-bench-serve: latency p50 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
        pct(0.50).as_secs_f64() * 1e3,
        pct(0.99).as_secs_f64() * 1e3,
        latencies[total - 1].as_secs_f64() * 1e3
    );
    println!("g80-bench-serve: {cache_hits}/{total} responses served from a cache tier");
    println!(
        "g80-bench-serve: daemon row shapes: {} uniform, {} affine, {} full",
        rows.uniform, rows.affine, rows.full
    );
    // Two views of transport chaos: what THIS process's clients survived
    // (recovery actions taken here) and the daemon's process-wide totals
    // as snapshotted in the last report each tenant saw.
    let client_net = net_counters().since(&net_before);
    println!(
        "g80-bench-serve: transport faults survived: client {} disconnects, {} frame retries, \
         {} reconnects, {} bytes resent; daemon totals {} disconnects, {} reconnects",
        client_net.disconnects,
        client_net.frames_retried,
        client_net.reconnects,
        client_net.bytes_resent,
        daemon_net.disconnects,
        daemon_net.reconnects
    );

    let mut failed = false;
    if let Some(ceiling) = args.p99_ms {
        let p99 = pct(0.99).as_secs_f64() * 1e3;
        if p99 > ceiling {
            eprintln!("g80-bench-serve: p99 {p99:.3}ms exceeds the {ceiling}ms ceiling");
            failed = true;
        }
    }
    if args.expect_warm && cache_hits == 0 {
        eprintln!("g80-bench-serve: --expect-warm but no response came from a cache tier");
        failed = true;
    }

    if args.shutdown {
        let r = Client::connect_retry(&args.addr, "bench-admin", Duration::from_secs(10))
            .and_then(|mut c| c.shutdown());
        if let Err(e) = r {
            eprintln!("g80-bench-serve: shutdown failed: {e}");
            return ExitCode::from(1);
        }
        println!("g80-bench-serve: daemon acknowledged shutdown");
    }

    if failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
