//! The `g80-serve` daemon binary.
//!
//! Reads its configuration from the environment (`G80_SERVE_ADDR`,
//! `G80_SERVE_TENANT_BLOCKS`, `G80_SERVE_TENANT_QUEUE`,
//! `G80_SERVE_MAX_BLOCKS`, `G80_SERVE_READ_TIMEOUT_MS`,
//! `G80_SERVE_IDLE_TIMEOUT_MS`, `G80_SERVE_MAX_CONNS`,
//! `G80_SERVE_NET_FAULTS`, plus every `G80_SIM_*` toggle the simulator
//! honors — engine, memo size, disk cache, fault injection), binds, and
//! serves until a client sends a Shutdown request. Exits 0 after a clean
//! drain.

use g80_serve::server::{serve, ServeConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = match ServeConfig::from_env() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("g80-serve: bad configuration: {e}");
            return ExitCode::from(2);
        }
    };
    let server = match serve(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("g80-serve: failed to bind: {e}");
            return ExitCode::from(2);
        }
    };
    // CI scripts and the load generator parse this line for the resolved
    // address (ephemeral TCP ports).
    println!("g80-serve listening on {}", server.local_addr());
    if let Some(cfg) = g80_serve::net_fault_config() {
        println!(
            "g80-serve network chaos armed: seed {:#x}, rate {}, kind {:?}",
            cfg.seed, cfg.rate, cfg.kind
        );
    }
    match server.join() {
        Ok(()) => {
            println!("g80-serve drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("g80-serve: accept loop failed: {e}");
            ExitCode::from(1)
        }
    }
}
