//! Per-tenant admission control: bounded in-flight blocks per tenant plus
//! a round-robin fairness queue across tenants.
//!
//! The unit of accounting is the *thread block*, the same unit the
//! simulator's block scheduler distributes over the worker pool — one
//! matmul-4096 launch is ~65k blocks of pool pressure, a probe launch a
//! handful. Three verdicts:
//!
//! * a launch larger than `max_blocks_per_launch` can never run →
//!   [`Verdict::Rejected`] (typed, immediate);
//! * a launch that would exceed the tenant's queue depth while waiting →
//!   [`Verdict::Throttled`] (typed, immediate — the client retries later);
//! * otherwise the request waits its turn: per-tenant FIFO, and when
//!   capacity frees the grant pass walks tenants round-robin, so a tenant
//!   with a deep backlog cannot lock out a tenant with a shallow one.
//!
//! Two capacity limits gate a grant: the tenant's own in-flight budget
//! (`max_inflight_blocks`) and a global budget (`max_total_blocks`)
//! bounding total pool pressure. A launch bigger than either budget (but
//! within `max_blocks_per_launch`) is still admissible — it waits until
//! the relevant scope is *idle* and then runs alone, so a legal heavyweight
//! launch cannot deadlock against a budget smaller than itself.
//!
//! Fairness toward probe fleets does not come from this queue alone: the
//! pool's caller-runs heuristic executes small launches entirely on the
//! connection thread, so a probe never queues behind a heavyweight's
//! blocks inside the pool. The admission queue governs the heavyweights.

use g80_sim::fault::{lock_recover, wait_recover};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Per-tenant quota limits.
#[derive(Copy, Clone, Debug)]
pub struct Quota {
    /// Hard cap on one launch's block count; above it the request is
    /// rejected outright.
    pub max_blocks_per_launch: u64,
    /// In-flight block budget per tenant.
    pub max_inflight_blocks: u64,
    /// Waiting requests allowed per tenant before throttling.
    pub max_queued: usize,
    /// Global in-flight block budget across all tenants.
    pub max_total_blocks: u64,
}

impl Default for Quota {
    fn default() -> Self {
        Quota {
            // A 4096x4096 matmul at 16x16 blocks is 65536 blocks: the
            // defaults admit the paper's largest workload as one launch.
            max_blocks_per_launch: 1 << 16,
            max_inflight_blocks: 1 << 16,
            max_queued: 64,
            max_total_blocks: 1 << 18,
        }
    }
}

/// Outcome of an admission request.
#[derive(Debug)]
pub enum Verdict {
    /// Admitted; drop the permit when the launch finishes.
    Admitted(Permit),
    /// Over `max_blocks_per_launch`; the request can never run.
    Rejected(String),
    /// The tenant's queue is full; retry later.
    Throttled(String),
}

#[derive(Default)]
struct TenantState {
    inflight_blocks: u64,
    /// Waiting request tickets, FIFO.
    queue: VecDeque<u64>,
    /// Tickets granted but not yet observed by their waiter.
    granted: Vec<u64>,
}

struct State {
    tenants: HashMap<String, TenantState>,
    /// Tenant names in first-seen order; the round-robin grant cursor
    /// walks this ring.
    ring: Vec<String>,
    rr_cursor: usize,
    total_inflight_blocks: u64,
    next_ticket: u64,
    /// Block count of each waiting ticket (the grant pass needs it).
    ticket_blocks: HashMap<u64, u64>,
}

/// The admission controller. Shared by every connection handler; cheap to
/// clone an `Arc` of.
pub struct Admission {
    quota: Quota,
    state: Mutex<State>,
    cv: Condvar,
}

/// An admitted launch's reservation; releases its blocks (and wakes
/// waiters) on drop.
pub struct Permit {
    admission: Arc<Admission>,
    tenant: String,
    blocks: u64,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("tenant", &self.tenant)
            .field("blocks", &self.blocks)
            .finish()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = lock_recover(&self.admission.state);
        let t = st
            .tenants
            .get_mut(&self.tenant)
            .expect("permit for unknown tenant");
        t.inflight_blocks = t.inflight_blocks.saturating_sub(self.blocks);
        st.total_inflight_blocks = st.total_inflight_blocks.saturating_sub(self.blocks);
        self.admission.grant_pass(&mut st);
        drop(st);
        self.admission.cv.notify_all();
    }
}

impl Admission {
    pub fn new(quota: Quota) -> Arc<Self> {
        Arc::new(Admission {
            quota,
            state: Mutex::new(State {
                tenants: HashMap::new(),
                ring: Vec::new(),
                rr_cursor: 0,
                total_inflight_blocks: 0,
                next_ticket: 0,
                ticket_blocks: HashMap::new(),
            }),
            cv: Condvar::new(),
        })
    }

    pub fn quota(&self) -> Quota {
        self.quota
    }

    /// Requests admission of `blocks` blocks for `tenant`, blocking until
    /// granted (or returning a typed verdict immediately).
    pub fn admit(self: &Arc<Self>, tenant: &str, blocks: u64) -> Verdict {
        if blocks > self.quota.max_blocks_per_launch {
            return Verdict::Rejected(format!(
                "launch of {blocks} blocks exceeds the per-launch quota of {} blocks",
                self.quota.max_blocks_per_launch
            ));
        }
        let mut st = lock_recover(&self.state);
        if !st.tenants.contains_key(tenant) {
            st.tenants
                .insert(tenant.to_string(), TenantState::default());
            st.ring.push(tenant.to_string());
        }
        let t = st.tenants.get_mut(tenant).unwrap();
        if t.queue.len() >= self.quota.max_queued {
            return Verdict::Throttled(format!(
                "tenant {tenant} already has {} queued requests (limit {})",
                t.queue.len(),
                self.quota.max_queued
            ));
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.tenants.get_mut(tenant).unwrap().queue.push_back(ticket);
        st.ticket_blocks.insert(ticket, blocks);
        self.grant_pass(&mut st);
        while !st
            .tenants
            .get(tenant)
            .is_some_and(|t| t.granted.contains(&ticket))
        {
            st = wait_recover(&self.cv, st);
        }
        let t = st.tenants.get_mut(tenant).unwrap();
        t.granted.retain(|&g| g != ticket);
        Verdict::Admitted(Permit {
            admission: Arc::clone(self),
            tenant: tenant.to_string(),
            blocks,
        })
    }

    /// Grants as many queued tickets as capacity allows, walking tenants
    /// round-robin from the cursor. Called with the state lock held.
    fn grant_pass(&self, st: &mut State) {
        let n = st.ring.len();
        if n == 0 {
            return;
        }
        let mut granted_any = true;
        while granted_any {
            granted_any = false;
            for step in 0..n {
                let idx = (st.rr_cursor + step) % n;
                let name = st.ring[idx].clone();
                let Some((ticket, blocks, inflight)) = st.tenants.get(&name).and_then(|t| {
                    let &ticket = t.queue.front()?;
                    Some((ticket, st.ticket_blocks[&ticket], t.inflight_blocks))
                }) else {
                    continue;
                };
                // A budget smaller than the launch admits it only when the
                // scope is idle — oversize-but-legal launches run alone
                // rather than deadlocking.
                let tenant_ok =
                    inflight + blocks <= self.quota.max_inflight_blocks || inflight == 0;
                let global_ok = st.total_inflight_blocks + blocks <= self.quota.max_total_blocks
                    || st.total_inflight_blocks == 0;
                if !(tenant_ok && global_ok) {
                    continue;
                }
                let t = st.tenants.get_mut(&name).unwrap();
                t.queue.pop_front();
                t.granted.push(ticket);
                t.inflight_blocks += blocks;
                st.total_inflight_blocks += blocks;
                st.ticket_blocks.remove(&ticket);
                st.rr_cursor = (idx + 1) % n;
                granted_any = true;
            }
        }
        self.cv.notify_all();
    }

    /// In-flight blocks currently charged to `tenant` (tests/metrics).
    pub fn inflight_blocks(&self, tenant: &str) -> u64 {
        let st = lock_recover(&self.state);
        st.tenants
            .get(tenant)
            .map(|t| t.inflight_blocks)
            .unwrap_or(0)
    }

    /// Requests currently waiting in `tenant`'s queue (tests/metrics).
    pub fn queued_requests(&self, tenant: &str) -> usize {
        let st = lock_recover(&self.state);
        st.tenants.get(tenant).map(|t| t.queue.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    fn quota(per_launch: u64, inflight: u64, queued: usize, total: u64) -> Quota {
        Quota {
            max_blocks_per_launch: per_launch,
            max_inflight_blocks: inflight,
            max_queued: queued,
            max_total_blocks: total,
        }
    }

    #[test]
    fn oversize_launch_is_rejected() {
        let a = Admission::new(quota(10, 100, 4, 100));
        assert!(matches!(a.admit("t", 11), Verdict::Rejected(_)));
        assert!(matches!(a.admit("t", 10), Verdict::Admitted(_)));
    }

    #[test]
    fn queue_overflow_is_throttled() {
        let a = Admission::new(quota(100, 4, 1, 100));
        let _held = match a.admit("t", 4) {
            Verdict::Admitted(p) => p,
            v => panic!("expected admit, got {v:?}"),
        };
        // Tenant budget is full; the next request queues (depth 1)…
        let a2 = Arc::clone(&a);
        let waiter = thread::spawn(move || match a2.admit("t", 4) {
            Verdict::Admitted(p) => drop(p),
            v => panic!("queued request should eventually admit, got {v:?}"),
        });
        // …wait until it is actually queued, then the queue is at its
        // depth limit and a further request throttles.
        for _ in 0..1000 {
            if a.queued_requests("t") == 1 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(a.queued_requests("t"), 1, "waiter never queued");
        assert!(matches!(a.admit("t", 4), Verdict::Throttled(_)));
        drop(_held);
        waiter.join().unwrap();
    }

    #[test]
    fn release_unblocks_waiter() {
        let a = Admission::new(quota(100, 8, 8, 100));
        let p = match a.admit("t", 8) {
            Verdict::Admitted(p) => p,
            v => panic!("{v:?}"),
        };
        let a2 = Arc::clone(&a);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let h = thread::spawn(move || {
            match a2.admit("t", 8) {
                Verdict::Admitted(p) => drop(p),
                v => panic!("{v:?}"),
            }
            done2.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "waiter admitted too early");
        drop(p);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(a.inflight_blocks("t"), 0);
    }

    #[test]
    fn oversize_budget_launch_runs_alone_instead_of_deadlocking() {
        // Global budget 10, launch of 8 + launch of 8: second waits, runs
        // after first releases even though 8+8 > 10.
        let a = Admission::new(quota(64, 64, 8, 10));
        let p = match a.admit("t1", 8) {
            Verdict::Admitted(p) => p,
            v => panic!("{v:?}"),
        };
        let a2 = Arc::clone(&a);
        let h = thread::spawn(move || match a2.admit("t2", 8) {
            Verdict::Admitted(p) => drop(p),
            v => panic!("{v:?}"),
        });
        thread::sleep(Duration::from_millis(10));
        drop(p);
        h.join().unwrap();
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        // Tenant A floods the queue; tenant B's single request must not
        // wait for all of A's backlog. Capacity admits one launch at a
        // time, so grants serialize and the order is observable.
        let a = Admission::new(quota(4, 4, 16, 4));
        let first = match a.admit("a", 4) {
            Verdict::Admitted(p) => p,
            v => panic!("{v:?}"),
        };
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..3 {
            let a2 = Arc::clone(&a);
            let order2 = Arc::clone(&order);
            handles.push(thread::spawn(move || match a2.admit("a", 4) {
                Verdict::Admitted(p) => {
                    order2.lock().unwrap().push(format!("a{i}"));
                    thread::sleep(Duration::from_millis(5));
                    drop(p);
                }
                v => panic!("{v:?}"),
            }));
            // Stagger so tenant a's queue order is deterministic.
            thread::sleep(Duration::from_millis(10));
        }
        let a2 = Arc::clone(&a);
        let order2 = Arc::clone(&order);
        handles.push(thread::spawn(move || match a2.admit("b", 4) {
            Verdict::Admitted(p) => {
                order2.lock().unwrap().push("b".to_string());
                drop(p);
            }
            v => panic!("{v:?}"),
        }));
        thread::sleep(Duration::from_millis(10));
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        let b_pos = order.iter().position(|s| s == "b").expect("b admitted");
        assert!(
            b_pos < order.len() - 1,
            "tenant b should not be last behind all of a's backlog: {order:?}"
        );
    }
}
