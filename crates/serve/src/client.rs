//! Blocking client for the `g80-serve` daemon.
//!
//! A [`Client`] wraps one connection and one tenant identity. The typed
//! request methods mirror the protocol: [`Client::launch`] for a single
//! spec (returns the report plus the sparse memory delta),
//! [`Client::batch`] / [`Client::sweep`] for streamed multi-spec requests,
//! and [`Client::shutdown`] to drain the daemon.
//!
//! Injected-fault errors (the chaos CI runs the daemon under
//! `G80_SIM_FAULTS`) are retried transparently by default — the
//! serve-layer analogue of the in-process absorb-and-retry policy, which
//! is what keeps results bit-identical under chaos. Disable with
//! [`Client::set_retry_injected`] to observe raw typed faults.

use crate::net::{connect, Addr, Stream};
use crate::protocol::{
    read_frame, write_frame, Request, Response, WireError, WireLaunch, PROTOCOL_VERSION,
};
use g80_sim::{LaunchReport, MemoCounters};
use std::io;
use std::time::{Duration, Instant};

/// Bound on transparent retries of injected faults; at the chaos CI's
/// fault rates the expected retry count is single digits, so hitting this
/// means something real is wrong.
const MAX_INJECTED_RETRIES: u32 = 64;

/// One connection to a daemon, speaking for one tenant.
pub struct Client {
    stream: Stream,
    retry_injected: bool,
}

impl Client {
    /// Connects and performs the Hello handshake.
    pub fn connect(addr: &Addr, tenant: &str) -> io::Result<Client> {
        let mut stream = connect(addr)?;
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                tenant: tenant.to_string(),
            }
            .encode(),
        )?;
        match read_response(&mut stream)? {
            Response::HelloOk { .. } => Ok(Client {
                stream,
                retry_injected: true,
            }),
            Response::Error(e) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("handshake rejected: {e}"),
            )),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected handshake response",
            )),
        }
    }

    /// [`Client::connect`], retried until `timeout` — covers the race
    /// between starting a daemon process and its socket existing (CI
    /// scripts, benches).
    pub fn connect_retry(addr: &Addr, tenant: &str, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr, tenant) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// When set (the default), requests failing with an injected-fault
    /// error are resent transparently.
    pub fn set_retry_injected(&mut self, on: bool) {
        self.retry_injected = on;
    }

    /// Sends one request frame and returns the raw response — chaos tests
    /// use this to observe typed faults without retry.
    pub fn request_raw(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        read_response(&mut self.stream)
    }

    /// Runs one launch. The outer `Err` is transport failure; the inner
    /// `Err` is a typed daemon-side error. On success: the report plus the
    /// sparse `(byte_addr, word)` delta of device memory.
    #[allow(clippy::type_complexity)]
    pub fn launch(
        &mut self,
        spec: &WireLaunch,
    ) -> io::Result<Result<(LaunchReport, Vec<(u32, u32)>), WireError>> {
        let req = Request::Launch(spec.clone());
        let mut tries = 0;
        loop {
            let resp = self.request_raw(&req)?;
            let result = match resp {
                Response::Launch { result } => result,
                Response::Error(e) => Err(e),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected response to Launch",
                    ))
                }
            };
            match result {
                Err(e)
                    if self.retry_injected && e.is_injected() && tries < MAX_INJECTED_RETRIES =>
                {
                    tries += 1;
                }
                other => return Ok(other),
            }
        }
    }

    /// Runs a batch: every spec executed in order, results streamed back.
    /// Returns per-item results plus the daemon's cache-counter delta for
    /// the whole request.
    #[allow(clippy::type_complexity)]
    pub fn batch(
        &mut self,
        specs: &[WireLaunch],
    ) -> io::Result<Result<(Vec<Result<LaunchReport, WireError>>, MemoCounters), WireError>> {
        self.multi(Request::Batch(specs.to_vec()), specs.len())
    }

    /// Runs a sweep (same execution as a batch in protocol v1; the
    /// distinct tag lets sweep-aware scheduling evolve without a version
    /// bump). Pair with `SweepResult::from_parts` to reassemble a tuner
    /// result from the streamed rows.
    #[allow(clippy::type_complexity)]
    pub fn sweep(
        &mut self,
        specs: &[WireLaunch],
    ) -> io::Result<Result<(Vec<Result<LaunchReport, WireError>>, MemoCounters), WireError>> {
        self.multi(Request::Sweep(specs.to_vec()), specs.len())
    }

    #[allow(clippy::type_complexity)]
    fn multi(
        &mut self,
        req: Request,
        n: usize,
    ) -> io::Result<Result<(Vec<Result<LaunchReport, WireError>>, MemoCounters), WireError>> {
        let mut tries = 0;
        'retry: loop {
            write_frame(&mut self.stream, &req.encode())?;
            let mut items: Vec<Result<LaunchReport, WireError>> =
                (0..n).map(|_| Err(WireError::Shutdown)).collect();
            loop {
                match read_response(&mut self.stream)? {
                    Response::Item { index, result } => {
                        let slot = items.get_mut(index as usize).ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("item index {index} out of range"),
                            )
                        })?;
                        *slot = result;
                    }
                    Response::Done { counters } => {
                        let injected = items
                            .iter()
                            .any(|r| r.as_ref().is_err_and(WireError::is_injected));
                        if injected && self.retry_injected && tries < MAX_INJECTED_RETRIES {
                            tries += 1;
                            continue 'retry;
                        }
                        return Ok(Ok((items, counters)));
                    }
                    Response::Error(e) => {
                        // Request-level error: no Item/Done stream follows.
                        if self.retry_injected && e.is_injected() && tries < MAX_INJECTED_RETRIES {
                            tries += 1;
                            continue 'retry;
                        }
                        return Ok(Err(e));
                    }
                    _ => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected response in batch stream",
                        ))
                    }
                }
            }
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let mut tries = 0;
        loop {
            match self.request_raw(&Request::Shutdown)? {
                Response::ShutdownOk => return Ok(()),
                Response::Error(e)
                    if self.retry_injected && e.is_injected() && tries < MAX_INJECTED_RETRIES =>
                {
                    tries += 1;
                }
                Response::Error(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shutdown rejected: {e}"),
                    ))
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected response to Shutdown",
                    ))
                }
            }
        }
    }
}

fn read_response(stream: &mut Stream) -> io::Result<Response> {
    let Some(frame) = read_frame(stream)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection",
        ));
    };
    Response::decode(&frame)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable response frame"))
}
