//! Blocking client for the `g80-serve` daemon.
//!
//! A [`Client`] wraps one connection and one tenant identity. The typed
//! request methods mirror the protocol: [`Client::launch`] for a single
//! spec (returns the report plus the sparse memory delta),
//! [`Client::batch`] / [`Client::sweep`] for streamed multi-spec requests,
//! and [`Client::shutdown`] to drain the daemon.
//!
//! Two recovery layers sit under the typed methods:
//!
//! - **Injected-fault retries** (the chaos CI runs the daemon under
//!   `G80_SIM_FAULTS`): typed fault errors are resent transparently by
//!   default — the serve-layer analogue of the in-process
//!   absorb-and-retry policy, which is what keeps results bit-identical
//!   under chaos. Disable with [`Client::set_retry_injected`].
//! - **Transport recovery** (the network chaos CI arms
//!   `G80_SERVE_NET_FAULTS`): a response frame failing its CRC is
//!   re-requested in place (the connection stays synchronized — the bad
//!   frame was fully consumed); a dead connection is re-established with
//!   jittered exponential backoff and the in-flight request replayed.
//!   Replay is idempotent because launches are content-hash keyed — a
//!   re-executed spec hits the memo and returns the same bits. Mid-stream
//!   failures of a batch/sweep always reconnect before replaying: items
//!   from the broken stream could still be in flight, and a fresh
//!   connection is the only way to guarantee the two streams cannot mix.
//!
//! Every recovery action is tallied through the process-wide
//! [`g80_sim::net_counters`]; streamed requests return the delta so
//! `SweepResult`/bench summaries can report what the transport survived.

use crate::framed::{is_crc_mismatch, FramedStream, Side};
use crate::net::{connect, Addr};
use crate::netfault::splitmix64;
use crate::protocol::{Request, Response, WireError, WireLaunch, PROTOCOL_VERSION};
use g80_sim::{
    net_counters, note_net_disconnect, note_net_frame_retried, note_net_reconnect, LaunchReport,
    MemoCounters, NetCounters,
};
use std::io;
use std::time::{Duration, Instant};

/// Bound on transparent retries of injected faults; at the chaos CI's
/// fault rates the expected retry count is single digits, so hitting this
/// means something real is wrong.
const MAX_INJECTED_RETRIES: u32 = 64;

/// Bound on reconnect-and-replay cycles for one request. At the network
/// chaos CI's rates a request rarely needs more than one or two.
const MAX_TRANSPORT_RETRIES: u32 = 16;

/// Bound on in-place re-requests after a CRC failure (ours or theirs) on
/// a still-live connection.
const MAX_FRAME_RETRIES: u32 = 8;

/// First backoff step; doubles per attempt up to [`BACKOFF_CAP_MS`].
const BACKOFF_BASE_MS: u64 = 10;

/// Ceiling on one backoff sleep.
const BACKOFF_CAP_MS: u64 = 500;

/// True for error kinds that mean "the connection is gone" rather than
/// "the peer said something malformed" — the cue to reconnect and replay
/// instead of giving up.
fn is_transport(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WriteZero
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::TimedOut
    )
}

/// Jittered exponential backoff: sleeps uniformly in `[cap/2, cap]` where
/// `cap = min(base << attempt, BACKOFF_CAP_MS)`. Full determinism is not
/// the goal here (sleep lengths never affect results), de-synchronising a
/// fleet of retrying tenants is — hence per-client jitter streams seeded
/// from the tenant name.
fn backoff_ms(rng: &mut u64, attempt: u32) -> u64 {
    let cap = BACKOFF_BASE_MS
        .saturating_mul(1u64 << attempt.min(6))
        .min(BACKOFF_CAP_MS);
    *rng = splitmix64(*rng);
    cap / 2 + *rng % (cap / 2 + 1)
}

fn seed_from_tenant(tenant: &str) -> u64 {
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    for &b in tenant.as_bytes() {
        seed = splitmix64(seed ^ u64::from(b));
    }
    seed
}

/// One connection to a daemon, speaking for one tenant. Survives the
/// daemon's connection dying mid-request: see the module docs for the
/// recovery policy.
pub struct Client {
    framed: FramedStream,
    addr: Addr,
    tenant: String,
    retry_injected: bool,
    rng: u64,
}

impl Client {
    /// Connects and performs the Hello handshake.
    ///
    /// With the network fault layer disarmed this fails fast — a refused
    /// connection or rejected handshake surfaces immediately. With it
    /// armed (`G80_SERVE_NET_FAULTS`), an injected fault can kill the
    /// handshake itself (a disconnect before HelloOk lands); that is
    /// transport chaos like any other, so it is absorbed with bounded
    /// backed-off retries instead of failing the connect.
    pub fn connect(addr: &Addr, tenant: &str) -> io::Result<Client> {
        let mut rng = seed_from_tenant(tenant) ^ 0x00C0_11EC;
        let mut attempt = 0u32;
        loop {
            match Client::connect_once(addr, tenant) {
                Ok(client) => return Ok(client),
                Err(e)
                    if crate::netfault::armed()
                        && is_transport(&e)
                        && attempt < MAX_TRANSPORT_RETRIES =>
                {
                    note_net_disconnect();
                    attempt += 1;
                    let ms = backoff_ms(&mut rng, attempt);
                    std::thread::sleep(Duration::from_millis(ms));
                    note_net_reconnect(0);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn connect_once(addr: &Addr, tenant: &str) -> io::Result<Client> {
        let stream = connect(addr)?;
        let mut client = Client {
            framed: FramedStream::new(stream, Side::Client),
            addr: addr.clone(),
            tenant: tenant.to_string(),
            retry_injected: true,
            rng: seed_from_tenant(tenant),
        };
        client.handshake()?;
        Ok(client)
    }

    /// [`Client::connect`], retried with jittered exponential backoff
    /// until `timeout` — covers the race between starting a daemon
    /// process and its socket existing (CI scripts, benches), and rides
    /// out a shedding daemon (a typed `Overloaded` refusal is just
    /// another retryable connect failure here).
    pub fn connect_retry(addr: &Addr, tenant: &str, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        let mut rng = seed_from_tenant(tenant) ^ 0x5EED;
        let mut attempt = 0u32;
        loop {
            match Client::connect(addr, tenant) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => {
                    let ms = backoff_ms(&mut rng, attempt);
                    let left = deadline.saturating_duration_since(Instant::now());
                    std::thread::sleep(Duration::from_millis(ms).min(left));
                    attempt += 1;
                }
            }
        }
    }

    /// When set (the default), requests failing with an injected-fault
    /// error are resent transparently.
    pub fn set_retry_injected(&mut self, on: bool) {
        self.retry_injected = on;
    }

    /// Performs the Hello exchange on the current connection. A corrupted
    /// HelloOk (CRC failure) or a daemon-side `BadFrame` (our Hello got
    /// corrupted) is retried in place — the daemon re-acks Hello
    /// idempotently.
    fn handshake(&mut self) -> io::Result<()> {
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            tenant: self.tenant.clone(),
        }
        .encode();
        let mut tries = 0u32;
        loop {
            self.framed.write_frame(&hello)?;
            match self.read_response() {
                Ok(Response::HelloOk { .. }) => return Ok(()),
                Ok(Response::Error(WireError::BadFrame(_))) if tries < MAX_FRAME_RETRIES => {
                    note_net_frame_retried(hello.len() as u64);
                    tries += 1;
                }
                Ok(Response::Error(WireError::Overloaded { retry_after_ms })) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!("daemon overloaded; retry after {retry_after_ms} ms"),
                    ))
                }
                Ok(Response::Error(e)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("handshake rejected: {e}"),
                    ))
                }
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected handshake response",
                    ))
                }
                Err(e) if is_crc_mismatch(&e) && tries < MAX_FRAME_RETRIES => {
                    note_net_frame_retried(hello.len() as u64);
                    tries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Re-establishes the connection and handshake after a transport
    /// failure, backing off between attempts. The caller replays its
    /// in-flight request afterwards.
    fn reconnect(&mut self) -> io::Result<()> {
        let _ = self.framed.get_ref().shutdown();
        let mut attempt = 0u32;
        loop {
            let outcome = connect(&self.addr).and_then(|stream| {
                self.framed = FramedStream::new(stream, Side::Client);
                self.handshake()
            });
            match outcome {
                Ok(()) => return Ok(()),
                Err(e) if attempt >= MAX_TRANSPORT_RETRIES => return Err(e),
                Err(_) => {
                    attempt += 1;
                    let ms = backoff_ms(&mut self.rng, attempt);
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }
    }

    /// Sends one request frame and returns the raw response, with no
    /// recovery of any kind — chaos tests use this to observe typed
    /// faults, CRC failures, and dead connections directly.
    pub fn request_raw(&mut self, req: &Request) -> io::Result<Response> {
        self.framed.write_frame(&req.encode())?;
        self.read_response()
    }

    /// One request/response exchange with transport recovery: in-place
    /// re-request on CRC failure (either direction), reconnect-and-replay
    /// on a dead connection. Only sound for idempotent requests — which
    /// all v3 requests are.
    fn exchange(&mut self, req: &Request) -> io::Result<Response> {
        let frame = req.encode();
        let mut frame_tries = 0u32;
        let mut transport_tries = 0u32;
        loop {
            let sent = self.framed.write_frame(&frame);
            let resp = match sent {
                Ok(()) => self.read_response(),
                Err(e) => Err(e),
            };
            match resp {
                Ok(Response::Error(WireError::BadFrame(_))) if frame_tries < MAX_FRAME_RETRIES => {
                    // Our request frame arrived corrupted; the daemon
                    // consumed it and stayed synchronized. Resend.
                    note_net_frame_retried(frame.len() as u64);
                    frame_tries += 1;
                }
                Ok(resp) => return Ok(resp),
                Err(e) if is_crc_mismatch(&e) && frame_tries < MAX_FRAME_RETRIES => {
                    // The response frame arrived corrupted but was fully
                    // consumed; re-request on the same connection.
                    note_net_frame_retried(frame.len() as u64);
                    frame_tries += 1;
                }
                Err(e) if is_transport(&e) && transport_tries < MAX_TRANSPORT_RETRIES => {
                    note_net_disconnect();
                    transport_tries += 1;
                    let ms = backoff_ms(&mut self.rng, transport_tries);
                    std::thread::sleep(Duration::from_millis(ms));
                    self.reconnect()?;
                    note_net_reconnect(frame.len() as u64);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs one launch. The outer `Err` is unrecoverable transport
    /// failure; the inner `Err` is a typed daemon-side error. On success:
    /// the report plus the sparse `(byte_addr, word)` delta of device
    /// memory.
    #[allow(clippy::type_complexity)]
    pub fn launch(
        &mut self,
        spec: &WireLaunch,
    ) -> io::Result<Result<(LaunchReport, Vec<(u32, u32)>), WireError>> {
        let req = Request::Launch(spec.clone());
        let mut tries = 0;
        loop {
            let resp = self.exchange(&req)?;
            let result = match resp {
                Response::Launch { result } => result,
                Response::Error(e) => Err(e),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected response to Launch",
                    ))
                }
            };
            match result {
                Err(e)
                    if self.retry_injected && e.is_injected() && tries < MAX_INJECTED_RETRIES =>
                {
                    tries += 1;
                }
                other => return Ok(other),
            }
        }
    }

    /// Runs a batch: every spec executed in order, results streamed back.
    /// Returns per-item results, the daemon's cache-counter delta for the
    /// whole request, and the transport-fault tally the request survived.
    #[allow(clippy::type_complexity)]
    pub fn batch(
        &mut self,
        specs: &[WireLaunch],
    ) -> io::Result<
        Result<
            (
                Vec<Result<LaunchReport, WireError>>,
                MemoCounters,
                NetCounters,
            ),
            WireError,
        >,
    > {
        self.multi(Request::Batch(specs.to_vec()), specs.len())
    }

    /// Runs a sweep (same execution as a batch in protocol v1; the
    /// distinct tag lets sweep-aware scheduling evolve without a version
    /// bump). Pair with `SweepResult::from_parts_with_net` to reassemble
    /// a tuner result from the streamed rows plus the fault tally.
    #[allow(clippy::type_complexity)]
    pub fn sweep(
        &mut self,
        specs: &[WireLaunch],
    ) -> io::Result<
        Result<
            (
                Vec<Result<LaunchReport, WireError>>,
                MemoCounters,
                NetCounters,
            ),
            WireError,
        >,
    > {
        self.multi(Request::Sweep(specs.to_vec()), specs.len())
    }

    #[allow(clippy::type_complexity)]
    fn multi(
        &mut self,
        req: Request,
        n: usize,
    ) -> io::Result<
        Result<
            (
                Vec<Result<LaunchReport, WireError>>,
                MemoCounters,
                NetCounters,
            ),
            WireError,
        >,
    > {
        let frame = req.encode();
        let net_before = net_counters();
        let mut injected_tries = 0u32;
        let mut frame_tries = 0u32;
        let mut transport_tries = 0u32;
        'retry: loop {
            if let Err(e) = self.framed.write_frame(&frame) {
                if is_transport(&e) && transport_tries < MAX_TRANSPORT_RETRIES {
                    note_net_disconnect();
                    transport_tries += 1;
                    let ms = backoff_ms(&mut self.rng, transport_tries);
                    std::thread::sleep(Duration::from_millis(ms));
                    self.reconnect()?;
                    note_net_reconnect(frame.len() as u64);
                    continue 'retry;
                }
                return Err(e);
            }
            let mut items: Vec<Result<LaunchReport, WireError>> =
                (0..n).map(|_| Err(WireError::Shutdown)).collect();
            let mut streamed = false;
            loop {
                match self.read_response() {
                    Ok(Response::Item { index, result }) => {
                        streamed = true;
                        let slot = items.get_mut(index as usize).ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("item index {index} out of range"),
                            )
                        })?;
                        *slot = result;
                    }
                    Ok(Response::Done { counters, net }) => {
                        let injected = items
                            .iter()
                            .any(|r| r.as_ref().is_err_and(WireError::is_injected));
                        if injected && self.retry_injected && injected_tries < MAX_INJECTED_RETRIES
                        {
                            injected_tries += 1;
                            continue 'retry;
                        }
                        let local = net_counters().since(&net_before);
                        return Ok(Ok((items, counters, local.saturating_add(&net))));
                    }
                    Ok(Response::Error(WireError::BadFrame(_)))
                        if !streamed && frame_tries < MAX_FRAME_RETRIES =>
                    {
                        // Our request frame got corrupted before the
                        // stream started; the daemon never began
                        // executing, so an in-place resend is safe.
                        note_net_frame_retried(frame.len() as u64);
                        frame_tries += 1;
                        continue 'retry;
                    }
                    Ok(Response::Error(e)) => {
                        // Request-level error: no Item/Done stream follows.
                        if self.retry_injected
                            && e.is_injected()
                            && injected_tries < MAX_INJECTED_RETRIES
                        {
                            injected_tries += 1;
                            continue 'retry;
                        }
                        return Ok(Err(e));
                    }
                    Ok(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected response in batch stream",
                        ))
                    }
                    Err(e)
                        if (is_crc_mismatch(&e) || is_transport(&e))
                            && transport_tries < MAX_TRANSPORT_RETRIES =>
                    {
                        // Mid-stream failure. Even for a CRC mismatch
                        // (connection technically alive) the daemon may
                        // still be streaming items from the broken
                        // attempt; replaying on the same connection would
                        // interleave two streams. Reconnect, then replay.
                        if is_crc_mismatch(&e) {
                            note_net_frame_retried(frame.len() as u64);
                        } else {
                            note_net_disconnect();
                        }
                        transport_tries += 1;
                        let ms = backoff_ms(&mut self.rng, transport_tries);
                        std::thread::sleep(Duration::from_millis(ms));
                        self.reconnect()?;
                        note_net_reconnect(frame.len() as u64);
                        continue 'retry;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let mut tries = 0;
        loop {
            match self.exchange(&Request::Shutdown)? {
                Response::ShutdownOk => return Ok(()),
                Response::Error(e)
                    if self.retry_injected && e.is_injected() && tries < MAX_INJECTED_RETRIES =>
                {
                    tries += 1;
                }
                Response::Error(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shutdown rejected: {e}"),
                    ))
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected response to Shutdown",
                    ))
                }
            }
        }
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let Some(frame) = self.framed.read_frame()? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        };
        Response::decode(&frame)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable response frame"))
    }
}
