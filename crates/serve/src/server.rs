//! The daemon: accept loop, per-connection handlers, request execution.
//!
//! One process hosts the shared substrate — the work-stealing pool, the
//! launch memo LRU, and (when `G80_SIM_DISK_CACHE` is set) the persistent
//! disk tier — and every connection's launches run through it, so tenants
//! warm each other's caches. Each connection is one thread; each request
//! is admitted by the [`crate::admission`] controller before it touches
//! the pool.
//!
//! Failure behaviour (the hardened paths the chaos job exercises):
//!
//! * every per-request step runs under `catch_unwind`, so an injected
//!   panic (or a genuine handler bug) becomes a typed
//!   [`Response::Error`], never a dropped connection;
//! * the `serve.decode` fault site tampers with request decoding — a
//!   typed tamper yields [`WireError::Fault`] with the frame already
//!   consumed, so framing stays synchronized and the client can resend;
//! * a frame failing its CRC ([`crate::framed`]) yields a typed
//!   [`WireError::BadFrame`] on the still-synchronized connection — the
//!   client re-sends the idempotent request;
//! * a connection dribbling a frame past the mid-frame deadline
//!   (`G80_SERVE_READ_TIMEOUT_MS`) or idling past the idle timeout
//!   (`G80_SERVE_IDLE_TIMEOUT_MS`, off by default) is *reaped*: closed,
//!   counted, slot freed — a slowloris client cannot pin a thread;
//! * when [`ServeConfig::max_conns`] connections are open, further
//!   accepts are *shed* with a typed [`WireError::Overloaded`] carrying a
//!   retry hint, then closed — overload degrades into fast typed refusals
//!   instead of unbounded thread growth;
//! * only an oversized frame header (framing desync) or a transport error
//!   closes a connection.
//!
//! Shutdown is a protocol request, not a signal: [`Request::Shutdown`]
//! flips the drain flag, the accept loop stops, idle connections close at
//! their next poll tick, in-flight requests finish, and [`Server::join`]
//! returns once the last handler exits.

use crate::admission::{Admission, Quota, Verdict};
use crate::framed::{is_crc_mismatch, FramedStream, Side};
use crate::net::{Addr, Listener, Stream};
use crate::protocol::{Request, Response, WireError, WireLaunch, MAX_MEM_BYTES, PROTOCOL_VERSION};
use g80_sim::fault::{self, Site};
use g80_sim::{
    launch_reported, memo_counters, net_counters, note_net_disconnect, DeviceMemory, GpuConfig,
    LaunchReport, MemoCounters,
};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Daemon configuration. Construct directly in tests; [`from_env`] reads
/// the `G80_SERVE_*` toggles.
///
/// [`from_env`]: ServeConfig::from_env
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address.
    pub addr: Addr,
    /// Per-tenant admission quotas.
    pub quota: Quota,
    /// The simulated machine every request runs on.
    pub gpu: GpuConfig,
    /// Mid-frame stall killer: a connection that starts a frame but does
    /// not finish it within this window is reaped. `None` disables (a
    /// slowloris peer then holds its thread forever — only for tests).
    pub read_timeout: Option<Duration>,
    /// Idle-connection reaper: a connection with no frame in progress for
    /// this long is closed. `None` (the default) lets idle connections
    /// persist — clients legitimately hold connections between bursts.
    pub idle_timeout: Option<Duration>,
    /// Connection cap: accepts beyond this many open connections are shed
    /// with a typed [`WireError::Overloaded`] instead of spawning
    /// unbounded handler threads.
    pub max_conns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: Addr::Tcp("127.0.0.1:7808".into()),
            quota: Quota::default(),
            gpu: GpuConfig::geforce_8800_gtx(),
            read_timeout: Some(Duration::from_millis(5000)),
            idle_timeout: None,
            max_conns: 256,
        }
    }
}

impl ServeConfig {
    /// Reads `G80_SERVE_ADDR` (default `tcp:127.0.0.1:7808`),
    /// `G80_SERVE_TENANT_BLOCKS` (per-tenant in-flight block budget, which
    /// is also the per-launch cap), `G80_SERVE_TENANT_QUEUE` (waiting
    /// requests per tenant), `G80_SERVE_MAX_BLOCKS` (global in-flight
    /// budget), `G80_SERVE_READ_TIMEOUT_MS` (mid-frame stall killer,
    /// default 5000, 0 disables), `G80_SERVE_IDLE_TIMEOUT_MS` (idle
    /// reaper, default 0 = disabled), and `G80_SERVE_MAX_CONNS`
    /// (connection cap, default 256). Unset or unparsable values keep the
    /// defaults.
    pub fn from_env() -> io::Result<Self> {
        let mut cfg = ServeConfig::default();
        if let Ok(v) = std::env::var("G80_SERVE_ADDR") {
            cfg.addr = Addr::parse(&v)?;
        }
        if let Some(v) = env_u64("G80_SERVE_TENANT_BLOCKS") {
            cfg.quota.max_inflight_blocks = v;
            cfg.quota.max_blocks_per_launch = v;
        }
        if let Some(v) = env_u64("G80_SERVE_TENANT_QUEUE") {
            cfg.quota.max_queued = v as usize;
        }
        if let Some(v) = env_u64("G80_SERVE_MAX_BLOCKS") {
            cfg.quota.max_total_blocks = v;
        }
        if let Some(v) = env_u64("G80_SERVE_READ_TIMEOUT_MS") {
            cfg.read_timeout = (v > 0).then(|| Duration::from_millis(v));
        }
        if let Some(v) = env_u64("G80_SERVE_IDLE_TIMEOUT_MS") {
            cfg.idle_timeout = (v > 0).then(|| Duration::from_millis(v));
        }
        if let Some(v) = env_u64("G80_SERVE_MAX_CONNS") {
            cfg.max_conns = v.max(1);
        }
        Ok(cfg)
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// How often idle waits (accept loop, idle connections, drain) poll the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Shed responses carry this retry hint: a couple of poll ticks, long
/// enough for a slot to free under normal churn.
const SHED_RETRY_AFTER_MS: u64 = 50;

struct Shared {
    admission: Arc<Admission>,
    gpu: GpuConfig,
    shutting_down: AtomicBool,
    /// Open connections; drain completes when this reaches zero.
    active: Mutex<u64>,
    idle_cv: Condvar,
    /// Served-request counter (metrics; exposed for tests).
    requests: AtomicU64,
    read_timeout: Option<Duration>,
    idle_timeout: Option<Duration>,
    max_conns: u64,
    /// Connections closed by the stall killer / idle reaper.
    reaped: AtomicU64,
    /// Connections refused at the cap with a typed Overloaded.
    shed: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// A running daemon. Dropping the handle does NOT stop it; send a
/// [`Request::Shutdown`] (or call [`Server::trigger_shutdown`]) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    bound: Addr,
    accept_thread: thread::JoinHandle<io::Result<()>>,
}

impl Server {
    /// The concrete bound address (ephemeral TCP ports resolved).
    pub fn local_addr(&self) -> &Addr {
        &self.bound
    }

    /// Flips the drain flag without a client connection (tests, signal
    /// bridges). Idempotent.
    pub fn trigger_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Requests served so far (any response counts, including typed
    /// errors).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::SeqCst)
    }

    /// Connections closed by the mid-frame stall killer or idle reaper.
    pub fn reaped(&self) -> u64 {
        self.shared.reaped.load(Ordering::SeqCst)
    }

    /// Connections shed at the cap with a typed `Overloaded`.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon has drained: shutdown triggered, accept
    /// loop exited, and every connection handler finished.
    pub fn join(self) -> io::Result<()> {
        let r = self
            .accept_thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("accept loop panicked")));
        let mut active = fault::lock_recover(&self.shared.active);
        while *active > 0 {
            let (g, _) = self
                .shared
                .idle_cv
                .wait_timeout(active, POLL_TICK)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            active = g;
        }
        r
    }
}

/// Binds the configured address and starts serving. Returns immediately;
/// the daemon runs on background threads until a shutdown request drains
/// it.
pub fn serve(cfg: ServeConfig) -> io::Result<Server> {
    let (listener, bound) = Listener::bind(&cfg.addr)?;
    let shared = Arc::new(Shared {
        admission: Admission::new(cfg.quota),
        gpu: cfg.gpu,
        shutting_down: AtomicBool::new(false),
        active: Mutex::new(0),
        idle_cv: Condvar::new(),
        requests: AtomicU64::new(0),
        read_timeout: cfg.read_timeout,
        idle_timeout: cfg.idle_timeout,
        max_conns: cfg.max_conns.max(1),
        reaped: AtomicU64::new(0),
        shed: AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name("g80-serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))
        .map_err(io::Error::other)?;
    Ok(Server {
        shared,
        bound,
        accept_thread,
    })
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) -> io::Result<()> {
    loop {
        if shared.shutting_down() {
            return Ok(());
        }
        match listener.accept() {
            Ok(Some(stream)) => {
                {
                    let mut active = fault::lock_recover(&shared.active);
                    if *active >= shared.max_conns {
                        // Load shedding: refuse with a typed Overloaded
                        // and a retry hint instead of spawning a thread.
                        drop(active);
                        shared.shed.fetch_add(1, Ordering::SeqCst);
                        shed_connection(stream);
                        continue;
                    }
                    *active += 1;
                }
                let conn_shared = Arc::clone(&shared);
                let spawned =
                    thread::Builder::new()
                        .name("g80-serve-conn".into())
                        .spawn(move || {
                            // Connection-level transport errors are expected
                            // (peers vanish); they end the connection, not the
                            // daemon.
                            if handle_connection(stream, &conn_shared).is_err() {
                                note_net_disconnect();
                            }
                            let mut active = fault::lock_recover(&conn_shared.active);
                            *active -= 1;
                            drop(active);
                            conn_shared.idle_cv.notify_all();
                        });
                if spawned.is_err() {
                    let mut active = fault::lock_recover(&shared.active);
                    *active -= 1;
                    drop(active);
                    shared.idle_cv.notify_all();
                }
            }
            Ok(None) => thread::sleep(POLL_TICK),
            Err(_) => thread::sleep(POLL_TICK),
        }
    }
}

/// Best-effort typed refusal on the accept thread. The write timeout is
/// tight: a shed peer that will not even read 50-odd bytes gets dropped
/// without blocking further accepts.
fn shed_connection(stream: Stream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut framed = FramedStream::new(stream, Side::Server);
    let _ = framed.write_frame(
        &Response::Error(WireError::Overloaded {
            retry_after_ms: SHED_RETRY_AFTER_MS,
        })
        .encode(),
    );
}

/// One received event on a connection.
enum Recv {
    Frame(Vec<u8>),
    /// Peer closed at a frame boundary, or drain with no frame started.
    Closed,
    /// Deadline exceeded: the stall killer or idle reaper fired.
    Reaped,
    /// CRC failure: frame consumed, connection synchronized, payload lost.
    BadFrame(String),
}

fn recv_frame(framed: &mut FramedStream, shared: &Shared) -> io::Result<Recv> {
    match framed.read_frame_deadline(shared.idle_timeout, shared.read_timeout, &|| {
        !shared.shutting_down()
    }) {
        Ok(Some(frame)) => Ok(Recv::Frame(frame)),
        Ok(None) => Ok(Recv::Closed),
        Err(e) if e.kind() == io::ErrorKind::TimedOut => {
            shared.reaped.fetch_add(1, Ordering::SeqCst);
            Ok(Recv::Reaped)
        }
        Err(e) if is_crc_mismatch(&e) => Ok(Recv::BadFrame(e.to_string())),
        Err(e) => Err(e),
    }
}

fn send(framed: &mut FramedStream, resp: &Response) -> io::Result<()> {
    framed.write_frame(&resp.encode())
}

fn handle_connection(stream: Stream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    // A write stalling as long as the read deadline means the peer has
    // stopped draining its socket; the failed write ends the connection.
    stream.set_write_timeout(shared.read_timeout)?;
    let mut framed = FramedStream::new(stream, Side::Server);

    // Handshake: the first frame must be a version-matched Hello. A
    // corrupted Hello gets a typed BadFrame and another chance — the
    // client re-sends on the same connection.
    let tenant = loop {
        let frame = match recv_frame(&mut framed, shared)? {
            Recv::Frame(f) => f,
            Recv::Closed | Recv::Reaped => return Ok(()),
            Recv::BadFrame(msg) => {
                send(&mut framed, &Response::Error(WireError::BadFrame(msg)))?;
                continue;
            }
        };
        match Request::decode(&frame) {
            Some(Request::Hello { version, tenant }) if version == PROTOCOL_VERSION => {
                send(
                    &mut framed,
                    &Response::HelloOk {
                        version: PROTOCOL_VERSION,
                    },
                )?;
                break tenant;
            }
            Some(Request::Hello { version, .. }) => {
                send(
                    &mut framed,
                    &Response::Error(WireError::Malformed(format!(
                        "protocol version mismatch: client {version}, daemon {PROTOCOL_VERSION}"
                    ))),
                )?;
                return Ok(());
            }
            _ => {
                send(
                    &mut framed,
                    &Response::Error(WireError::Malformed(
                        "expected Hello as the first request".into(),
                    )),
                )?;
                return Ok(());
            }
        }
    };

    loop {
        let frame = match recv_frame(&mut framed, shared)? {
            Recv::Frame(f) => f,
            Recv::Closed | Recv::Reaped => return Ok(()),
            Recv::BadFrame(msg) => {
                send(&mut framed, &Response::Error(WireError::BadFrame(msg)))?;
                continue;
            }
        };
        shared.requests.fetch_add(1, Ordering::SeqCst);
        // The whole decode+execute path is unwind-safe: a panic (injected
        // at serve.decode or genuine) becomes a typed response on the
        // still-synchronized connection. The device memory a panicking
        // request may have touched is request-local, so no shared state is
        // left inconsistent.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_request(&frame, &tenant, shared, &mut framed)
        }));
        match outcome {
            Ok(Ok(ControlFlow::Continue)) => {}
            Ok(Ok(ControlFlow::Close)) => return Ok(()),
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                let msg = fault::payload_str(payload.as_ref())
                    .unwrap_or("non-string panic payload")
                    .to_string();
                send(&mut framed, &Response::Error(WireError::Panic(msg)))?;
            }
        }
    }
}

enum ControlFlow {
    Continue,
    Close,
}

fn handle_request(
    frame: &[u8],
    tenant: &str,
    shared: &Shared,
    stream: &mut FramedStream,
) -> io::Result<ControlFlow> {
    // The serve-layer fault site: a typed tamper treats this frame as
    // corrupt. The frame is already consumed, so the error is a value and
    // the connection survives (a panic-kind fault unwinds into the
    // catch_unwind above — same guarantee).
    if fault::tamper(Site::ServeDecode) {
        send(
            stream,
            &Response::Error(WireError::Fault {
                site: Site::ServeDecode.name().into(),
            }),
        )?;
        return Ok(ControlFlow::Continue);
    }
    let Some(req) = Request::decode(frame) else {
        send(
            stream,
            &Response::Error(WireError::Malformed("undecodable request frame".into())),
        )?;
        return Ok(ControlFlow::Continue);
    };
    match req {
        Request::Hello { version, .. } if version == PROTOCOL_VERSION => {
            // Idempotent re-ack: a client whose HelloOk was corrupted in
            // flight re-sends Hello on the same connection and must be
            // able to recover without reconnecting.
            send(
                stream,
                &Response::HelloOk {
                    version: PROTOCOL_VERSION,
                },
            )?;
            Ok(ControlFlow::Continue)
        }
        Request::Hello { .. } => {
            send(
                stream,
                &Response::Error(WireError::Malformed("duplicate Hello".into())),
            )?;
            Ok(ControlFlow::Continue)
        }
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            send(stream, &Response::ShutdownOk)?;
            Ok(ControlFlow::Close)
        }
        Request::Launch(spec) => {
            if shared.shutting_down() {
                send(stream, &Response::Error(WireError::Shutdown))?;
                return Ok(ControlFlow::Continue);
            }
            let result = run_spec(shared, tenant, &spec, true).map(|(r, d)| (r, d.unwrap()));
            send(stream, &Response::Launch { result })?;
            Ok(ControlFlow::Continue)
        }
        Request::Batch(specs) | Request::Sweep(specs) => {
            if shared.shutting_down() {
                send(stream, &Response::Error(WireError::Shutdown))?;
                return Ok(ControlFlow::Continue);
            }
            let before = memo_counters();
            let net_before = net_counters();
            for (i, spec) in specs.iter().enumerate() {
                let result = run_spec(shared, tenant, spec, false).map(|(r, _)| r);
                send(
                    stream,
                    &Response::Item {
                        index: i as u32,
                        result,
                    },
                )?;
            }
            send(
                stream,
                &Response::Done {
                    counters: counter_delta(before, memo_counters()),
                    net: net_counters().since(&net_before),
                },
            )?;
            Ok(ControlFlow::Continue)
        }
    }
}

/// Validates, admits, and runs one spec. `want_delta` controls whether
/// device memory is diffed around the launch (single launches return
/// results; batch/sweep items are measurement-only).
#[allow(clippy::type_complexity)]
fn run_spec(
    shared: &Shared,
    tenant: &str,
    spec: &WireLaunch,
    want_delta: bool,
) -> Result<(LaunchReport, Option<Vec<(u32, u32)>>), WireError> {
    if spec.mem_bytes > MAX_MEM_BYTES {
        return Err(WireError::Malformed(format!(
            "mem_bytes {} exceeds the {MAX_MEM_BYTES}-byte cap",
            spec.mem_bytes
        )));
    }
    spec.kernel
        .validate()
        .map_err(|e| WireError::Malformed(format!("kernel {}: {e}", spec.kernel.name)))?;
    let words = (spec.mem_bytes as u64).div_ceil(4);
    for &(addr, _) in &spec.writes {
        if addr % 4 != 0 || (addr / 4) as u64 >= words {
            return Err(WireError::Malformed(format!(
                "initial write at {addr:#x} is unaligned or out of bounds"
            )));
        }
    }
    if let Some((base, len)) = spec.tex_binding {
        if (base as u64) + (len as u64) > spec.mem_bytes as u64 {
            return Err(WireError::Malformed(format!(
                "texture binding {base:#x}+{len:#x} exceeds device memory"
            )));
        }
    }

    let permit = match shared.admission.admit(tenant, spec.dims.total_blocks()) {
        Verdict::Admitted(p) => p,
        Verdict::Rejected(reason) => return Err(WireError::Rejected(reason)),
        Verdict::Throttled(reason) => return Err(WireError::Throttled(reason)),
    };

    let mut mem = DeviceMemory::new(spec.mem_bytes);
    mem.const_bank = spec.const_bank.clone();
    mem.tex_binding = spec.tex_binding;
    for &(addr, word) in &spec.writes {
        mem.write(addr, g80_isa::Value(word));
    }
    let before = want_delta.then(|| mem.snapshot_words());
    let report = launch_reported(&shared.gpu, &spec.kernel, spec.dims, &spec.params, &mem)
        .map_err(|e| WireError::from(&e))?;
    drop(permit);
    let delta = before.map(|before| {
        let after = mem.snapshot_words();
        before
            .iter()
            .zip(after.iter())
            .enumerate()
            .filter(|(_, (b, a))| b != a)
            .map(|(i, (_, a))| ((i * 4) as u32, *a))
            .collect()
    });
    Ok((report, delta))
}

fn counter_delta(before: MemoCounters, after: MemoCounters) -> MemoCounters {
    MemoCounters {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        disk_hits: after.disk_hits.saturating_sub(before.disk_hits),
        disk_misses: after.disk_misses.saturating_sub(before.disk_misses),
        disk_evictions: after.disk_evictions.saturating_sub(before.disk_evictions),
        dedup_fast_blocks: after
            .dedup_fast_blocks
            .saturating_sub(before.dedup_fast_blocks),
        dedup_sim_blocks: after
            .dedup_sim_blocks
            .saturating_sub(before.dedup_sim_blocks),
        dedup_fallbacks: after.dedup_fallbacks.saturating_sub(before.dedup_fallbacks),
    }
}
