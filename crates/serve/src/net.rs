//! Transport: TCP and unix-domain sockets behind one address type.
//!
//! Addresses are spelled `tcp:HOST:PORT` or `unix:PATH` (a bare
//! `HOST:PORT` means TCP). `tcp:127.0.0.1:0` binds an ephemeral port; the
//! bound address is reported back so tests and benches can connect.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A serve endpoint address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// `tcp:HOST:PORT`.
    Tcp(String),
    /// `unix:PATH`.
    Unix(PathBuf),
}

impl Addr {
    /// Parses `tcp:HOST:PORT`, `unix:PATH`, or bare `HOST:PORT`.
    pub fn parse(s: &str) -> io::Result<Addr> {
        let s = s.trim();
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty unix socket path",
                ));
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        let hostport = s.strip_prefix("tcp:").unwrap_or(s);
        if hostport.is_empty() || !hostport.contains(':') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad address {s:?}: expected tcp:HOST:PORT or unix:PATH"),
            ));
        }
        Ok(Addr::Tcp(hostport.to_string()))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected byte stream over either transport.
pub enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// Tears down both directions of the connection. Used by the
    /// fault-injection layer to simulate a peer vanishing mid-frame; the
    /// next read on either end observes EOF or a reset, never a hang.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Connects to `addr` (TCP sets `TCP_NODELAY`: frames are small and
/// latency-sensitive).
pub fn connect(addr: &Addr) -> io::Result<Stream> {
    match addr {
        Addr::Tcp(hp) => {
            let s = TcpStream::connect(hp.as_str())?;
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        }
        Addr::Unix(p) => Ok(Stream::Unix(UnixStream::connect(p)?)),
    }
}

/// A bound, non-blocking listener over either transport.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr`, returning the listener and the concrete bound address
    /// (the ephemeral port resolved for `tcp:...:0`). An existing socket
    /// file at a unix path is removed first — the daemon owns its path.
    pub(crate) fn bind(addr: &Addr) -> io::Result<(Listener, Addr)> {
        match addr {
            Addr::Tcp(hp) => {
                let l = TcpListener::bind(hp.as_str())?;
                l.set_nonblocking(true)?;
                let bound = Addr::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), bound))
            }
            Addr::Unix(p) => {
                if p.exists() {
                    std::fs::remove_file(p)?;
                }
                let l = UnixListener::bind(p)?;
                l.set_nonblocking(true)?;
                Ok((Listener::Unix(l), Addr::Unix(p.clone())))
            }
        }
    }

    /// Non-blocking accept; `Ok(None)` when no connection is pending.
    pub(crate) fn accept(&self) -> io::Result<Option<Stream>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    Ok(Some(Stream::Tcp(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Stream::Unix(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parsing() {
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:7808").unwrap(),
            Addr::Tcp("127.0.0.1:7808".into())
        );
        assert_eq!(
            Addr::parse("127.0.0.1:7808").unwrap(),
            Addr::Tcp("127.0.0.1:7808".into())
        );
        assert_eq!(
            Addr::parse("unix:/tmp/g80.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/g80.sock"))
        );
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("justahost").is_err());
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:0").unwrap().to_string(),
            "tcp:127.0.0.1:0"
        );
    }
}
