//! CRC-checked framing with deadlines and injected transport faults.
//!
//! [`FramedStream`] is the one place frames touch the socket, for both the
//! client and the server. Protocol version 3 frames are
//! `u32 LE length | payload | u32 LE crc32(payload)`; because the length
//! field is validated before the payload is read, a corrupted payload
//! leaves framing synchronized — the receiver consumes exactly one frame,
//! reports [`CrcMismatch`], and the connection stays usable (the server
//! answers a typed `BadFrame`, the client re-sends the idempotent
//! request).
//!
//! All injected transport faults ([`crate::netfault`]) are applied here,
//! one schedule poll per frame operation, so the rest of the crate never
//! sees the flaky layer — it sees the *consequences*: short reads, torn
//! connections, bad checksums, stalls. Server reads go through
//! [`FramedStream::read_frame_deadline`], which layers an idle timeout
//! (no frame started — the reaper's trigger), a mid-frame deadline (the
//! slowloris stall killer), and drain polling over the same loop.

use crate::net::Stream;
use crate::netfault::{self, NetFault, NetSite};
use crate::protocol::MAX_FRAME_BYTES;
use g80_sim::wire::crc32;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Which end of the connection this stream is, selecting the fault sites
/// its reads and writes poll.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Side {
    Client,
    Server,
}

/// Payload checksum failure: the frame was consumed whole (framing is
/// still synchronized) but its bytes are not what the peer sent. Carried
/// inside an [`io::Error`] of kind `InvalidData`; test with
/// [`is_crc_mismatch`].
#[derive(Debug)]
pub struct CrcMismatch {
    pub expected: u32,
    pub got: u32,
}

impl std::fmt::Display for CrcMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame CRC mismatch: expected {:#010x}, got {:#010x}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for CrcMismatch {}

/// True when `e` wraps a [`CrcMismatch`] — the one transport error that
/// does NOT poison the connection.
pub fn is_crc_mismatch(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<CrcMismatch>())
}

/// A [`Stream`] that speaks whole CRC-checked frames, with the
/// transport-fault schedule applied per operation.
pub struct FramedStream {
    inner: Stream,
    side: Side,
    /// Coalescing readahead (the `split` fault's read flavor): bytes read
    /// past what the current operation needed, served to later reads.
    buf: Vec<u8>,
    pos: usize,
}

impl FramedStream {
    pub fn new(inner: Stream, side: Side) -> Self {
        FramedStream {
            inner,
            side,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The underlying stream (timeout configuration).
    pub fn get_ref(&self) -> &Stream {
        &self.inner
    }

    fn write_site(&self) -> NetSite {
        match self.side {
            Side::Client => NetSite::ClientWrite,
            Side::Server => NetSite::ServerWrite,
        }
    }

    fn read_site(&self) -> NetSite {
        match self.side {
            Side::Client => NetSite::ClientRead,
            Side::Server => NetSite::ServerRead,
        }
    }

    // ---- writing -----------------------------------------------------------

    /// Writes one frame (header, payload, CRC). An injected fault may tear
    /// the connection (error returned, socket shut down so the peer sees
    /// it too) or corrupt/fragment/delay the bytes (no error — the damage
    /// is the peer's to detect).
    pub fn write_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_BYTES)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        let crc = crc32(payload);
        match netfault::decide(self.write_site()) {
            None => self.write_clean(len, payload, crc),
            Some(NetFault::Stall { ms }) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.write_clean(len, payload, crc)
            }
            Some(NetFault::DisconnectPre) => {
                let _ = self.inner.shutdown();
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect before frame",
                ))
            }
            Some(NetFault::DisconnectMid) => {
                // Tear mid-header: the peer sees a short read where a
                // length field should be.
                let _ = self.inner.write_all(&len.to_le_bytes()[..2]);
                let _ = self.inner.shutdown();
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect mid-frame",
                ))
            }
            Some(NetFault::Truncate) => {
                // Full header, half the payload, then gone: the peer is
                // left waiting mid-frame (EOF or its stall deadline).
                let _ = self
                    .inner
                    .write_all(&len.to_le_bytes())
                    .and_then(|_| self.inner.write_all(&payload[..payload.len() / 2]))
                    .and_then(|_| self.inner.flush());
                let _ = self.inner.shutdown();
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected frame truncation",
                ))
            }
            Some(NetFault::Corrupt { byte, bit }) => {
                // On-wire bit rot: payload altered, CRC still covering the
                // original — the receiver's check must catch it. The
                // sender sees a successful write.
                let mut tampered = payload.to_vec();
                if tampered.is_empty() {
                    // Nothing to flip; damage the CRC instead.
                    return self.write_clean(len, payload, crc ^ 1);
                }
                let i = (byte % tampered.len() as u64) as usize;
                tampered[i] ^= 1 << (bit & 7);
                self.write_clean(len, &tampered, crc)
            }
            Some(NetFault::Split) => {
                // Dribble the frame in small flushed chunks; correctness
                // must not depend on write boundaries.
                let mut wire = Vec::with_capacity(payload.len() + 8);
                wire.extend_from_slice(&len.to_le_bytes());
                wire.extend_from_slice(payload);
                wire.extend_from_slice(&crc.to_le_bytes());
                let chunk = (wire.len() / 7).max(1);
                for piece in wire.chunks(chunk) {
                    self.inner.write_all(piece)?;
                    self.inner.flush()?;
                }
                Ok(())
            }
        }
    }

    fn write_clean(&mut self, len: u32, payload: &[u8], crc: u32) -> io::Result<()> {
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(payload)?;
        self.inner.write_all(&crc.to_le_bytes())?;
        self.inner.flush()
    }

    // ---- reading -----------------------------------------------------------

    /// Reads one frame, blocking without deadlines (client side: the
    /// daemon always answers or closes). `Ok(None)` = clean EOF at a
    /// frame boundary.
    pub fn read_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.read_frame_deadline(None, None, &|| true)
    }

    /// Reads one frame under the server's deadline regime. The underlying
    /// stream must have a short read timeout set (the poll tick); each
    /// tick re-checks:
    ///
    /// * `keep_waiting` false and no frame started → `Ok(None)` (drain);
    /// * `idle` elapsed with no frame started → `TimedOut` (reaper);
    /// * `mid` elapsed with a frame underway → `TimedOut` (stall killer —
    ///   a slowloris peer dribbling a frame cannot hold the slot).
    ///
    /// A frame in progress ignores `keep_waiting`: committed bytes are
    /// read to completion (or the mid-frame deadline) even during drain.
    pub fn read_frame_deadline(
        &mut self,
        idle: Option<Duration>,
        mid: Option<Duration>,
        keep_waiting: &dyn Fn() -> bool,
    ) -> io::Result<Option<Vec<u8>>> {
        let fault = netfault::decide(self.read_site());
        match fault {
            Some(NetFault::DisconnectPre) => {
                let _ = self.inner.shutdown();
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect before frame",
                ));
            }
            Some(NetFault::Stall { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
        // The split fault's read flavors: byte-at-a-time reads, or a
        // greedy readahead that coalesces frames into one buffer.
        let byte_reads = matches!(fault, Some(NetFault::Split));
        if byte_reads && self.buf.len() > self.pos {
            // Already coalesced: keep serving the buffer.
        } else if byte_reads {
            self.coalesce()?;
        }

        let start = Instant::now();
        let mut hdr = [0u8; 4];
        let mut got = 0usize;
        while got < 4 {
            match self.read_some(&mut hdr[got..], byte_reads) {
                Ok(0) => {
                    return if got == 0 {
                        Ok(None)
                    } else {
                        Err(io::ErrorKind::UnexpectedEof.into())
                    }
                }
                Ok(n) => got += n,
                Err(e) if is_poll_tick(&e) => {
                    if got == 0 {
                        if !keep_waiting() {
                            return Ok(None);
                        }
                        if let Some(limit) = idle {
                            if start.elapsed() >= limit {
                                return Err(io::Error::new(
                                    io::ErrorKind::TimedOut,
                                    "idle connection reaped",
                                ));
                            }
                        }
                    } else if let Some(limit) = mid {
                        if start.elapsed() >= limit {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "mid-frame stall deadline exceeded",
                            ));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let len = u32::from_le_bytes(hdr);
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame header declares {len} bytes (max {MAX_FRAME_BYTES})"),
            ));
        }
        if matches!(fault, Some(NetFault::DisconnectMid | NetFault::Truncate)) {
            // The peer vanishes with the frame half-transferred.
            let _ = self.inner.shutdown();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected disconnect mid-frame",
            ));
        }
        let frame_start = Instant::now();
        let mut payload = vec![0u8; len as usize + 4];
        let mut got = 0usize;
        while got < payload.len() {
            match self.read_some(&mut payload[got..], byte_reads) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => got += n,
                Err(e) if is_poll_tick(&e) => {
                    if let Some(limit) = mid {
                        if frame_start.elapsed() >= limit {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "mid-frame stall deadline exceeded",
                            ));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let wire_crc = u32::from_le_bytes(payload[len as usize..].try_into().unwrap());
        payload.truncate(len as usize);
        if let Some(NetFault::Corrupt { byte, bit }) = fault {
            // Received-side bit rot: damage what arrived, before the
            // integrity check sees it.
            if payload.is_empty() {
                let expected = crc32(&payload);
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    CrcMismatch {
                        expected,
                        got: wire_crc ^ 1,
                    },
                ));
            }
            let i = (byte % payload.len() as u64) as usize;
            payload[i] ^= 1 << (bit & 7);
        }
        let computed = crc32(&payload);
        if computed != wire_crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                CrcMismatch {
                    expected: wire_crc,
                    got: computed,
                },
            ));
        }
        Ok(Some(payload))
    }

    /// Reads into `out` through the readahead buffer; `byte_reads` caps
    /// socket reads at one byte (the split fault).
    fn read_some(&mut self, out: &mut [u8], byte_reads: bool) -> io::Result<usize> {
        if self.pos < self.buf.len() {
            let take = out.len().min(self.buf.len() - self.pos);
            out[..take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            if self.pos == self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            }
            return Ok(take);
        }
        if byte_reads {
            self.inner.read(&mut out[..1])
        } else {
            self.inner.read(out)
        }
    }

    /// Greedy readahead: pulls whatever the socket has (up to 64 KiB)
    /// into the buffer in one gulp, coalescing frame boundaries.
    fn coalesce(&mut self) -> io::Result<()> {
        debug_assert!(self.pos >= self.buf.len());
        let mut chunk = [0u8; 65536];
        match self.inner.read(&mut chunk) {
            Ok(n) => {
                self.buf.clear();
                self.buf.extend_from_slice(&chunk[..n]);
                self.pos = 0;
                Ok(())
            }
            // Nothing buffered yet; the main loop will read normally.
            Err(e) if is_poll_tick(&e) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

fn is_poll_tick(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Addr, Listener};
    use crate::netfault::{set_net_faults, test_guard, NetFaultConfig, NetFaultKind};

    /// A connected loopback pair (client framed, server framed).
    fn pair() -> (FramedStream, FramedStream) {
        let (listener, bound) = Listener::bind(&Addr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let client = crate::net::connect(&bound).unwrap();
        let server = loop {
            if let Some(s) = listener.accept().unwrap() {
                break s;
            }
        };
        (
            FramedStream::new(client, Side::Client),
            FramedStream::new(server, Side::Server),
        )
    }

    #[test]
    fn frames_roundtrip_and_crc_detects_tamper() {
        let _guard = test_guard();
        set_net_faults(None);
        let (mut c, mut s) = pair();
        c.write_frame(b"hello frames").unwrap();
        c.write_frame(b"").unwrap();
        assert_eq!(
            s.read_frame().unwrap().as_deref(),
            Some(&b"hello frames"[..])
        );
        assert_eq!(s.read_frame().unwrap().as_deref(), Some(&b""[..]));

        // Corrupt every client write: the server's read must surface a
        // CrcMismatch, not a garbled decode, and framing stays in sync.
        set_net_faults(Some(NetFaultConfig::only(3, 1.0, NetFaultKind::Corrupt)));
        c.write_frame(b"poisoned payload").unwrap();
        set_net_faults(None);
        let err = s.read_frame().unwrap_err();
        assert!(is_crc_mismatch(&err), "expected CrcMismatch, got {err}");
        // The connection survives the bad frame.
        c.write_frame(b"clean again").unwrap();
        assert_eq!(
            s.read_frame().unwrap().as_deref(),
            Some(&b"clean again"[..])
        );
    }

    #[test]
    fn split_frames_reassemble() {
        let _guard = test_guard();
        set_net_faults(Some(NetFaultConfig::only(5, 1.0, NetFaultKind::Split)));
        let (mut c, mut s) = pair();
        let big = vec![0xabu8; 10_000];
        c.write_frame(&big).unwrap();
        c.write_frame(b"tail").unwrap();
        assert_eq!(s.read_frame().unwrap().as_deref(), Some(&big[..]));
        assert_eq!(s.read_frame().unwrap().as_deref(), Some(&b"tail"[..]));
        set_net_faults(None);
    }

    #[test]
    fn injected_disconnect_errors_both_ends() {
        let _guard = test_guard();
        let (mut c, mut s) = pair();
        set_net_faults(Some(NetFaultConfig::only(
            11,
            1.0,
            NetFaultKind::Disconnect,
        )));
        let werr = c.write_frame(b"doomed").unwrap_err();
        set_net_faults(None);
        assert_eq!(werr.kind(), io::ErrorKind::ConnectionReset);
        // The peer observes the tear as EOF or a short frame, never a hang.
        match s.read_frame() {
            Ok(None) => {}
            Err(_) => {}
            Ok(Some(f)) => panic!("read a whole frame {f:?} through a disconnect"),
        }
    }

    #[test]
    fn mid_frame_deadline_times_out_a_stalled_peer() {
        let _guard = test_guard();
        set_net_faults(None);
        let (mut c, mut s) = pair();
        s.get_ref()
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        // Dribble a header and then stall: only the stall killer ends it.
        {
            use std::io::Write;
            let inner = &mut c.inner;
            inner.write_all(&8u32.to_le_bytes()).unwrap();
            inner.write_all(b"ab").unwrap();
            inner.flush().unwrap();
        }
        let start = Instant::now();
        let err = s
            .read_frame_deadline(None, Some(Duration::from_millis(60)), &|| true)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            start.elapsed() >= Duration::from_millis(55),
            "deadline fired early"
        );
        // Idle timeout: nothing sent at all.
        let err = s
            .read_frame_deadline(Some(Duration::from_millis(40)), None, &|| true)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
