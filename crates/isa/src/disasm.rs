//! Human-readable kernel listings — our analogue of inspecting the PTX dump,
//! which is how the paper estimates instruction mixes (Section 3.1: "PTX is
//! generally sufficient in the initial stages of estimating resource
//! requirements").

use crate::inst::{AluOp, Inst, InstClass, Operand, SfuOp, Space, SpecialReg, UnOp};
use crate::kernel::Kernel;
use std::fmt::Write;

fn op_str(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(v) => {
            // Heuristic: print as a float only when the bits decode to a
            // "plausible" float magnitude; small integers otherwise decode
            // to subnormals and would print unreadably.
            let f = v.as_f32();
            if f.is_finite() && f.fract() != 0.0 && f.abs() > 1e-6 && f.abs() < 1e9 {
                format!("{f}f")
            } else {
                format!("{}", v.as_u32())
            }
        }
        Operand::Param(i) => format!("param{i}"),
        Operand::Special(s) => special_str(*s).to_string(),
    }
}

fn special_str(s: SpecialReg) -> &'static str {
    match s {
        SpecialReg::TidX => "%tid.x",
        SpecialReg::TidY => "%tid.y",
        SpecialReg::TidZ => "%tid.z",
        SpecialReg::NtidX => "%ntid.x",
        SpecialReg::NtidY => "%ntid.y",
        SpecialReg::NtidZ => "%ntid.z",
        SpecialReg::CtaidX => "%ctaid.x",
        SpecialReg::CtaidY => "%ctaid.y",
        SpecialReg::NctaidX => "%nctaid.x",
        SpecialReg::NctaidY => "%nctaid.y",
    }
}

fn alu_str(op: AluOp) -> &'static str {
    match op {
        AluOp::FAdd => "add.f32",
        AluOp::FSub => "sub.f32",
        AluOp::FMul => "mul.f32",
        AluOp::FMin => "min.f32",
        AluOp::FMax => "max.f32",
        AluOp::IAdd => "add.u32",
        AluOp::ISub => "sub.u32",
        AluOp::IMul => "mul.lo.u32",
        AluOp::UMin => "min.u32",
        AluOp::UMax => "max.u32",
        AluOp::IMin => "min.s32",
        AluOp::IMax => "max.s32",
        AluOp::And => "and.b32",
        AluOp::Or => "or.b32",
        AluOp::Xor => "xor.b32",
        AluOp::Shl => "shl.b32",
        AluOp::ShrU => "shr.u32",
        AluOp::ShrS => "shr.s32",
        AluOp::Rotl => "rotl.b32",
    }
}

fn space_str(s: Space) -> &'static str {
    match s {
        Space::Global => "global",
        Space::Shared => "shared",
        Space::Const => "const",
        Space::Local => "local",
        Space::Tex => "tex",
    }
}

/// Renders one instruction as PTX-flavoured text.
pub fn inst_to_string(inst: &Inst) -> String {
    match inst {
        Inst::Alu { op, dst, a, b } => {
            format!("{} r{}, {}, {}", alu_str(*op), dst.0, op_str(a), op_str(b))
        }
        Inst::Ffma { dst, a, b, c } => format!(
            "mad.f32 r{}, {}, {}, {}",
            dst.0,
            op_str(a),
            op_str(b),
            op_str(c)
        ),
        Inst::Imad { dst, a, b, c } => format!(
            "mad.lo.u32 r{}, {}, {}, {}",
            dst.0,
            op_str(a),
            op_str(b),
            op_str(c)
        ),
        Inst::Un { op, dst, a } => {
            let name = match op {
                UnOp::Mov => "mov.b32",
                UnOp::FNeg => "neg.f32",
                UnOp::FAbs => "abs.f32",
                UnOp::Not => "not.b32",
                UnOp::CvtF2I => "cvt.rzi.s32.f32",
                UnOp::CvtI2F => "cvt.rn.f32.s32",
                UnOp::CvtF2U => "cvt.rzi.u32.f32",
                UnOp::CvtU2F => "cvt.rn.f32.u32",
                UnOp::FFloor => "cvt.rmi.f32.f32",
            };
            format!("{} r{}, {}", name, dst.0, op_str(a))
        }
        Inst::Sfu { op, dst, a } => {
            let name = match op {
                SfuOp::Rcp => "rcp.approx.f32",
                SfuOp::Rsqrt => "rsqrt.approx.f32",
                SfuOp::Sqrt => "sqrt.approx.f32",
                SfuOp::Sin => "sin.approx.f32",
                SfuOp::Cos => "cos.approx.f32",
                SfuOp::Ex2 => "ex2.approx.f32",
                SfuOp::Lg2 => "lg2.approx.f32",
            };
            format!("{} r{}, {}", name, dst.0, op_str(a))
        }
        Inst::SetP { op, ty, dst, a, b } => format!(
            "setp.{:?}.{:?} r{}, {}, {}",
            op,
            ty,
            dst.0,
            op_str(a),
            op_str(b)
        )
        .to_lowercase(),
        Inst::Sel { dst, c, a, b } => format!(
            "selp.b32 r{}, {}, {}, {}",
            dst.0,
            op_str(a),
            op_str(b),
            op_str(c)
        ),
        Inst::Ld {
            space,
            dst,
            addr,
            off,
        } => format!(
            "ld.{} r{}, [{}{:+}]",
            space_str(*space),
            dst.0,
            op_str(addr),
            off
        ),
        Inst::St {
            space,
            addr,
            off,
            src,
        } => format!(
            "st.{} [{}{:+}], {}",
            space_str(*space),
            op_str(addr),
            off,
            op_str(src)
        ),
        Inst::Atom {
            op,
            space,
            dst,
            addr,
            off,
            src,
        } => {
            let d = dst.map(|r| format!("r{}, ", r.0)).unwrap_or_default();
            format!(
                "atom.{}.{:?} {}[{}{:+}], {}",
                space_str(*space),
                op,
                d,
                op_str(addr),
                off,
                op_str(src)
            )
            .to_lowercase()
        }
        Inst::Bra {
            target,
            reconv,
            pred,
        } => match pred {
            None => format!("bra L{}", target.0),
            Some(p) => format!(
                "@{}r{} bra L{} (reconv L{})",
                if p.negate { "!" } else { "" },
                p.reg.0,
                target.0,
                reconv.0
            ),
        },
        Inst::Bar => "bar.sync 0".to_string(),
        Inst::Exit => "exit".to_string(),
    }
}

/// Renders a full kernel listing with branch-target labels and a resource
/// summary header.
pub fn disassemble(k: &Kernel) -> String {
    let mut targets: Vec<usize> = k
        .code
        .iter()
        .filter_map(|i| match i {
            Inst::Bra { target, .. } => Some(target.0 as usize),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();

    let mut s = String::new();
    let mix = k.static_mix();
    let _ = writeln!(
        s,
        "// kernel {}: {} insts, {} regs/thread, {} B smem, {} params",
        k.name,
        mix.total(),
        k.regs_per_thread,
        k.smem_bytes,
        k.num_params
    );
    let _ = writeln!(
        s,
        "// mix: {:.1}% fma, {:.1}% global mem",
        mix.fma_fraction() * 100.0,
        mix.global_fraction() * 100.0
    );
    for (i, inst) in k.code.iter().enumerate() {
        if targets.binary_search(&i).is_ok() {
            let _ = writeln!(s, "L{i}:");
        }
        let _ = writeln!(s, "  {:4}  {}", i, inst_to_string(inst));
    }
    s
}

/// Counts instructions in the given class (convenience for reports).
pub fn count_class(k: &Kernel, c: InstClass) -> u64 {
    k.static_mix().get(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn disassembly_contains_landmarks() {
        let mut b = KernelBuilder::new("demo");
        let p = b.param();
        let t = b.tid_x();
        let a = b.shl(t, 2u32);
        let a = b.iadd(a, p);
        let v = b.ld_global(a, 0);
        let w = b.fmul(v, 3.0f32);
        b.st_global(a, 0, w);
        let k = b.build();
        let text = disassemble(&k);
        assert!(text.contains("kernel demo"));
        assert!(text.contains("ld.global"));
        assert!(text.contains("st.global"));
        assert!(text.contains("mul.f32"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn loop_listing_has_labels() {
        let mut b = KernelBuilder::new("loopy");
        let p = b.param();
        let acc = b.mov(crate::inst::Operand::imm_f(0.0));
        b.for_range(0u32, 4u32, 1, crate::builder::Unroll::None, |b, i| {
            let f = b.un(UnOp::CvtU2F, i);
            b.ffma_to(acc, f, f, acc);
        });
        b.st_global(p, 0, acc);
        let k = b.build();
        let text = disassemble(&k);
        assert!(text.contains("bra L"));
        assert!(text.contains("L"));
        assert!(text.contains("mad.f32"));
    }
}
