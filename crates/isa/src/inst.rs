//! The instruction set.
//!
//! A PTX-like virtual ISA sufficient to express every kernel in the Ryoo et
//! al. application suite. Instructions operate on 32-bit typeless registers
//! ([`crate::Value`]); the opcode determines interpretation. Control flow is
//! flat: branches target instruction indices (resolved from labels by the
//! [`crate::builder::KernelBuilder`]) and conditional branches carry their
//! *reconvergence point*, which the simulator's SIMD divergence stack uses
//! (the moral equivalent of the `SSY` instruction in real G80 SASS).

use crate::Value;

/// A register id. Before register allocation this is a *virtual* register
/// (unbounded); after allocation it indexes the per-thread physical register
/// file (`0..Kernel::regs_per_thread`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl std::fmt::Debug for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch target. During building this is a label id; after
/// `KernelBuilder::build` it is an instruction index into the kernel code.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Label(pub u32);

/// Two-operand ALU opcodes executed on the streaming processors (SPs).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// f32 add.
    FAdd,
    /// f32 subtract.
    FSub,
    /// f32 multiply.
    FMul,
    /// f32 minimum.
    FMin,
    /// f32 maximum.
    FMax,
    /// 32-bit integer add (wrapping).
    IAdd,
    /// 32-bit integer subtract (wrapping).
    ISub,
    /// 32-bit integer multiply, low 32 bits (wrapping). On G80 a 32-bit
    /// multiply is a multi-cycle operation built from 24-bit multiplies;
    /// the simulator charges it extra issue slots.
    IMul,
    /// Unsigned minimum.
    UMin,
    /// Unsigned maximum.
    UMax,
    /// Signed minimum.
    IMin,
    /// Signed maximum.
    IMax,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (b masked to 0..31).
    Shl,
    /// Logical shift right.
    ShrU,
    /// Arithmetic shift right.
    ShrS,
    /// Rotate left (b masked to 0..31). NOT present on the G80 — RC5 must
    /// emulate it in four instructions (Section 5.1's "modulus-shift"
    /// discussion); exists here for the native-rotate ablation.
    Rotl,
}

/// One-operand opcodes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Register/immediate move.
    Mov,
    /// f32 negate.
    FNeg,
    /// f32 absolute value.
    FAbs,
    /// Bitwise not.
    Not,
    /// f32 -> i32 conversion (truncating, like `cvt.rzi.s32.f32`).
    CvtF2I,
    /// i32 -> f32 conversion.
    CvtI2F,
    /// f32 -> u32 conversion (truncating, clamped at 0).
    CvtF2U,
    /// u32 -> f32 conversion.
    CvtU2F,
    /// f32 floor (as f32).
    FFloor,
}

/// Transcendental opcodes executed on the special functional units (SFUs).
///
/// The paper (Section 5.1) credits the SFUs with ~30% of the MRI speedup:
/// these execute in a handful of cycles versus hundreds of CPU cycles for
/// libm calls.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SfuOp {
    /// Reciprocal, 1/x.
    Rcp,
    /// Reciprocal square root.
    Rsqrt,
    /// Square root (hardware computes rcp(rsqrt(x)); one SFU op here).
    Sqrt,
    /// Sine (radians).
    Sin,
    /// Cosine (radians).
    Cos,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
}

/// Comparison operators for `SetP`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Operand interpretation for comparisons and selects.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Scalar {
    F32,
    U32,
    I32,
}

/// Memory spaces (paper Table 1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Space {
    /// Off-chip DRAM, read/write, uncached, ~400-600 cycle latency. Subject
    /// to the half-warp coalescing rules.
    Global,
    /// 16 KB per-SM on-chip scratchpad, read/write, register-speed when
    /// bank-conflict free. 16 banks, word-interleaved.
    Shared,
    /// 64 KB read-only space with an 8 KB per-SM cache; single-cycle when all
    /// threads of a half-warp read the same address (broadcast).
    Const,
    /// Per-thread spill space, physically in DRAM (same cost as Global).
    Local,
    /// Read-only global memory fetched through the per-SM texture cache.
    Tex,
}

/// Atomic read-modify-write operations (integer, global memory; the G80
/// generation introduced these for compute capability 1.1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AtomOp {
    /// Integer add.
    Add,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
    /// Exchange.
    Exch,
}

/// Hardware special registers readable by every thread.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SpecialReg {
    /// Thread index within the block, x/y/z.
    TidX,
    TidY,
    TidZ,
    /// Block dimensions.
    NtidX,
    NtidY,
    NtidZ,
    /// Block index within the grid, x/y.
    CtaidX,
    CtaidY,
    /// Grid dimensions.
    NctaidX,
    NctaidY,
}

/// An instruction source operand.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// A 32-bit immediate (typeless, like the register file).
    Imm(Value),
    /// A kernel parameter slot. CUDA 0.8 passed parameters through shared
    /// memory and nvcc folded them into instructions; reading one costs no
    /// register here.
    Param(u16),
    /// A special register. The builder normally moves these into registers
    /// (as nvcc does) but they are also legal as direct operands.
    Special(SpecialReg),
}

impl Operand {
    /// Immediate f32 operand.
    pub fn imm_f(v: f32) -> Self {
        Operand::Imm(Value::from_f32(v))
    }
    /// Immediate u32 operand.
    pub fn imm_u(v: u32) -> Self {
        Operand::Imm(Value::from_u32(v))
    }
    /// Immediate i32 operand.
    pub fn imm_i(v: i32) -> Self {
        Operand::Imm(Value::from_i32(v))
    }
    /// Returns the register if this operand is one.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
    /// Returns the immediate value if this operand is one.
    pub fn as_imm(&self) -> Option<Value> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<f32> for Operand {
    fn from(v: f32) -> Self {
        Operand::imm_f(v)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::imm_u(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::imm_i(v)
    }
}

/// A branch predicate: branch taken when `reg != 0` (or `== 0` if negated).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Pred {
    pub reg: Reg,
    pub negate: bool,
}

impl Pred {
    /// Predicate that is true when `reg` is nonzero.
    pub fn if_true(reg: Reg) -> Self {
        Pred { reg, negate: false }
    }
    /// Predicate that is true when `reg` is zero.
    pub fn if_false(reg: Reg) -> Self {
        Pred { reg, negate: true }
    }
}

/// A single instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// Two-source ALU operation: `dst = a op b`.
    Alu {
        op: AluOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// Fused multiply-add, f32: `dst = a * b + c`. The workhorse: one issue
    /// slot, two FLOPs.
    Ffma {
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// Integer multiply-add: `dst = a * b + c` (wrapping).
    Imad {
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// One-source operation.
    Un { op: UnOp, dst: Reg, a: Operand },
    /// Transcendental on the SFU pipe.
    Sfu { op: SfuOp, dst: Reg, a: Operand },
    /// Predicate set: `dst = (a cmp b) ? 1 : 0` under interpretation `ty`.
    SetP {
        op: CmpOp,
        ty: Scalar,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// Select: `dst = c != 0 ? a : b`.
    Sel {
        dst: Reg,
        c: Operand,
        a: Operand,
        b: Operand,
    },
    /// Load: `dst = [space][addr + off]`. Addresses are byte addresses; all
    /// accesses are 4-byte words.
    Ld {
        space: Space,
        dst: Reg,
        addr: Operand,
        off: i32,
    },
    /// Store: `[space][addr + off] = src`.
    St {
        space: Space,
        addr: Operand,
        off: i32,
        src: Operand,
    },
    /// Atomic read-modify-write on global or shared memory. `dst`, when
    /// present, receives the old value.
    Atom {
        op: AtomOp,
        space: Space,
        dst: Option<Reg>,
        addr: Operand,
        off: i32,
        src: Operand,
    },
    /// Branch to `target`. `reconv` is the reconvergence point used by the
    /// divergence stack when the branch diverges within a warp (ignored for
    /// unconditional branches, which cannot diverge).
    Bra {
        target: Label,
        reconv: Label,
        pred: Option<Pred>,
    },
    /// Block-wide barrier (`__syncthreads()`).
    Bar,
    /// Thread exit.
    Exit,
}

/// Coarse instruction classes used by the performance counters and by the
/// paper's instruction-mix analysis (Section 4).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstClass {
    /// f32 FMA (2 FLOPs, 1 slot).
    Fma,
    /// Other f32 ALU arithmetic.
    FAlu,
    /// Integer / bitwise / conversion / move / select / compare.
    IAlu,
    /// SFU transcendental.
    Sfu,
    LdGlobal,
    StGlobal,
    LdShared,
    StShared,
    LdConst,
    LdTex,
    LdLocal,
    StLocal,
    Atomic,
    Branch,
    Barrier,
    Exit,
}

impl InstClass {
    /// Number of variants, for dense counter arrays.
    pub const COUNT: usize = 16;

    /// Every variant, indexed by its [`InstClass::index`].
    pub const ALL: [InstClass; InstClass::COUNT] = [
        InstClass::Fma,
        InstClass::FAlu,
        InstClass::IAlu,
        InstClass::Sfu,
        InstClass::LdGlobal,
        InstClass::StGlobal,
        InstClass::LdShared,
        InstClass::StShared,
        InstClass::LdConst,
        InstClass::LdTex,
        InstClass::LdLocal,
        InstClass::StLocal,
        InstClass::Atomic,
        InstClass::Branch,
        InstClass::Barrier,
        InstClass::Exit,
    ];

    /// Dense index of this class (`ALL[c.index()] == c`).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Inst {
    /// The counter class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Ffma { .. } => InstClass::Fma,
            Inst::Alu { op, .. } => match op {
                AluOp::FAdd | AluOp::FSub | AluOp::FMul | AluOp::FMin | AluOp::FMax => {
                    InstClass::FAlu
                }
                _ => InstClass::IAlu,
            },
            Inst::Imad { .. } | Inst::Un { .. } | Inst::SetP { .. } | Inst::Sel { .. } => {
                InstClass::IAlu
            }
            Inst::Sfu { .. } => InstClass::Sfu,
            Inst::Ld { space, .. } => match space {
                Space::Global => InstClass::LdGlobal,
                Space::Shared => InstClass::LdShared,
                Space::Const => InstClass::LdConst,
                Space::Tex => InstClass::LdTex,
                Space::Local => InstClass::LdLocal,
            },
            Inst::St { space, .. } => match space {
                Space::Shared => InstClass::StShared,
                Space::Local => InstClass::StLocal,
                _ => InstClass::StGlobal,
            },
            Inst::Atom { .. } => InstClass::Atomic,
            Inst::Bra { .. } => InstClass::Branch,
            Inst::Bar => InstClass::Barrier,
            Inst::Exit => InstClass::Exit,
        }
    }

    /// Floating-point operations contributed by one thread executing this
    /// instruction (FMA counts as 2, matching how the paper computes GFLOPS).
    pub fn flops(&self) -> u32 {
        match self.class() {
            InstClass::Fma => 2,
            InstClass::FAlu | InstClass::Sfu => 1,
            _ => 0,
        }
    }

    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Alu { dst, .. }
            | Inst::Ffma { dst, .. }
            | Inst::Imad { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Sfu { dst, .. }
            | Inst::SetP { dst, .. }
            | Inst::Sel { dst, .. }
            | Inst::Ld { dst, .. } => Some(*dst),
            Inst::Atom { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Invokes `f` for every source operand.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Inst::Alu { a, b, .. } | Inst::SetP { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Ffma { a, b, c, .. } | Inst::Imad { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
            Inst::Sel { c, a, b, .. } => {
                f(c);
                f(a);
                f(b);
            }
            Inst::Un { a, .. } | Inst::Sfu { a, .. } => f(a),
            Inst::Ld { addr, .. } => f(addr),
            Inst::St { addr, src, .. } => {
                f(addr);
                f(src);
            }
            Inst::Atom { addr, src, .. } => {
                f(addr);
                f(src);
            }
            Inst::Bra { pred, .. } => {
                if let Some(p) = pred {
                    f(&Operand::Reg(p.reg));
                }
            }
            Inst::Bar | Inst::Exit => {}
        }
    }

    /// Invokes `f` with a mutable reference to every source operand
    /// (predicates excluded: they must stay registers).
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Alu { a, b, .. } | Inst::SetP { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Ffma { a, b, c, .. } | Inst::Imad { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
            Inst::Sel { c, a, b, .. } => {
                f(c);
                f(a);
                f(b);
            }
            Inst::Un { a, .. } | Inst::Sfu { a, .. } => f(a),
            Inst::Ld { addr, .. } => f(addr),
            Inst::St { addr, src, .. } => {
                f(addr);
                f(src);
            }
            Inst::Atom { addr, src, .. } => {
                f(addr);
                f(src);
            }
            Inst::Bra { .. } | Inst::Bar | Inst::Exit => {}
        }
    }

    /// Registers read by this instruction (including branch predicates).
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(3);
        self.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                v.push(*r);
            }
        });
        v
    }

    /// True if this instruction has no side effects beyond writing `def()`
    /// (i.e. it is safe to delete when the destination is dead, and safe to
    /// subject to CSE).
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Inst::Alu { .. }
                | Inst::Ffma { .. }
                | Inst::Imad { .. }
                | Inst::Un { .. }
                | Inst::Sfu { .. }
                | Inst::SetP { .. }
                | Inst::Sel { .. }
        )
    }

    /// True for control-flow instructions that terminate a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Bra { .. } | Inst::Exit | Inst::Bar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> Reg {
        Reg(n)
    }

    #[test]
    fn class_and_flops() {
        let fma = Inst::Ffma {
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
            c: r(0).into(),
        };
        assert_eq!(fma.class(), InstClass::Fma);
        assert_eq!(fma.flops(), 2);

        let fadd = Inst::Alu {
            op: AluOp::FAdd,
            dst: r(0),
            a: r(1).into(),
            b: Operand::imm_f(1.0),
        };
        assert_eq!(fadd.class(), InstClass::FAlu);
        assert_eq!(fadd.flops(), 1);

        let iadd = Inst::Alu {
            op: AluOp::IAdd,
            dst: r(0),
            a: r(1).into(),
            b: Operand::imm_u(4),
        };
        assert_eq!(iadd.class(), InstClass::IAlu);
        assert_eq!(iadd.flops(), 0);

        let ld = Inst::Ld {
            space: Space::Global,
            dst: r(0),
            addr: r(1).into(),
            off: 0,
        };
        assert_eq!(ld.class(), InstClass::LdGlobal);
    }

    #[test]
    fn def_and_uses() {
        let fma = Inst::Ffma {
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
            c: r(0).into(),
        };
        assert_eq!(fma.def(), Some(r(0)));
        assert_eq!(fma.uses(), vec![r(1), r(2), r(0)]);

        let st = Inst::St {
            space: Space::Global,
            addr: r(3).into(),
            off: 4,
            src: r(5).into(),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![r(3), r(5)]);

        let bra = Inst::Bra {
            target: Label(0),
            reconv: Label(0),
            pred: Some(Pred::if_true(r(7))),
        };
        assert_eq!(bra.uses(), vec![r(7)]);
    }

    #[test]
    fn purity() {
        let sel = Inst::Sel {
            dst: r(0),
            c: r(1).into(),
            a: r(2).into(),
            b: r(3).into(),
        };
        assert!(sel.is_pure());
        let ld = Inst::Ld {
            space: Space::Shared,
            dst: r(0),
            addr: r(1).into(),
            off: 0,
        };
        assert!(!ld.is_pure());
        assert!(!Inst::Bar.is_pure());
    }

    #[test]
    fn terminators() {
        assert!(Inst::Exit.is_terminator());
        assert!(Inst::Bar.is_terminator());
        assert!(!Inst::Un {
            op: UnOp::Mov,
            dst: r(0),
            a: Operand::imm_u(0)
        }
        .is_terminator());
    }
}
