//! 32-bit register values.
//!
//! The G80 register file is typeless: every general-purpose register holds 32
//! bits and the instruction decides how to interpret them (`f32`, `u32`, or
//! `i32`). [`Value`] mirrors that — it is a bag of 32 bits with typed views.

/// A 32-bit register value with typed bit-cast views.
///
/// `repr(transparent)`: a `[Value; N]` has the layout of `[u32; N]`, which
/// the vectorized row evaluators in [`crate::exec`] rely on to load lanes
/// directly into SIMD registers.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Value(pub u32);

impl Value {
    /// The all-zeros value (0u32, 0i32, and +0.0f32 simultaneously).
    pub const ZERO: Value = Value(0);

    /// Creates a value from an `f32` bit pattern.
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        Value(v.to_bits())
    }

    /// Creates a value from a `u32`.
    #[inline]
    pub fn from_u32(v: u32) -> Self {
        Value(v)
    }

    /// Creates a value from an `i32` bit pattern.
    #[inline]
    pub fn from_i32(v: i32) -> Self {
        Value(v as u32)
    }

    /// Creates a boolean predicate value (1 for true, 0 for false).
    #[inline]
    pub fn from_bool(v: bool) -> Self {
        Value(v as u32)
    }

    /// Interprets the bits as `f32`.
    #[inline]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// Interprets the bits as `u32`.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Interprets the bits as `i32`.
    #[inline]
    pub fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// Predicate test: any nonzero bit pattern is true (PTX `setp` emits 1/0,
    /// but hardware branches on "register != 0").
    #[inline]
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:08x}({}|{})", self.0, self.as_u32(), self.as_f32())
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from_f32(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::from_u32(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::from_i32(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::INFINITY, f32::MIN_POSITIVE] {
            assert_eq!(Value::from_f32(v).as_f32(), v);
        }
    }

    #[test]
    fn nan_bits_preserved() {
        let nan = f32::from_bits(0x7fc0_1234);
        assert_eq!(Value::from_f32(nan).0, 0x7fc0_1234);
    }

    #[test]
    fn i32_u32_alias() {
        let v = Value::from_i32(-1);
        assert_eq!(v.as_u32(), u32::MAX);
        assert_eq!(v.as_i32(), -1);
    }

    #[test]
    fn bool_semantics() {
        assert!(Value::from_bool(true).as_bool());
        assert!(!Value::from_bool(false).as_bool());
        // Hardware treats any nonzero register as a true predicate.
        assert!(Value::from_f32(-0.0).as_bool()); // sign bit set
        assert!(!Value::ZERO.as_bool());
    }

    #[test]
    fn zero_is_all_views() {
        assert_eq!(Value::ZERO.as_f32(), 0.0);
        assert_eq!(Value::ZERO.as_u32(), 0);
        assert_eq!(Value::ZERO.as_i32(), 0);
    }
}
