//! Straight-line region extraction and lowering for the compiled engine.
//!
//! The predecoded engine still pays an `Inst` dispatch, operand-row
//! materialization, and per-arm bookkeeping for every issued instruction.
//! This pass lowers each kernel — once per process, cached alongside its
//! [`DecodedKernel`](crate::decode::DecodedKernel) in the simulator's
//! content-hash registry — into *regions*: maximal straight-line runs of
//! instructions whose functional effects touch only warp-private registers
//! and block shared memory. The simulator executes a whole region's
//! functional effects in one pre-bound pass over the warp when the region's
//! first instruction issues, then charges the interior instructions pure
//! *timing* steps with no interpretation at all.
//!
//! # What may live inside a region
//!
//! * every pure op ([`Inst::is_pure`]): ALU, FMA, IMAD, unary, SFU, SetP,
//!   Sel — side effects are exactly one register row write;
//! * shared-memory loads and stores. These are legal because (a) regions
//!   never cross a barrier, and under the CUDA consistency rules the
//!   simulator models (barriers separate shared-memory producers from
//!   consumers) no other warp's conflicting access can be ordered inside
//!   the region's issue window, and (b) their timing contribution — the
//!   bank-conflict degree — is a pure function of the warp's own address
//!   registers, so it can be precomputed at region entry and replayed by
//!   the per-instruction timing step.
//!
//! Everything else (global/const/tex/local memory, atomics, branches,
//! barriers, exits) breaks a region and stays on the interpreted path.
//!
//! # Region boundaries are control-flow safe
//!
//! A region must only ever be *entered* at its first instruction. Control
//! enters the instruction stream at pc 0, at branch targets, at
//! reconvergence points, and at the fall-through successor of every
//! terminator — exactly the pcs the divergence stack ([`Warp::take_branch`]
//! pushes frames at `target`/`next_pc` and parks the reconvergence frame at
//! `reconv`). All of those are *leaders* here, and a region never spans a
//! leader, so a warp that issues a region's first instruction will issue
//! every instruction of the region, in order, under a constant active mask
//! (no branch, barrier, or exit can intervene).
//!
//! [`Warp::take_branch`]: ../../g80_sim/warp/struct.Warp.html

use crate::inst::{AluOp, CmpOp, Inst, Operand, Scalar, SfuOp, Space, SpecialReg, UnOp};
use crate::kernel::Kernel;
use crate::Value;

/// Regions shorter than this are not worth the entry bookkeeping; their
/// instructions stay on the interpreted path.
pub const MIN_REGION_LEN: usize = 2;

/// A pre-resolved source operand. Register sources carry the row base index
/// (`reg * 32`) so the evaluator indexes the flat register file directly.
#[derive(Copy, Clone, Debug)]
pub enum Src {
    /// Register row base: `regs[base + lane]`.
    Reg(u32),
    Imm(Value),
    Param(u16),
    Special(SpecialReg),
}

fn lower_src(op: Operand) -> Src {
    match op {
        Operand::Reg(r) => Src::Reg(r.0 * 32),
        Operand::Imm(v) => Src::Imm(v),
        Operand::Param(i) => Src::Param(i),
        Operand::Special(s) => Src::Special(s),
    }
}

/// One lowered instruction: the flat register-machine bytecode the warp
/// evaluator executes. Destinations are row base indices like [`Src::Reg`].
#[derive(Copy, Clone, Debug)]
pub enum CompiledOp {
    Alu {
        op: AluOp,
        dst: u32,
        a: Src,
        b: Src,
    },
    Ffma {
        dst: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    Imad {
        dst: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    Un {
        op: UnOp,
        dst: u32,
        a: Src,
    },
    Sfu {
        op: SfuOp,
        dst: u32,
        a: Src,
    },
    SetP {
        op: CmpOp,
        ty: Scalar,
        dst: u32,
        a: Src,
        b: Src,
    },
    Sel {
        dst: u32,
        c: Src,
        a: Src,
        b: Src,
    },
    LdShared {
        dst: u32,
        addr: Src,
        off: i32,
    },
    StShared {
        addr: Src,
        off: i32,
        src: Src,
    },
}

fn lower(inst: &Inst) -> CompiledOp {
    match *inst {
        Inst::Alu { op, dst, a, b } => CompiledOp::Alu {
            op,
            dst: dst.0 * 32,
            a: lower_src(a),
            b: lower_src(b),
        },
        Inst::Ffma { dst, a, b, c } => CompiledOp::Ffma {
            dst: dst.0 * 32,
            a: lower_src(a),
            b: lower_src(b),
            c: lower_src(c),
        },
        Inst::Imad { dst, a, b, c } => CompiledOp::Imad {
            dst: dst.0 * 32,
            a: lower_src(a),
            b: lower_src(b),
            c: lower_src(c),
        },
        Inst::Un { op, dst, a } => CompiledOp::Un {
            op,
            dst: dst.0 * 32,
            a: lower_src(a),
        },
        Inst::Sfu { op, dst, a } => CompiledOp::Sfu {
            op,
            dst: dst.0 * 32,
            a: lower_src(a),
        },
        Inst::SetP { op, ty, dst, a, b } => CompiledOp::SetP {
            op,
            ty,
            dst: dst.0 * 32,
            a: lower_src(a),
            b: lower_src(b),
        },
        Inst::Sel { dst, c, a, b } => CompiledOp::Sel {
            dst: dst.0 * 32,
            c: lower_src(c),
            a: lower_src(a),
            b: lower_src(b),
        },
        Inst::Ld {
            space: Space::Shared,
            dst,
            addr,
            off,
        } => CompiledOp::LdShared {
            dst: dst.0 * 32,
            addr: lower_src(addr),
            off,
        },
        Inst::St {
            space: Space::Shared,
            addr,
            off,
            src,
        } => CompiledOp::StShared {
            addr: lower_src(addr),
            off,
            src: lower_src(src),
        },
        _ => unreachable!("lowering a region-ineligible instruction"),
    }
}

/// May this instruction live inside a region? (See the module doc.)
fn eligible(inst: &Inst) -> bool {
    inst.is_pure()
        || matches!(
            inst,
            Inst::Ld {
                space: Space::Shared,
                ..
            } | Inst::St {
                space: Space::Shared,
                ..
            }
        )
}

/// What the scheduler does when a warp's pc reaches this instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Step {
    /// First instruction of region `idx`: run the region's functional
    /// effects over the warp, then charge this instruction's timing.
    Enter(u32),
    /// Interior instruction of region `idx`: timing only — the functional
    /// work already happened at [`Step::Enter`].
    Timed(u32),
    /// Not part of any region: full interpretation.
    Interp,
}

/// One straight-line region: lowered ops for pcs `start .. start + ops.len()`.
#[derive(Clone, Debug)]
pub struct Region {
    /// pc of the first instruction.
    pub start: u32,
    pub ops: Vec<CompiledOp>,
}

/// A kernel lowered for the compiled engine: a per-pc step table (aligned
/// with the decoded micro-op table) plus the region bodies.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    /// One entry per instruction, same order as the code.
    pub steps: Vec<Step>,
    pub regions: Vec<Region>,
}

impl CompiledKernel {
    /// Lowers a kernel. O(code length); done once per kernel per process by
    /// the predecode registry.
    pub fn new(kernel: &Kernel) -> Self {
        Self::from_code(&kernel.code)
    }

    /// Lowers a raw instruction sequence.
    pub fn from_code(code: &[Inst]) -> Self {
        // Leaders: every pc where control can (re-)enter the stream. Bar and
        // Exit break regions anyway, but their successors are entry points
        // (barrier resume, divergence-stack pops) and cost nothing to mark.
        let mut leader = vec![false; code.len() + 1];
        leader[0] = true;
        for (pc, inst) in code.iter().enumerate() {
            match inst {
                Inst::Bra { target, reconv, .. } => {
                    leader[target.0 as usize] = true;
                    leader[reconv.0 as usize] = true;
                    leader[pc + 1] = true;
                }
                Inst::Bar | Inst::Exit => leader[pc + 1] = true,
                _ => {}
            }
        }

        let mut steps = vec![Step::Interp; code.len()];
        let mut regions = Vec::new();
        let mut pc = 0usize;
        while pc < code.len() {
            if !eligible(&code[pc]) {
                pc += 1;
                continue;
            }
            let start = pc;
            let mut end = pc + 1;
            while end < code.len() && eligible(&code[end]) && !leader[end] {
                end += 1;
            }
            if end - start >= MIN_REGION_LEN {
                let idx = regions.len() as u32;
                regions.push(Region {
                    start: start as u32,
                    ops: code[start..end].iter().map(lower).collect(),
                });
                steps[start] = Step::Enter(idx);
                for s in &mut steps[start + 1..end] {
                    *s = Step::Timed(idx);
                }
            }
            pc = end;
        }
        CompiledKernel { steps, regions }
    }

    /// Length (in instructions) of the longest lowered region, 0 when the
    /// kernel has none. The simulator's engine selection uses this as its
    /// profitability signal: region entry has a fixed pre-bind cost, so
    /// kernels with only short regions run faster un-lowered.
    pub fn max_region_len(&self) -> usize {
        self.regions.iter().map(|r| r.ops.len()).max().unwrap_or(0)
    }

    /// The step for the instruction at `pc`.
    #[inline]
    pub fn step(&self, pc: usize) -> Step {
        self.steps[pc]
    }

    /// The region entered/continued at `pc`, with the instruction's offset
    /// within it.
    #[inline]
    pub fn region_at(&self, idx: u32, pc: usize) -> (&Region, usize) {
        let r = &self.regions[idx as usize];
        (r, pc - r.start as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Label, Pred, Reg};

    fn r(n: u32) -> Reg {
        Reg(n)
    }

    fn fma(dst: u32) -> Inst {
        Inst::Ffma {
            dst: r(dst),
            a: r(1).into(),
            b: r(2).into(),
            c: r(dst).into(),
        }
    }

    fn ld_shared(dst: u32) -> Inst {
        Inst::Ld {
            space: Space::Shared,
            dst: r(dst),
            addr: r(0).into(),
            off: 0,
        }
    }

    fn ld_global(dst: u32) -> Inst {
        Inst::Ld {
            space: Space::Global,
            dst: r(dst),
            addr: r(0).into(),
            off: 0,
        }
    }

    #[test]
    fn straight_line_run_becomes_one_region() {
        // global load | shared ld, fma, shared ld, fma | exit
        let code = vec![
            ld_global(1),
            ld_shared(2),
            fma(3),
            ld_shared(4),
            fma(5),
            Inst::Exit,
        ];
        let ck = CompiledKernel::from_code(&code);
        assert_eq!(ck.regions.len(), 1);
        assert_eq!(ck.regions[0].start, 1);
        assert_eq!(ck.regions[0].ops.len(), 4);
        assert_eq!(
            ck.steps,
            vec![
                Step::Interp,
                Step::Enter(0),
                Step::Timed(0),
                Step::Timed(0),
                Step::Timed(0),
                Step::Interp,
            ]
        );
    }

    #[test]
    fn branch_targets_split_regions() {
        // A loop: body at pc 1 is a branch target, so the run 1..=2 must
        // not be glued to the eligible op at pc 0.
        let code = vec![
            fma(3),
            fma(4),
            fma(5),
            Inst::Bra {
                target: Label(1),
                reconv: Label(4),
                pred: Some(Pred::if_true(r(6))),
            },
            Inst::Exit,
        ];
        let ck = CompiledKernel::from_code(&code);
        // pc 0 alone is below MIN_REGION_LEN; pcs 1..=2 form a region.
        assert_eq!(ck.regions.len(), 1);
        assert_eq!(ck.regions[0].start, 1);
        assert_eq!(ck.regions[0].ops.len(), 2);
        assert_eq!(ck.steps[0], Step::Interp);
        assert_eq!(ck.steps[1], Step::Enter(0));
        assert_eq!(ck.steps[2], Step::Timed(0));
        assert_eq!(ck.steps[3], Step::Interp);
    }

    #[test]
    fn short_runs_stay_interpreted() {
        let code = vec![fma(3), ld_global(1), fma(4), ld_global(2), Inst::Exit];
        let ck = CompiledKernel::from_code(&code);
        assert!(ck.regions.is_empty());
        assert!(ck.steps.iter().all(|s| *s == Step::Interp));
    }

    #[test]
    fn barrier_breaks_regions() {
        let code = vec![fma(3), fma(4), Inst::Bar, fma(5), fma(6), Inst::Exit];
        let ck = CompiledKernel::from_code(&code);
        assert_eq!(ck.regions.len(), 2);
        assert_eq!(ck.regions[0].start, 0);
        assert_eq!(ck.regions[1].start, 3);
        assert_eq!(ck.steps[2], Step::Interp);
    }

    #[test]
    fn lowering_prescales_register_indices() {
        let ck = CompiledKernel::from_code(&[ld_shared(2), fma(3), Inst::Exit]);
        match ck.regions[0].ops[0] {
            CompiledOp::LdShared {
                dst,
                addr: Src::Reg(a),
                off,
            } => {
                assert_eq!(dst, 64);
                assert_eq!(a, 0);
                assert_eq!(off, 0);
            }
            ref op => panic!("unexpected lowering: {op:?}"),
        }
        match ck.regions[0].ops[1] {
            CompiledOp::Ffma { dst, .. } => assert_eq!(dst, 96),
            ref op => panic!("unexpected lowering: {op:?}"),
        }
    }
}
