//! Data-independence analysis: does a kernel's *timing* depend on the data
//! it loads?
//!
//! The simulator's block-class deduplication (`g80-sim`) replays blocks that
//! provably behave like an already-simulated representative. A block's
//! timing path is shaped only by its control flow (branch outcomes decide
//! masks and instruction counts) and its memory access patterns (addresses
//! decide coalescing, bank conflicts, and cache behaviour). If neither ever
//! depends on values loaded from memory, then two blocks of the same launch
//! can differ in timing only through their `ctaid` — exactly the property
//! the runtime witness check then verifies per block.
//!
//! The analysis is a flow-insensitive taint fixpoint over the flat code:
//! values produced by loads (and atomics) are tainted; taint propagates
//! through pure ALU ops and through shared/local memory (a store of tainted
//! data, or through a tainted address, taints every later load from that
//! space). A kernel is *timing data-independent* when no branch predicate
//! and no memory address is ever tainted. Immediates, parameters, and
//! special registers (`tid`, `ctaid`, …) are untainted — they are launch
//! constants or geometry, not data.

use crate::inst::{Inst, Operand, Space, SpecialReg};

/// Result of analysing one kernel's code.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TaintSummary {
    /// Some branch predicate depends on loaded data (divergence shape is
    /// data-dependent).
    pub tainted_branch: bool,
    /// Some load/store/atomic address depends on loaded data (coalescing,
    /// bank conflicts, or cache behaviour is data-dependent).
    pub tainted_address: bool,
    /// Some shared-memory access address depends on `ctaid`. When this is
    /// *false* (and the kernel is data-independent), every block of a launch
    /// computes lane-for-lane identical shared addresses, so its bank-
    /// conflict degrees are statically known to equal the representative's —
    /// the replay executor can skip recomputing and re-verifying them.
    pub ctaid_shared_addr: bool,
    /// Some branch predicate depends on `ctaid` (blocks may take different
    /// paths; the runtime witness check decides per launch).
    pub ctaid_branch: bool,
    /// The kernel performs atomic read-modify-writes.
    pub has_atomic: bool,
    /// The kernel reads constant memory (per-SM constant cache).
    pub uses_const: bool,
    /// The kernel reads texture memory (per-SM texture cache).
    pub uses_tex: bool,
}

impl TaintSummary {
    /// True when the timing of a block is a pure function of its geometry
    /// (`ctaid`, `tid`), the kernel parameters, and the machine config —
    /// never of the values loaded from memory.
    pub fn timing_data_independent(&self) -> bool {
        !self.tainted_branch && !self.tainted_address
    }
}

/// Taint-lattice bits carried per register and per poisoned space.
const DATA: u8 = 1;
const CTAID: u8 = 2;

/// Per-program-point taint state.
#[derive(Clone, PartialEq, Eq)]
struct TState {
    regs: Vec<u8>,
    smem: u8,
    local: u8,
}

impl TState {
    fn join_from(&mut self, other: &TState) -> bool {
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            if *b & !*a != 0 {
                *a |= *b;
                changed = true;
            }
        }
        if other.smem & !self.smem != 0 {
            self.smem |= other.smem;
            changed = true;
        }
        if other.local & !self.local != 0 {
            self.local |= other.local;
            changed = true;
        }
        changed
    }

    fn operand(&self, op: &Operand) -> u8 {
        match op {
            Operand::Reg(r) => self.regs[r.0 as usize],
            Operand::Special(SpecialReg::CtaidX | SpecialReg::CtaidY) => CTAID,
            // Immediates, params, and the remaining specials (tid, block and
            // grid dimensions) are identical across the blocks of a launch.
            _ => 0,
        }
    }
}

/// Runs the taint fixpoint over a flat instruction stream.
///
/// The analysis is flow-sensitive: registers are reused after allocation,
/// so each definition performs a strong update, and states merge at
/// control-flow joins. Divergent execution is covered by the same join —
/// lanes that skip a region correspond to the CFG edge around it, so the
/// reconvergence-point state is the union of both paths.
pub fn analyze(code: &[Inst]) -> TaintSummary {
    let mut summary = TaintSummary::default();
    if code.is_empty() {
        return summary;
    }
    let nregs = code
        .iter()
        .flat_map(|i| i.def().into_iter().chain(i.uses()))
        .map(|r| r.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let empty = TState {
        regs: vec![0; nregs],
        smem: 0,
        local: 0,
    };
    // Entry state per instruction; None = not yet reached.
    let mut states: Vec<Option<TState>> = vec![None; code.len()];
    states[0] = Some(empty);
    let mut work = vec![0usize];

    while let Some(pc) = work.pop() {
        let inst = &code[pc];
        let mut out = states[pc].clone().expect("queued without state");

        // Timing-channel checks at this point.
        match inst {
            Inst::Ld { space, addr, .. } | Inst::St { space, addr, .. } => {
                let t = out.operand(addr);
                if t & DATA != 0 {
                    summary.tainted_address = true;
                }
                if t & CTAID != 0 && *space == Space::Shared {
                    summary.ctaid_shared_addr = true;
                }
            }
            Inst::Atom { addr, .. } if out.operand(addr) & DATA != 0 => {
                summary.tainted_address = true;
            }
            Inst::Bra { pred: Some(p), .. } => {
                let t = out.regs[p.reg.0 as usize];
                if t & DATA != 0 {
                    summary.tainted_branch = true;
                }
                if t & CTAID != 0 {
                    summary.ctaid_branch = true;
                }
            }
            _ => {}
        }

        // Transfer: compute the taint of the defined value (if any) and the
        // per-space poison bits.
        let def_taint = match inst {
            Inst::Ld { space, .. } => match space {
                // Global memory holds unknown input data (which moreover
                // varies with the block that addressed it); the per-SM const
                // and texture caches additionally make any access a timing
                // event, reported separately via `uses_*`.
                Space::Global => DATA | CTAID,
                Space::Const => {
                    summary.uses_const = true;
                    DATA | CTAID
                }
                Space::Tex => {
                    summary.uses_tex = true;
                    DATA | CTAID
                }
                Space::Shared => out.smem,
                Space::Local => out.local,
            },
            Inst::Atom { .. } => {
                summary.has_atomic = true;
                DATA | CTAID
            }
            Inst::St {
                space, addr, src, ..
            } => {
                // Storing tainted data (or through a tainted address, which
                // may alias anything in the space) poisons the space.
                let poison = out.operand(src) | out.operand(addr);
                match space {
                    Space::Shared => out.smem |= poison,
                    Space::Local => out.local |= poison,
                    _ => {}
                }
                0
            }
            // Pure ops: dst tainted iff any source is.
            _ => {
                let mut any = 0;
                inst.for_each_use(|op| any |= out.operand(op));
                any
            }
        };
        if let Some(d) = inst.def() {
            out.regs[d.0 as usize] = def_taint; // strong update
        }

        // Propagate to successors.
        let mut push = |succ: usize, work: &mut Vec<usize>| {
            if succ >= code.len() {
                return;
            }
            let changed = match &mut states[succ] {
                Some(s) => s.join_from(&out),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        };
        match inst {
            Inst::Exit => {}
            Inst::Bra { target, pred, .. } => {
                push(target.0 as usize, &mut work);
                if pred.is_some() {
                    push(pc + 1, &mut work);
                }
            }
            _ => push(pc + 1, &mut work),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{KernelBuilder, Unroll};
    use crate::inst::{AtomOp, CmpOp, Pred, Scalar};

    /// Streaming kernel: addresses from tid/ctaid/params only.
    #[test]
    fn streaming_kernel_is_independent() {
        let mut b = KernelBuilder::new("stream");
        let p = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let w = b.fmul(v, 2.0f32);
        b.st_global(a, 0, w);
        let k = b.build();
        let s = analyze(&k.code);
        assert!(s.timing_data_independent(), "{s:?}");
        assert!(!s.has_atomic && !s.uses_const && !s.uses_tex);
    }

    /// Loaded value used as an address: timing depends on data.
    #[test]
    fn data_dependent_address_is_flagged() {
        let mut b = KernelBuilder::new("gather");
        let p = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        let idx = b.ld_global(a, 0); // data
        let byte2 = b.shl(idx, 2u32); // tainted
        let a2 = b.iadd(byte2, p);
        let v = b.ld_global(a2, 0); // tainted address
        b.st_global(a, 0, v);
        let k = b.build();
        let s = analyze(&k.code);
        assert!(s.tainted_address, "{s:?}");
        assert!(!s.timing_data_independent());
    }

    /// Taint must flow through shared memory: store data, reload it, branch.
    #[test]
    fn taint_flows_through_shared_memory() {
        let mut b = KernelBuilder::new("smem_flow");
        let p = b.param();
        b.shared_alloc(64);
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0); // data
        b.st_shared(byte, 0, v); // poisons shared
        b.bar();
        let w = b.ld_shared(byte, 0); // tainted again
        let pred = b.setp(CmpOp::Gt, Scalar::F32, w, 0.0f32);
        b.if_(Pred::if_true(pred), |b| {
            b.st_global(a, 0, 1.0f32);
        });
        let k = b.build();
        let s = analyze(&k.code);
        assert!(s.tainted_branch, "{s:?}");
        assert!(!s.timing_data_independent());
    }

    /// Atomics and cached spaces are reported for the sim-side policy.
    #[test]
    fn atomics_and_cached_spaces_reported() {
        let mut b = KernelBuilder::new("atom");
        let p = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        b.atom(AtomOp::Add, crate::inst::Space::Global, a, 0, tid);
        let k = b.build();
        assert!(analyze(&k.code).has_atomic);
    }

    /// Tiled-matmul shape: global addresses use ctaid, shared addresses use
    /// only tid — the shared access pattern is provably block-invariant.
    #[test]
    fn tid_indexed_shared_is_ctaid_free() {
        let mut b = KernelBuilder::new("tile");
        let p = b.param();
        b.shared_alloc(256);
        let tid = b.tid_x();
        let cta = b.ctaid_x();
        let ntid = b.ntid_x();
        let i = b.imad(cta, ntid, tid);
        let ga = b.shl(i, 2u32);
        let ga = b.iadd(ga, p);
        let v = b.ld_global(ga, 0);
        let sa = b.shl(tid, 2u32);
        b.st_shared(sa, 0, v);
        b.bar();
        let w = b.ld_shared(sa, 0);
        b.st_global(ga, 0, w);
        let k = b.build();
        let s = analyze(&k.code);
        assert!(s.timing_data_independent(), "{s:?}");
        assert!(!s.ctaid_shared_addr, "{s:?}");
        assert!(!s.ctaid_branch, "{s:?}");
    }

    /// A shared address derived from ctaid (and a branch on ctaid) must be
    /// flagged: blocks may differ in bank conflicts / paths.
    #[test]
    fn ctaid_dependent_shared_and_branch_flagged() {
        let mut b = KernelBuilder::new("skew");
        let p = b.param();
        b.shared_alloc(256);
        let tid = b.tid_x();
        let cta = b.ctaid_x();
        let skew = b.iadd(tid, cta);
        let lo = b.and(skew, 63u32);
        let sa = b.shl(lo, 2u32);
        b.st_shared(sa, 0, tid);
        let odd = b.and(cta, 1u32);
        let pr = b.setp(CmpOp::Ne, Scalar::U32, odd, 0u32);
        b.if_(Pred::if_true(pr), |b| {
            let ga = b.shl(tid, 2u32);
            let ga = b.iadd(ga, p);
            b.st_global(ga, 0, tid);
        });
        let k = b.build();
        let s = analyze(&k.code);
        assert!(s.timing_data_independent(), "{s:?}"); // ctaid is not data
        assert!(s.ctaid_shared_addr, "{s:?}");
        assert!(s.ctaid_branch, "{s:?}");
    }

    /// A branch on a launch constant (parameter) stays independent: loop
    /// trip counts driven by params are the common eligible case.
    #[test]
    fn param_driven_loop_is_independent() {
        let mut b = KernelBuilder::new("loop");
        let p = b.param();
        let n = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        let acc = b.mov(crate::inst::Operand::imm_f(0.0));
        b.for_range(0u32, n, 1, Unroll::None, |b, _i| {
            let v = b.ld_global(a, 0);
            let acc2 = b.ffma(v, v, acc);
            b.mov_to(acc, acc2);
        });
        b.st_global(a, 0, acc);
        let k = b.build();
        let s = analyze(&k.code);
        assert!(s.timing_data_independent(), "{s:?}");
    }
}
