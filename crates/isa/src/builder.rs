//! Structured kernel construction.
//!
//! [`KernelBuilder`] plays the role of CUDA C + nvcc: kernels are written as
//! structured Rust code (straight-line ops, `if_`, `for_range`, `do_while`)
//! and lowered to the flat ISA with well-formed reconvergence information,
//! then run through the optimizer passes and the register allocator.
//!
//! Loop unrolling is performed here, at construction time, exactly as
//! `#pragma unroll` directs nvcc: the body closure is re-invoked with the
//! iteration index as a constant operand, and the downstream constant-folding
//! pass then deletes the induction arithmetic (paper Section 4.3: "the
//! offsets are now constants").

use crate::inst::{
    AluOp, AtomOp, CmpOp, Inst, Label, Operand, Pred, Reg, Scalar, SfuOp, Space, SpecialReg, UnOp,
};
use crate::kernel::Kernel;
use crate::passes::{self, OptLevel};
use crate::regalloc;
use std::collections::HashMap;

/// Loop unrolling directive for [`KernelBuilder::for_range`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Unroll {
    /// Keep the loop rolled (branch + induction variable).
    None,
    /// Fully unroll; requires immediate bounds.
    Full,
    /// Unroll by a factor; requires immediate bounds and a trip count
    /// divisible by the factor.
    By(u32),
}

/// Options controlling [`KernelBuilder::build_with`].
#[derive(Copy, Clone, Debug)]
pub struct BuildOptions {
    /// Optimization level for the classical passes.
    pub opt: OptLevel,
    /// Register cap (the `-maxrregcount` analogue). Intervals that do not fit
    /// are spilled to Local memory.
    pub max_regs: Option<u32>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            opt: OptLevel::O2,
            max_regs: None,
        }
    }
}

/// Builder for one kernel.
pub struct KernelBuilder {
    name: String,
    code: Vec<Inst>,
    labels: Vec<Option<u32>>,
    next_reg: u32,
    num_params: u16,
    smem_bytes: u32,
    special_cache: HashMap<SpecialReg, Reg>,
}

impl KernelBuilder {
    /// Starts a new kernel.
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            name: name.to_string(),
            code: Vec::new(),
            labels: Vec::new(),
            next_reg: 0,
            num_params: 0,
            smem_bytes: 0,
            special_cache: HashMap::new(),
        }
    }

    // ---- resources -------------------------------------------------------

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Declares the next kernel parameter, returning its operand. Parameters
    /// are bound positionally at launch.
    pub fn param(&mut self) -> Operand {
        let i = self.num_params;
        self.num_params += 1;
        Operand::Param(i)
    }

    /// Statically allocates `words` 4-byte words of shared memory, returning
    /// the base *byte* address within the block's shared memory window.
    pub fn shared_alloc(&mut self, words: u32) -> u32 {
        let base = self.smem_bytes;
        self.smem_bytes += words * 4;
        base
    }

    /// Shared memory allocated so far, in bytes.
    pub fn smem_bytes(&self) -> u32 {
        self.smem_bytes
    }

    // ---- special registers ----------------------------------------------

    /// Reads a special register into a register, reusing a previous read
    /// when it is guaranteed to dominate this point. The cache is cleared at
    /// every control-flow boundary ([`KernelBuilder::bind`] and branch
    /// emission): a read first performed inside an `if_`/loop body is only
    /// written by the lanes that entered it, so it must not satisfy reads
    /// outside that scope.
    pub fn special(&mut self, s: SpecialReg) -> Reg {
        if let Some(&r) = self.special_cache.get(&s) {
            return r;
        }
        let r = self.un(UnOp::Mov, Operand::Special(s));
        self.special_cache.insert(s, r);
        r
    }

    /// threadIdx.x
    pub fn tid_x(&mut self) -> Reg {
        self.special(SpecialReg::TidX)
    }
    /// threadIdx.y
    pub fn tid_y(&mut self) -> Reg {
        self.special(SpecialReg::TidY)
    }
    /// blockIdx.x
    pub fn ctaid_x(&mut self) -> Reg {
        self.special(SpecialReg::CtaidX)
    }
    /// blockIdx.y
    pub fn ctaid_y(&mut self) -> Reg {
        self.special(SpecialReg::CtaidY)
    }
    /// blockDim.x
    pub fn ntid_x(&mut self) -> Reg {
        self.special(SpecialReg::NtidX)
    }
    /// blockDim.y
    pub fn ntid_y(&mut self) -> Reg {
        self.special(SpecialReg::NtidY)
    }
    /// gridDim.x
    pub fn nctaid_x(&mut self) -> Reg {
        self.special(SpecialReg::NctaidX)
    }
    /// gridDim.y
    pub fn nctaid_y(&mut self) -> Reg {
        self.special(SpecialReg::NctaidY)
    }

    // ---- raw emission ----------------------------------------------------

    /// Appends a raw instruction. Raw branches end the basic block, so the
    /// special-register cache is cleared here too (covering callers that
    /// bypass [`KernelBuilder::bra`]/[`KernelBuilder::bra_if`]).
    pub fn emit(&mut self, inst: Inst) {
        if matches!(inst, Inst::Bra { .. }) {
            self.special_cache.clear();
        }
        self.code.push(inst);
    }

    /// Two-source ALU op into an explicit destination (loop-carried values).
    pub fn alu_to(&mut self, op: AluOp, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit(Inst::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Integer add into an explicit destination (pointer bumps).
    pub fn iadd_to(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu_to(AluOp::IAdd, dst, a, b);
    }

    /// f32 add into an explicit destination.
    pub fn fadd_to(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu_to(AluOp::FAdd, dst, a, b);
    }

    /// Two-source ALU op into a fresh register.
    pub fn alu(&mut self, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.vreg();
        self.alu_to(op, dst, a, b);
        dst
    }

    /// One-source op into a fresh register.
    pub fn un(&mut self, op: UnOp, a: impl Into<Operand>) -> Reg {
        let dst = self.vreg();
        self.emit(Inst::Un {
            op,
            dst,
            a: a.into(),
        });
        dst
    }

    // Convenience arithmetic (fresh destination).

    /// f32 add.
    pub fn fadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::FAdd, a, b)
    }
    /// f32 subtract.
    pub fn fsub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::FSub, a, b)
    }
    /// f32 multiply.
    pub fn fmul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::FMul, a, b)
    }
    /// Integer add.
    pub fn iadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::IAdd, a, b)
    }
    /// Integer subtract.
    pub fn isub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::ISub, a, b)
    }
    /// Integer multiply (low 32 bits).
    pub fn imul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::IMul, a, b)
    }
    /// Shift left.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Shl, a, b)
    }
    /// Logical shift right.
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::ShrU, a, b)
    }
    /// Bitwise and.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::And, a, b)
    }
    /// Bitwise or.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Or, a, b)
    }
    /// Bitwise xor.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Xor, a, b)
    }

    /// f32 fused multiply-add into a fresh register: `a * b + c`.
    pub fn ffma(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let dst = self.vreg();
        self.ffma_to(dst, a, b, c);
        dst
    }

    /// f32 FMA into an explicit destination (for accumulators).
    pub fn ffma_to(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        self.emit(Inst::Ffma {
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
    }

    /// Integer multiply-add into a fresh register.
    pub fn imad(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let dst = self.vreg();
        self.emit(Inst::Imad {
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
        dst
    }

    /// Move into a fresh register.
    pub fn mov(&mut self, a: impl Into<Operand>) -> Reg {
        self.un(UnOp::Mov, a)
    }

    /// Move into an explicit destination.
    pub fn mov_to(&mut self, dst: Reg, a: impl Into<Operand>) {
        self.emit(Inst::Un {
            op: UnOp::Mov,
            dst,
            a: a.into(),
        });
    }

    /// SFU transcendental into a fresh register.
    pub fn sfu(&mut self, op: SfuOp, a: impl Into<Operand>) -> Reg {
        let dst = self.vreg();
        self.emit(Inst::Sfu {
            op,
            dst,
            a: a.into(),
        });
        dst
    }

    /// Comparison producing a fresh predicate register.
    pub fn setp(
        &mut self,
        op: CmpOp,
        ty: Scalar,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Reg {
        let dst = self.vreg();
        self.emit(Inst::SetP {
            op,
            ty,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Select into a fresh register.
    pub fn sel(
        &mut self,
        c: impl Into<Operand>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Reg {
        let dst = self.vreg();
        self.emit(Inst::Sel {
            dst,
            c: c.into(),
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    // ---- memory ----------------------------------------------------------

    /// Load into a fresh register.
    pub fn ld(&mut self, space: Space, addr: impl Into<Operand>, off: i32) -> Reg {
        let dst = self.vreg();
        self.emit(Inst::Ld {
            space,
            dst,
            addr: addr.into(),
            off,
        });
        dst
    }

    /// Load into an explicit destination.
    pub fn ld_to(&mut self, space: Space, dst: Reg, addr: impl Into<Operand>, off: i32) {
        self.emit(Inst::Ld {
            space,
            dst,
            addr: addr.into(),
            off,
        });
    }

    /// Store.
    pub fn st(
        &mut self,
        space: Space,
        addr: impl Into<Operand>,
        off: i32,
        src: impl Into<Operand>,
    ) {
        self.emit(Inst::St {
            space,
            addr: addr.into(),
            off,
            src: src.into(),
        });
    }

    /// Global load.
    pub fn ld_global(&mut self, addr: impl Into<Operand>, off: i32) -> Reg {
        self.ld(Space::Global, addr, off)
    }
    /// Global store.
    pub fn st_global(&mut self, addr: impl Into<Operand>, off: i32, src: impl Into<Operand>) {
        self.st(Space::Global, addr, off, src)
    }
    /// Shared-memory load.
    pub fn ld_shared(&mut self, addr: impl Into<Operand>, off: i32) -> Reg {
        self.ld(Space::Shared, addr, off)
    }
    /// Shared-memory store.
    pub fn st_shared(&mut self, addr: impl Into<Operand>, off: i32, src: impl Into<Operand>) {
        self.st(Space::Shared, addr, off, src)
    }
    /// Constant-memory load.
    pub fn ld_const(&mut self, addr: impl Into<Operand>, off: i32) -> Reg {
        self.ld(Space::Const, addr, off)
    }
    /// Texture fetch.
    pub fn ld_tex(&mut self, addr: impl Into<Operand>, off: i32) -> Reg {
        self.ld(Space::Tex, addr, off)
    }

    /// Atomic op; returns the register receiving the old value.
    pub fn atom(
        &mut self,
        op: AtomOp,
        space: Space,
        addr: impl Into<Operand>,
        off: i32,
        src: impl Into<Operand>,
    ) -> Reg {
        let dst = self.vreg();
        self.emit(Inst::Atom {
            op,
            space,
            dst: Some(dst),
            addr: addr.into(),
            off,
            src: src.into(),
        });
        dst
    }

    /// Block-wide barrier (`__syncthreads()`).
    pub fn bar(&mut self) {
        self.emit(Inst::Bar);
    }

    // ---- labels and control flow ------------------------------------------

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label((self.labels.len() - 1) as u32)
    }

    /// Binds a label to the current position. Control-flow join points end
    /// the current basic block, so the special-register read cache is
    /// cleared (see [`KernelBuilder::special`]).
    pub fn bind(&mut self, l: Label) {
        assert!(
            self.labels[l.0 as usize].is_none(),
            "label {l:?} bound twice"
        );
        self.labels[l.0 as usize] = Some(self.code.len() as u32);
        self.special_cache.clear();
    }

    /// Unconditional branch. Ends the basic block: the special-register
    /// cache is cleared.
    pub fn bra(&mut self, target: Label) {
        self.emit(Inst::Bra {
            target,
            reconv: target,
            pred: None,
        });
        self.special_cache.clear();
    }

    /// Conditional branch with explicit reconvergence point. Ends the basic
    /// block: the special-register cache is cleared.
    pub fn bra_if(&mut self, pred: Pred, target: Label, reconv: Label) {
        self.emit(Inst::Bra {
            target,
            reconv,
            pred: Some(pred),
        });
        self.special_cache.clear();
    }

    /// `if pred { then }` — threads failing the predicate jump to the end.
    pub fn if_(&mut self, pred: Pred, then_body: impl FnOnce(&mut Self)) {
        let endif = self.new_label();
        self.bra_if(
            Pred {
                reg: pred.reg,
                negate: !pred.negate,
            },
            endif,
            endif,
        );
        then_body(self);
        self.bind(endif);
    }

    /// `if pred { then } else { other }`.
    pub fn if_else(
        &mut self,
        pred: Pred,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let else_l = self.new_label();
        let endif = self.new_label();
        self.bra_if(
            Pred {
                reg: pred.reg,
                negate: !pred.negate,
            },
            else_l,
            endif,
        );
        then_body(self);
        self.bra(endif);
        self.bind(else_l);
        else_body(self);
        self.bind(endif);
    }

    /// Counted loop `for (i = start; i < end; i += step) body(i)`.
    ///
    /// The comparison is unsigned. With [`Unroll::Full`] or [`Unroll::By`],
    /// `start` and `end` must be immediates; the body closure receives the
    /// iteration index as an immediate operand (or `counter + j*step`
    /// registers for the inner repetitions of a partial unroll).
    pub fn for_range(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: u32,
        unroll: Unroll,
        mut body: impl FnMut(&mut Self, Operand),
    ) {
        assert!(step > 0, "loop step must be positive");
        let start = start.into();
        let end = end.into();
        match unroll {
            Unroll::Full => {
                let s = start
                    .as_imm()
                    .expect("full unroll needs imm start")
                    .as_u32();
                let e = end.as_imm().expect("full unroll needs imm end").as_u32();
                let mut i = s;
                while i < e {
                    body(self, Operand::imm_u(i));
                    i += step;
                }
            }
            Unroll::By(f) => {
                assert!(f > 0, "unroll factor must be positive");
                let s = start
                    .as_imm()
                    .expect("partial unroll needs imm start")
                    .as_u32();
                let e = end.as_imm().expect("partial unroll needs imm end").as_u32();
                let trips = (e.saturating_sub(s)).div_ceil(step);
                assert!(
                    trips % f == 0,
                    "trip count {trips} not divisible by unroll factor {f}"
                );
                let big_step = step * f;
                self.rolled_loop(Operand::imm_u(s), Operand::imm_u(e), big_step, |b, i| {
                    for j in 0..f {
                        let idx = if j == 0 {
                            i
                        } else {
                            Operand::Reg(b.iadd(i, Operand::imm_u(j * step)))
                        };
                        body(b, idx);
                    }
                });
            }
            Unroll::None => {
                self.rolled_loop(start, end, step, |b, i| body(b, i));
            }
        }
    }

    fn rolled_loop(
        &mut self,
        start: Operand,
        end: Operand,
        step: u32,
        mut body: impl FnMut(&mut Self, Operand),
    ) {
        let i = self.mov(start);
        let head = self.new_label();
        let exit = self.new_label();
        self.bind(head);
        let done = self.setp(CmpOp::Ge, Scalar::U32, i, end);
        self.bra_if(Pred::if_true(done), exit, exit);
        body(self, Operand::Reg(i));
        self.alu_to(AluOp::IAdd, i, i, Operand::imm_u(step));
        self.bra(head);
        self.bind(exit);
    }

    /// Post-tested loop: runs `body` at least once, repeating while the
    /// returned predicate holds.
    pub fn do_while(&mut self, mut body: impl FnMut(&mut Self) -> Pred) {
        let head = self.new_label();
        let exit = self.new_label();
        self.bind(head);
        let p = body(self);
        self.bra_if(p, head, exit);
        self.bind(exit);
    }

    // ---- finalization ------------------------------------------------------

    /// Builds with default options (O2, no register cap).
    pub fn build(self) -> Kernel {
        self.build_with(BuildOptions::default())
    }

    /// Resolves labels, runs the optimizer pipeline and the register
    /// allocator, and returns the finished kernel.
    pub fn build_with(mut self, opts: BuildOptions) -> Kernel {
        // Terminate.
        if !matches!(self.code.last(), Some(Inst::Exit)) {
            self.emit(Inst::Exit);
        }
        // Resolve labels to instruction indices. Labels bound past the end
        // point at the final Exit.
        let resolve = |l: Label, labels: &[Option<u32>], len: u32| -> Label {
            let idx = labels[l.0 as usize].expect("unbound label");
            Label(idx.min(len - 1))
        };
        let len = self.code.len() as u32;
        for inst in &mut self.code {
            if let Inst::Bra { target, reconv, .. } = inst {
                *target = resolve(*target, &self.labels, len);
                *reconv = resolve(*reconv, &self.labels, len);
            }
        }

        let mut kernel = Kernel {
            name: self.name,
            code: self.code,
            regs_per_thread: 0,
            smem_bytes: self.smem_bytes,
            num_params: self.num_params,
        };
        kernel
            .validate()
            .unwrap_or_else(|e| panic!("invalid kernel {}: {e}", kernel.name));

        passes::run(opts.opt, &mut kernel.code);
        kernel.regs_per_thread = regalloc::allocate(&mut kernel.code, opts.max_regs);
        kernel
            .validate()
            .unwrap_or_else(|e| panic!("kernel {} invalid after passes: {e}", kernel.name));
        kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstClass;

    #[test]
    fn straight_line_builds() {
        let mut b = KernelBuilder::new("t");
        let x = b.param();
        let t = b.tid_x();
        let addr = b.shl(t, 2u32);
        let addr = b.iadd(addr, x);
        let v = b.ld_global(addr, 0);
        let v2 = b.fmul(v, 2.0f32);
        b.st_global(addr, 0, v2);
        let k = b.build();
        assert!(k.validate().is_ok());
        assert!(k.regs_per_thread >= 1);
        assert_eq!(k.num_params, 1);
        assert_eq!(k.static_mix().get(InstClass::LdGlobal), 1);
        assert_eq!(k.static_mix().get(InstClass::StGlobal), 1);
    }

    #[test]
    fn special_reads_are_cached_within_a_block() {
        let mut b = KernelBuilder::new("t");
        let t1 = b.tid_x();
        let t2 = b.tid_x();
        assert_eq!(t1, t2);
        let t3 = b.tid_y();
        assert_ne!(t1, t3);
    }

    #[test]
    fn special_cache_does_not_leak_across_control_flow() {
        // A special register first read inside an if_ body must NOT satisfy
        // a read after the join: inactive lanes never executed the mov.
        let mut b = KernelBuilder::new("t");
        let p = b.mov(Operand::imm_u(1));
        let inner = std::cell::Cell::new(Reg(0));
        b.if_(Pred::if_true(p), |b| {
            inner.set(b.tid_y());
        });
        let outer = b.tid_y();
        assert_ne!(inner.get(), outer, "cached special leaked out of if_ scope");
    }

    #[test]
    fn full_unroll_has_no_branches() {
        let mut b = KernelBuilder::new("t");
        let t = b.tid_x();
        let acc = b.un(UnOp::CvtU2F, t); // non-constant start: FMAs survive
        b.for_range(0u32, 8u32, 1, Unroll::Full, |b, i| {
            let fi = b.un(UnOp::CvtU2F, i);
            b.ffma_to(acc, fi, 2.0f32, acc);
        });
        b.st_global(Operand::imm_u(0), 0, acc);
        let k = b.build();
        assert_eq!(k.static_mix().get(InstClass::Branch), 0);
        assert_eq!(k.static_mix().get(InstClass::Fma), 8);
    }

    #[test]
    fn rolled_loop_shape() {
        let mut b = KernelBuilder::new("t");
        let acc = b.mov(Operand::imm_f(0.0));
        b.for_range(0u32, 8u32, 1, Unroll::None, |b, i| {
            let fi = b.un(UnOp::CvtU2F, i);
            b.ffma_to(acc, fi, 2.0f32, acc);
        });
        b.st_global(Operand::imm_u(0), 0, acc);
        let k = b.build();
        // one conditional exit branch + one back edge
        assert_eq!(k.static_mix().get(InstClass::Branch), 2);
        assert_eq!(k.static_mix().get(InstClass::Fma), 1);
    }

    #[test]
    fn partial_unroll_replicates_body() {
        let mut b = KernelBuilder::new("t");
        let acc = b.mov(Operand::imm_f(0.0));
        b.for_range(0u32, 16u32, 1, Unroll::By(4), |b, i| {
            let fi = b.un(UnOp::CvtU2F, i);
            b.ffma_to(acc, fi, 2.0f32, acc);
        });
        b.st_global(Operand::imm_u(0), 0, acc);
        let k = b.build();
        assert_eq!(k.static_mix().get(InstClass::Fma), 4);
        assert_eq!(k.static_mix().get(InstClass::Branch), 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn partial_unroll_rejects_ragged_trip() {
        let mut b = KernelBuilder::new("t");
        b.for_range(0u32, 10u32, 1, Unroll::By(4), |_, _| {});
    }

    #[test]
    fn if_else_reconvergence_is_forward() {
        let mut b = KernelBuilder::new("t");
        let t = b.tid_x();
        let p = b.setp(CmpOp::Lt, Scalar::U32, t, 16u32);
        let out = b.vreg();
        b.if_else(
            Pred::if_true(p),
            |b| b.mov_to(out, Operand::imm_f(1.0)),
            |b| b.mov_to(out, Operand::imm_f(2.0)),
        );
        b.st_global(Operand::imm_u(0), 0, out);
        let k = b.build();
        assert!(k.validate().is_ok());
    }

    #[test]
    fn shared_alloc_accumulates() {
        let mut b = KernelBuilder::new("t");
        let a = b.shared_alloc(256);
        let c = b.shared_alloc(256);
        assert_eq!(a, 0);
        assert_eq!(c, 1024);
        assert_eq!(b.smem_bytes(), 2048);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = KernelBuilder::new("t");
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn do_while_builds() {
        let mut b = KernelBuilder::new("t");
        let i = b.mov(Operand::imm_u(0));
        b.do_while(|b| {
            b.alu_to(AluOp::IAdd, i, i, Operand::imm_u(1));
            let p = b.setp(CmpOp::Lt, Scalar::U32, i, 10u32);
            Pred::if_true(p)
        });
        b.st_global(Operand::imm_u(0), 0, i);
        let k = b.build();
        assert!(k.validate().is_ok());
    }
}
