//! Tagged warp value rows: the uniform/affine/full lane structure.
//!
//! The paper's Section 3 optimization principles are *analytical* rules over
//! warp access patterns: a half-warp coalesces when lane `k` touches word
//! `k`, banks conflict by the stride of the word index. Those patterns exist
//! because almost every register in the paper's kernels is either
//! warp-uniform (parameters, block-level constants) or affine in the lane
//! index (`tid`-derived induction values and addresses). [`LaneRow`] makes
//! that structure explicit: a register row carries a shape tag, and the
//! fold rules below propagate shapes through the integer ALU algebra
//! exactly — in wrapping mod-2^32 arithmetic a lane row `base + stride·l`
//! stays affine under add/sub, multiply-by-uniform, and left shift, so the
//! simulator executes those warp instructions in O(1) instead of O(32) and
//! derives memory degrees in closed form (see `g80_sim::memory`).
//!
//! Exactness contract: every fold in this module returns `Some(shape)` only
//! when expanding `shape` yields **bit-identical** lanes to running the
//! per-lane evaluator on the expanded operands. Uniform operands fold
//! through *any* op (identical input bits give identical output bits, floats
//! included); affine operands fold only through ops that are affine in
//! wrapping u32 arithmetic. Anything else returns `None` and the caller
//! falls back to the full 32-lane evaluator. Folds never return
//! [`LaneRow::Full`]: `Some` always describes the row without touching lane
//! storage.

use crate::exec::{self, Row};
use crate::inst::{AluOp, CmpOp, Scalar, SfuOp, UnOp};
use crate::Value;

/// The shape of one 32-lane register row.
///
/// `Full` carries no payload: it tags a row whose lanes live in the
/// register file's 32-entry backing storage (the representation the eager
/// engines always used). `Uniform`/`Affine` describe the whole row in a
/// word or two; the backing storage for such a row is *stale* until
/// materialized.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LaneRow {
    /// Every lane holds the same bit pattern.
    Uniform(Value),
    /// Lane `l` holds `base.wrapping_add(stride.wrapping_mul(l))`.
    Affine { base: u32, stride: u32 },
    /// No structure known; lanes live in backing storage.
    Full,
}

impl LaneRow {
    /// Affine constructor that canonicalizes stride 0 to `Uniform`, so
    /// downstream folds (which accept `Uniform` everywhere) see the
    /// strongest shape.
    #[inline]
    pub fn affine(base: u32, stride: u32) -> LaneRow {
        if stride == 0 {
            LaneRow::Uniform(Value(base))
        } else {
            LaneRow::Affine { base, stride }
        }
    }

    /// The value of lane `l`. `None` for `Full` (the shape does not carry
    /// lane data).
    #[inline]
    pub fn lane(self, l: usize) -> Option<Value> {
        match self {
            LaneRow::Uniform(v) => Some(v),
            LaneRow::Affine { base, stride } => {
                Some(Value(base.wrapping_add(stride.wrapping_mul(l as u32))))
            }
            LaneRow::Full => None,
        }
    }

    /// Expands the shape into `dst`. Returns `false` (leaving `dst`
    /// untouched) for `Full`.
    #[inline]
    pub fn expand_into(self, dst: &mut Row) -> bool {
        match self {
            LaneRow::Uniform(v) => {
                dst.fill(v);
                true
            }
            LaneRow::Affine { base, stride } => {
                let mut a = base;
                for d in dst.iter_mut() {
                    *d = Value(a);
                    a = a.wrapping_add(stride);
                }
                true
            }
            LaneRow::Full => false,
        }
    }

    /// `(base, stride)` view for address arithmetic: a `Uniform` row is
    /// stride 0; `Full` has no closed form.
    #[inline]
    pub fn base_stride(self) -> Option<(u32, u32)> {
        match self {
            LaneRow::Uniform(v) => Some((v.0, 0)),
            LaneRow::Affine { base, stride } => Some((base, stride)),
            LaneRow::Full => None,
        }
    }

    /// Classifies an eager 32-lane row (used for launch-constant rows like
    /// the `tid` specials, where the one-time scan is amortized over the
    /// whole launch).
    pub fn classify(row: &Row) -> LaneRow {
        let base = row[0].0;
        let stride = row[1].0.wrapping_sub(base);
        let mut a = base;
        for v in row.iter() {
            if v.0 != a {
                return LaneRow::Full;
            }
            a = a.wrapping_add(stride);
        }
        LaneRow::affine(base, stride)
    }
}

/// Folds a two-source ALU op over shapes. See the module-level exactness
/// contract: uniform⊕uniform folds for every op; affine rows fold only
/// through the ops that are affine in wrapping u32 arithmetic (add,
/// subtract, multiply-by-uniform, left-shift-by-uniform).
pub fn fold_alu(op: AluOp, a: LaneRow, b: LaneRow) -> Option<LaneRow> {
    use LaneRow::*;
    if let (Uniform(x), Uniform(y)) = (a, b) {
        return Some(Uniform(exec::eval_alu(op, x, y)));
    }
    match (op, a, b) {
        (AluOp::IAdd, Affine { base, stride }, Uniform(k))
        | (AluOp::IAdd, Uniform(k), Affine { base, stride }) => {
            Some(LaneRow::affine(base.wrapping_add(k.0), stride))
        }
        (
            AluOp::IAdd,
            Affine {
                base: b1,
                stride: s1,
            },
            Affine {
                base: b2,
                stride: s2,
            },
        ) => Some(LaneRow::affine(b1.wrapping_add(b2), s1.wrapping_add(s2))),
        (AluOp::ISub, Affine { base, stride }, Uniform(k)) => {
            Some(LaneRow::affine(base.wrapping_sub(k.0), stride))
        }
        (AluOp::ISub, Uniform(k), Affine { base, stride }) => Some(LaneRow::affine(
            k.0.wrapping_sub(base),
            stride.wrapping_neg(),
        )),
        (
            AluOp::ISub,
            Affine {
                base: b1,
                stride: s1,
            },
            Affine {
                base: b2,
                stride: s2,
            },
        ) => Some(LaneRow::affine(b1.wrapping_sub(b2), s1.wrapping_sub(s2))),
        (AluOp::IMul, Affine { base, stride }, Uniform(k))
        | (AluOp::IMul, Uniform(k), Affine { base, stride }) => Some(LaneRow::affine(
            base.wrapping_mul(k.0),
            stride.wrapping_mul(k.0),
        )),
        // x << k == x · 2^(k & 31) in wrapping u32 arithmetic, so the shift
        // distributes over the affine form exactly.
        (AluOp::Shl, Affine { base, stride }, Uniform(k)) => {
            let k = k.0 & 31;
            Some(LaneRow::affine(
                base.wrapping_shl(k),
                stride.wrapping_shl(k),
            ))
        }
        _ => None,
    }
}

/// Folds a one-source op over a shape. `Mov` passes any non-`Full` shape
/// through; `Not` is `-x - 1`, affine with the negated stride; everything
/// else folds only from uniform.
pub fn fold_un(op: UnOp, a: LaneRow) -> Option<LaneRow> {
    use LaneRow::*;
    match (op, a) {
        (_, Full) => None,
        (_, Uniform(x)) => Some(Uniform(exec::eval_un(op, x))),
        (UnOp::Mov, s) => Some(s),
        (UnOp::Not, Affine { base, stride }) => Some(LaneRow::affine(!base, stride.wrapping_neg())),
        _ => None,
    }
}

/// Folds an integer multiply-add over shapes: the product folds by the
/// `IMul` rule, the sum by the `IAdd` rule.
pub fn fold_imad(a: LaneRow, b: LaneRow, c: LaneRow) -> Option<LaneRow> {
    let prod = fold_alu(AluOp::IMul, a, b)?;
    fold_alu(AluOp::IAdd, prod, c)
}

/// Folds a floating multiply-add: uniform operands only (float ops are not
/// affine in the bit pattern).
pub fn fold_ffma(a: LaneRow, b: LaneRow, c: LaneRow) -> Option<LaneRow> {
    use LaneRow::*;
    match (a, b, c) {
        (Uniform(x), Uniform(y), Uniform(z)) => Some(Uniform(exec::eval_ffma(x, y, z))),
        _ => None,
    }
}

/// Folds an SFU transcendental: uniform only.
pub fn fold_sfu(op: SfuOp, a: LaneRow) -> Option<LaneRow> {
    match a {
        LaneRow::Uniform(x) => Some(LaneRow::Uniform(exec::eval_sfu(op, x))),
        _ => None,
    }
}

/// Folds a comparison: uniform only (ordering is not preserved by wrapping
/// affine arithmetic).
pub fn fold_cmp(op: CmpOp, ty: Scalar, a: LaneRow, b: LaneRow) -> Option<LaneRow> {
    use LaneRow::*;
    match (a, b) {
        (Uniform(x), Uniform(y)) => Some(Uniform(exec::eval_cmp(op, ty, x, y))),
        _ => None,
    }
}

/// Folds a select: a uniform condition picks one source shape whole (if
/// that shape is not `Full`); otherwise uniform-everything.
pub fn fold_sel(c: LaneRow, a: LaneRow, b: LaneRow) -> Option<LaneRow> {
    match c {
        LaneRow::Uniform(cv) => {
            let pick = if cv.as_bool() { a } else { b };
            if pick == LaneRow::Full {
                None
            } else {
                Some(pick)
            }
        }
        _ => None,
    }
}

/// Greatest common divisor (used by the closed-form bank-conflict degree).
pub fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand(s: LaneRow) -> Row {
        let mut r = [Value::ZERO; 32];
        assert!(s.expand_into(&mut r), "expand of non-Full shape");
        r
    }

    fn u(v: u32) -> LaneRow {
        LaneRow::Uniform(Value(v))
    }

    fn af(base: u32, stride: u32) -> LaneRow {
        LaneRow::Affine { base, stride }
    }

    /// Every Some() fold must match the per-lane evaluator bit-for-bit.
    #[test]
    fn alu_folds_match_lane_eval() {
        let shapes = [
            u(0),
            u(7),
            u(0xdead_beef),
            u(Value::from_f32(1.5).0),
            af(0x1000, 4),
            af(3, 0x8000_0001),
            af(u32::MAX - 5, 7),
            af(0, u32::MAX),
        ];
        let ops = [
            AluOp::FAdd,
            AluOp::FMul,
            AluOp::FMin,
            AluOp::IAdd,
            AluOp::ISub,
            AluOp::IMul,
            AluOp::UMin,
            AluOp::IMax,
            AluOp::And,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::ShrU,
            AluOp::ShrS,
            AluOp::Rotl,
        ];
        for &op in &ops {
            for &a in &shapes {
                for &b in &shapes {
                    if let Some(folded) = fold_alu(op, a, b) {
                        let (ar, br) = (expand(a), expand(b));
                        let got = expand(folded);
                        for l in 0..32 {
                            assert_eq!(
                                got[l],
                                exec::eval_alu(op, ar[l], br[l]),
                                "{op:?} {a:?} {b:?} lane {l}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn un_and_imad_folds_match_lane_eval() {
        let shapes = [u(5), u(0xffff_fff0), af(0x40, 4), af(9, u32::MAX - 2)];
        for &op in &[UnOp::Mov, UnOp::Not, UnOp::FNeg, UnOp::CvtI2F, UnOp::CvtF2U] {
            for &a in &shapes {
                if let Some(folded) = fold_un(op, a) {
                    let ar = expand(a);
                    let got = expand(folded);
                    for l in 0..32 {
                        assert_eq!(got[l], exec::eval_un(op, ar[l]), "{op:?} {a:?} lane {l}");
                    }
                }
            }
        }
        for &a in &shapes {
            for &b in &shapes {
                for &c in &shapes {
                    if let Some(folded) = fold_imad(a, b, c) {
                        let (ar, br, cr) = (expand(a), expand(b), expand(c));
                        let got = expand(folded);
                        for l in 0..32 {
                            assert_eq!(
                                got[l],
                                exec::eval_imad(ar[l], br[l], cr[l]),
                                "imad {a:?} {b:?} {c:?} lane {l}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn affine_rows_do_not_fold_through_float_or_shift_right() {
        let a = af(0x100, 4);
        assert_eq!(fold_alu(AluOp::FAdd, a, u(1)), None);
        assert_eq!(fold_alu(AluOp::ShrU, a, u(2)), None);
        assert_eq!(fold_alu(AluOp::Shl, u(2), a), None); // shape in the count
        assert_eq!(fold_alu(AluOp::IMul, a, a), None); // quadratic in l
        assert_eq!(fold_ffma(a, u(1), u(2)), None);
        assert_eq!(fold_sfu(SfuOp::Rcp, a), None);
        assert_eq!(fold_cmp(CmpOp::Lt, Scalar::U32, a, u(7)), None);
    }

    #[test]
    fn stride_zero_canonicalizes_to_uniform() {
        assert_eq!(LaneRow::affine(42, 0), u(42));
        assert_eq!(
            fold_alu(AluOp::ISub, af(10, 4), af(2, 4)),
            Some(u(8)),
            "equal strides cancel"
        );
    }

    #[test]
    fn sel_picks_whole_shape_on_uniform_condition() {
        let a = af(0x100, 4);
        assert_eq!(fold_sel(u(1), a, u(9)), Some(a));
        assert_eq!(fold_sel(u(0), a, u(9)), Some(u(9)));
        assert_eq!(fold_sel(u(1), LaneRow::Full, u(9)), None);
        assert_eq!(fold_sel(a, u(1), u(2)), None);
    }

    #[test]
    fn classify_roundtrips() {
        let mut row = [Value::ZERO; 32];
        af(0x20, 12).expand_into(&mut row);
        assert_eq!(LaneRow::classify(&row), af(0x20, 12));
        u(77).expand_into(&mut row);
        assert_eq!(LaneRow::classify(&row), u(77));
        row[13] = Value(1);
        assert_eq!(LaneRow::classify(&row), LaneRow::Full);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 16), 16);
        assert_eq!(gcd(4, 16), 4);
        assert_eq!(gcd(6, 16), 2);
        assert_eq!(gcd(5, 16), 1);
    }
}
