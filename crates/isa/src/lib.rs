//! # g80-isa — a PTX-like virtual ISA for the G80 reproduction
//!
//! This crate plays the role of CUDA C, nvcc, and PTX in the reproduction of
//! Ryoo et al. (PPoPP 2008). Kernels are written against the
//! [`builder::KernelBuilder`] DSL (structured control flow, `#pragma
//! unroll`-style loop unrolling), optimized by classical compiler passes
//! ([`passes`]: constant folding, copy propagation, CSE, strength reduction,
//! dead-code elimination), and register-allocated ([`regalloc`]) to produce a
//! flat [`kernel::Kernel`] that the `g80-sim` crate executes.
//!
//! The observables the paper's methodology needs all come out of this crate:
//!
//! * **instruction mix** (FMA fraction, global-access fraction) via
//!   [`kernel::InstMix`] — the input to Section 4's potential-throughput
//!   estimates;
//! * **registers per thread** via the allocator — the input to the occupancy
//!   calculation;
//! * **shared memory per block** via the builder's static allocator.
//!
//! ```
//! use g80_isa::builder::KernelBuilder;
//!
//! // y[i] = a * x[i] + y[i]
//! let mut b = KernelBuilder::new("saxpy");
//! let (x, y, a) = (b.param(), b.param(), b.param());
//! let tid = b.tid_x();
//! let ntid = b.ntid_x();
//! let cta = b.ctaid_x();
//! let i = b.imad(cta, ntid, tid);
//! let byte = b.shl(i, 2u32);
//! let xa = b.iadd(byte, x);
//! let ya = b.iadd(byte, y);
//! let xv = b.ld_global(xa, 0);
//! let yv = b.ld_global(ya, 0);
//! let r = b.ffma(a, xv, yv);
//! b.st_global(ya, 0, r);
//! let kernel = b.build();
//! assert!(kernel.regs_per_thread <= 8);
//! ```

pub mod builder;
pub mod compile;
pub mod dataflow;
pub mod decode;
pub mod disasm;
pub mod exec;
pub mod inst;
pub mod kernel;
pub mod liveness;
pub mod passes;
pub mod regalloc;
pub mod row;

mod value;

pub use builder::{BuildOptions, KernelBuilder, Unroll};
pub use compile::CompiledKernel;
pub use dataflow::TaintSummary;
pub use decode::{DecodedKernel, IssueClass, MemKind, MicroOp};
pub use inst::{
    AluOp, AtomOp, CmpOp, Inst, InstClass, Label, Operand, Pred, Reg, Scalar, SfuOp, Space,
    SpecialReg, UnOp,
};
pub use kernel::{InstMix, Kernel};
pub use passes::OptLevel;
pub use row::LaneRow;
pub use value::Value;
