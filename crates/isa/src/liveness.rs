//! Control-flow graph construction and register liveness analysis.
//!
//! Used by dead-code elimination and by the linear-scan register allocator
//! (live intervals over the flat instruction order).

// Index-based loops here intentionally walk instruction *positions*.
#![allow(clippy::needless_range_loop)]

use crate::inst::{Inst, Reg};

/// A basic block: the half-open instruction range `[start, end)`.
#[derive(Clone, Debug)]
pub struct Block {
    pub start: usize,
    pub end: usize,
    pub succs: Vec<usize>,
}

/// Control-flow graph over flat kernel code.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Block index containing each instruction.
    pub block_of: Vec<usize>,
}

/// Builds the CFG. Leaders are: instruction 0, branch targets, and
/// instructions following a terminator. `Bar` conservatively ends a block
/// (it orders memory, and keeping it a boundary simplifies local passes).
pub fn build_cfg(code: &[Inst]) -> Cfg {
    let n = code.len();
    let mut leader = vec![false; n + 1];
    leader[0] = true;
    for (i, inst) in code.iter().enumerate() {
        match inst {
            Inst::Bra { target, .. } => {
                leader[target.0 as usize] = true;
                leader[i + 1] = true;
            }
            Inst::Exit | Inst::Bar => leader[i + 1] = true,
            _ => {}
        }
    }

    let mut blocks = Vec::new();
    let mut block_of = vec![0usize; n];
    let mut start = 0usize;
    for i in 1..=n {
        if i == n || leader[i] {
            let b = blocks.len();
            for idx in start..i {
                block_of[idx] = b;
            }
            blocks.push(Block {
                start,
                end: i,
                succs: Vec::new(),
            });
            start = i;
        }
    }

    // Successor edges.
    let nb = blocks.len();
    for b in 0..nb {
        let last = blocks[b].end - 1;
        let succs: Vec<usize> = match &code[last] {
            Inst::Bra {
                target, pred: None, ..
            } => vec![block_of[target.0 as usize]],
            Inst::Bra {
                target,
                pred: Some(_),
                ..
            } => {
                let mut s = vec![block_of[target.0 as usize]];
                if blocks[b].end < n {
                    s.push(b + 1);
                }
                s
            }
            Inst::Exit => vec![],
            _ => {
                if blocks[b].end < n {
                    vec![b + 1]
                } else {
                    vec![]
                }
            }
        };
        blocks[b].succs = succs;
    }

    Cfg { blocks, block_of }
}

/// Dense register bitset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    pub fn new(nregs: usize) -> Self {
        RegSet {
            words: vec![0; nregs.div_ceil(64)],
        }
    }
    pub fn insert(&mut self, r: Reg) {
        self.words[r.0 as usize / 64] |= 1 << (r.0 % 64);
    }
    pub fn remove(&mut self, r: Reg) {
        self.words[r.0 as usize / 64] &= !(1 << (r.0 % 64));
    }
    pub fn contains(&self, r: Reg) -> bool {
        (self.words[r.0 as usize / 64] >> (r.0 % 64)) & 1 != 0
    }
    /// `self |= other`; returns true if self changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }
    /// Iterates set registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| (w >> b) & 1 != 0)
                .map(move |b| Reg((wi * 64 + b) as u32))
        })
    }
}

/// The number of virtual registers referenced by the code (max id + 1).
pub fn num_regs(code: &[Inst]) -> usize {
    let mut max = 0u32;
    for inst in code {
        if let Some(d) = inst.def() {
            max = max.max(d.0 + 1);
        }
        for u in inst.uses() {
            max = max.max(u.0 + 1);
        }
    }
    max as usize
}

/// Per-block live-in / live-out sets (backwards dataflow to fixpoint).
pub struct Liveness {
    pub live_in: Vec<RegSet>,
    pub live_out: Vec<RegSet>,
}

pub fn liveness(code: &[Inst], cfg: &Cfg) -> Liveness {
    let nregs = num_regs(code);
    let nb = cfg.blocks.len();

    // Per-block gen (upward-exposed uses) and kill (defs).
    let mut gen = vec![RegSet::new(nregs); nb];
    let mut kill = vec![RegSet::new(nregs); nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for i in blk.start..blk.end {
            for u in code[i].uses() {
                if !kill[b].contains(u) {
                    gen[b].insert(u);
                }
            }
            if let Some(d) = code[i].def() {
                kill[b].insert(d);
            }
        }
    }

    let mut live_in = vec![RegSet::new(nregs); nb];
    let mut live_out = vec![RegSet::new(nregs); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut out = RegSet::new(nregs);
            for &s in &cfg.blocks[b].succs {
                out.union_with(&live_in[s]);
            }
            if live_out[b] != out {
                live_out[b] = out;
                changed = true;
            }
            // in = gen | (out - kill)
            let mut inp = gen[b].clone();
            for r in live_out[b].iter() {
                if !kill[b].contains(r) {
                    inp.insert(r);
                }
            }
            if live_in[b] != inp {
                live_in[b] = inp;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Label, Operand, Pred, UnOp};

    fn mov(dst: u32, v: u32) -> Inst {
        Inst::Un {
            op: UnOp::Mov,
            dst: Reg(dst),
            a: Operand::imm_u(v),
        }
    }
    fn add(dst: u32, a: u32, b: u32) -> Inst {
        Inst::Alu {
            op: AluOp::IAdd,
            dst: Reg(dst),
            a: Reg(a).into(),
            b: Reg(b).into(),
        }
    }

    #[test]
    fn straight_line_single_block() {
        let code = vec![mov(0, 1), mov(1, 2), add(2, 0, 1), Inst::Exit];
        let cfg = build_cfg(&code);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn diamond_cfg() {
        // 0: mov r0      (block 0)
        // 1: bra r0 -> 4 (block 0, succs 1 and 2)
        // 2: mov r1      (block 1)
        // 3: bra -> 5    (block 1 -> block 3)
        // 4: mov r1      (block 2 -> block 3)
        // 5: add r2=r1+r1(block 3)
        // 6: exit
        let code = vec![
            mov(0, 1),
            Inst::Bra {
                target: Label(4),
                reconv: Label(5),
                pred: Some(Pred::if_true(Reg(0))),
            },
            mov(1, 10),
            Inst::Bra {
                target: Label(5),
                reconv: Label(5),
                pred: None,
            },
            mov(1, 20),
            add(2, 1, 1),
            Inst::Exit,
        ];
        let cfg = build_cfg(&code);
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs, vec![2, 1]);
        assert_eq!(cfg.blocks[1].succs, vec![3]);
        assert_eq!(cfg.blocks[2].succs, vec![3]);

        let lv = liveness(&code, &cfg);
        // r1 live into the join block, r0 not.
        let join = 3;
        assert!(lv.live_in[join].contains(Reg(1)));
        assert!(!lv.live_in[join].contains(Reg(0)));
        // r0 live into blocks 1? no — only used by the branch in block 0.
        assert!(!lv.live_in[1].contains(Reg(0)));
    }

    #[test]
    fn loop_keeps_accumulator_live() {
        // 0: mov r0, 0        block0
        // 1: mov r1, 0        block0
        // 2: add r0 = r0 + r1 block1 (loop head)
        // 3: add r1 = r1 + r1 block1
        // 4: bra r1 -> 2      block1 (back edge)
        // 5: add r2 = r0 + r0 block2
        // 6: exit
        let code = vec![
            mov(0, 0),
            mov(1, 0),
            add(0, 0, 1),
            add(1, 1, 1),
            Inst::Bra {
                target: Label(2),
                reconv: Label(5),
                pred: Some(Pred::if_true(Reg(1))),
            },
            add(2, 0, 0),
            Inst::Exit,
        ];
        let cfg = build_cfg(&code);
        let lv = liveness(&code, &cfg);
        let loop_block = cfg.block_of[2];
        // r0 and r1 both live around the back edge.
        assert!(lv.live_in[loop_block].contains(Reg(0)));
        assert!(lv.live_in[loop_block].contains(Reg(1)));
        assert!(lv.live_out[loop_block].contains(Reg(0)));
    }

    #[test]
    fn regset_ops() {
        let mut s = RegSet::new(130);
        s.insert(Reg(0));
        s.insert(Reg(65));
        s.insert(Reg(129));
        assert!(s.contains(Reg(65)));
        assert!(!s.contains(Reg(64)));
        let collected: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(collected, vec![0, 65, 129]);
        s.remove(Reg(65));
        assert!(!s.contains(Reg(65)));

        let mut t = RegSet::new(130);
        t.insert(Reg(7));
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s)); // second union changes nothing
        assert!(t.contains(Reg(0)) && t.contains(Reg(7)) && t.contains(Reg(129)));
    }
}
