//! Linear-scan register allocation.
//!
//! Maps virtual registers onto the smallest physical register file that fits,
//! because on the G80 the per-thread register count directly limits how many
//! thread blocks an SM can hold (Section 4.2: 10 registers ⇒ 3 blocks of 256
//! threads; 11 registers ⇒ 2 blocks). When a cap is imposed (the
//! `-maxrregcount` analogue) the allocator spills the longest-lived values to
//! Local memory, which physically lives in DRAM — making the cost of register
//! pressure visible to the simulator exactly as it was on hardware.

use crate::inst::{Inst, Label, Operand, Reg, Space};
use crate::liveness::{build_cfg, liveness, num_regs};
use std::collections::HashMap;

/// A live interval over flat instruction indices, inclusive.
#[derive(Clone, Debug)]
struct Interval {
    reg: Reg,
    start: usize,
    end: usize,
}

/// Computes conservative live intervals: for each register, the span from the
/// first position where it is defined or live to the last. Liveness across
/// back edges is captured by the block-level dataflow, so loop-carried values
/// span their whole loop.
fn intervals(code: &[Inst]) -> Vec<Interval> {
    let cfg = build_cfg(code);
    let lv = liveness(code, &cfg);
    let nregs = num_regs(code);
    let mut start = vec![usize::MAX; nregs];
    let mut end = vec![0usize; nregs];
    let mut touch = |r: Reg, i: usize| {
        let id = r.0 as usize;
        if start[id] == usize::MAX {
            start[id] = i;
        }
        start[id] = start[id].min(i);
        end[id] = end[id].max(i);
    };

    for (b, blk) in cfg.blocks.iter().enumerate() {
        // Anything live across this block spans the whole block.
        let mut live = lv.live_out[b].clone();
        for r in lv.live_in[b].iter() {
            touch(r, blk.start);
        }
        for r in live.iter() {
            if blk.end > blk.start {
                touch(r, blk.end - 1);
            }
        }
        for i in (blk.start..blk.end).rev() {
            if let Some(d) = code[i].def() {
                touch(d, i);
                live.remove(d);
            }
            for u in code[i].uses() {
                touch(u, i);
                live.insert(u);
            }
        }
    }

    let mut out: Vec<Interval> = (0..nregs)
        .filter(|&i| start[i] != usize::MAX)
        .map(|i| Interval {
            reg: Reg(i as u32),
            start: start[i],
            end: end[i],
        })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.reg.0));
    out
}

/// Assigns physical registers by linear scan. Returns (assignment, count).
fn linear_scan(ivs: &[Interval]) -> (HashMap<Reg, u32>, u32) {
    let mut assignment = HashMap::new();
    // active: (end, phys) sorted by end.
    let mut active: Vec<(usize, u32)> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut next_phys = 0u32;

    for iv in ivs {
        // Expire intervals that ended strictly before this start.
        let mut j = 0;
        while j < active.len() {
            if active[j].0 < iv.start {
                free.push(active[j].1);
                active.swap_remove(j);
            } else {
                j += 1;
            }
        }
        free.sort_unstable_by(|a, b| b.cmp(a)); // pop lowest id
        let phys = free.pop().unwrap_or_else(|| {
            let p = next_phys;
            next_phys += 1;
            p
        });
        assignment.insert(iv.reg, phys);
        active.push((iv.end, phys));
    }
    (assignment, next_phys.max(1))
}

/// Rewrites every register reference through the assignment.
fn apply(code: &mut [Inst], assignment: &HashMap<Reg, u32>) {
    let map = |r: Reg| Reg(*assignment.get(&r).expect("unassigned register"));
    for inst in code.iter_mut() {
        // defs
        match inst {
            Inst::Alu { dst, .. }
            | Inst::Ffma { dst, .. }
            | Inst::Imad { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Sfu { dst, .. }
            | Inst::SetP { dst, .. }
            | Inst::Sel { dst, .. }
            | Inst::Ld { dst, .. } => *dst = map(*dst),
            Inst::Atom { dst: Some(d), .. } => *d = map(*d),
            _ => {}
        }
        // uses
        inst.for_each_use_mut(|op| {
            if let Operand::Reg(r) = op {
                *op = Operand::Reg(map(*r));
            }
        });
        if let Inst::Bra { pred: Some(p), .. } = inst {
            p.reg = map(p.reg);
        }
    }
}

/// Rewrites `code` so that every occurrence of the spilled registers goes
/// through Local memory, inserting reloads before uses and stores after defs.
/// Branch labels are remapped for the insertions. Returns the next free
/// virtual register id.
fn spill(code: &mut Vec<Inst>, spilled: &HashMap<Reg, u32>, mut next_vreg: u32) -> u32 {
    let mut out: Vec<Inst> = Vec::with_capacity(code.len() * 2);
    // new_index[i] = index of instruction i's replacement in `out`.
    let mut new_index = Vec::with_capacity(code.len() + 1);

    for inst in code.iter() {
        let mut inst = *inst;
        let mut pre: Vec<Inst> = Vec::new();

        // Reload spilled sources into fresh temporaries.
        let reload = |r: Reg, next_vreg: &mut u32, pre: &mut Vec<Inst>| -> Reg {
            let slot = spilled[&r];
            let tmp = Reg(*next_vreg);
            *next_vreg += 1;
            pre.push(Inst::Ld {
                space: Space::Local,
                dst: tmp,
                addr: Operand::imm_u(slot * 4),
                off: 0,
            });
            tmp
        };
        inst.for_each_use_mut(|op| {
            if let Operand::Reg(r) = op {
                if spilled.contains_key(r) {
                    *op = Operand::Reg(reload(*r, &mut next_vreg, &mut pre));
                }
            }
        });
        if let Inst::Bra { pred: Some(p), .. } = &mut inst {
            if spilled.contains_key(&p.reg) {
                p.reg = reload(p.reg, &mut next_vreg, &mut pre);
            }
        }

        // Redirect a spilled destination into a temporary + store.
        let mut post: Vec<Inst> = Vec::new();
        if let Some(d) = inst.def() {
            if let Some(&slot) = spilled.get(&d) {
                let tmp = Reg(next_vreg);
                next_vreg += 1;
                match &mut inst {
                    Inst::Alu { dst, .. }
                    | Inst::Ffma { dst, .. }
                    | Inst::Imad { dst, .. }
                    | Inst::Un { dst, .. }
                    | Inst::Sfu { dst, .. }
                    | Inst::SetP { dst, .. }
                    | Inst::Sel { dst, .. }
                    | Inst::Ld { dst, .. } => *dst = tmp,
                    Inst::Atom { dst, .. } => *dst = Some(tmp),
                    _ => unreachable!(),
                }
                post.push(Inst::St {
                    space: Space::Local,
                    addr: Operand::imm_u(slot * 4),
                    off: 0,
                    src: tmp.into(),
                });
            }
        }

        // Branches to this instruction must land on its first reload, or a
        // jump would consume stale registers.
        new_index.push(out.len() as u32);
        out.extend(pre);
        out.push(inst);
        out.extend(post);
    }
    new_index.push(out.len() as u32);

    for inst in out.iter_mut() {
        if let Inst::Bra { target, reconv, .. } = inst {
            *target = Label(new_index[target.0 as usize]);
            *reconv = Label(new_index[reconv.0 as usize]);
        }
    }
    *code = out;
    next_vreg
}

/// Allocates registers in place. Returns the physical register count per
/// thread. If `max_regs` is given and the natural allocation exceeds it,
/// long-lived values are spilled to Local memory until the code fits.
pub fn allocate(code: &mut Vec<Inst>, max_regs: Option<u32>) -> u32 {
    let mut next_vreg = num_regs(code) as u32;
    let mut spill_slots: u32 = 0;

    for _round in 0..16 {
        let ivs = intervals(code);
        let (assignment, count) = linear_scan(&ivs);
        let cap = max_regs.unwrap_or(u32::MAX);
        if count <= cap {
            apply(code, &assignment);
            return count;
        }
        // Spill: pick the longest intervals first (they block the most),
        // skipping trivially short ones (spill temporaries).
        let mut candidates: Vec<&Interval> =
            ivs.iter().filter(|iv| iv.end - iv.start > 1).collect();
        candidates.sort_by_key(|iv| std::cmp::Reverse(iv.end - iv.start));
        let excess = (count - cap).max(1) as usize;
        let mut chosen = HashMap::new();
        for iv in candidates.into_iter().take(excess) {
            chosen.insert(iv.reg, spill_slots);
            spill_slots += 1;
        }
        if chosen.is_empty() {
            // Nothing left to spill; give up and return the honest count.
            apply(code, &assignment);
            return count;
        }
        next_vreg = spill(code, &chosen, next_vreg);
    }
    // Shouldn't be reachable; allocate whatever is there.
    let ivs = intervals(code);
    let (assignment, count) = linear_scan(&ivs);
    apply(code, &assignment);
    count
}

#[cfg(test)]
mod tests {

    use crate::builder::{KernelBuilder, Unroll};
    use crate::inst::Operand;

    #[test]
    fn independent_values_share_registers() {
        let mut b = KernelBuilder::new("t");
        let base = b.param();
        // Four sequential, non-overlapping computations should reuse regs.
        for i in 0..4 {
            let x = b.ld_global(base, i * 4);
            let y = b.fmul(x, 2.0f32);
            b.st_global(base, i * 4, y);
        }
        let k = b.build();
        assert!(
            k.regs_per_thread <= 3,
            "expected register reuse, got {}",
            k.regs_per_thread
        );
    }

    #[test]
    fn overlapping_values_get_distinct_registers() {
        let mut b = KernelBuilder::new("t");
        let base = b.param();
        let xs: Vec<_> = (0..6).map(|i| b.ld_global(base, i * 4)).collect();
        // All six live simultaneously here.
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = b.fadd(acc, x);
        }
        b.st_global(base, 0, acc);
        let k = b.build();
        assert!(
            k.regs_per_thread >= 6,
            "six simultaneously-live values need ≥6 regs, got {}",
            k.regs_per_thread
        );
    }

    #[test]
    fn loop_accumulator_survives_allocation() {
        // Semantic check via the interval logic: accumulator must not be
        // clobbered by loop-body temporaries.
        let mut b = KernelBuilder::new("t");
        let out = b.param();
        let acc = b.mov(Operand::imm_f(0.0));
        b.for_range(0u32, 10u32, 1, Unroll::None, |b, i| {
            let f = b.un(crate::inst::UnOp::CvtU2F, i);
            b.ffma_to(acc, f, f, acc);
        });
        b.st_global(out, 0, acc);
        let k = b.build();
        // Registers: counter, acc, f, predicate — small but distinct.
        assert!(k.regs_per_thread >= 3 && k.regs_per_thread <= 8);
    }

    #[test]
    fn spilling_respects_cap() {
        let mut b = KernelBuilder::new("t");
        let base = b.param();
        let xs: Vec<_> = (0..12).map(|i| b.ld_global(base, i * 4)).collect();
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = b.fadd(acc, x);
        }
        b.st_global(base, 0, acc);
        let k = b.build_with(crate::builder::BuildOptions {
            opt: crate::passes::OptLevel::O1,
            max_regs: Some(6),
        });
        assert!(
            k.regs_per_thread <= 6,
            "cap violated: {}",
            k.regs_per_thread
        );
        // Spill traffic must exist.
        use crate::inst::InstClass;
        let mix = k.static_mix();
        assert!(mix.get(InstClass::StLocal) > 0);
        assert!(mix.get(InstClass::LdLocal) > 0);
    }

    #[test]
    fn unrolling_does_not_explode_registers() {
        // Fully unrolled accumulation loop: temporaries die each iteration.
        let mut b = KernelBuilder::new("t");
        let base = b.param();
        let acc = b.mov(Operand::imm_f(0.0));
        b.for_range(0u32, 32u32, 1, Unroll::Full, |b, i| {
            let x = b.ld_global(base, i.as_imm().unwrap().as_u32() as i32 * 4);
            b.ffma_to(acc, x, x, acc);
        });
        b.st_global(base, 0, acc);
        let k = b.build();
        assert!(
            k.regs_per_thread <= 6,
            "unrolled loop should reuse temp registers, got {}",
            k.regs_per_thread
        );
    }
}
