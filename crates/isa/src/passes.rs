//! Classical optimizer passes.
//!
//! Section 4.3 of the paper applies "common subexpression elimination and
//! loop unrolling … removing all loop branches, induction variable
//! increments, and inner loop address calculation instructions, since the
//! offsets are now constants". Loop unrolling happens in the builder (the
//! `#pragma unroll` analogue); this module supplies the rest:
//!
//! * **Local value numbering** per basic block: constant folding, copy &
//!   constant propagation, integer algebraic simplification / strength
//!   reduction, common-subexpression elimination, and folding of
//!   `base + const` address arithmetic into load/store offsets.
//! * **Global dead-code elimination** over the CFG using liveness.
//!
//! Floating-point identities (`x + 0.0`, `x * 1.0`) are deliberately *not*
//! simplified: they are not bit-exact under IEEE 754 (−0.0, NaN payloads)
//! and the pass pipeline must preserve semantics exactly.

#![allow(clippy::needless_range_loop)] // position-indexed rewriting

use crate::exec;
use crate::inst::{AluOp, Inst, Label, Operand, Reg, UnOp};
use crate::liveness::{build_cfg, liveness};
use crate::Value;
use std::collections::HashMap;

/// Optimization levels.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum OptLevel {
    /// No optimization: code exactly as built.
    O0,
    /// Folding, propagation, offset folding, DCE.
    O1,
    /// O1 plus common-subexpression elimination.
    O2,
}

/// Runs the pass pipeline at the given level, to a fixpoint (bounded).
pub fn run(opt: OptLevel, code: &mut Vec<Inst>) {
    if opt == OptLevel::O0 {
        return;
    }
    let cse = opt >= OptLevel::O2;
    for _ in 0..4 {
        let before = code.clone();
        local_value_numbering(code, cse);
        dead_code_elimination(code);
        if *code == before {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Local value numbering
// ---------------------------------------------------------------------------

/// CSE key for pure instructions, over *resolved* operands.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ExprKey {
    Alu(AluOp, Operand, Operand),
    Ffma(Operand, Operand, Operand),
    Imad(Operand, Operand, Operand),
    Un(UnOp, Operand),
    Sfu(crate::inst::SfuOp, Operand),
    SetP(crate::inst::CmpOp, crate::inst::Scalar, Operand, Operand),
    Sel(Operand, Operand, Operand),
}

impl ExprKey {
    fn mentions(&self, r: Reg) -> bool {
        let m = |o: &Operand| matches!(o, Operand::Reg(x) if *x == r);
        match self {
            ExprKey::Alu(_, a, b) | ExprKey::SetP(_, _, a, b) => m(a) || m(b),
            ExprKey::Ffma(a, b, c) | ExprKey::Imad(a, b, c) | ExprKey::Sel(a, b, c) => {
                m(a) || m(b) || m(c)
            }
            ExprKey::Un(_, a) | ExprKey::Sfu(_, a) => m(a),
        }
    }
}

struct BlockState {
    /// reg -> its current known value (imm / other reg / special / param).
    copies: HashMap<Reg, Operand>,
    /// available expression -> register holding it.
    exprs: HashMap<ExprKey, Reg>,
    /// reg -> (base reg, byte offset) from an `IAdd base, imm`.
    addrs: HashMap<Reg, (Reg, i32)>,
}

impl BlockState {
    fn new() -> Self {
        BlockState {
            copies: HashMap::new(),
            exprs: HashMap::new(),
            addrs: HashMap::new(),
        }
    }

    fn resolve(&self, op: Operand) -> Operand {
        match op {
            Operand::Reg(r) => self.copies.get(&r).copied().unwrap_or(op),
            _ => op,
        }
    }

    /// Invalidates all knowledge involving `r` (it is being redefined).
    fn kill(&mut self, r: Reg) {
        self.copies.remove(&r);
        self.copies
            .retain(|_, v| !matches!(v, Operand::Reg(x) if *x == r));
        self.exprs.retain(|k, v| *v != r && !k.mentions(r));
        self.addrs.retain(|k, (base, _)| *k != r && *base != r);
    }
}

fn imm_of(op: Operand) -> Option<Value> {
    op.as_imm()
}

/// Attempts to constant-fold a fully-immediate instruction into `Mov dst, imm`.
fn try_fold(inst: &Inst) -> Option<Inst> {
    let v = match *inst {
        Inst::Alu { op, dst, a, b } => {
            let (a, b) = (imm_of(a)?, imm_of(b)?);
            return Some(mov(dst, Operand::Imm(exec::eval_alu(op, a, b))));
        }
        Inst::Un { op, dst, a } => {
            if op == UnOp::Mov {
                return None; // already canonical
            }
            let a = imm_of(a)?;
            return Some(mov(dst, Operand::Imm(exec::eval_un(op, a))));
        }
        Inst::Ffma { dst, a, b, c } => (dst, exec::eval_ffma(imm_of(a)?, imm_of(b)?, imm_of(c)?)),
        Inst::Imad { dst, a, b, c } => (dst, exec::eval_imad(imm_of(a)?, imm_of(b)?, imm_of(c)?)),
        Inst::SetP { op, ty, dst, a, b } => (dst, exec::eval_cmp(op, ty, imm_of(a)?, imm_of(b)?)),
        Inst::Sel { dst, c, a, b } => {
            let c = imm_of(c)?;
            let pick = if c.as_bool() { a } else { b };
            return Some(mov(dst, pick));
        }
        _ => return None,
    };
    Some(mov(v.0, Operand::Imm(v.1)))
}

fn mov(dst: Reg, a: Operand) -> Inst {
    Inst::Un {
        op: UnOp::Mov,
        dst,
        a,
    }
}

/// Integer algebraic simplification and strength reduction.
fn try_simplify(inst: &Inst) -> Option<Inst> {
    if let Inst::Alu { op, dst, a, b } = *inst {
        let bi = imm_of(b).map(|v| v.as_u32());
        let ai = imm_of(a).map(|v| v.as_u32());
        match (op, ai, bi) {
            (AluOp::IAdd | AluOp::ISub | AluOp::Or | AluOp::Xor, _, Some(0)) => {
                return Some(mov(dst, a));
            }
            (AluOp::IAdd | AluOp::Or | AluOp::Xor, Some(0), _) => return Some(mov(dst, b)),
            (AluOp::Shl | AluOp::ShrU | AluOp::ShrS, _, Some(0)) => return Some(mov(dst, a)),
            (AluOp::IMul, _, Some(1)) => return Some(mov(dst, a)),
            (AluOp::IMul, Some(1), _) => return Some(mov(dst, b)),
            (AluOp::IMul, _, Some(0)) | (AluOp::IMul, Some(0), _) => {
                return Some(mov(dst, Operand::imm_u(0)));
            }
            (AluOp::And, _, Some(0)) | (AluOp::And, Some(0), _) => {
                return Some(mov(dst, Operand::imm_u(0)));
            }
            // Strength reduction: multiply by a power of two becomes a shift.
            (AluOp::IMul, _, Some(k)) if k.is_power_of_two() => {
                return Some(Inst::Alu {
                    op: AluOp::Shl,
                    dst,
                    a,
                    b: Operand::imm_u(k.trailing_zeros()),
                });
            }
            (AluOp::IMul, Some(k), _) if k.is_power_of_two() => {
                return Some(Inst::Alu {
                    op: AluOp::Shl,
                    dst,
                    a: b,
                    b: Operand::imm_u(k.trailing_zeros()),
                });
            }
            _ => {}
        }
    }
    None
}

fn expr_key(inst: &Inst) -> Option<ExprKey> {
    Some(match *inst {
        Inst::Alu { op, a, b, .. } => ExprKey::Alu(op, a, b),
        Inst::Ffma { a, b, c, .. } => ExprKey::Ffma(a, b, c),
        Inst::Imad { a, b, c, .. } => ExprKey::Imad(a, b, c),
        Inst::Un { op, a, .. } if op != UnOp::Mov => ExprKey::Un(op, a),
        Inst::Sfu { op, a, .. } => ExprKey::Sfu(op, a),
        Inst::SetP { op, ty, a, b, .. } => ExprKey::SetP(op, ty, a, b),
        Inst::Sel { c, a, b, .. } => ExprKey::Sel(c, a, b),
        _ => return None,
    })
}

fn local_value_numbering(code: &mut [Inst], cse: bool) {
    let cfg = build_cfg(code);
    for blk in &cfg.blocks {
        let mut st = BlockState::new();
        for i in blk.start..blk.end {
            let mut inst = code[i];

            // 1. Rewrite sources through known values (copy/const propagation).
            inst.for_each_use_mut(|op| *op = st.resolve(*op));

            // 2. Fold / simplify.
            if let Some(f) = try_fold(&inst) {
                inst = f;
            } else if let Some(s) = try_simplify(&inst) {
                inst = s;
            }

            // 3. Fold `base + const` address definitions into memory offsets.
            match &mut inst {
                Inst::Ld { addr, off, .. } | Inst::St { addr, off, .. } => {
                    if let Operand::Reg(r) = addr {
                        if let Some(&(base, k)) = st.addrs.get(r) {
                            *addr = Operand::Reg(base);
                            *off += k;
                        }
                    }
                }
                _ => {}
            }

            // 4. CSE.
            if cse && inst.is_pure() {
                if let Some(key) = expr_key(&inst) {
                    if let Some(&prior) = st.exprs.get(&key) {
                        inst = mov(inst.def().unwrap(), Operand::Reg(prior));
                    }
                }
            }

            // 5. Update state for the (possibly rewritten) instruction.
            if let Some(d) = inst.def() {
                st.kill(d);
                match inst {
                    Inst::Un {
                        op: UnOp::Mov,
                        dst,
                        a,
                    }
                        // Don't propagate self-copies (no information) or
                        // special registers (the mov IS the canonical S2R
                        // read; propagating it would defeat address-offset
                        // folding, which needs register bases).
                        if a != Operand::Reg(dst) && !matches!(a, Operand::Special(_)) => {
                            st.copies.insert(dst, a);
                        }
                    Inst::Alu {
                        op: AluOp::IAdd,
                        dst,
                        a,
                        b,
                    } => {
                        if let (Operand::Reg(base), Some(k)) = (a, imm_of(b)) {
                            if base != dst {
                                st.addrs.insert(dst, (base, k.as_u32() as i32));
                            }
                        } else if let (Some(k), Operand::Reg(base)) = (imm_of(a), b) {
                            if base != dst {
                                st.addrs.insert(dst, (base, k.as_u32() as i32));
                            }
                        }
                    }
                    _ => {}
                }
                if cse && inst.is_pure() {
                    if let Some(key) = expr_key(&inst) {
                        // Only record if the expression doesn't mention its own
                        // destination (accumulators redefine themselves).
                        if !key.mentions(d) {
                            st.exprs.insert(key, d);
                        }
                    }
                }
            }

            code[i] = inst;
        }
    }
}

// ---------------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------------

fn dead_code_elimination(code: &mut Vec<Inst>) {
    let cfg = build_cfg(code);
    let lv = liveness(code, &cfg);
    let mut dead = vec![false; code.len()];

    for (b, blk) in cfg.blocks.iter().enumerate() {
        let mut live = lv.live_out[b].clone();
        for i in (blk.start..blk.end).rev() {
            let inst = &code[i];
            let is_dead = inst.is_pure() && inst.def().is_some_and(|d| !live.contains(d));
            if is_dead {
                dead[i] = true;
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
        }
    }

    if dead.iter().any(|&d| d) {
        compact(code, &dead);
    }
}

/// Removes instructions marked dead, remapping all branch labels.
fn compact(code: &mut Vec<Inst>, dead: &[bool]) {
    // new_index[i] = number of survivors strictly before i. For a branch
    // target t this is exactly the new index of the first survivor at or
    // after t.
    let mut new_index = Vec::with_capacity(code.len() + 1);
    let mut count = 0u32;
    for &d in dead {
        new_index.push(count);
        if !d {
            count += 1;
        }
    }
    new_index.push(count);

    let mut out = Vec::with_capacity(count as usize);
    for (i, inst) in code.iter().enumerate() {
        if dead[i] {
            continue;
        }
        let mut inst = *inst;
        if let Inst::Bra { target, reconv, .. } = &mut inst {
            *target = Label(new_index[target.0 as usize]);
            *reconv = Label(new_index[reconv.0 as usize]);
        }
        out.push(inst);
    }
    *code = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CmpOp, Scalar, Space};

    fn r(n: u32) -> Reg {
        Reg(n)
    }
    fn iu(v: u32) -> Operand {
        Operand::imm_u(v)
    }

    /// Helper: store r to global so it stays live, then exit.
    fn finish(code: &mut Vec<Inst>, live: Reg) {
        code.push(Inst::St {
            space: Space::Global,
            addr: iu(0),
            off: 0,
            src: live.into(),
        });
        code.push(Inst::Exit);
    }

    #[test]
    fn folds_constant_chain() {
        let mut code = vec![
            mov(r(0), iu(6)),
            Inst::Alu {
                op: AluOp::IMul,
                dst: r(1),
                a: r(0).into(),
                b: iu(7),
            },
        ];
        finish(&mut code, r(1));
        run(OptLevel::O1, &mut code);
        // 6*7 folds to 42 and everything else dies.
        assert!(code.iter().any(|i| matches!(
            i,
            Inst::St { src, .. } if *src == iu(42)
        )));
        assert_eq!(code.len(), 2); // st + exit
    }

    #[test]
    fn strength_reduces_pow2_mul() {
        let mut code = vec![
            Inst::Un {
                op: UnOp::Mov,
                dst: r(0),
                a: Operand::Special(crate::inst::SpecialReg::TidX),
            },
            Inst::Alu {
                op: AluOp::IMul,
                dst: r(1),
                a: r(0).into(),
                b: iu(8),
            },
        ];
        finish(&mut code, r(1));
        run(OptLevel::O1, &mut code);
        assert!(code.iter().any(|i| matches!(
            i,
            Inst::Alu { op: AluOp::Shl, b, .. } if *b == iu(3)
        )));
        assert!(!code.iter().any(|i| matches!(
            i,
            Inst::Alu {
                op: AluOp::IMul,
                ..
            }
        )));
    }

    #[test]
    fn cse_removes_duplicate_computation() {
        let tid = Inst::Un {
            op: UnOp::Mov,
            dst: r(0),
            a: Operand::Special(crate::inst::SpecialReg::TidX),
        };
        let mut code = vec![
            tid,
            Inst::Alu {
                op: AluOp::Shl,
                dst: r(1),
                a: r(0).into(),
                b: iu(2),
            },
            Inst::Alu {
                op: AluOp::Shl,
                dst: r(2),
                a: r(0).into(),
                b: iu(2),
            }, // duplicate
            Inst::Alu {
                op: AluOp::IAdd,
                dst: r(3),
                a: r(1).into(),
                b: r(2).into(),
            },
        ];
        finish(&mut code, r(3));
        run(OptLevel::O2, &mut code);
        let shls = code
            .iter()
            .filter(|i| matches!(i, Inst::Alu { op: AluOp::Shl, .. }))
            .count();
        assert_eq!(shls, 1);
    }

    #[test]
    fn cse_disabled_at_o1() {
        let tid = Inst::Un {
            op: UnOp::Mov,
            dst: r(0),
            a: Operand::Special(crate::inst::SpecialReg::TidX),
        };
        let mut code = vec![
            tid,
            Inst::Alu {
                op: AluOp::Shl,
                dst: r(1),
                a: r(0).into(),
                b: iu(2),
            },
            Inst::Alu {
                op: AluOp::Shl,
                dst: r(2),
                a: r(0).into(),
                b: iu(2),
            },
            Inst::Alu {
                op: AluOp::IAdd,
                dst: r(3),
                a: r(1).into(),
                b: r(2).into(),
            },
        ];
        finish(&mut code, r(3));
        run(OptLevel::O1, &mut code);
        let shls = code
            .iter()
            .filter(|i| matches!(i, Inst::Alu { op: AluOp::Shl, .. }))
            .count();
        assert_eq!(shls, 2);
    }

    #[test]
    fn folds_address_offsets_into_loads() {
        let tid = Inst::Un {
            op: UnOp::Mov,
            dst: r(0),
            a: Operand::Special(crate::inst::SpecialReg::TidX),
        };
        let mut code = vec![
            tid,
            Inst::Alu {
                op: AluOp::IAdd,
                dst: r(1),
                a: r(0).into(),
                b: iu(64),
            },
            Inst::Ld {
                space: Space::Global,
                dst: r(2),
                addr: r(1).into(),
                off: 4,
            },
        ];
        finish(&mut code, r(2));
        run(OptLevel::O1, &mut code);
        // The add folds into the load offset and then dies.
        assert!(code.iter().any(|i| matches!(
            i,
            Inst::Ld {
                addr: Operand::Reg(Reg(0)),
                off: 68,
                ..
            }
        )));
        assert!(!code.iter().any(|i| matches!(
            i,
            Inst::Alu {
                op: AluOp::IAdd,
                ..
            }
        )));
    }

    #[test]
    fn no_f32_identity_folding() {
        // x + 0.0 must NOT be simplified (x could be -0.0).
        let tid = Inst::Un {
            op: UnOp::Mov,
            dst: r(0),
            a: Operand::Special(crate::inst::SpecialReg::TidX),
        };
        let mut code = vec![
            tid,
            Inst::Alu {
                op: AluOp::FAdd,
                dst: r(1),
                a: r(0).into(),
                b: Operand::imm_f(0.0),
            },
        ];
        finish(&mut code, r(1));
        run(OptLevel::O2, &mut code);
        assert!(code.iter().any(|i| matches!(
            i,
            Inst::Alu {
                op: AluOp::FAdd,
                ..
            }
        )));
    }

    #[test]
    fn dce_preserves_branch_targets() {
        // dead mov before a loop; DCE must remap the back edge.
        let mut code = vec![
            mov(r(9), iu(123)), // dead
            mov(r(0), iu(0)),
            Inst::Alu {
                op: AluOp::IAdd,
                dst: r(0),
                a: r(0).into(),
                b: iu(1),
            },
            Inst::SetP {
                op: CmpOp::Lt,
                ty: Scalar::U32,
                dst: r(1),
                a: r(0).into(),
                b: iu(10),
            },
            Inst::Bra {
                target: Label(2),
                reconv: Label(5),
                pred: Some(crate::inst::Pred::if_true(r(1))),
            },
            Inst::St {
                space: Space::Global,
                addr: iu(0),
                off: 0,
                src: r(0).into(),
            },
            Inst::Exit,
        ];
        run(OptLevel::O1, &mut code);
        assert!(!code
            .iter()
            .any(|i| matches!(i, Inst::Un { dst: Reg(9), .. })));
        // The back edge must still point at the IAdd.
        let bra_target = code
            .iter()
            .find_map(|i| match i {
                Inst::Bra {
                    target,
                    pred: Some(_),
                    ..
                } => Some(target.0 as usize),
                _ => None,
            })
            .unwrap();
        assert!(matches!(
            code[bra_target],
            Inst::Alu {
                op: AluOp::IAdd,
                ..
            }
        ));
    }

    #[test]
    fn accumulator_not_csed_into_itself() {
        // acc = acc + x twice must stay two adds (value changes).
        let tid = Inst::Un {
            op: UnOp::Mov,
            dst: r(0),
            a: Operand::Special(crate::inst::SpecialReg::TidX),
        };
        let mut code = vec![
            tid,
            Inst::Ld {
                space: Space::Global,
                dst: r(1),
                addr: iu(0),
                off: 0,
            },
            Inst::Alu {
                op: AluOp::IAdd,
                dst: r(1),
                a: r(1).into(),
                b: r(0).into(),
            },
            Inst::Alu {
                op: AluOp::IAdd,
                dst: r(1),
                a: r(1).into(),
                b: r(0).into(),
            },
        ];
        finish(&mut code, r(1));
        run(OptLevel::O2, &mut code);
        let adds = code
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Alu {
                        op: AluOp::IAdd,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(adds, 2);
    }

    #[test]
    fn o0_is_identity() {
        let mut code = vec![mov(r(0), iu(1)), mov(r(1), iu(2)), Inst::Exit];
        let orig = code.clone();
        run(OptLevel::O0, &mut code);
        assert_eq!(code, orig);
    }
}
