//! Pure functional semantics of the arithmetic instructions.
//!
//! Shared by the constant-folding pass and the simulator's lane execution so
//! that "what the optimizer proves" and "what the machine computes" can never
//! disagree.

use crate::inst::{AluOp, CmpOp, Scalar, SfuOp, UnOp};
use crate::Value;

/// Evaluates a two-source ALU operation.
pub fn eval_alu(op: AluOp, a: Value, b: Value) -> Value {
    match op {
        AluOp::FAdd => Value::from_f32(a.as_f32() + b.as_f32()),
        AluOp::FSub => Value::from_f32(a.as_f32() - b.as_f32()),
        AluOp::FMul => Value::from_f32(a.as_f32() * b.as_f32()),
        AluOp::FMin => Value::from_f32(a.as_f32().min(b.as_f32())),
        AluOp::FMax => Value::from_f32(a.as_f32().max(b.as_f32())),
        AluOp::IAdd => Value::from_u32(a.as_u32().wrapping_add(b.as_u32())),
        AluOp::ISub => Value::from_u32(a.as_u32().wrapping_sub(b.as_u32())),
        AluOp::IMul => Value::from_u32(a.as_u32().wrapping_mul(b.as_u32())),
        AluOp::UMin => Value::from_u32(a.as_u32().min(b.as_u32())),
        AluOp::UMax => Value::from_u32(a.as_u32().max(b.as_u32())),
        AluOp::IMin => Value::from_i32(a.as_i32().min(b.as_i32())),
        AluOp::IMax => Value::from_i32(a.as_i32().max(b.as_i32())),
        AluOp::And => Value::from_u32(a.as_u32() & b.as_u32()),
        AluOp::Or => Value::from_u32(a.as_u32() | b.as_u32()),
        AluOp::Xor => Value::from_u32(a.as_u32() ^ b.as_u32()),
        AluOp::Shl => Value::from_u32(a.as_u32().wrapping_shl(b.as_u32() & 31)),
        AluOp::ShrU => Value::from_u32(a.as_u32().wrapping_shr(b.as_u32() & 31)),
        AluOp::ShrS => Value::from_i32(a.as_i32().wrapping_shr(b.as_u32() & 31)),
        AluOp::Rotl => Value::from_u32(a.as_u32().rotate_left(b.as_u32() & 31)),
    }
}

/// Evaluates a one-source operation.
pub fn eval_un(op: UnOp, a: Value) -> Value {
    match op {
        UnOp::Mov => a,
        UnOp::FNeg => Value::from_f32(-a.as_f32()),
        UnOp::FAbs => Value::from_f32(a.as_f32().abs()),
        UnOp::Not => Value::from_u32(!a.as_u32()),
        UnOp::CvtF2I => Value::from_i32(a.as_f32() as i32),
        UnOp::CvtI2F => Value::from_f32(a.as_i32() as f32),
        UnOp::CvtF2U => Value::from_u32(a.as_f32() as u32),
        UnOp::CvtU2F => Value::from_f32(a.as_u32() as f32),
        UnOp::FFloor => Value::from_f32(a.as_f32().floor()),
    }
}

/// Evaluates a fused multiply-add: `a * b + c` (f32).
///
/// The G80 multiply-add truncated the intermediate product rather than fusing
/// with infinite precision; we use the host's separate multiply-then-add,
/// which matches that behaviour more closely than `f32::mul_add`.
pub fn eval_ffma(a: Value, b: Value, c: Value) -> Value {
    Value::from_f32(a.as_f32() * b.as_f32() + c.as_f32())
}

/// Evaluates an integer multiply-add: `a * b + c` (wrapping).
pub fn eval_imad(a: Value, b: Value, c: Value) -> Value {
    Value::from_u32(a.as_u32().wrapping_mul(b.as_u32()).wrapping_add(c.as_u32()))
}

/// Evaluates an SFU transcendental.
///
/// The hardware SFUs deliver ~22-23 good mantissa bits; host `f32` math is a
/// strictly more accurate stand-in, which is fine for the performance study
/// (tests compare against references with an FP tolerance).
pub fn eval_sfu(op: SfuOp, a: Value) -> Value {
    let x = a.as_f32();
    let r = match op {
        SfuOp::Rcp => 1.0 / x,
        SfuOp::Rsqrt => 1.0 / x.sqrt(),
        SfuOp::Sqrt => x.sqrt(),
        SfuOp::Sin => x.sin(),
        SfuOp::Cos => x.cos(),
        SfuOp::Ex2 => x.exp2(),
        SfuOp::Lg2 => x.log2(),
    };
    Value::from_f32(r)
}

/// Evaluates a comparison, returning the 1/0 predicate value.
pub fn eval_cmp(op: CmpOp, ty: Scalar, a: Value, b: Value) -> Value {
    let t = match ty {
        Scalar::F32 => {
            let (x, y) = (a.as_f32(), b.as_f32());
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Scalar::U32 => {
            let (x, y) = (a.as_u32(), b.as_u32());
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Scalar::I32 => {
            let (x, y) = (a.as_i32(), b.as_i32());
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
    };
    Value::from_bool(t)
}

/// A whole-warp register row: one value per lane.
pub type Row = [Value; 32];

/// Runtime-detected AVX2 fast paths for the full-mask row evaluators.
///
/// Only ops whose AVX2 semantics are **bit-identical** to the scalar
/// evaluators are implemented; the row kernels return `false` — having
/// written nothing — for the rest, and the caller falls back to the scalar
/// chunked loop. Deliberately excluded:
///
/// - `FMin`/`FMax`: `_mm256_min_ps` returns the second operand when either
///   input is NaN and makes no ±0.0 guarantee, while `f32::min` returns
///   the non-NaN operand.
/// - The `Cvt*` ops: `_mm256_cvttps_epi32` saturates out-of-range inputs
///   to `0x8000_0000`, while scalar `as` casts saturate to the target
///   type's MIN/MAX.
/// - `Ffma` stays multiply-then-add (`_mm256_mul_ps` + `_mm256_add_ps`),
///   never `vfmadd`: the G80 model truncates the intermediate product.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::*;
    use core::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = unprobed, 1 = absent, 2 = present.
    static AVX2: AtomicU8 = AtomicU8::new(0);

    /// Whether the AVX2 row kernels may run, probed once per process.
    #[inline]
    pub fn avx2() -> bool {
        match AVX2.load(Ordering::Relaxed) {
            0 => {
                let has = std::arch::is_x86_feature_detected!("avx2");
                AVX2.store(1 + has as u8, Ordering::Relaxed);
                has
            }
            v => v == 2,
        }
    }

    // `Value` is repr(transparent) over u32, so a `Row` is layout-compatible
    // with `[u32; 32]` and 32-byte-unaligned loads/stores cover it exactly.
    #[inline(always)]
    unsafe fn ld(r: &Row, i: usize) -> __m256i {
        _mm256_loadu_si256(r.as_ptr().add(i).cast())
    }

    #[inline(always)]
    unsafe fn st(r: &mut Row, i: usize, v: __m256i) {
        _mm256_storeu_si256(r.as_mut_ptr().add(i).cast(), v)
    }

    /// # Safety
    /// AVX2 must be available (gate on [`avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn alu_row(op: AluOp, a: &Row, b: &Row, dst: &mut Row) -> bool {
        macro_rules! bin {
            (|$x:ident, $y:ident| $e:expr) => {{
                for i in [0usize, 8, 16, 24] {
                    let $x = ld(a, i);
                    let $y = ld(b, i);
                    st(dst, i, $e);
                }
                true
            }};
        }
        macro_rules! binf {
            ($f:ident) => {
                bin!(|x, y| _mm256_castps_si256($f(_mm256_castsi256_ps(x), _mm256_castsi256_ps(y))))
            };
        }
        match op {
            AluOp::FAdd => binf!(_mm256_add_ps),
            AluOp::FSub => binf!(_mm256_sub_ps),
            AluOp::FMul => binf!(_mm256_mul_ps),
            AluOp::IAdd => bin!(|x, y| _mm256_add_epi32(x, y)),
            AluOp::ISub => bin!(|x, y| _mm256_sub_epi32(x, y)),
            AluOp::IMul => bin!(|x, y| _mm256_mullo_epi32(x, y)),
            AluOp::UMin => bin!(|x, y| _mm256_min_epu32(x, y)),
            AluOp::UMax => bin!(|x, y| _mm256_max_epu32(x, y)),
            AluOp::IMin => bin!(|x, y| _mm256_min_epi32(x, y)),
            AluOp::IMax => bin!(|x, y| _mm256_max_epi32(x, y)),
            AluOp::And => bin!(|x, y| _mm256_and_si256(x, y)),
            AluOp::Or => bin!(|x, y| _mm256_or_si256(x, y)),
            AluOp::Xor => bin!(|x, y| _mm256_xor_si256(x, y)),
            // The scalar shifts mask the count to 5 bits; the variable-shift
            // intrinsics shift out everything >= 32, so mask first.
            AluOp::Shl => {
                let m31 = _mm256_set1_epi32(31);
                bin!(|x, y| _mm256_sllv_epi32(x, _mm256_and_si256(y, m31)))
            }
            AluOp::ShrU => {
                let m31 = _mm256_set1_epi32(31);
                bin!(|x, y| _mm256_srlv_epi32(x, _mm256_and_si256(y, m31)))
            }
            AluOp::ShrS => {
                let m31 = _mm256_set1_epi32(31);
                bin!(|x, y| _mm256_srav_epi32(x, _mm256_and_si256(y, m31)))
            }
            AluOp::FMin | AluOp::FMax | AluOp::Rotl => false,
        }
    }

    /// # Safety
    /// AVX2 must be available (gate on [`avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn un_row(op: UnOp, a: &Row, dst: &mut Row) -> bool {
        macro_rules! un {
            (|$x:ident| $e:expr) => {{
                for i in [0usize, 8, 16, 24] {
                    let $x = ld(a, i);
                    st(dst, i, $e);
                }
                true
            }};
        }
        match op {
            UnOp::Mov => un!(|x| x),
            UnOp::Not => {
                let ones = _mm256_set1_epi32(-1);
                un!(|x| _mm256_xor_si256(x, ones))
            }
            // Sign-bit ops are bit-exact on every input, NaNs included.
            UnOp::FNeg => {
                let sign = _mm256_set1_epi32(i32::MIN);
                un!(|x| _mm256_xor_si256(x, sign))
            }
            UnOp::FAbs => {
                let magnitude = _mm256_set1_epi32(i32::MAX);
                un!(|x| _mm256_and_si256(x, magnitude))
            }
            UnOp::CvtF2I | UnOp::CvtI2F | UnOp::CvtF2U | UnOp::CvtU2F | UnOp::FFloor => false,
        }
    }

    /// # Safety
    /// AVX2 must be available (gate on [`avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn ffma_row(a: &Row, b: &Row, c: &Row, dst: &mut Row) {
        for i in [0usize, 8, 16, 24] {
            let p = _mm256_mul_ps(_mm256_castsi256_ps(ld(a, i)), _mm256_castsi256_ps(ld(b, i)));
            let r = _mm256_add_ps(p, _mm256_castsi256_ps(ld(c, i)));
            st(dst, i, _mm256_castps_si256(r));
        }
    }

    /// # Safety
    /// AVX2 must be available (gate on [`avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn imad_row(a: &Row, b: &Row, c: &Row, dst: &mut Row) {
        for i in [0usize, 8, 16, 24] {
            let p = _mm256_mullo_epi32(ld(a, i), ld(b, i));
            st(dst, i, _mm256_add_epi32(p, ld(c, i)));
        }
    }
}

/// Only lanes set in `mask` are written; the rest keep their old value.
/// The full-mask case runs the AVX2 kernel when the op has a bit-identical
/// vector form (see [`simd`]), else an 8-lane chunked loop with the op
/// match hoisted out, shaped for autovectorization. One call per warp
/// instruction instead of one per lane.
#[inline]
pub fn eval_alu_row(op: AluOp, a: &Row, b: &Row, dst: &mut Row, mask: u32) {
    if mask == u32::MAX {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2() && unsafe { simd::alu_row(op, a, b, dst) } {
            return;
        }
        for o in [0usize, 8, 16, 24] {
            for j in 0..8 {
                dst[o + j] = eval_alu(op, a[o + j], b[o + j]);
            }
        }
    } else {
        for l in 0..32 {
            if mask >> l & 1 == 1 {
                dst[l] = eval_alu(op, a[l], b[l]);
            }
        }
    }
}

/// Row form of [`eval_un`].
#[inline]
pub fn eval_un_row(op: UnOp, a: &Row, dst: &mut Row, mask: u32) {
    if mask == u32::MAX {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2() && unsafe { simd::un_row(op, a, dst) } {
            return;
        }
        for o in [0usize, 8, 16, 24] {
            for j in 0..8 {
                dst[o + j] = eval_un(op, a[o + j]);
            }
        }
    } else {
        for l in 0..32 {
            if mask >> l & 1 == 1 {
                dst[l] = eval_un(op, a[l]);
            }
        }
    }
}

/// Row form of [`eval_sfu`].
#[inline]
pub fn eval_sfu_row(op: SfuOp, a: &Row, dst: &mut Row, mask: u32) {
    for l in 0..32 {
        if mask >> l & 1 == 1 {
            dst[l] = eval_sfu(op, a[l]);
        }
    }
}

/// Row form of [`eval_ffma`].
#[inline]
pub fn eval_ffma_row(a: &Row, b: &Row, c: &Row, dst: &mut Row, mask: u32) {
    if mask == u32::MAX {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2() {
            unsafe { simd::ffma_row(a, b, c, dst) };
            return;
        }
        for o in [0usize, 8, 16, 24] {
            for j in 0..8 {
                dst[o + j] = eval_ffma(a[o + j], b[o + j], c[o + j]);
            }
        }
    } else {
        for l in 0..32 {
            if mask >> l & 1 == 1 {
                dst[l] = eval_ffma(a[l], b[l], c[l]);
            }
        }
    }
}

/// Row form of [`eval_imad`].
#[inline]
pub fn eval_imad_row(a: &Row, b: &Row, c: &Row, dst: &mut Row, mask: u32) {
    if mask == u32::MAX {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2() {
            unsafe { simd::imad_row(a, b, c, dst) };
            return;
        }
        for o in [0usize, 8, 16, 24] {
            for j in 0..8 {
                dst[o + j] = eval_imad(a[o + j], b[o + j], c[o + j]);
            }
        }
    } else {
        for l in 0..32 {
            if mask >> l & 1 == 1 {
                dst[l] = eval_imad(a[l], b[l], c[l]);
            }
        }
    }
}

/// Row form of [`eval_cmp`].
#[inline]
pub fn eval_cmp_row(op: CmpOp, ty: Scalar, a: &Row, b: &Row, dst: &mut Row, mask: u32) {
    for l in 0..32 {
        if mask >> l & 1 == 1 {
            dst[l] = eval_cmp(op, ty, a[l], b[l]);
        }
    }
}

/// Row select: `dst[l] = if c[l] { a[l] } else { b[l] }`.
#[inline]
pub fn eval_sel_row(c: &Row, a: &Row, b: &Row, dst: &mut Row, mask: u32) {
    for l in 0..32 {
        if mask >> l & 1 == 1 {
            dst[l] = if c[l].as_bool() { a[l] } else { b[l] };
        }
    }
}

/// Applies an atomic op, returning (new_value, old_value).
pub fn eval_atom(op: crate::inst::AtomOp, old: Value, src: Value) -> (Value, Value) {
    use crate::inst::AtomOp;
    let new = match op {
        AtomOp::Add => Value::from_u32(old.as_u32().wrapping_add(src.as_u32())),
        AtomOp::Min => Value::from_u32(old.as_u32().min(src.as_u32())),
        AtomOp::Max => Value::from_u32(old.as_u32().max(src.as_u32())),
        AtomOp::Exch => src,
    };
    (new, old)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f32) -> Value {
        Value::from_f32(v)
    }
    fn u(v: u32) -> Value {
        Value::from_u32(v)
    }
    fn i(v: i32) -> Value {
        Value::from_i32(v)
    }

    #[test]
    fn float_alu() {
        assert_eq!(eval_alu(AluOp::FAdd, f(1.5), f(2.0)).as_f32(), 3.5);
        assert_eq!(eval_alu(AluOp::FSub, f(1.0), f(3.0)).as_f32(), -2.0);
        assert_eq!(eval_alu(AluOp::FMul, f(-2.0), f(4.0)).as_f32(), -8.0);
        assert_eq!(eval_alu(AluOp::FMin, f(-2.0), f(4.0)).as_f32(), -2.0);
        assert_eq!(eval_alu(AluOp::FMax, f(-2.0), f(4.0)).as_f32(), 4.0);
    }

    #[test]
    fn int_alu_wraps() {
        assert_eq!(eval_alu(AluOp::IAdd, u(u32::MAX), u(1)).as_u32(), 0);
        assert_eq!(eval_alu(AluOp::ISub, u(0), u(1)).as_u32(), u32::MAX);
        assert_eq!(
            eval_alu(AluOp::IMul, u(0x10000), u(0x10000)).as_u32(),
            0 // low 32 bits
        );
    }

    #[test]
    fn signed_vs_unsigned_minmax() {
        assert_eq!(eval_alu(AluOp::IMin, i(-5), i(3)).as_i32(), -5);
        assert_eq!(eval_alu(AluOp::UMin, i(-5), i(3)).as_u32(), 3); // -5 is huge unsigned
        assert_eq!(eval_alu(AluOp::IMax, i(-5), i(3)).as_i32(), 3);
        assert_eq!(eval_alu(AluOp::UMax, i(-5), i(3)).as_i32(), -5);
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(eval_alu(AluOp::Shl, u(1), u(33)).as_u32(), 2); // 33 & 31 == 1
        assert_eq!(eval_alu(AluOp::ShrU, u(0x8000_0000), u(31)).as_u32(), 1);
        assert_eq!(eval_alu(AluOp::ShrS, i(-8), u(2)).as_i32(), -2);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_un(UnOp::FNeg, f(2.0)).as_f32(), -2.0);
        assert_eq!(eval_un(UnOp::FAbs, f(-2.0)).as_f32(), 2.0);
        assert_eq!(eval_un(UnOp::Not, u(0)).as_u32(), u32::MAX);
        assert_eq!(eval_un(UnOp::CvtF2I, f(-3.7)).as_i32(), -3);
        assert_eq!(eval_un(UnOp::CvtI2F, i(-3)).as_f32(), -3.0);
        assert_eq!(eval_un(UnOp::CvtF2U, f(3.7)).as_u32(), 3);
        assert_eq!(eval_un(UnOp::CvtU2F, u(7)).as_f32(), 7.0);
        assert_eq!(eval_un(UnOp::FFloor, f(3.7)).as_f32(), 3.0);
        assert_eq!(eval_un(UnOp::FFloor, f(-3.2)).as_f32(), -4.0);
    }

    #[test]
    fn fma_is_mul_then_add() {
        // 2*3+4
        assert_eq!(eval_ffma(f(2.0), f(3.0), f(4.0)).as_f32(), 10.0);
        assert_eq!(eval_imad(u(5), u(7), u(1)).as_u32(), 36);
    }

    #[test]
    fn sfu_accuracy() {
        assert!((eval_sfu(SfuOp::Rsqrt, f(4.0)).as_f32() - 0.5).abs() < 1e-6);
        assert!((eval_sfu(SfuOp::Rcp, f(8.0)).as_f32() - 0.125).abs() < 1e-6);
        assert!((eval_sfu(SfuOp::Sin, f(std::f32::consts::FRAC_PI_2)).as_f32() - 1.0).abs() < 1e-6);
        assert!((eval_sfu(SfuOp::Cos, f(0.0)).as_f32() - 1.0).abs() < 1e-6);
        assert_eq!(eval_sfu(SfuOp::Ex2, f(3.0)).as_f32(), 8.0);
        assert_eq!(eval_sfu(SfuOp::Lg2, f(8.0)).as_f32(), 3.0);
        assert_eq!(eval_sfu(SfuOp::Sqrt, f(9.0)).as_f32(), 3.0);
    }

    #[test]
    fn comparisons_respect_type() {
        use CmpOp::*;
        assert!(eval_cmp(Lt, Scalar::I32, i(-1), i(0)).as_bool());
        assert!(!eval_cmp(Lt, Scalar::U32, i(-1), i(0)).as_bool()); // -1 = u32::MAX
        assert!(eval_cmp(Ge, Scalar::F32, f(2.0), f(2.0)).as_bool());
        assert!(!eval_cmp(Ne, Scalar::F32, f(2.0), f(2.0)).as_bool());
        // NaN compares false for everything except Ne.
        let nan = f(f32::NAN);
        assert!(!eval_cmp(Eq, Scalar::F32, nan, nan).as_bool());
        assert!(eval_cmp(Ne, Scalar::F32, nan, nan).as_bool());
        assert!(!eval_cmp(Le, Scalar::F32, nan, f(0.0)).as_bool());
    }

    #[test]
    fn row_evaluators_match_lane_evaluators() {
        let a: Row = std::array::from_fn(|l| Value::from_f32(l as f32 - 7.5));
        let b: Row = std::array::from_fn(|l| Value::from_f32(2.0 - l as f32));
        let c: Row = std::array::from_fn(|l| Value::from_u32((l % 2) as u32));
        for mask in [u32::MAX, 0x0f0f_0f0f, 0] {
            let keep: Row = std::array::from_fn(|l| Value::from_u32(0xdead_0000 + l as u32));

            let mut dst = keep;
            eval_alu_row(AluOp::FAdd, &a, &b, &mut dst, mask);
            for l in 0..32 {
                let want = if mask >> l & 1 == 1 {
                    eval_alu(AluOp::FAdd, a[l], b[l])
                } else {
                    keep[l]
                };
                assert_eq!(dst[l], want, "alu lane {l} mask {mask:#x}");
            }

            let mut dst = keep;
            eval_ffma_row(&a, &b, &c, &mut dst, mask);
            for l in 0..32 {
                let want = if mask >> l & 1 == 1 {
                    eval_ffma(a[l], b[l], c[l])
                } else {
                    keep[l]
                };
                assert_eq!(dst[l], want, "ffma lane {l} mask {mask:#x}");
            }

            let mut dst = keep;
            eval_imad_row(&a, &b, &c, &mut dst, mask);
            for l in 0..32 {
                let want = if mask >> l & 1 == 1 {
                    eval_imad(a[l], b[l], c[l])
                } else {
                    keep[l]
                };
                assert_eq!(dst[l], want, "imad lane {l} mask {mask:#x}");
            }

            let mut dst = keep;
            eval_un_row(UnOp::FNeg, &a, &mut dst, mask);
            for l in 0..32 {
                let want = if mask >> l & 1 == 1 {
                    eval_un(UnOp::FNeg, a[l])
                } else {
                    keep[l]
                };
                assert_eq!(dst[l], want, "un lane {l} mask {mask:#x}");
            }

            let mut dst = keep;
            eval_sfu_row(SfuOp::Rcp, &b, &mut dst, mask);
            for l in 0..32 {
                let want = if mask >> l & 1 == 1 {
                    eval_sfu(SfuOp::Rcp, b[l])
                } else {
                    keep[l]
                };
                assert_eq!(dst[l], want, "sfu lane {l} mask {mask:#x}");
            }

            let mut dst = keep;
            eval_cmp_row(CmpOp::Lt, Scalar::F32, &a, &b, &mut dst, mask);
            for l in 0..32 {
                let want = if mask >> l & 1 == 1 {
                    eval_cmp(CmpOp::Lt, Scalar::F32, a[l], b[l])
                } else {
                    keep[l]
                };
                assert_eq!(dst[l], want, "cmp lane {l} mask {mask:#x}");
            }

            let mut dst = keep;
            eval_sel_row(&c, &a, &b, &mut dst, mask);
            for l in 0..32 {
                let want = if mask >> l & 1 == 1 {
                    if c[l].as_bool() {
                        a[l]
                    } else {
                        b[l]
                    }
                } else {
                    keep[l]
                };
                assert_eq!(dst[l], want, "sel lane {l} mask {mask:#x}");
            }
        }
    }

    #[test]
    fn atomics() {
        use crate::inst::AtomOp;
        let (new, old) = eval_atom(AtomOp::Add, u(10), u(5));
        assert_eq!((new.as_u32(), old.as_u32()), (15, 10));
        let (new, _) = eval_atom(AtomOp::Min, u(10), u(5));
        assert_eq!(new.as_u32(), 5);
        let (new, _) = eval_atom(AtomOp::Max, u(10), u(5));
        assert_eq!(new.as_u32(), 10);
        let (new, old) = eval_atom(AtomOp::Exch, u(10), u(5));
        assert_eq!((new.as_u32(), old.as_u32()), (5, 10));
    }
}
