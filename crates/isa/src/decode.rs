//! Predecoding: a flat micro-op table consumed by the simulator's hot loop.
//!
//! The timing engine's inner scheduler tests *every* stalled warp's next
//! instruction for register readiness on *every* issue attempt. Doing that
//! against the architectural [`Inst`] means re-walking the operand structure
//! (an enum match plus closure calls per operand) millions of times per
//! simulated kernel — pure interpretation overhead with no modeling content.
//!
//! A [`DecodedKernel`] is computed once per launch and caches, per
//! instruction:
//!
//! * the **scoreboard gate set** — the registers whose pending writes gate
//!   issue (all register sources plus the destination for the WAW hazard),
//!   deduplicated, in operand order, as a flat `[u16; 4]`;
//! * the **issue class** — which issue-port occupancy the instruction pays
//!   ([`IssueClass`]; the G80 charges 32-bit multiplies and SFU
//!   transcendentals extra slots);
//! * the counter **class and FLOP weight** (otherwise recomputed per issue);
//! * a **memory-access descriptor** ([`MemKind`]) for loads/stores/atomics.
//!
//! Predecoding is a pure host-side optimization: it must not (and cannot)
//! change simulated timing, because every cached field is a function of the
//! instruction alone. The `golden_stats` integration test in the workspace
//! root enforces bit-identical [`g80_sim`-level] statistics between the
//! predecoded engine and the reference engine.

use crate::inst::{AluOp, Inst, InstClass, Operand, Space};
use crate::kernel::Kernel;

/// Sentinel register id meaning "no destination".
pub const NO_REG: u16 = u16::MAX;

/// Issue-port occupancy class (Section 4.1: one warp instruction per 4
/// cycles, longer for SFU ops and 32-bit integer multiplies).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum IssueClass {
    /// Standard 4-cycle issue (`GpuConfig::issue_cycles`).
    Normal,
    /// 32-bit integer multiply path (`GpuConfig::imul_issue_cycles`).
    Imul,
    /// SFU transcendental path (`GpuConfig::sfu_issue_cycles`).
    Sfu,
}

/// What a memory instruction does, with its address space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemKind {
    Load(Space),
    Store(Space),
    Atomic(Space),
}

/// One predecoded instruction.
#[derive(Copy, Clone, Debug)]
pub struct MicroOp {
    /// The architectural instruction (the functional-execution payload).
    pub inst: Inst,
    /// Counter class, cached from [`Inst::class`].
    pub class: InstClass,
    /// FLOPs per active lane, cached from [`Inst::flops`].
    pub flops: u32,
    /// Issue-port occupancy class.
    pub issue: IssueClass,
    /// Destination register, or [`NO_REG`].
    pub dst: u16,
    /// Scoreboard gate set: registers whose pending writes delay issue.
    /// Sources in operand order, then the destination (WAW), deduplicated
    /// keeping the first occurrence. Only the first `ngated` entries are
    /// meaningful.
    pub gated: [u16; 4],
    /// Number of live entries in `gated`.
    pub ngated: u8,
    /// Memory-access descriptor for loads/stores/atomics.
    pub mem: Option<MemKind>,
}

impl MicroOp {
    /// Decodes one instruction.
    pub fn decode(inst: &Inst) -> MicroOp {
        let mut gated = [NO_REG; 4];
        let mut ngated = 0u8;
        {
            let mut push = |r: u32| {
                let r = r as u16;
                for &g in gated.iter().take(ngated as usize) {
                    if g == r {
                        return; // duplicate: the first occurrence already gates
                    }
                }
                gated[ngated as usize] = r;
                ngated += 1;
            };
            // Source order matters for stall attribution: the scheduler blames
            // the *latest-ready* register, ties broken by first occurrence —
            // exactly what a left-to-right scan of this list reproduces.
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    push(r.0);
                }
            });
            if let Some(d) = inst.def() {
                push(d.0); // WAW hazard: the previous write must land first
            }
        }
        let issue = match inst {
            Inst::Alu {
                op: AluOp::IMul, ..
            }
            | Inst::Imad { .. } => IssueClass::Imul,
            Inst::Sfu { .. } => IssueClass::Sfu,
            _ => IssueClass::Normal,
        };
        let mem = match inst {
            Inst::Ld { space, .. } => Some(MemKind::Load(*space)),
            Inst::St { space, .. } => Some(MemKind::Store(*space)),
            Inst::Atom { space, .. } => Some(MemKind::Atomic(*space)),
            _ => None,
        };
        MicroOp {
            inst: *inst,
            class: inst.class(),
            flops: inst.flops(),
            issue,
            dst: inst.def().map_or(NO_REG, |r| r.0 as u16),
            gated,
            ngated,
            mem,
        }
    }

    /// The live prefix of the gate set.
    pub fn gate_regs(&self) -> &[u16] {
        &self.gated[..self.ngated as usize]
    }
}

/// Hook polled at the top of every predecode, installed by the simulator's
/// fault-injection harness (this crate cannot depend on it). A no-op until
/// installed; the installed probe is itself a no-op unless faults are armed.
static DECODE_PROBE: std::sync::OnceLock<fn()> = std::sync::OnceLock::new();

/// Installs the predecode probe (first installation wins; later calls are
/// ignored). The probe may panic to simulate a decoder fault; callers of
/// [`DecodedKernel::new`] are expected to treat such unwinds as per-launch
/// failures.
pub fn install_decode_probe(probe: fn()) {
    let _ = DECODE_PROBE.set(probe);
}

/// A kernel predecoded into a flat micro-op table, indexed by PC.
#[derive(Clone, Debug)]
pub struct DecodedKernel {
    /// One micro-op per instruction of the source kernel, same order.
    pub ops: Vec<MicroOp>,
}

impl DecodedKernel {
    /// Predecodes a kernel. O(code length); done once per launch.
    pub fn new(kernel: &Kernel) -> Self {
        Self::from_code(&kernel.code)
    }

    /// Predecodes a raw instruction sequence.
    pub fn from_code(code: &[Inst]) -> Self {
        if let Some(probe) = DECODE_PROBE.get() {
            probe();
        }
        DecodedKernel {
            ops: code.iter().map(MicroOp::decode).collect(),
        }
    }

    /// The micro-op at `pc`.
    #[inline]
    pub fn op(&self, pc: usize) -> &MicroOp {
        &self.ops[pc]
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AtomOp, CmpOp, Label, Pred, Reg, Scalar, SfuOp, UnOp};
    use crate::Value;

    fn r(n: u32) -> Reg {
        Reg(n)
    }

    #[test]
    fn gate_set_is_sources_then_waw_dst() {
        let fma = Inst::Ffma {
            dst: r(7),
            a: r(1).into(),
            b: r(2).into(),
            c: r(3).into(),
        };
        let op = MicroOp::decode(&fma);
        assert_eq!(op.gate_regs(), &[1, 2, 3, 7]);
        assert_eq!(op.dst, 7);
        assert_eq!(op.issue, IssueClass::Normal);
        assert_eq!(op.class, InstClass::Fma);
        assert_eq!(op.flops, 2);
    }

    #[test]
    fn gate_set_deduplicates_keeping_first() {
        // dst aliases a source (the accumulate idiom): one gate entry.
        let fma = Inst::Ffma {
            dst: r(0),
            a: r(1).into(),
            b: r(1).into(),
            c: r(0).into(),
        };
        let op = MicroOp::decode(&fma);
        assert_eq!(op.gate_regs(), &[1, 0]);
    }

    #[test]
    fn immediates_and_params_do_not_gate() {
        let alu = Inst::Alu {
            op: AluOp::IAdd,
            dst: r(4),
            a: Operand::Param(0),
            b: Operand::Imm(Value::from_u32(8)),
        };
        let op = MicroOp::decode(&alu);
        assert_eq!(op.gate_regs(), &[4]); // only the WAW dst
    }

    #[test]
    fn issue_classes() {
        let imul = Inst::Alu {
            op: AluOp::IMul,
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
        };
        assert_eq!(MicroOp::decode(&imul).issue, IssueClass::Imul);
        let imad = Inst::Imad {
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
            c: r(3).into(),
        };
        assert_eq!(MicroOp::decode(&imad).issue, IssueClass::Imul);
        let sfu = Inst::Sfu {
            op: SfuOp::Rcp,
            dst: r(0),
            a: r(1).into(),
        };
        assert_eq!(MicroOp::decode(&sfu).issue, IssueClass::Sfu);
        let shl = Inst::Alu {
            op: AluOp::Shl,
            dst: r(0),
            a: r(1).into(),
            b: Operand::imm_u(2),
        };
        assert_eq!(MicroOp::decode(&shl).issue, IssueClass::Normal);
    }

    #[test]
    fn memory_descriptors() {
        let ld = Inst::Ld {
            space: Space::Shared,
            dst: r(0),
            addr: r(1).into(),
            off: 4,
        };
        assert_eq!(MicroOp::decode(&ld).mem, Some(MemKind::Load(Space::Shared)));
        let st = Inst::St {
            space: Space::Global,
            addr: r(1).into(),
            off: 0,
            src: r(2).into(),
        };
        let op = MicroOp::decode(&st);
        assert_eq!(op.mem, Some(MemKind::Store(Space::Global)));
        assert_eq!(op.dst, NO_REG);
        assert_eq!(op.gate_regs(), &[1, 2]);
        let atom = Inst::Atom {
            op: AtomOp::Add,
            space: Space::Global,
            dst: Some(r(5)),
            addr: r(1).into(),
            off: 0,
            src: r(2).into(),
        };
        let op = MicroOp::decode(&atom);
        assert_eq!(op.mem, Some(MemKind::Atomic(Space::Global)));
        assert_eq!(op.gate_regs(), &[1, 2, 5]);
    }

    #[test]
    fn branch_predicate_gates() {
        let bra = Inst::Bra {
            target: Label(3),
            reconv: Label(9),
            pred: Some(Pred::if_true(r(6))),
        };
        let op = MicroOp::decode(&bra);
        assert_eq!(op.gate_regs(), &[6]);
        assert_eq!(op.dst, NO_REG);
        let ubra = Inst::Bra {
            target: Label(3),
            reconv: Label(9),
            pred: None,
        };
        assert_eq!(MicroOp::decode(&ubra).gate_regs(), &[] as &[u16]);
        assert_eq!(MicroOp::decode(&Inst::Bar).ngated, 0);
        assert_eq!(MicroOp::decode(&Inst::Exit).ngated, 0);
    }

    /// The cached fields must agree with the `Inst` methods for every shape
    /// of instruction (the fast path must never diverge from the slow one).
    #[test]
    fn cached_fields_agree_with_inst_methods() {
        let insts = vec![
            Inst::Alu {
                op: AluOp::FMul,
                dst: r(0),
                a: r(1).into(),
                b: r(2).into(),
            },
            Inst::Ffma {
                dst: r(0),
                a: r(1).into(),
                b: r(2).into(),
                c: r(0).into(),
            },
            Inst::Imad {
                dst: r(3),
                a: r(4).into(),
                b: Operand::imm_u(5),
                c: r(3).into(),
            },
            Inst::Un {
                op: UnOp::Mov,
                dst: r(1),
                a: Operand::imm_f(2.0),
            },
            Inst::Sfu {
                op: SfuOp::Sqrt,
                dst: r(2),
                a: r(2).into(),
            },
            Inst::SetP {
                op: CmpOp::Lt,
                ty: Scalar::I32,
                dst: r(5),
                a: r(6).into(),
                b: Operand::imm_i(-1),
            },
            Inst::Sel {
                dst: r(0),
                c: r(5).into(),
                a: r(6).into(),
                b: r(7).into(),
            },
            Inst::Ld {
                space: Space::Const,
                dst: r(1),
                addr: r(2).into(),
                off: -8,
            },
            Inst::St {
                space: Space::Local,
                addr: r(1).into(),
                off: 0,
                src: Operand::imm_u(0),
            },
            Inst::Bra {
                target: Label(0),
                reconv: Label(1),
                pred: Some(Pred::if_false(r(9))),
            },
            Inst::Bar,
            Inst::Exit,
        ];
        let decoded = DecodedKernel::from_code(&insts);
        assert_eq!(decoded.len(), insts.len());
        for (inst, op) in insts.iter().zip(&decoded.ops) {
            assert_eq!(op.class, inst.class());
            assert_eq!(op.flops, inst.flops());
            assert_eq!(op.dst, inst.def().map_or(NO_REG, |d| d.0 as u16));
            // Gate set == dedup(uses ++ def), first occurrence kept.
            let mut expect: Vec<u16> = Vec::new();
            for u in inst.uses() {
                if !expect.contains(&(u.0 as u16)) {
                    expect.push(u.0 as u16);
                }
            }
            if let Some(d) = inst.def() {
                if !expect.contains(&(d.0 as u16)) {
                    expect.push(d.0 as u16);
                }
            }
            assert_eq!(op.gate_regs(), expect.as_slice(), "for {inst:?}");
        }
    }
}
