//! Compiled kernels and their static metadata.

use crate::inst::{Inst, InstClass, Label};
use std::collections::HashMap;

/// A compiled kernel: flat code with resolved branch targets, plus the static
/// resource footprint that determines occupancy (paper Section 3.2).
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Kernel name (for reports).
    pub name: String,
    /// Flat instruction stream. Branch `Label`s are instruction indices.
    pub code: Vec<Inst>,
    /// Physical registers per thread after allocation. This is the value the
    /// block scheduler multiplies by the thread count against the 8192-entry
    /// register file (Section 4.2's "11 registers ⇒ one fewer block" effect).
    pub regs_per_thread: u32,
    /// Statically allocated shared memory per block, in bytes.
    pub smem_bytes: u32,
    /// Number of kernel parameters expected at launch.
    pub num_params: u16,
}

impl Kernel {
    /// Overrides the reported register count (the analogue of observing a
    /// different count out of nvcc's scheduler, or of `-maxrregcount` without
    /// spilling). Used for the paper's occupancy-cliff ablations.
    pub fn with_forced_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Static instruction mix over the whole kernel body.
    pub fn static_mix(&self) -> InstMix {
        let mut mix = InstMix::default();
        for inst in &self.code {
            *mix.counts.entry(inst.class()).or_insert(0) += 1;
        }
        mix
    }

    /// Validates structural invariants; returns a description of the first
    /// violation. Called by the builder; also useful after hand-editing code
    /// in tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.code.is_empty() {
            return Err("empty kernel".into());
        }
        for (i, inst) in self.code.iter().enumerate() {
            if let Inst::Bra {
                target,
                reconv,
                pred,
            } = inst
            {
                if target.0 as usize >= self.code.len() {
                    return Err(format!("inst {i}: branch target {} out of range", target.0));
                }
                if pred.is_some() {
                    if reconv.0 as usize > self.code.len() {
                        return Err(format!(
                            "inst {i}: reconvergence point {} out of range",
                            reconv.0
                        ));
                    }
                    if (reconv.0 as usize) <= i {
                        return Err(format!(
                            "inst {i}: reconvergence point {} is not forward",
                            reconv.0
                        ));
                    }
                }
            }
        }
        match self.code.last() {
            Some(Inst::Exit) | Some(Inst::Bra { pred: None, .. }) => Ok(()),
            _ => Err("kernel does not end in exit or unconditional branch".into()),
        }
    }

    /// The label value that means "instruction index i".
    pub fn label_at(i: usize) -> Label {
        Label(i as u32)
    }
}

/// Instruction counts by class, with the ratios Section 4 reasons about.
#[derive(Clone, Debug, Default)]
pub struct InstMix {
    pub counts: HashMap<InstClass, u64>,
}

impl InstMix {
    /// Total instructions.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Count for one class.
    pub fn get(&self, c: InstClass) -> u64 {
        self.counts.get(&c).copied().unwrap_or(0)
    }

    /// Fraction of instructions that are f32 FMAs — the input to the paper's
    /// potential-throughput estimate ("one fused multiply-add out of eight
    /// operations", Section 4.1).
    pub fn fma_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(InstClass::Fma) as f64 / t as f64
        }
    }

    /// Fraction of instructions that are global memory accesses ("1/4 of the
    /// operations executed during the loop are loads from off-chip memory").
    pub fn global_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.get(InstClass::LdGlobal) + self.get(InstClass::StGlobal)) as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Reg};

    fn exit_kernel(code: Vec<Inst>) -> Kernel {
        Kernel {
            name: "t".into(),
            code,
            regs_per_thread: 4,
            smem_bytes: 0,
            num_params: 0,
        }
    }

    #[test]
    fn validate_rejects_empty() {
        assert!(exit_kernel(vec![]).validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_exit() {
        let k = exit_kernel(vec![Inst::Bar]);
        assert!(k.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let k = exit_kernel(vec![
            Inst::Bra {
                target: Label(9),
                reconv: Label(1),
                pred: None,
            },
            Inst::Exit,
        ]);
        assert!(k.validate().is_err());
    }

    #[test]
    fn validate_rejects_backward_reconv() {
        let k = exit_kernel(vec![
            Inst::Un {
                op: crate::inst::UnOp::Mov,
                dst: Reg(0),
                a: Operand::imm_u(0),
            },
            Inst::Bra {
                target: Label(0),
                reconv: Label(0),
                pred: Some(crate::inst::Pred::if_true(Reg(0))),
            },
            Inst::Exit,
        ]);
        assert!(k.validate().is_err());
    }

    #[test]
    fn mix_fractions() {
        let k = exit_kernel(vec![
            Inst::Ffma {
                dst: Reg(0),
                a: Operand::imm_f(1.0),
                b: Operand::imm_f(1.0),
                c: Reg(0).into(),
            },
            Inst::Ld {
                space: crate::inst::Space::Global,
                dst: Reg(1),
                addr: Operand::imm_u(0),
                off: 0,
            },
            Inst::Alu {
                op: crate::inst::AluOp::IAdd,
                dst: Reg(2),
                a: Reg(2).into(),
                b: Operand::imm_u(1),
            },
            Inst::Exit,
        ]);
        let mix = k.static_mix();
        assert_eq!(mix.total(), 4);
        assert_eq!(mix.fma_fraction(), 0.25);
        assert_eq!(mix.global_fraction(), 0.25);
    }
}
