//! Property tests: the optimizer passes and the register allocator preserve
//! program semantics on randomly generated straight-line programs.
//!
//! A miniature interpreter executes the flat code for a single thread with a
//! tiny global/local memory; observable behaviour is the set of (address,
//! value) pairs stored to global memory. Any transformation that changes an
//! observable store is a bug.

use g80_isa::exec;
use g80_isa::inst::{AluOp, CmpOp, Inst, Operand, Reg, Scalar, SfuOp, Space, UnOp};
use g80_isa::passes::{self, OptLevel};
use g80_isa::regalloc;
use g80_isa::Value;
use proptest::prelude::*;
use std::collections::HashMap;

/// Interprets straight-line code (no branches) for one thread. Returns the
/// global stores performed, in order.
fn interpret(code: &[Inst]) -> Vec<(u32, u32)> {
    let mut regs: HashMap<Reg, Value> = HashMap::new();
    let mut local: HashMap<u32, Value> = HashMap::new();
    let mut stores = Vec::new();

    let get = |regs: &HashMap<Reg, Value>, op: &Operand| -> Value {
        match op {
            Operand::Reg(r) => regs.get(r).copied().unwrap_or(Value::ZERO),
            Operand::Imm(v) => *v,
            Operand::Param(_) => Value::ZERO,
            Operand::Special(_) => Value::from_u32(7), // fixed fake tid
        }
    };

    for inst in code {
        match *inst {
            Inst::Alu { op, dst, a, b } => {
                let v = exec::eval_alu(op, get(&regs, &a), get(&regs, &b));
                regs.insert(dst, v);
            }
            Inst::Ffma { dst, a, b, c } => {
                let v = exec::eval_ffma(get(&regs, &a), get(&regs, &b), get(&regs, &c));
                regs.insert(dst, v);
            }
            Inst::Imad { dst, a, b, c } => {
                let v = exec::eval_imad(get(&regs, &a), get(&regs, &b), get(&regs, &c));
                regs.insert(dst, v);
            }
            Inst::Un { op, dst, a } => {
                let v = exec::eval_un(op, get(&regs, &a));
                regs.insert(dst, v);
            }
            Inst::Sfu { op, dst, a } => {
                let v = exec::eval_sfu(op, get(&regs, &a));
                regs.insert(dst, v);
            }
            Inst::SetP { op, ty, dst, a, b } => {
                let v = exec::eval_cmp(op, ty, get(&regs, &a), get(&regs, &b));
                regs.insert(dst, v);
            }
            Inst::Sel { dst, c, a, b } => {
                let v = if get(&regs, &c).as_bool() {
                    get(&regs, &a)
                } else {
                    get(&regs, &b)
                };
                regs.insert(dst, v);
            }
            Inst::St {
                space: Space::Global,
                addr,
                off,
                src,
            } => {
                let a = get(&regs, &addr).as_u32().wrapping_add(off as u32);
                stores.push((a, get(&regs, &src).as_u32()));
            }
            Inst::St {
                space: Space::Local,
                addr,
                off,
                src,
            } => {
                let a = get(&regs, &addr).as_u32().wrapping_add(off as u32);
                local.insert(a, get(&regs, &src));
            }
            Inst::Ld {
                space: Space::Local,
                dst,
                addr,
                off,
            } => {
                let a = get(&regs, &addr).as_u32().wrapping_add(off as u32);
                regs.insert(dst, local.get(&a).copied().unwrap_or(Value::ZERO));
            }
            Inst::Exit => break,
            ref other => panic!("interpreter: unsupported instruction {other:?}"),
        }
    }
    stores
}

const NREGS: u32 = 8;

/// Strategy: one random pure instruction over registers r0..r7 and small
/// immediates. Register reads before definition read zero — same as the
/// interpreter's default — so every program is well-defined.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = (0..NREGS).prop_map(Reg);
    let operand = prop_oneof![
        (0..NREGS).prop_map(|r| Operand::Reg(Reg(r))),
        (-4i32..20).prop_map(Operand::imm_i),
        (-2.0f32..2.0).prop_map(Operand::imm_f),
    ];
    let alu_op = prop_oneof![
        Just(AluOp::FAdd),
        Just(AluOp::FSub),
        Just(AluOp::FMul),
        Just(AluOp::IAdd),
        Just(AluOp::ISub),
        Just(AluOp::IMul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::ShrU),
        Just(AluOp::UMin),
        Just(AluOp::IMax),
    ];
    let un_op = prop_oneof![
        Just(UnOp::Mov),
        Just(UnOp::FNeg),
        Just(UnOp::FAbs),
        Just(UnOp::Not),
        Just(UnOp::CvtI2F),
        Just(UnOp::CvtU2F),
    ];
    let sfu_op = prop_oneof![Just(SfuOp::Rcp), Just(SfuOp::Ex2)];
    let cmp_op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Ge),
        Just(CmpOp::Ne)
    ];
    let ty = prop_oneof![Just(Scalar::U32), Just(Scalar::I32), Just(Scalar::F32)];

    prop_oneof![
        (alu_op, reg.clone(), operand.clone(), operand.clone())
            .prop_map(|(op, dst, a, b)| Inst::Alu { op, dst, a, b }),
        (
            reg.clone(),
            operand.clone(),
            operand.clone(),
            operand.clone()
        )
            .prop_map(|(dst, a, b, c)| Inst::Ffma { dst, a, b, c }),
        (
            reg.clone(),
            operand.clone(),
            operand.clone(),
            operand.clone()
        )
            .prop_map(|(dst, a, b, c)| Inst::Imad { dst, a, b, c }),
        (un_op, reg.clone(), operand.clone()).prop_map(|(op, dst, a)| Inst::Un { op, dst, a }),
        (sfu_op, reg.clone(), operand.clone()).prop_map(|(op, dst, a)| Inst::Sfu { op, dst, a }),
        (cmp_op, ty, reg.clone(), operand.clone(), operand.clone())
            .prop_map(|(op, ty, dst, a, b)| Inst::SetP { op, ty, dst, a, b }),
        (reg, operand.clone(), operand.clone(), operand).prop_map(|(dst, c, a, b)| Inst::Sel {
            dst,
            c,
            a,
            b
        }),
    ]
}

/// A straight-line program followed by stores of every register (the
/// observable output) and Exit.
fn arb_program() -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(arb_inst(), 1..60).prop_map(|mut code| {
        for r in 0..NREGS {
            code.push(Inst::St {
                space: Space::Global,
                addr: Operand::imm_u(r * 4),
                off: 0,
                src: Operand::Reg(Reg(r)),
            });
        }
        code.push(Inst::Exit);
        code
    })
}

/// Compare store streams allowing NaN bit-pattern equality only (exact bits).
fn assert_same_stores(a: &[(u32, u32)], b: &[(u32, u32)], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: store count differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{ctx}: store {i} differs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn o1_preserves_semantics(code in arb_program()) {
        let before = interpret(&code);
        let mut opt = code.clone();
        passes::run(OptLevel::O1, &mut opt);
        let after = interpret(&opt);
        assert_same_stores(&before, &after, "O1");
    }

    #[test]
    fn o2_preserves_semantics(code in arb_program()) {
        let before = interpret(&code);
        let mut opt = code.clone();
        passes::run(OptLevel::O2, &mut opt);
        let after = interpret(&opt);
        assert_same_stores(&before, &after, "O2");
    }

    #[test]
    fn o2_never_grows_code(code in arb_program()) {
        let mut opt = code.clone();
        passes::run(OptLevel::O2, &mut opt);
        prop_assert!(opt.len() <= code.len());
    }

    #[test]
    fn regalloc_preserves_semantics(code in arb_program()) {
        let before = interpret(&code);
        let mut alloc = code.clone();
        let n = regalloc::allocate(&mut alloc, None);
        prop_assert!((1..=NREGS).contains(&n));
        let after = interpret(&alloc);
        assert_same_stores(&before, &after, "regalloc");
    }

    #[test]
    fn regalloc_with_cap_preserves_semantics(code in arb_program()) {
        let before = interpret(&code);
        let mut alloc = code.clone();
        let n = regalloc::allocate(&mut alloc, Some(4));
        prop_assert!(n <= NREGS); // cap may be unreachable only if spilling stalls
        let after = interpret(&alloc);
        assert_same_stores(&before, &after, "regalloc cap=4");
    }

    #[test]
    fn full_pipeline_preserves_semantics(code in arb_program()) {
        let before = interpret(&code);
        let mut opt = code.clone();
        passes::run(OptLevel::O2, &mut opt);
        regalloc::allocate(&mut opt, None);
        let after = interpret(&opt);
        assert_same_stores(&before, &after, "O2+regalloc");
    }
}
