//! Property tests for the row value structure: the vectorized row
//! evaluators (SIMD or chunked-scalar, whichever the host picks) and the
//! `LaneRow` shape folds must be bit-identical to the frozen per-lane
//! scalar evaluators — on randomized rows, under partial masks, and on
//! the f32 values that break naive SIMD equivalence (NaN payloads,
//! signaling NaNs, denormals, signed zeros, infinities).

use g80_isa::exec::{self, eval_alu, eval_cmp, eval_ffma, eval_imad, eval_sfu, eval_un, Row};
use g80_isa::inst::{AluOp, CmpOp, Scalar, SfuOp, UnOp};
use g80_isa::{row, LaneRow, Value};

/// Deterministic xorshift — the tests must not depend on ambient RNG.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    /// A 32-bit pattern biased heavily toward the f32 values that expose
    /// SIMD/scalar divergence: NaNs with distinct payloads, signaling
    /// NaNs, ±0, ±inf, denormals, and values near the i32/u32 conversion
    /// boundaries — with plain random bits mixed in.
    fn special(&mut self) -> u32 {
        const POOL: [u32; 14] = [
            0x7fc0_0000, // canonical qNaN
            0xffc0_0001, // negative qNaN, nonzero payload
            0x7f80_0001, // signaling NaN
            0x7f80_0000, // +inf
            0xff80_0000, // -inf
            0x0000_0000, // +0.0
            0x8000_0000, // -0.0
            0x0000_0001, // smallest denormal
            0x807f_ffff, // largest negative denormal
            0x0040_0000, // mid denormal
            0x3f80_0000, // 1.0
            0x4f00_0000, // 2^31 (f32->i32 overflow boundary)
            0xcf00_0000, // -2^31
            0x7fff_ffff, // i32::MAX as bits
        ];
        let r = self.next();
        if r & 3 == 0 {
            POOL[(r >> 8) as usize % POOL.len()]
        } else {
            self.u32()
        }
    }
    fn row(&mut self) -> Row {
        std::array::from_fn(|_| Value::from_u32(self.special()))
    }
    /// Full, empty, or random partial masks, with full over-represented
    /// (the fast paths only engage there).
    fn mask(&mut self) -> u32 {
        match self.next() & 3 {
            0 => u32::MAX,
            1 => self.u32(),
            2 => 1 << (self.next() % 32),
            _ => u32::MAX,
        }
    }
}

const ALU_OPS: [AluOp; 18] = [
    AluOp::FAdd,
    AluOp::FSub,
    AluOp::FMul,
    AluOp::FMin,
    AluOp::FMax,
    AluOp::IAdd,
    AluOp::ISub,
    AluOp::IMul,
    AluOp::UMin,
    AluOp::UMax,
    AluOp::IMin,
    AluOp::IMax,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::ShrU,
    AluOp::ShrS,
];
const UN_OPS: [UnOp; 9] = [
    UnOp::Mov,
    UnOp::FNeg,
    UnOp::FAbs,
    UnOp::Not,
    UnOp::CvtF2I,
    UnOp::CvtI2F,
    UnOp::CvtF2U,
    UnOp::CvtU2F,
    UnOp::FFloor,
];
const SFU_OPS: [SfuOp; 7] = [
    SfuOp::Rcp,
    SfuOp::Rsqrt,
    SfuOp::Sqrt,
    SfuOp::Sin,
    SfuOp::Cos,
    SfuOp::Ex2,
    SfuOp::Lg2,
];
const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];
const SCALARS: [Scalar; 3] = [Scalar::F32, Scalar::U32, Scalar::I32];

fn is_nan_bits(b: u32) -> bool {
    b & 0x7f80_0000 == 0x7f80_0000 && b & 0x007f_ffff != 0
}

/// Result equality for one lane. Integer ops must match bit for bit. For
/// f32-producing ops, two NaNs of any payload are equal: x86 propagates
/// the NaN in the instruction's *destination* register, and which operand
/// the compiler puts there varies with register allocation across
/// inlining contexts — the payload is not part of the evaluator contract
/// (the class is; a NaN-vs-number mismatch still fails).
fn lane_eq(got: u32, want: u32, float_op: bool) -> bool {
    got == want || (float_op && is_nan_bits(got) && is_nan_bits(want))
}

/// Asserts `got` equals the per-lane scalar evaluation under `mask`:
/// active lanes must match the scalar op (see [`lane_eq`]), inactive
/// lanes must still hold the sentinel the destination row was seeded
/// with.
fn assert_masked_row(
    label: &str,
    got: &Row,
    sentinel: &Row,
    mask: u32,
    float_op: bool,
    scalar: impl Fn(usize) -> Value,
) {
    for l in 0..32 {
        let (want, strict) = if mask >> l & 1 == 1 {
            (scalar(l), !float_op)
        } else {
            (sentinel[l], true)
        };
        assert!(
            lane_eq(got[l].0, want.0, !strict),
            "{label}: lane {l} diverges (mask {mask:#010x}): got {:#010x}, want {:#010x}",
            got[l].0,
            want.0
        );
    }
}

fn alu_is_float(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::FAdd | AluOp::FSub | AluOp::FMul | AluOp::FMin | AluOp::FMax
    )
}

fn un_is_float(op: UnOp) -> bool {
    matches!(op, UnOp::FNeg | UnOp::FAbs | UnOp::FFloor)
}

#[test]
fn row_evaluators_match_scalar_on_specials_and_partial_masks() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for iter in 0..400 {
        let a = rng.row();
        let b = rng.row();
        let c = rng.row();
        let mask = rng.mask();
        let sentinel: Row = std::array::from_fn(|l| Value::from_u32(0xdead_0000 | l as u32));

        for op in ALU_OPS {
            let mut dst = sentinel;
            exec::eval_alu_row(op, &a, &b, &mut dst, mask);
            assert_masked_row(
                &format!("alu {op:?} iter {iter}"),
                &dst,
                &sentinel,
                mask,
                alu_is_float(op),
                |l| eval_alu(op, a[l], b[l]),
            );
        }
        for op in UN_OPS {
            let mut dst = sentinel;
            exec::eval_un_row(op, &a, &mut dst, mask);
            assert_masked_row(
                &format!("un {op:?} iter {iter}"),
                &dst,
                &sentinel,
                mask,
                un_is_float(op),
                |l| eval_un(op, a[l]),
            );
        }
        for op in SFU_OPS {
            let mut dst = sentinel;
            exec::eval_sfu_row(op, &a, &mut dst, mask);
            assert_masked_row(
                &format!("sfu {op:?} iter {iter}"),
                &dst,
                &sentinel,
                mask,
                true,
                |l| eval_sfu(op, a[l]),
            );
        }
        for op in CMP_OPS {
            for ty in SCALARS {
                let mut dst = sentinel;
                exec::eval_cmp_row(op, ty, &a, &b, &mut dst, mask);
                assert_masked_row(
                    &format!("cmp {op:?} {ty:?} iter {iter}"),
                    &dst,
                    &sentinel,
                    mask,
                    false,
                    |l| eval_cmp(op, ty, a[l], b[l]),
                );
            }
        }
        let mut dst = sentinel;
        exec::eval_ffma_row(&a, &b, &c, &mut dst, mask);
        assert_masked_row(
            &format!("ffma iter {iter}"),
            &dst,
            &sentinel,
            mask,
            true,
            |l| eval_ffma(a[l], b[l], c[l]),
        );
        let mut dst = sentinel;
        exec::eval_imad_row(&a, &b, &c, &mut dst, mask);
        assert_masked_row(
            &format!("imad iter {iter}"),
            &dst,
            &sentinel,
            mask,
            false,
            |l| eval_imad(a[l], b[l], c[l]),
        );
        let mut dst = sentinel;
        exec::eval_sel_row(&c, &a, &b, &mut dst, mask);
        assert_masked_row(
            &format!("sel iter {iter}"),
            &dst,
            &sentinel,
            mask,
            false,
            |l| if c[l].0 != 0 { a[l] } else { b[l] },
        );
    }
}

/// A random non-`Full` shape, including special-float bit patterns as
/// uniform values and extreme strides (overflow-prone, power-of-two).
fn shape(rng: &mut Rng) -> LaneRow {
    if rng.next() & 1 == 0 {
        LaneRow::Uniform(Value::from_u32(rng.special()))
    } else {
        let stride = match rng.next() & 7 {
            0 => 4,
            1 => 1 << 29,
            2 => 1 << 30,
            3 => 0x8000_0000,
            4 => rng.u32() | 0x8000_0000, // huge: wrapping exercised
            _ => rng.u32() & 0xffff,
        };
        LaneRow::affine(rng.special(), stride)
    }
}

fn expand(s: LaneRow) -> Row {
    let mut r = [Value::ZERO; 32];
    assert!(s.expand_into(&mut r), "non-Full shapes must expand");
    r
}

/// Every successful fold must be *exact*: expanding the folded shape has
/// to reproduce, bit for bit, what the scalar evaluator computes on the
/// expanded operands. (`None` is always a legal answer; `Some` never gets
/// to be approximately right.)
#[test]
fn shape_folds_are_bit_exact_against_scalar_evaluation() {
    let mut rng = Rng(0x243f_6a88_85a3_08d3);
    for _ in 0..2000 {
        let a = shape(&mut rng);
        let b = shape(&mut rng);
        let c = shape(&mut rng);
        let (ar, br, cr) = (expand(a), expand(b), expand(c));

        for op in ALU_OPS {
            if let Some(f) = row::fold_alu(op, a, b) {
                let got = expand(f);
                for l in 0..32 {
                    let want = eval_alu(op, ar[l], br[l]);
                    assert!(
                        lane_eq(got[l].0, want.0, alu_is_float(op)),
                        "fold_alu {op:?} lane {l}: {a:?} {b:?}: got {:#010x}, want {:#010x}",
                        got[l].0,
                        want.0
                    );
                }
            }
        }
        for op in UN_OPS {
            if let Some(f) = row::fold_un(op, a) {
                let got = expand(f);
                for l in 0..32 {
                    let want = eval_un(op, ar[l]);
                    assert!(
                        lane_eq(got[l].0, want.0, un_is_float(op)),
                        "fold_un {op:?} lane {l}: {a:?}: got {:#010x}, want {:#010x}",
                        got[l].0,
                        want.0
                    );
                }
            }
        }
        for op in SFU_OPS {
            if let Some(f) = row::fold_sfu(op, a) {
                let got = expand(f);
                for l in 0..32 {
                    let want = eval_sfu(op, ar[l]);
                    assert!(
                        lane_eq(got[l].0, want.0, true),
                        "fold_sfu {op:?} lane {l}: {a:?}: got {:#010x}, want {:#010x}",
                        got[l].0,
                        want.0
                    );
                }
            }
        }
        for op in CMP_OPS {
            for ty in SCALARS {
                if let Some(f) = row::fold_cmp(op, ty, a, b) {
                    let got = expand(f);
                    for l in 0..32 {
                        assert_eq!(
                            got[l].0,
                            eval_cmp(op, ty, ar[l], br[l]).0,
                            "fold_cmp {op:?} {ty:?} lane {l}: {a:?} {b:?}"
                        );
                    }
                }
            }
        }
        if let Some(f) = row::fold_imad(a, b, c) {
            let got = expand(f);
            for l in 0..32 {
                assert_eq!(
                    got[l].0,
                    eval_imad(ar[l], br[l], cr[l]).0,
                    "fold_imad lane {l}: {a:?} {b:?} {c:?}"
                );
            }
        }
        if let Some(f) = row::fold_ffma(a, b, c) {
            let got = expand(f);
            for l in 0..32 {
                let want = eval_ffma(ar[l], br[l], cr[l]);
                assert!(
                    lane_eq(got[l].0, want.0, true),
                    "fold_ffma lane {l}: {a:?} {b:?} {c:?}: got {:#010x}, want {:#010x}",
                    got[l].0,
                    want.0
                );
            }
        }
        if let Some(f) = row::fold_sel(c, a, b) {
            let got = expand(f);
            for l in 0..32 {
                let want = if cr[l].0 != 0 { ar[l] } else { br[l] };
                assert_eq!(got[l].0, want.0, "fold_sel lane {l}: {c:?} {a:?} {b:?}");
            }
        }
    }
}

/// `classify` must round-trip: a row built from any shape classifies back
/// to a shape that expands to the same 32 lanes, and classifying a
/// perturbed row never produces a shape (no false positives).
#[test]
fn classify_round_trips_and_rejects_perturbations() {
    let mut rng = Rng(0x1319_8a2e_0370_7344);
    for _ in 0..2000 {
        let s = shape(&mut rng);
        let r = expand(s);
        let c = LaneRow::classify(&r);
        assert_ne!(c, LaneRow::Full, "structured row must classify: {s:?}");
        let back = expand(c);
        for l in 0..32 {
            assert_eq!(back[l].0, r[l].0, "classify lane {l}: {s:?} -> {c:?}");
        }

        let mut broken = r;
        let lane = (rng.next() % 32) as usize;
        broken[lane].0 ^= 1 << (rng.next() % 32);
        let reclass = LaneRow::classify(&broken);
        let reexp = {
            let mut out = [Value::ZERO; 32];
            if reclass == LaneRow::Full {
                continue; // honestly refused — fine
            }
            assert!(reclass.expand_into(&mut out));
            out
        };
        // If it still classifies (the flip landed on a consistent value),
        // the expansion must still be exact.
        for l in 0..32 {
            assert_eq!(reexp[l].0, broken[l].0, "perturbed classify lane {l}");
        }
    }
}
