//! The PCI-Express transfer model.
//!
//! CUDA 0.8-era measurements on PCIe x16 (Gen 1) put effective pageable
//! host↔device throughput near 1.35 GB/s with a per-call overhead of some
//! tens of microseconds. The paper's Table 3 contrasts kernel time with
//! transfer time — H.264 famously "spends more time in data transfer than
//! GPU execution" — so the model has to charge both terms.

/// PCIe link model.
#[derive(Clone, Debug)]
pub struct PcieModel {
    /// Effective throughput in GB/s.
    pub gbps: f64,
    /// Fixed per-transfer overhead in seconds (driver + DMA setup).
    pub overhead_s: f64,
}

impl Default for PcieModel {
    fn default() -> Self {
        PcieModel {
            gbps: 1.35,
            overhead_s: 20e-6,
        }
    }
}

impl PcieModel {
    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.overhead_s + bytes as f64 / (self.gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_dominates_small_transfers() {
        let p = PcieModel::default();
        let small = p.transfer_time(64);
        assert!(small < 21e-6 && small > 20e-6);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let p = PcieModel::default();
        // 64 MB at 1.35 GB/s ≈ 47 ms.
        let t = p.transfer_time(64 << 20);
        assert!((t - 0.0497).abs() < 0.003, "got {t}");
    }

    #[test]
    fn monotone_in_size() {
        let p = PcieModel::default();
        assert!(p.transfer_time(1000) < p.transfer_time(2000));
    }
}
