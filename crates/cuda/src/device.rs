//! The host-side runtime: device memory management, transfers, launches, and
//! the execution timeline that Table 3's "GPU execution time vs CPU–GPU
//! transfer time" columns come from.

use crate::transfer::PcieModel;
use g80_isa::{Kernel, Operand, Value};
use g80_sim::fault;
use g80_sim::{launch_traced, CudaError, DeviceMemory, GpuConfig, KernelStats, LaunchDims, Served};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Bound on absorb-mode retries of injected device-layer faults (a safety
/// net for rate-1.0 configurations; see [`absorb`]).
const MAX_ABSORB_RETRIES: u32 = 64;

/// Runs a fallible device operation through the absorb layer for the legacy
/// infallible APIs: injected-class failures (typed [`CudaError`]s and
/// panic-kind unwinds from the fault injector) are retried — each `try_*`
/// op polls its site before mutating anything, so a retry is clean — while
/// real errors panic with their legacy message and real panics propagate.
fn absorb<T>(mut op: impl FnMut() -> Result<T, CudaError>) -> T {
    if !fault::armed() {
        // Zero-cost path: no unwind guard, just the legacy panic on error.
        return op().unwrap_or_else(|e| panic!("{e}"));
    }
    let mut attempts = 0u32;
    loop {
        match catch_unwind(AssertUnwindSafe(&mut op)) {
            Ok(Ok(v)) => return v,
            Ok(Err(CudaError::InjectedFault { .. }))
                if fault::retry() && attempts < MAX_ABSORB_RETRIES =>
            {
                attempts += 1;
            }
            Ok(Err(e)) => panic!("{e}"),
            Err(p) => {
                if fault::is_injected_payload(p.as_ref())
                    && fault::retry()
                    && attempts < MAX_ABSORB_RETRIES
                {
                    attempts += 1;
                    continue;
                }
                resume_unwind(p);
            }
        }
    }
}

/// Types that can live in device memory (32-bit words, like the register
/// file).
pub trait Word32: Copy {
    fn to_bits(self) -> u32;
    fn from_bits(bits: u32) -> Self;
}

impl Word32 for f32 {
    fn to_bits(self) -> u32 {
        self.to_bits()
    }
    fn from_bits(bits: u32) -> Self {
        f32::from_bits(bits)
    }
}

impl Word32 for u32 {
    fn to_bits(self) -> u32 {
        self
    }
    fn from_bits(bits: u32) -> Self {
        bits
    }
}

impl Word32 for i32 {
    fn to_bits(self) -> u32 {
        self as u32
    }
    fn from_bits(bits: u32) -> Self {
        bits as i32
    }
}

/// A typed allocation in device global memory.
pub struct DeviceBuffer<T: Word32> {
    byte_addr: u32,
    len: u32,
    _t: PhantomData<T>,
}

impl<T: Word32> DeviceBuffer<T> {
    /// Device byte address of the first element.
    pub fn addr(&self) -> u32 {
        self.byte_addr
    }
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len as usize
    }
    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
    /// The buffer's base address as a kernel parameter value.
    pub fn as_param(&self) -> Value {
        Value::from_u32(self.byte_addr)
    }
    /// The buffer's base address as an instruction operand.
    pub fn as_operand(&self) -> Operand {
        Operand::imm_u(self.byte_addr)
    }
}

/// Wall-clock accounting of everything the "application" did on the device.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Seconds spent in kernels (simulated GPU time).
    pub kernel_s: f64,
    /// Seconds spent copying host-to-device.
    pub h2d_s: f64,
    /// Seconds spent copying device-to-host.
    pub d2h_s: f64,
    /// Kernel launches performed.
    pub launches: u64,
    /// Total simulated GPU cycles.
    pub kernel_cycles: u64,
    /// Launches answered from the simulator's in-process launch memo cache
    /// (their `kernel_s`/`kernel_cycles` were replayed, not simulated).
    pub memo_hits: u64,
    /// Launches answered from the persistent disk cache tier (replayed from
    /// a prior process's simulation; see [`g80_sim::set_disk_cache`]).
    pub disk_hits: u64,
    /// Process-wide row-shape counters ([`g80_sim::row_counters`]) observed
    /// when this device last recorded a kernel: how many warp-instruction
    /// executions resolved through uniform/affine lane-row shapes versus
    /// eager full-row evaluation. A snapshot of totals, like
    /// [`g80_sim::LaunchReport`]'s — diff successive timelines to attribute
    /// a window.
    pub rows: g80_sim::RowCounters,
}

impl Timeline {
    /// Total device-side time (kernels + transfers).
    pub fn total_s(&self) -> f64 {
        self.kernel_s + self.h2d_s + self.d2h_s
    }
    /// Fraction of device time spent in kernels (Table 3's "GPU execution
    /// time" column).
    pub fn gpu_fraction(&self) -> f64 {
        let t = self.total_s();
        if t == 0.0 {
            0.0
        } else {
            self.kernel_s / t
        }
    }
    /// Transfer seconds (both directions).
    pub fn transfer_s(&self) -> f64 {
        self.h2d_s + self.d2h_s
    }
    /// Fraction of this device's launches served by any cache tier — the
    /// in-process launch memo or the persistent disk cache (0 when nothing
    /// launched). Process-wide totals — across devices and including
    /// block-class dedup — live in [`g80_sim::memo_counters`].
    pub fn memo_hit_rate(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            (self.memo_hits + self.disk_hits) as f64 / self.launches as f64
        }
    }
}

/// A simulated GPU with its memory, PCIe link, and timeline.
pub struct Device {
    cfg: GpuConfig,
    mem: DeviceMemory,
    pcie: PcieModel,
    next_free: u32,
    timeline: RefCell<Timeline>,
}

impl Device {
    /// Creates a device with the default G80 configuration and `bytes` of
    /// global memory (the real card had 768 MB; simulations size to fit).
    pub fn new(bytes: u32) -> Self {
        Device::with_config(GpuConfig::geforce_8800_gtx(), bytes)
    }

    /// Creates a device with a custom machine configuration.
    pub fn with_config(cfg: GpuConfig, bytes: u32) -> Self {
        Device {
            cfg,
            mem: DeviceMemory::new(bytes),
            pcie: PcieModel::default(),
            next_free: 0,
            timeline: RefCell::new(Timeline::default()),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Direct access to device memory (tests, texture setup).
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Allocates `len` elements of device memory (256-byte aligned, like
    /// cudaMalloc). Panics on exhaustion with the legacy message; see
    /// [`Device::try_alloc`] for the fallible form.
    pub fn alloc<T: Word32>(&mut self, len: usize) -> DeviceBuffer<T> {
        absorb(|| self.try_alloc(len))
    }

    /// Fallible [`Device::alloc`]: reports exhaustion (and injected
    /// `device.alloc` faults) as a [`CudaError`] instead of panicking.
    pub fn try_alloc<T: Word32>(&mut self, len: usize) -> Result<DeviceBuffer<T>, CudaError> {
        if let Some(f) = fault::poll_typed(fault::Site::DeviceAlloc) {
            return Err(CudaError::InjectedFault { site: f.site });
        }
        let bytes = (len as u32) * 4;
        let addr = self.next_free;
        let end = addr + bytes;
        if end > self.mem.len_bytes() {
            return Err(CudaError::OutOfMemory {
                want: bytes,
                at: addr,
                have: self.mem.len_bytes(),
            });
        }
        self.next_free = end.div_ceil(256) * 256;
        Ok(DeviceBuffer {
            byte_addr: addr,
            len: len as u32,
            _t: PhantomData,
        })
    }

    /// Copies host data to a device buffer (cudaMemcpyHostToDevice),
    /// charging PCIe time. Panics on an oversized copy; see
    /// [`Device::try_copy_to_device`] for the fallible form.
    pub fn copy_to_device<T: Word32>(&self, buf: &DeviceBuffer<T>, data: &[T]) {
        absorb(|| self.try_copy_to_device(buf, data))
    }

    /// Fallible [`Device::copy_to_device`].
    pub fn try_copy_to_device<T: Word32>(
        &self,
        buf: &DeviceBuffer<T>,
        data: &[T],
    ) -> Result<(), CudaError> {
        if let Some(f) = fault::poll_typed(fault::Site::DeviceCopy) {
            return Err(CudaError::InjectedFault { site: f.site });
        }
        if data.len() > buf.len() {
            return Err(CudaError::OversizedCopy {
                len: data.len(),
                capacity: buf.len(),
            });
        }
        for (i, v) in data.iter().enumerate() {
            self.mem
                .write(buf.byte_addr + (i as u32) * 4, Value(v.to_bits()));
        }
        self.timeline.borrow_mut().h2d_s += self.pcie.transfer_time(data.len() as u64 * 4);
        Ok(())
    }

    /// Copies a device buffer back to the host (cudaMemcpyDeviceToHost),
    /// charging PCIe time. See [`Device::try_copy_from_device`] for the
    /// fallible form.
    pub fn copy_from_device<T: Word32>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        absorb(|| self.try_copy_from_device(buf))
    }

    /// Fallible [`Device::copy_from_device`]: the copy itself cannot fail
    /// (the buffer bounds were checked at allocation), but an injected
    /// `device.copy` fault surfaces here as a [`CudaError`].
    pub fn try_copy_from_device<T: Word32>(
        &self,
        buf: &DeviceBuffer<T>,
    ) -> Result<Vec<T>, CudaError> {
        if let Some(f) = fault::poll_typed(fault::Site::DeviceCopy) {
            return Err(CudaError::InjectedFault { site: f.site });
        }
        let mut out = Vec::with_capacity(buf.len());
        for i in 0..buf.len {
            out.push(T::from_bits(self.mem.read(buf.byte_addr + i * 4).0));
        }
        self.timeline.borrow_mut().d2h_s += self.pcie.transfer_time(buf.len as u64 * 4);
        Ok(out)
    }

    /// Uploads the constant bank (cudaMemcpyToSymbol). Panics on overflow;
    /// see [`Device::try_set_const`] for the fallible form.
    pub fn set_const<T: Word32>(&mut self, data: &[T]) {
        absorb(|| self.try_set_const(data))
    }

    /// Fallible [`Device::set_const`].
    pub fn try_set_const<T: Word32>(&mut self, data: &[T]) -> Result<(), CudaError> {
        if let Some(f) = fault::poll_typed(fault::Site::DeviceCopy) {
            return Err(CudaError::InjectedFault { site: f.site });
        }
        if data.len() * 4 > self.cfg.const_mem_bytes as usize {
            return Err(CudaError::ConstOverflow {
                want: data.len() * 4,
                have: self.cfg.const_mem_bytes as usize,
            });
        }
        self.mem.const_bank = data.iter().map(|v| v.to_bits()).collect();
        self.timeline.borrow_mut().h2d_s += self.pcie.transfer_time(data.len() as u64 * 4);
        Ok(())
    }

    /// Binds a buffer as the 1D texture (cudaBindTexture).
    pub fn bind_texture<T: Word32>(&mut self, buf: &DeviceBuffer<T>) {
        self.mem.tex_binding = Some((buf.byte_addr, buf.len * 4));
    }

    /// Launches a kernel and blocks until completion, accumulating kernel
    /// time on the timeline.
    pub fn launch(
        &self,
        kernel: &Kernel,
        grid: (u32, u32),
        block: (u32, u32, u32),
        params: &[Value],
    ) -> Result<KernelStats, g80_sim::LaunchError> {
        let (stats, served) = launch_traced(
            &self.cfg,
            kernel,
            LaunchDims { grid, block },
            params,
            &self.mem,
        )?;
        self.record_kernel(&stats, served);
        Ok(stats)
    }

    /// Accounts one completed kernel on the timeline (shared by [`launch`]
    /// and [`launch_batch`]).
    fn record_kernel(&self, stats: &KernelStats, served: Served) {
        let mut t = self.timeline.borrow_mut();
        t.kernel_s += stats.elapsed;
        t.kernel_cycles += stats.cycles;
        t.launches += 1;
        t.memo_hits += (served == Served::Memo) as u64;
        t.disk_hits += (served == Served::Disk) as u64;
        t.rows = g80_sim::row_counters();
    }

    /// The accumulated execution timeline.
    pub fn timeline(&self) -> Timeline {
        self.timeline.borrow().clone()
    }

    /// Resets the timeline (between experiments).
    pub fn reset_timeline(&self) {
        *self.timeline.borrow_mut() = Timeline::default();
    }
}

/// One entry of a [`launch_batch`]: a kernel launch bound to the device it
/// runs on. Entries may target different devices (a sweep typically builds
/// one device per configuration) as long as all devices share one
/// [`GpuConfig`].
#[derive(Clone, Copy)]
pub struct BatchLaunch<'a> {
    pub device: &'a Device,
    pub kernel: &'a Kernel,
    pub grid: (u32, u32),
    pub block: (u32, u32, u32),
    pub params: &'a [Value],
}

/// Launches every entry through the simulator's batched path
/// ([`g80_sim::launch_batch`]): one predecode per distinct kernel, all SM
/// tasks of all launches interleaved on the shared worker pool. Results come
/// back in entry order and each entry's timeline is charged exactly as a
/// serial [`Device::launch`] loop would.
pub fn launch_batch(entries: &[BatchLaunch]) -> Vec<Result<KernelStats, g80_sim::LaunchError>> {
    if entries.is_empty() {
        return Vec::new();
    }
    let cfg = entries[0].device.config();
    assert!(
        entries.iter().all(|e| e.device.config() == cfg),
        "launch_batch entries must share one GpuConfig"
    );
    let specs: Vec<g80_sim::LaunchSpec> = entries
        .iter()
        .map(|e| g80_sim::LaunchSpec {
            kernel: e.kernel,
            dims: LaunchDims {
                grid: e.grid,
                block: e.block,
            },
            params: e.params,
            mem: e.device.memory(),
        })
        .collect();
    let results = g80_sim::launch_batch_traced(cfg, &specs);
    for (e, r) in entries.iter().zip(&results) {
        if let Ok((stats, served)) = r {
            e.device.record_kernel(stats, *served);
        }
    }
    results
        .into_iter()
        .map(|r| r.map(|(stats, _)| stats))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::KernelBuilder;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut d = Device::new(1 << 16);
        let a = d.alloc::<f32>(10);
        let b = d.alloc::<f32>(100);
        assert_eq!(a.addr() % 256, 0);
        assert_eq!(b.addr() % 256, 0);
        assert!(b.addr() >= a.addr() + 40);
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn oom_panics() {
        let mut d = Device::new(1024);
        let _ = d.alloc::<f32>(1000);
    }

    #[test]
    fn roundtrip_preserves_data() {
        let mut d = Device::new(4096);
        let buf = d.alloc::<f32>(16);
        let data: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        d.copy_to_device(&buf, &data);
        assert_eq!(d.copy_from_device(&buf), data);

        let ibuf = d.alloc::<i32>(4);
        d.copy_to_device(&ibuf, &[-1, 2, -3, 4]);
        assert_eq!(d.copy_from_device(&ibuf), vec![-1, 2, -3, 4]);
    }

    #[test]
    fn timeline_accumulates() {
        let mut d = Device::new(1 << 16);
        let buf = d.alloc::<f32>(1024);
        d.copy_to_device(&buf, &vec![1.0f32; 1024]);

        let mut b = KernelBuilder::new("scale");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let w = b.fmul(v, 3.0f32);
        b.st_global(a, 0, w);
        let k = b.build();

        let stats = d
            .launch(&k, (4, 1), (256, 1, 1), &[buf.as_param()])
            .unwrap();
        assert!(stats.cycles > 0);
        let out = d.copy_from_device(&buf);
        assert!(out.iter().all(|&x| x == 3.0));

        let t = d.timeline();
        assert_eq!(t.launches, 1);
        assert!(t.kernel_s > 0.0);
        assert!(t.h2d_s > 0.0);
        assert!(t.d2h_s > 0.0);
        assert!(t.gpu_fraction() > 0.0 && t.gpu_fraction() < 1.0);

        d.reset_timeline();
        assert_eq!(d.timeline().launches, 0);
    }

    #[test]
    fn batch_launch_matches_serial_and_charges_each_timeline() {
        let mut b = KernelBuilder::new("scale");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let w = b.fmul(v, 3.0f32);
        b.st_global(a, 0, w);
        let k = b.build();

        let mut devices = Vec::new();
        let mut bufs = Vec::new();
        for _ in 0..3 {
            let mut d = Device::new(1 << 16);
            let buf = d.alloc::<f32>(512);
            d.copy_to_device(&buf, &vec![1.0f32; 512]);
            devices.push(d);
            bufs.push(buf);
        }
        let params: Vec<[Value; 1]> = bufs.iter().map(|b| [b.as_param()]).collect();
        let entries: Vec<BatchLaunch> = devices
            .iter()
            .zip(&params)
            .map(|(device, params)| BatchLaunch {
                device,
                kernel: &k,
                grid: (2, 1),
                block: (256, 1, 1),
                params,
            })
            .collect();
        let batched = launch_batch(&entries);

        let mut serial_dev = Device::new(1 << 16);
        let sbuf = serial_dev.alloc::<f32>(512);
        serial_dev.copy_to_device(&sbuf, &vec![1.0f32; 512]);
        let serial = serial_dev
            .launch(&k, (2, 1), (256, 1, 1), &[sbuf.as_param()])
            .unwrap();

        for (d, (buf, r)) in devices.iter().zip(bufs.iter().zip(&batched)) {
            let stats = r.as_ref().unwrap();
            assert_eq!(stats.cycles, serial.cycles);
            assert!(d.copy_from_device(buf).iter().all(|&x| x == 3.0));
            let t = d.timeline();
            assert_eq!(t.launches, 1);
            assert_eq!(t.kernel_cycles, serial.cycles);
        }
        assert!(launch_batch(&[]).is_empty());
    }

    #[test]
    fn timeline_counts_memo_hits() {
        // Hit accounting is meaningless when the cache is globally disabled
        // (the CI matrix runs the suite with G80_SIM_MEMO=off), the exact
        // hit count is perturbed when the chaos CI arms the fault injector
        // (absorbed retries re-probe the cache), and a warm disk-cache dir
        // from a prior run can serve launches the LRU would otherwise miss.
        if g80_sim::memo() == g80_sim::Memo::Off
            || fault::armed()
            || g80_sim::disk_cache_dir().is_some()
        {
            return;
        }
        // The memo key digests the full pre-launch memory image, so the
        // first repeat differs (the output region went from zeros to
        // results) and re-records; from then on the image is a fixed point
        // and every further repeat must hit the cache.
        let mut b = KernelBuilder::new("scale_oop");
        let src = b.param();
        let dst = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let sa = b.iadd(byte, src);
        let v = b.ld_global(sa, 0);
        let w = b.fmul(v, 7.5f32);
        let da = b.iadd(byte, dst);
        b.st_global(da, 0, w);
        let k = b.build();

        let mut d = Device::new(1 << 14);
        let x = d.alloc::<f32>(128);
        let y = d.alloc::<f32>(128);
        d.copy_to_device(&x, &vec![2.0f32; 128]);
        let params = [x.as_param(), y.as_param()];
        let first = d.launch(&k, (1, 1), (128, 1, 1), &params).unwrap();
        let second = d.launch(&k, (1, 1), (128, 1, 1), &params).unwrap();
        let third = d.launch(&k, (1, 1), (128, 1, 1), &params).unwrap();
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.cycles, third.cycles);
        assert!(d.copy_from_device(&y).iter().all(|&v| v == 15.0));

        let t = d.timeline();
        assert_eq!(t.launches, 3);
        assert_eq!(
            t.memo_hits, 1,
            "fixed-point repeat must replay from the memo cache"
        );
        assert!((t.memo_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn const_upload_and_texture_binding() {
        let mut d = Device::new(4096);
        d.set_const(&[1.0f32, 2.0, 3.0]);
        assert_eq!(d.memory().read_const(4).as_f32(), 2.0);
        let buf = d.alloc::<f32>(8);
        d.bind_texture(&buf);
        assert_eq!(d.memory().tex_binding, Some((buf.addr(), 32)));
    }

    #[test]
    #[should_panic(expected = "constant bank overflow")]
    fn const_overflow_panics() {
        let mut d = Device::new(64);
        d.set_const(&vec![0u32; 20000]);
    }
}
