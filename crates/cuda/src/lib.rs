//! # g80-cuda — the host runtime of the reproduction
//!
//! Plays the role of the CUDA runtime API on top of the `g80-sim` machine:
//! [`Device`] owns the simulated GPU, allocates [`DeviceBuffer`]s, performs
//! host↔device copies through a PCIe model, uploads constant memory, binds
//! textures, and launches kernels while accumulating a [`Timeline`] of
//! kernel vs transfer time (the Table 3 columns).
//!
//! It also hosts the [`cpu::CpuModel`] — the calibrated Opteron 248 roofline
//! against which all paper-style speedups are computed.
//!
//! ```
//! use g80_cuda::{Device, CpuModel, CpuTuning, CpuWork};
//! use g80_isa::builder::KernelBuilder;
//!
//! let mut dev = Device::new(1 << 16);
//! let buf = dev.alloc::<f32>(256);
//! dev.copy_to_device(&buf, &vec![2.0f32; 256]);
//!
//! let mut b = KernelBuilder::new("square");
//! let p = b.param();
//! let tid = b.tid_x();
//! let byte = b.shl(tid, 2u32);
//! let a = b.iadd(byte, p);
//! let v = b.ld_global(a, 0);
//! let sq = b.fmul(v, v);
//! b.st_global(a, 0, sq);
//! let k = b.build();
//!
//! dev.launch(&k, (1, 1), (256, 1, 1), &[buf.as_param()]).unwrap();
//! assert!(dev.copy_from_device(&buf).iter().all(|&x| x == 4.0));
//!
//! // Speedup vs the 2008 CPU baseline:
//! let cpu = CpuModel::opteron_248();
//! let cpu_time = cpu.time(&CpuWork { flops: 256.0, bytes: 2048.0, ..Default::default() },
//!                         CpuTuning::SimdFastMath);
//! assert!(cpu_time > 0.0);
//! ```

pub mod cpu;
pub mod device;
pub mod transfer;

pub use cpu::{CpuModel, CpuTuning, CpuWork};
pub use device::{launch_batch, BatchLaunch, Device, DeviceBuffer, Timeline, Word32};
pub use g80_sim::{CudaError, SimError};
pub use transfer::PcieModel;
