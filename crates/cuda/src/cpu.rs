//! The CPU baseline cost model.
//!
//! The paper's speedups compare CUDA kernels on the GeForce 8800 against
//! tuned single-thread code on an **Opteron 248 (2.2 GHz, 1 GB memory)** —
//! 2008-era silicon. Running the references natively on a 2026 host would
//! distort every ratio, so speedups are computed against a calibrated
//! roofline model of that CPU instead: time is the maximum of the
//! floating-point, integer-issue, transcendental, and memory-bandwidth
//! components. Reference implementations still run natively for
//! *correctness* checking (see `g80-apps`).
//!
//! Calibration notes (documented in EXPERIMENTS.md): the Opteron 248
//! sustains ~1 f32 FLOP/cycle scalar and ~4 FLOPs/cycle with hand-tuned
//! SSE2; DDR333 dual-channel delivers ~4.5 GB/s streaming; `sinf`/`cosf`
//! via libm cost roughly 110 cycles (≈40 with fast-math approximations —
//! the paper applied "SIMD instructions and fast math libraries" to keep
//! comparisons fair).

/// Work performed by a CPU implementation, counted over the whole problem.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuWork {
    /// f32 arithmetic operations (FMA counts as 2).
    pub flops: f64,
    /// Transcendental calls (sin/cos/exp/sqrt-class).
    pub trig_ops: f64,
    /// Bytes that must move through the memory hierarchy (beyond cache).
    pub bytes: f64,
    /// Non-FP instructions (addressing, control).
    pub int_ops: f64,
}

impl CpuWork {
    /// Sums two work descriptions.
    pub fn plus(self, o: CpuWork) -> CpuWork {
        CpuWork {
            flops: self.flops + o.flops,
            trig_ops: self.trig_ops + o.trig_ops,
            bytes: self.bytes + o.bytes,
            int_ops: self.int_ops + o.int_ops,
        }
    }

    /// Scales all components.
    pub fn scaled(self, f: f64) -> CpuWork {
        CpuWork {
            flops: self.flops * f,
            trig_ops: self.trig_ops * f,
            bytes: self.bytes * f,
            int_ops: self.int_ops * f,
        }
    }
}

/// Roofline model of a single-core CPU.
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained f32 FLOPs per cycle, scalar code.
    pub flops_per_cycle_scalar: f64,
    /// Sustained f32 FLOPs per cycle with SSE2 (the paper's tuned baselines).
    pub flops_per_cycle_simd: f64,
    /// Streaming memory bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Cycles per libm transcendental call.
    pub trig_cycles_libm: f64,
    /// Cycles per fast-math transcendental.
    pub trig_cycles_fast: f64,
    /// Sustained non-FP instructions per cycle.
    pub int_ipc: f64,
}

/// Baseline tuning levels the paper used for CPU comparisons.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CpuTuning {
    /// Plain scalar code, libm math.
    Scalar,
    /// SSE2 vectorization + fast math ("we applied optimizations such as
    /// SIMD instructions and fast math libraries to the CPU-only versions").
    SimdFastMath,
}

impl CpuModel {
    /// The paper's baseline: Opteron 248, 2.2 GHz, 1 GB memory.
    pub fn opteron_248() -> Self {
        CpuModel {
            clock_ghz: 2.2,
            flops_per_cycle_scalar: 1.0,
            flops_per_cycle_simd: 4.0,
            mem_gbps: 4.5,
            trig_cycles_libm: 110.0,
            trig_cycles_fast: 40.0,
            int_ipc: 2.0,
        }
    }

    /// Predicted single-thread execution time for `work` at the given tuning
    /// level.
    pub fn time(&self, work: &CpuWork, tuning: CpuTuning) -> f64 {
        let hz = self.clock_ghz * 1e9;
        let (fpc, trig_cycles) = match tuning {
            CpuTuning::Scalar => (self.flops_per_cycle_scalar, self.trig_cycles_libm),
            CpuTuning::SimdFastMath => (self.flops_per_cycle_simd, self.trig_cycles_fast),
        };
        let t_flop = work.flops / (fpc * hz);
        let t_trig = work.trig_ops * trig_cycles / hz;
        let t_mem = work.bytes / (self.mem_gbps * 1e9);
        let t_int = work.int_ops / (self.int_ipc * hz);
        // FP and trig share the FP pipes (additive); memory and integer issue
        // overlap with them (roofline max).
        (t_flop + t_trig).max(t_mem).max(t_int)
    }

    /// Peak GFLOPS at a tuning level (sanity anchor: ~8.8 for SSE2 Opteron).
    pub fn peak_gflops(&self, tuning: CpuTuning) -> f64 {
        match tuning {
            CpuTuning::Scalar => self.flops_per_cycle_scalar * self.clock_ghz,
            CpuTuning::SimdFastMath => self.flops_per_cycle_simd * self.clock_ghz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_numbers() {
        let m = CpuModel::opteron_248();
        assert!((m.peak_gflops(CpuTuning::Scalar) - 2.2).abs() < 1e-9);
        assert!((m.peak_gflops(CpuTuning::SimdFastMath) - 8.8).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_work_scales_with_flops() {
        let m = CpuModel::opteron_248();
        let w = CpuWork {
            flops: 8.8e9,
            ..Default::default()
        };
        // 8.8 GFLOP at 8.8 GFLOPS = 1 s.
        assert!((m.time(&w, CpuTuning::SimdFastMath) - 1.0).abs() < 1e-9);
        // Scalar is 4x slower.
        assert!((m.time(&w, CpuTuning::Scalar) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_work_hits_bandwidth_roof() {
        let m = CpuModel::opteron_248();
        let w = CpuWork {
            flops: 1e6,
            bytes: 4.5e9,
            ..Default::default()
        };
        assert!((m.time(&w, CpuTuning::SimdFastMath) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn trig_dominates_mri_like_work() {
        let m = CpuModel::opteron_248();
        let w = CpuWork {
            flops: 1e8,
            trig_ops: 1e8,
            ..Default::default()
        };
        let libm = m.time(&w, CpuTuning::Scalar);
        let fast = m.time(&w, CpuTuning::SimdFastMath);
        // fast-math helps a lot, but trig still dominates raw flops.
        assert!(libm > 2.0 * fast);
        assert!(fast > 1e8 / (8.8e9));
    }

    #[test]
    fn work_algebra() {
        let a = CpuWork {
            flops: 1.0,
            trig_ops: 2.0,
            bytes: 3.0,
            int_ops: 4.0,
        };
        let b = a.plus(a.scaled(2.0));
        assert_eq!(b.flops, 3.0);
        assert_eq!(b.trig_ops, 6.0);
        assert_eq!(b.bytes, 9.0);
        assert_eq!(b.int_ops, 12.0);
    }
}
