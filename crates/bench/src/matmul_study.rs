//! Figure 4 and Section 4 — the matrix-multiplication optimization study.

use g80_apps::matmul::{MatMul, Variant};
use g80_core::{advise, estimate, kernel_occupancy, Bottleneck, Sample, SweepResult};
use g80_sim::GpuConfig;

/// One measured configuration of Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    pub label: String,
    pub gflops: f64,
    pub regs: u32,
    pub blocks_per_sm: u32,
    pub warps_per_sm: u32,
}

/// Reference GFLOPS from the paper's Figure 4 / Section 4 prose, where
/// stated (the figure's bars are read off the chart otherwise).
pub fn paper_fig4_gflops(label: &str) -> Option<f64> {
    match label {
        "not tiled" => Some(10.58),
        "16x16 tiled" => Some(46.49),
        "16x16 tiled+unrolled" => Some(91.14),
        "16x16 tiled+unrolled+prefetch" => Some(87.10),
        _ => None,
    }
}

/// Runs the Figure 4 sweep: {not tiled} ∪ {4,8,12,16}×{tiled, unrolled}.
/// `n` must be divisible by 48 (so 12×12 tiles fit); the paper used 4096 on
/// silicon — GFLOPS computed from simulated cycles is size-stable, so a
/// smaller lattice tells the same story.
pub fn figure4(n: u32) -> Vec<Fig4Row> {
    assert_eq!(n % 48, 0, "n must be divisible by 4, 8, 12 and 16");
    let mm = MatMul { n };
    let (a, b) = mm.generate(42);
    let mut variants = vec![Variant::Naive];
    for tile in [4u32, 8, 12, 16] {
        variants.push(Variant::Tiled {
            tile,
            unroll: false,
        });
        variants.push(Variant::Tiled { tile, unroll: true });
    }
    // One step beyond the paper's figure: the companion study's register
    // tiling ([22]).
    variants.push(Variant::RegTiled { tile: 16 });
    let cfg = GpuConfig::geforce_8800_gtx();
    // All eleven configurations go down as one batch: one predecode per
    // kernel, every launch's SM tasks interleaved on the worker pool.
    let results = mm.run_batch(&variants, &a, &b);
    variants
        .into_iter()
        .zip(results)
        .map(|(v, (_, stats, _))| {
            let k = mm.kernel(v);
            let (sx, sy) = v.block_shape();
            let occ = kernel_occupancy(&cfg, &k, sx * sy);
            Fig4Row {
                label: v.label(),
                gflops: stats.gflops(),
                regs: k.regs_per_thread,
                blocks_per_sm: occ.blocks_per_sm,
                warps_per_sm: occ.warps_per_sm,
            }
        })
        .collect()
}

pub fn render_figure4(rows: &[Fig4Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 4: matrix multiplication kernel performance\n");
    s.push_str(&format!(
        "{:<34} {:>8} {:>6} {:>9} {:>8} {:>12}\n",
        "configuration", "GFLOPS", "regs", "blocks/SM", "warps/SM", "paper GFLOPS"
    ));
    for r in rows {
        let paper = paper_fig4_gflops(&r.label)
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "~".into());
        s.push_str(&format!(
            "{:<34} {:>8.2} {:>6} {:>9} {:>8} {:>12}\n",
            r.label, r.gflops, r.regs, r.blocks_per_sm, r.warps_per_sm, paper
        ));
        // Crude bar chart, 2 GFLOPS per tick.
        let ticks = (r.gflops / 2.0).round() as usize;
        s.push_str(&format!("  {}\n", "#".repeat(ticks)));
    }
    s
}

/// One step of the Section 4 narrative.
#[derive(Clone, Debug)]
pub struct Sec4Step {
    pub name: String,
    pub gflops: f64,
    pub paper_gflops: f64,
    pub regs: u32,
    pub blocks_per_sm: u32,
    pub bottleneck: Bottleneck,
    pub issue_bound: f64,
    pub bandwidth_bound: f64,
    pub required_bw: f64,
    pub top_hint: Option<String>,
}

/// Reproduces the Section 4.1–4.4 optimization walk at size `n` (multiple
/// of 16), including the analytical potential-throughput estimates and the
/// advisor's top recommendation at each step.
pub fn section4(n: u32) -> Vec<Sec4Step> {
    let mm = MatMul { n };
    let (a, b) = mm.generate(42);
    let cfg = GpuConfig::geforce_8800_gtx();
    let steps: [(&str, Variant, f64); 4] = [
        ("4.1 initial (not tiled)", Variant::Naive, 10.58),
        (
            "4.2 16x16 tiling",
            Variant::Tiled {
                tile: 16,
                unroll: false,
            },
            46.49,
        ),
        (
            "4.3 + complete unrolling",
            Variant::Tiled {
                tile: 16,
                unroll: true,
            },
            91.14,
        ),
        ("4.4 + prefetching", Variant::Prefetch { tile: 16 }, 87.10),
    ];
    steps
        .into_iter()
        .map(|(name, v, paper)| {
            let k = mm.kernel(v);
            let (_, stats, _) = mm.run(v, &a, &b);
            let est = estimate(&cfg, &stats);
            let hints = advise(&cfg, &stats);
            Sec4Step {
                name: name.to_string(),
                gflops: stats.gflops(),
                paper_gflops: paper,
                regs: k.regs_per_thread,
                blocks_per_sm: stats.blocks_per_sm,
                bottleneck: est.bottleneck,
                issue_bound: est.issue_bound_gflops,
                bandwidth_bound: est.bandwidth_bound_gflops,
                required_bw: est.required_bandwidth_gbps,
                top_hint: hints.first().map(|h| format!("{:?}", h.kind)),
            }
        })
        .collect()
}

/// The Section 4.2 register-pressure ablation: the *rolled* tiled kernel
/// (whose barrier-paired global loads make it latency-sensitive) forced to
/// 10 vs 11 registers per thread — "each SM executes only two blocks
/// simultaneously, which reduces performance".
pub fn register_cliff(n: u32) -> (Sec4Step, Sec4Step) {
    let mm = MatMul { n };
    let (a, b) = mm.generate(42);
    let cfg = GpuConfig::geforce_8800_gtx();
    let v = Variant::Tiled {
        tile: 16,
        unroll: false,
    };
    // Both forced-register points go down as one two-entry batch.
    let caps = [10u32, 11];
    let preps: Vec<_> = caps
        .iter()
        .map(|&regs| {
            let k = mm.kernel(v).with_forced_regs(regs);
            let mut dev = g80_cuda::Device::new(3 * n * n * 4 + 4096);
            let da = dev.alloc::<f32>((n * n) as usize);
            let db = dev.alloc::<f32>((n * n) as usize);
            let dc = dev.alloc::<f32>((n * n) as usize);
            dev.copy_to_device(&da, &a);
            dev.copy_to_device(&db, &b);
            let params = [da.as_param(), db.as_param(), dc.as_param()];
            (k, dev, params)
        })
        .collect();
    let entries: Vec<g80_cuda::BatchLaunch> = preps
        .iter()
        .map(|(k, dev, params)| g80_cuda::BatchLaunch {
            device: dev,
            kernel: k,
            grid: (n / 16, n / 16),
            block: (16, 16, 1),
            params,
        })
        .collect();
    let results = g80_cuda::launch_batch(&entries);
    let mut steps = caps.iter().zip(results).map(|(&regs, r)| {
        let stats = r.unwrap();
        let est = estimate(&cfg, &stats);
        Sec4Step {
            name: format!("16x16 tiled (rolled) forced to {regs} regs"),
            gflops: stats.gflops(),
            paper_gflops: 0.0,
            regs,
            blocks_per_sm: stats.blocks_per_sm,
            bottleneck: est.bottleneck,
            issue_bound: est.issue_bound_gflops,
            bandwidth_bound: est.bandwidth_bound_gflops,
            required_bw: est.required_bandwidth_gbps,
            top_hint: None,
        }
    });
    let r10 = steps.next().unwrap();
    let r11 = steps.next().unwrap();
    (r10, r11)
}

pub fn render_section4(steps: &[Sec4Step], cliff: &(Sec4Step, Sec4Step)) -> String {
    let mut s = String::new();
    s.push_str("Section 4: matrix multiplication optimization walk (n x n x n SGEMM)\n");
    s.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>5} {:>7} {:>9} {:>9} {:>9}  {:<18} {}\n",
        "step",
        "GFLOPS",
        "paper",
        "regs",
        "blk/SM",
        "issue-bnd",
        "bw-bound",
        "req GB/s",
        "bottleneck",
        "advisor"
    ));
    for st in steps {
        s.push_str(&format!(
            "{:<28} {:>8.2} {:>8.2} {:>5} {:>7} {:>9.1} {:>9.1} {:>9.0}  {:<18} {}\n",
            st.name,
            st.gflops,
            st.paper_gflops,
            st.regs,
            st.blocks_per_sm,
            st.issue_bound,
            st.bandwidth_bound.min(9999.0),
            st.required_bw,
            format!("{:?}", st.bottleneck),
            st.top_hint.as_deref().unwrap_or("-"),
        ));
    }
    s.push_str("\nSection 4.2 register-pressure cliff (same kernel, forced registers):\n");
    for st in [&cliff.0, &cliff.1] {
        s.push_str(&format!(
            "  {:<38} {:>8.2} GFLOPS  {} blocks/SM\n",
            st.name, st.gflops, st.blocks_per_sm
        ));
    }
    s
}

/// Uses the auto-tuner to search the full (tile, unroll) space, verifying it
/// lands on 16x16 + unrolled (Section 6's "better tools" suggestion).
pub fn tuner_search(n: u32) -> (String, f64) {
    let mm = MatMul { n };
    let (a, b) = mm.generate(42);
    let mut configs = vec![Variant::Naive];
    for tile in [4u32, 8, 16] {
        for unroll in [false, true] {
            configs.push(Variant::Tiled { tile, unroll });
        }
    }
    configs.push(Variant::Prefetch { tile: 16 });
    configs.push(Variant::RegTiled { tile: 16 });
    // Exhaustive sweep as one batched launch instead of serial runs.
    let evals = mm.run_batch(&configs, &a, &b);
    let result = SweepResult::from_samples(
        configs
            .iter()
            .zip(evals)
            .map(|(&config, (_, stats, _))| Sample { config, stats })
            .collect(),
    );
    let best = result.best_sample();
    (best.config.label(), best.stats.gflops())
}

/// The Section 6 "local maximums of performance" demonstration: a
/// hill-climber that follows one optimization strategy (tune the tile size,
/// never revisit the unrolling decision) parks on a local maximum far below
/// the exhaustive sweep's optimum.
///
/// Returns (stuck-at label, stuck-at GFLOPS, global-best label, global-best
/// GFLOPS).
pub fn local_maximum_demo(n: u32) -> (String, f64, String, f64) {
    use g80_core::hill_climb;
    let mm = MatMul { n };
    let (a, b) = mm.generate(42);
    let eval = |v: &Variant| mm.run(*v, &a, &b).1;

    // Strategy-constrained neighbourhood: tile size only, rolled loops.
    let tiles = [4u32, 8, 12, 16];
    let path = hill_climb(
        Variant::Tiled {
            tile: 4,
            unroll: false,
        },
        |v| {
            let Variant::Tiled { tile, unroll } = *v else {
                return vec![];
            };
            let i = tiles.iter().position(|&t| t == tile).unwrap();
            let mut out = Vec::new();
            if i > 0 {
                out.push(Variant::Tiled {
                    tile: tiles[i - 1],
                    unroll,
                });
            }
            if i + 1 < tiles.len() {
                out.push(Variant::Tiled {
                    tile: tiles[i + 1],
                    unroll,
                });
            }
            out
        },
        eval,
    );
    let stuck = path.last().unwrap();

    let (best_label, best_gflops) = tuner_search(n);
    (
        stuck.config.label(),
        stuck.stats.gflops(),
        best_label,
        best_gflops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds() {
        let rows = figure4(96);
        let get = |label: &str| rows.iter().find(|r| r.label == label).unwrap().gflops;
        // Unrolling helps at every tile size.
        for t in [4, 8, 12, 16] {
            assert!(
                get(&format!("{t}x{t} tiled+unrolled")) > get(&format!("{t}x{t} tiled")),
                "unroll regression at {t}"
            );
        }
        // 16x16 unrolled wins the paper's configurations by a wide margin;
        // only the beyond-the-paper register-tiled kernel beats it.
        let best = get("16x16 tiled+unrolled");
        for r in &rows {
            if !r.label.contains("register") {
                assert!(best >= r.gflops, "{} beats 16x16 unrolled", r.label);
            }
        }
        assert!(best > 3.0 * get("not tiled"));
        assert!(get("16x16 tiled+register tiling") > best);
        // 4x4 is the worst tiled configuration.
        assert!(get("4x4 tiled") < get("8x8 tiled"));
        assert!(get("4x4 tiled") < get("16x16 tiled"));
    }

    #[test]
    fn section4_walk_matches_paper_story() {
        let steps = section4(128);
        assert_eq!(steps.len(), 4);
        // Naive: memory-bound, needing more bandwidth than the chip has.
        assert_eq!(steps[0].bottleneck, Bottleneck::MemoryBandwidth);
        assert!(steps[0].required_bw > 86.4);
        // Tiled: no longer bandwidth-bound.
        assert!(steps[1].gflops > 2.5 * steps[0].gflops);
        // Unrolled: near the issue roofline, ~2x the rolled version.
        assert!(steps[2].gflops > 1.7 * steps[1].gflops);
        assert_eq!(steps[2].bottleneck, Bottleneck::InstructionIssue);
        // Prefetch: close to the unrolled version (the paper's "difference
        // between the two configurations is only 5%"; at this reduced
        // problem size drain-tail effects widen the band slightly).
        let ratio = steps[3].gflops / steps[2].gflops;
        assert!((0.90..1.15).contains(&ratio), "prefetch ratio {ratio}");
    }

    #[test]
    fn register_cliff_loses_a_block() {
        // The occupancy mechanism reproduces exactly: 10 regs → 3 blocks,
        // 11 → 2. For this issue-bound kernel the *timing* penalty is small
        // (16 warps still hide the latencies in our model; see
        // EXPERIMENTS.md) — the full performance cliff on a latency-bound
        // kernel is asserted in g80-sim's
        // `register_pressure_reduces_occupancy_and_performance` test.
        let (r10, r11) = register_cliff(192);
        assert_eq!(r10.blocks_per_sm, 3);
        assert_eq!(r11.blocks_per_sm, 2);
        assert!(
            r10.gflops > 0.95 * r11.gflops,
            "losing a block must not pay: {} vs {}",
            r10.gflops,
            r11.gflops
        );
    }

    #[test]
    fn strategy_constrained_climb_parks_on_a_local_maximum() {
        // Section 6: "it is also possible to get stuck in local maximums of
        // performance when attempting to follow a particular optimization
        // strategy. These maximums may be significantly lower than the peak
        // achievable performance."
        let (stuck_label, stuck, best_label, best) = local_maximum_demo(96);
        assert!(
            stuck < 0.7 * best,
            "expected a significant local-max gap: {stuck_label} at {stuck:.1} \
             vs {best_label} at {best:.1}"
        );
        // The tile-only strategy stalls inside the rolled family (which
        // rolled tile it parks on depends on problem size), never reaching
        // the unrolled ridge.
        assert!(
            stuck_label.ends_with("tiled"),
            "stuck at {stuck_label}, expected a rolled configuration"
        );
    }

    #[test]
    fn tuner_finds_the_16x16_family() {
        let (label, gflops) = tuner_search(96);
        // With register tiling in the space, the winner is the 16x16
        // register-tiled kernel; the Section 4 optimum is the runner-up.
        assert!(label.contains("16x16"), "tuner picked {label}");
        assert!(gflops > 50.0);
    }
}
