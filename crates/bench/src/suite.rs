//! Tables 2 and 3 — the application-suite characterization.
//!
//! Every row runs the application's optimized kernel(s) on its default
//! workload, validates against the CPU reference, and derives the paper's
//! columns from the measured counters. Paper comparison values are listed
//! in EXPERIMENTS.md (several are reconstructed — the supplied paper text
//! has the table bodies garbled; see DESIGN.md §4).

use g80_apps::common::AppReport;
use g80_apps::{cp, fdtd, fem, lbm, matmul, mrifhd, mriq, pns, rc5, rpes, sad, saxpy, tpacf};
use g80_core::{estimate, Bottleneck};
use g80_cuda::{CpuModel, CpuTuning, Device};
use g80_sim::GpuConfig;

/// Scale of the suite run (tests use Small; the repro binary uses Full).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    Small,
    Full,
}

/// Runs every application and returns its report, in the paper's Table 2
/// ordering. Each application's whole setup→launch→validate pipeline is
/// one task on the shared simulation pool; the inner kernel launches fan
/// out on the same pool (scope owners execute tasks while they wait, so
/// the nesting cannot deadlock) and results come back in submission order.
pub fn run_suite(scale: Scale) -> Vec<AppReport> {
    let full = scale == Scale::Full;
    type Job = Box<dyn FnOnce() -> AppReport + Send>;
    let jobs: Vec<Job> = vec![
        // H.264 motion estimation.
        Box::new(move || {
            if full {
                sad::SadApp::default()
            } else {
                sad::SadApp {
                    width: 64,
                    height: 48,
                }
            }
            .report()
        }),
        // LBM.
        Box::new(move || {
            if full {
                lbm::Lbm { n: 128, steps: 8 }
            } else {
                lbm::Lbm { n: 64, steps: 2 }
            }
            .report()
        }),
        // RC5-72.
        Box::new(move || {
            rc5::Rc5 {
                n_keys: if full { 1 << 16 } else { 1 << 12 },
                ..Default::default()
            }
            .report()
        }),
        // FEM.
        Box::new(move || {
            fem::Fem {
                n_nodes: if full { 1 << 15 } else { 1 << 13 },
                sweeps: if full { 8 } else { 2 },
            }
            .report()
        }),
        // RPES.
        Box::new(move || {
            rpes::Rpes {
                n: if full { 1 << 15 } else { 1 << 13 },
            }
            .report()
        }),
        // PNS.
        Box::new(move || {
            pns::Pns {
                n_threads: if full { 1 << 14 } else { 1 << 12 },
                steps: if full { 256 } else { 64 },
                snap_every: 32,
            }
            .report()
        }),
        // SAXPY.
        Box::new(move || {
            saxpy::Saxpy {
                n: if full { 1 << 20 } else { 1 << 17 },
                alpha: 2.5,
            }
            .report()
        }),
        // TPACF.
        Box::new(move || {
            tpacf::Tpacf {
                n: if full { 2048 } else { 512 },
            }
            .report()
        }),
        // FDTD.
        Box::new(move || {
            fdtd::Fdtd {
                n: if full { 256 } else { 128 },
                steps: if full { 8 } else { 2 },
            }
            .report()
        }),
        // MRI-Q.
        Box::new(move || {
            mriq::MriQ {
                n_voxels: if full { 1 << 15 } else { 1 << 12 },
                n_k: if full { 1024 } else { 256 },
            }
            .report()
        }),
        // MRI-FHD.
        Box::new(move || {
            mrifhd::MriFhd {
                n_voxels: if full { 1 << 15 } else { 1 << 12 },
                n_k: if full { 1024 } else { 256 },
            }
            .report()
        }),
        // CP.
        Box::new(move || {
            cp::CoulombicPotential {
                grid: if full { 256 } else { 64 },
                n_atoms: if full { 128 } else { 64 },
                spacing: 0.5,
            }
            .report()
        }),
    ];
    g80_sim::pool::run_tasks(jobs)
}

/// The matrix-multiplication row the paper lists "for comparison".
pub fn matmul_row(n: u32) -> AppReport {
    let mm = matmul::MatMul { n };
    let (a, b) = mm.generate(42);
    let v = matmul::Variant::Tiled {
        tile: 16,
        unroll: true,
    };
    let want = mm.cpu_reference(&a, &b);
    let (got, stats, timeline) = mm.run(v, &a, &b);
    AppReport {
        name: "MatMul",
        description: "Dense single-precision matrix multiplication",
        stats,
        timeline,
        cpu_kernel_s: CpuModel::opteron_248().time(&mm.cpu_work(), CpuTuning::SimdFastMath),
        kernel_cpu_fraction: 0.99,
        max_rel_error: g80_apps::common::max_rel_error(&got, &want),
    }
}

/// Renders Table 2 (application inventory).
pub fn render_table2(reports: &[AppReport]) -> String {
    let mut s = String::new();
    s.push_str("Table 2: application suite\n");
    s.push_str(&format!(
        "{:<12} {:<52} {:>12}\n",
        "Application", "Description", "% CPU in krn"
    ));
    for r in reports {
        s.push_str(&format!(
            "{:<12} {:<52} {:>11.1}%\n",
            r.name,
            r.description,
            r.kernel_cpu_fraction * 100.0
        ));
    }
    s
}

/// Renders Table 3 (optimized implementation characteristics + speedups).
pub fn render_table3(reports: &[AppReport]) -> String {
    let cfg = GpuConfig::geforce_8800_gtx();
    let mut s = String::new();
    s.push_str("Table 3: optimized application implementations\n");
    s.push_str(&format!(
        "{:<12} {:>8} {:>5} {:>7} {:>9} {:>7} {:>9} {:<18} {:>8} {:>8} {:>7}\n",
        "Application",
        "maxthr",
        "regs",
        "smem/B",
        "mem:comp",
        "GPU%",
        "xfer(ms)",
        "bottleneck",
        "krn spd",
        "app spd",
        "err"
    ));
    for r in reports {
        let est = estimate(&cfg, &r.stats);
        s.push_str(&format!(
            "{:<12} {:>8} {:>5} {:>7} {:>9.2} {:>6.0}% {:>9.3} {:<18} {:>7.1}x {:>7.2}x {:>7.0e}\n",
            r.name,
            r.stats.max_simultaneous_threads,
            r.stats.regs_per_thread,
            r.stats.smem_per_block,
            r.stats.global_to_compute_ratio(),
            r.gpu_exec_fraction() * 100.0,
            r.timeline.transfer_s() * 1e3,
            format!("{:?}", est.bottleneck),
            r.kernel_speedup(),
            r.app_speedup(),
            r.max_rel_error,
        ));
    }
    s
}

/// Ensures a device can be built (smoke helper reused by the binary).
pub fn smoke_device() -> Device {
    Device::new(1 << 16)
}

/// Groups the suite by measured bottleneck — the paper's Section 5.1
/// discussion ("memory-related bottlenecks appeared in LBM, FEM, PNS,
/// SAXPY, and FDTD").
pub fn bottleneck_groups(reports: &[AppReport]) -> Vec<(String, Vec<&'static str>)> {
    let cfg = GpuConfig::geforce_8800_gtx();
    let mut groups: Vec<(Bottleneck, Vec<&'static str>)> = Vec::new();
    for r in reports {
        let b = estimate(&cfg, &r.stats).bottleneck;
        match groups.iter_mut().find(|(g, _)| *g == b) {
            Some((_, v)) => v.push(r.name),
            None => groups.push((b, vec![r.name])),
        }
    }
    groups
        .into_iter()
        .map(|(b, v)| (format!("{b:?}"), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_validates() {
        let reports = run_suite(Scale::Small);
        assert_eq!(reports.len(), 12);
        for r in &reports {
            assert!(
                r.max_rel_error < 1e-2,
                "{}: error {}",
                r.name,
                r.max_rel_error
            );
            assert!(
                r.kernel_speedup() > 1.0,
                "{}: kernel speedup {}",
                r.name,
                r.kernel_speedup()
            );
            assert!(r.stats.cycles > 0);
        }
    }

    #[test]
    fn speedup_grouping_matches_paper_tiers() {
        let reports = run_suite(Scale::Small);
        let get = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .kernel_speedup()
        };
        // The paper's top tier (MRI-Q, MRI-FHD, CP, RPES) clears the
        // memory-bound tier (LBM, FEM, FDTD) by an order of magnitude.
        let top = [get("MRI-Q"), get("MRI-FHD"), get("CP"), get("RPES")];
        let low = [get("LBM"), get("FEM"), get("FDTD")];
        let top_min = top.iter().cloned().fold(f64::MAX, f64::min);
        let low_max = low.iter().cloned().fold(0.0, f64::max);
        assert!(
            top_min > 2.0 * low_max,
            "tier separation violated: top_min {top_min} vs low_max {low_max}"
        );
        // FDTD's app speedup is Amdahl-crushed.
        let fdtd = reports.iter().find(|r| r.name == "FDTD").unwrap();
        assert!(fdtd.app_speedup() < 1.25);
    }

    #[test]
    fn tables_render() {
        let reports = run_suite(Scale::Small);
        let t2 = render_table2(&reports);
        let t3 = render_table3(&reports);
        for name in [
            "H.264", "LBM", "RC5-72", "FEM", "RPES", "PNS", "SAXPY", "TPACF", "FDTD", "MRI-Q",
            "MRI-FHD", "CP",
        ] {
            assert!(t2.contains(name), "table2 missing {name}");
            assert!(t3.contains(name), "table3 missing {name}");
        }
        assert!(!bottleneck_groups(&reports).is_empty());
    }
}
