//! Table 1 — properties of the GeForce 8800 memory spaces, measured by
//! microbenchmark instead of transcribed from the datasheet.
//!
//! For each space we run two microkernels on the simulated machine:
//!
//! * **latency**: a single warp executing a dependent chain of loads
//!   (each address comes from the previous value), so no parallelism can
//!   hide anything — cycles/load is the exposed round-trip;
//! * **bandwidth**: a full-occupancy streaming kernel, reporting achieved
//!   GB/s.

use g80_isa::builder::{KernelBuilder, Unroll};
use g80_isa::inst::{Operand, Space};
use g80_isa::Value;
use g80_sim::{launch, DeviceMemory, GpuConfig, LaunchDims};

/// One measured row of Table 1.
#[derive(Clone, Debug)]
pub struct MemoryRow {
    pub space: &'static str,
    pub location: &'static str,
    pub size: &'static str,
    pub access: &'static str,
    pub scope: &'static str,
    /// Exposed dependent-load latency in cycles.
    pub latency_cycles: f64,
    /// Achieved streaming bandwidth in GB/s (None where streaming is not
    /// the intended use).
    pub bandwidth_gbps: Option<f64>,
}

const CHAIN: u32 = 256;

/// Dependent pointer-chase through `space`. Returns cycles per load.
fn measure_latency(cfg: &GpuConfig, space: Space) -> f64 {
    let mut b = KernelBuilder::new("chase");
    let out = b.param();
    match space {
        Space::Shared => {
            // Build the chain in shared memory first (single warp).
            let smem = b.shared_alloc(CHAIN);
            let tid = b.tid_x();
            let tb = b.shl(tid, 2u32);
            // chain[i] = ((i + 1) % CHAIN) * 4
            let next = b.iadd(tb, 4u32);
            let wrapped = b.and(next, (CHAIN * 4) - 1);
            b.st_shared(tb, smem as i32, wrapped);
            b.bar();
            let p = b.mov(Operand::imm_u(0));
            b.for_range(0u32, CHAIN, 1, Unroll::None, |b, _| {
                let v = b.ld_shared(p, smem as i32);
                b.mov_to(p, v);
            });
            b.st_global(out, 0, p);
        }
        Space::Global | Space::Tex | Space::Const => {
            let p = b.mov(Operand::imm_u(0));
            b.for_range(0u32, CHAIN, 1, Unroll::None, |b, _| {
                let v = b.ld(space, p, 0);
                b.mov_to(p, v);
            });
            b.st_global(out, 0, p);
        }
        Space::Local => {
            // Seed local memory with the chain, then chase it.
            let tid = b.tid_x();
            let _ = tid;
            b.for_range(0u32, CHAIN, 1, Unroll::None, |b, i| {
                let ib = b.shl(i, 2u32);
                let next = b.iadd(ib, 4u32);
                let wrapped = b.and(next, (CHAIN * 4) - 1);
                b.st(Space::Local, ib, 0, wrapped);
            });
            let p = b.mov(Operand::imm_u(0));
            b.for_range(0u32, CHAIN, 1, Unroll::None, |b, _| {
                let v = b.ld(Space::Local, p, 0);
                b.mov_to(p, v);
            });
            b.st_global(out, 0, p);
        }
    }
    let k = b.build();

    let mem = DeviceMemory::new(CHAIN * 4 + 64);
    // Chain in global words: mem[i] = (i+1)%CHAIN * 4.
    for i in 0..CHAIN {
        mem.write(i * 4, Value::from_u32(((i + 1) % CHAIN) * 4));
    }
    let mut m = mem;
    m.const_bank = (0..CHAIN).map(|i| ((i + 1) % CHAIN) * 4).collect();
    m.tex_binding = Some((0, CHAIN * 4));

    let stats = launch(
        cfg,
        &k,
        LaunchDims {
            grid: (1, 1),
            block: (1, 1, 1),
        },
        &[Value::from_u32(CHAIN * 4)],
        &m,
    )
    .expect("latency kernel");
    // Subtract the loop overhead measured instruction count: ~4 insts per
    // iteration at 4 cycles each plus the chase itself; report cycles/load
    // minus the non-load issue cost.
    let per_iter = stats.cycles as f64 / CHAIN as f64;
    let overhead = 5.0 * 4.0; // mov + iadd + setp + 2 bra issue slots
    (per_iter - overhead).max(1.0)
}

/// Full-occupancy streaming read bandwidth through `space` in GB/s.
fn measure_bandwidth(cfg: &GpuConfig, space: Space) -> f64 {
    let n: u32 = 1 << 20;
    let mut b = KernelBuilder::new("stream");
    let (inp, outp) = (b.param(), b.param());
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    // Four loads per thread (grid-stride) so bandwidth, not instruction
    // issue, is the limit.
    let quarter = (n / 4 * 4) as i32;
    let mut vals = Vec::new();
    for k in 0..4i32 {
        vals.push(match space {
            Space::Global => {
                let a = b.iadd(byte, inp);
                b.ld_global(a, k * quarter)
            }
            Space::Tex => b.ld_tex(byte, k * quarter),
            _ => unreachable!("bandwidth measured for global/texture only"),
        });
    }
    let mut d = b.fadd(vals[0], 1.0f32);
    for &v in &vals[1..] {
        d = b.fadd(d, v);
    }
    // One output word per block to avoid write traffic swamping the read
    // measurement: thread 0 writes.
    let p0 = b.setp(g80_isa::CmpOp::Eq, g80_isa::Scalar::U32, tid, 0u32);
    b.if_(g80_isa::Pred::if_true(p0), |b| {
        let ob = b.shl(cta, 2u32);
        let oa = b.iadd(ob, outp);
        b.st_global(oa, 0, d);
    });
    let k = b.build();

    let mut mem = DeviceMemory::new(n * 4 + (n / 256) * 4 + 64);
    mem.tex_binding = Some((0, n * 4));
    let stats = launch(
        cfg,
        &k,
        LaunchDims {
            grid: (n / 4 / 256, 1),
            block: (256, 1, 1),
        },
        &[Value::from_u32(0), Value::from_u32(n * 4)],
        &mem,
    )
    .expect("bandwidth kernel");
    // Useful (requested) bytes over elapsed time.
    n as f64 * 4.0 / stats.elapsed / 1e9
}

/// Measures every row of Table 1.
pub fn run(cfg: &GpuConfig) -> Vec<MemoryRow> {
    vec![
        MemoryRow {
            space: "Global",
            location: "off-chip",
            size: "768 MB total",
            access: "read/write",
            scope: "all threads",
            latency_cycles: measure_latency(cfg, Space::Global),
            bandwidth_gbps: Some(measure_bandwidth(cfg, Space::Global)),
        },
        MemoryRow {
            space: "Shared",
            location: "on-chip",
            size: "16 KB per SM",
            access: "read/write",
            scope: "thread block",
            latency_cycles: measure_latency(cfg, Space::Shared),
            bandwidth_gbps: None,
        },
        MemoryRow {
            space: "Constant",
            location: "off-chip, cached",
            size: "64 KB (8 KB cache/SM)",
            access: "read-only",
            scope: "all threads",
            latency_cycles: measure_latency(cfg, Space::Const),
            bandwidth_gbps: None,
        },
        MemoryRow {
            space: "Texture",
            location: "off-chip, cached",
            size: "up to global (8 KB cache/SM)",
            access: "read-only",
            scope: "all threads",
            latency_cycles: measure_latency(cfg, Space::Tex),
            bandwidth_gbps: Some(measure_bandwidth(cfg, Space::Tex)),
        },
        MemoryRow {
            space: "Local",
            location: "off-chip (DRAM)",
            size: "per-thread spill",
            access: "read/write",
            scope: "one thread",
            latency_cycles: measure_latency(cfg, Space::Local),
            bandwidth_gbps: None,
        },
    ]
}

/// Renders the table.
pub fn render(rows: &[MemoryRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 1: memory spaces of the simulated GeForce 8800 (measured)\n");
    s.push_str(&format!(
        "{:<10} {:<18} {:<26} {:<11} {:<13} {:>9} {:>10}\n",
        "Memory", "Location", "Size", "Access", "Scope", "Lat (cyc)", "BW (GB/s)"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:<18} {:<26} {:<11} {:<13} {:>9.0} {:>10}\n",
            r.space,
            r.location,
            r.size,
            r.access,
            r.scope,
            r.latency_cycles,
            r.bandwidth_gbps
                .map(|b| format!("{b:.1}"))
                .unwrap_or_else(|| "-".into()),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_have_the_right_ordering() {
        let cfg = GpuConfig::geforce_8800_gtx();
        let rows = run(&cfg);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.space == name)
                .unwrap()
                .latency_cycles
        };
        // Shared is far faster than global; caches sit in between or below;
        // local is as slow as global.
        assert!(get("Shared") < 60.0, "shared {}", get("Shared"));
        assert!(get("Global") > 300.0, "global {}", get("Global"));
        assert!(get("Local") > 300.0);
        assert!(get("Constant") < get("Global") / 3.0);
        assert!(get("Texture") < get("Global"));
    }

    #[test]
    fn global_streaming_bandwidth_near_peak() {
        let cfg = GpuConfig::geforce_8800_gtx();
        let bw = measure_bandwidth(&cfg, Space::Global);
        assert!(bw > 0.7 * cfg.dram_gbps, "bw {bw}");
        assert!(bw <= cfg.dram_gbps * 1.01);
    }

    #[test]
    fn render_is_complete() {
        let cfg = GpuConfig::geforce_8800_gtx();
        let text = render(&run(&cfg));
        for name in ["Global", "Shared", "Constant", "Texture", "Local"] {
            assert!(text.contains(name));
        }
    }
}
