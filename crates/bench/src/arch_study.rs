//! The Section 6 future-work experiment: "we are exploring methods to
//! preserve or enhance performance of applications when shifts in the
//! underlying architecture or runtime occur."
//!
//! We run the matmul configuration space on three machines — the paper's
//! 8800 GTX, the narrower 8800 GTS, and a GT200-generation part (more SMs,
//! doubled register file, relaxed coalescing) — and ask two questions:
//!
//! 1. does the hand-tuned G80 optimum survive the shift? (mostly: the
//!    16×16 + unrolled family stays on top);
//! 2. which *lessons* change? (the naive kernel's coalescing penalty
//!    shrinks dramatically on the CC 1.2-style coalescer — exactly the
//!    kind of assumption drift the paper warns about).

use g80_apps::matmul::{MatMul, Variant};
use g80_cuda::{BatchLaunch, Device};
use g80_sim::GpuConfig;

/// One architecture's sweep results.
#[derive(Clone, Debug)]
pub struct ArchResult {
    pub arch: &'static str,
    pub peak_gflops: f64,
    /// (variant label, achieved GFLOPS), in sweep order.
    pub results: Vec<(String, f64)>,
    /// The winning configuration.
    pub best: String,
}

/// Runs every variant on one machine as a single batched launch (batches
/// cannot mix configs, so each architecture is its own batch).
fn sweep_on(cfg: &GpuConfig, mm: &MatMul, variants: &[Variant], a: &[f32], b: &[f32]) -> Vec<f64> {
    let n = mm.n;
    let preps: Vec<_> = variants
        .iter()
        .map(|&v| {
            let mut dev = Device::with_config(cfg.clone(), 3 * n * n * 4 + 4096);
            let da = dev.alloc::<f32>((n * n) as usize);
            let db = dev.alloc::<f32>((n * n) as usize);
            let dc = dev.alloc::<f32>((n * n) as usize);
            dev.copy_to_device(&da, a);
            dev.copy_to_device(&db, b);
            let params = [da.as_param(), db.as_param(), dc.as_param()];
            (mm.kernel(v), dev, params)
        })
        .collect();
    let entries: Vec<BatchLaunch> = variants
        .iter()
        .zip(&preps)
        .map(|(&v, (k, dev, params))| {
            let t = v.block_edge();
            BatchLaunch {
                device: dev,
                kernel: k,
                grid: (n / t, n / t),
                block: (t, t, 1),
                params,
            }
        })
        .collect();
    variants
        .iter()
        .zip(g80_cuda::launch_batch(&entries))
        .map(|(v, r)| {
            r.unwrap_or_else(|e| panic!("arch study launch ({}): {e}", v.label()))
                .gflops()
        })
        .collect()
}

/// Sweeps the matmul config space across the three machines.
pub fn run(n: u32) -> Vec<ArchResult> {
    let mm = MatMul { n };
    let (a, b) = mm.generate(42);
    let variants = [
        Variant::Naive,
        Variant::Tiled {
            tile: 8,
            unroll: true,
        },
        Variant::Tiled {
            tile: 16,
            unroll: false,
        },
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        Variant::Prefetch { tile: 16 },
    ];
    [
        ("GeForce 8800 GTX (G80)", GpuConfig::geforce_8800_gtx()),
        ("GeForce 8800 GTS (12 SMs)", GpuConfig::geforce_8800_gts()),
        ("GT200-class (30 SMs, CC1.2)", GpuConfig::gtx280_like()),
    ]
    .into_iter()
    .map(|(arch, cfg)| {
        let gflops = sweep_on(&cfg, &mm, &variants, &a, &b);
        let results: Vec<(String, f64)> = variants
            .iter()
            .zip(gflops)
            .map(|(&v, g)| (v.label(), g))
            .collect();
        let best = results
            .iter()
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap()
            .0
            .clone();
        ArchResult {
            arch,
            peak_gflops: cfg.peak_mad_gflops(),
            results,
            best,
        }
    })
    .collect()
}

pub fn render(rows: &[ArchResult]) -> String {
    let mut s = String::new();
    s.push_str("Architecture-shift study (Section 6 future work): SGEMM across machines\n\n");
    for r in rows {
        s.push_str(&format!("{} — peak {:.0} GFLOPS\n", r.arch, r.peak_gflops));
        for (label, gflops) in &r.results {
            let eff = gflops / r.peak_gflops * 100.0;
            s.push_str(&format!(
                "  {label:<36} {gflops:>7.2} GFLOPS ({eff:>4.1}% of peak)\n"
            ));
        }
        s.push_str(&format!("  -> best: {}\n\n", r.best));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_survives_architecture_shifts() {
        let rows = run(96);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.best.contains("16x16"), "{}: best was {}", r.arch, r.best);
        }
    }

    #[test]
    fn relaxed_coalescing_softens_the_naive_penalty() {
        let rows = run(96);
        let naive_share = |r: &ArchResult| {
            let naive = r.results.iter().find(|(l, _)| l == "not tiled").unwrap().1;
            let best = r.results.iter().map(|(_, g)| *g).fold(0.0, f64::max);
            naive / best
        };
        let g80 = naive_share(&rows[0]);
        let gt200 = naive_share(&rows[2]);
        // On CC1.2's combining coalescer the naive kernel recovers a much
        // larger fraction of the optimum than on CC1.0.
        assert!(
            gt200 > 1.5 * g80,
            "naive/best: G80 {g80:.3} vs GT200 {gt200:.3}"
        );
    }

    #[test]
    fn more_sms_scale_the_absolute_numbers() {
        let rows = run(96);
        let best = |i: usize| rows[i].results.iter().map(|(_, g)| *g).fold(0.0, f64::max);
        // GTS (12 SMs @1.2GHz) < GTX (16 @1.35) < GT200 (30 @1.296).
        assert!(best(1) < best(0));
        assert!(best(2) > best(0));
    }
}
