//! The reproduction harness: `repro <experiment>` regenerates a table or
//! figure of Ryoo et al. (PPoPP 2008) on the simulated GeForce 8800.

use g80_bench::{ablations, matmul_study, suite, table1};
use g80_sim::GpuConfig;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [--small]\n\
         experiments:\n\
           table1      memory-space latency/bandwidth microbenchmarks\n\
           fig3        disassemble the Figure 3 matmul kernels\n\
           fig4        matmul tile-size / unrolling sweep\n\
           sec4        Section 4 optimization walk + register cliff + tuner\n\
           table2      application suite inventory\n\
           table3      optimized application characteristics and speedups\n\
           fig5        LBM access-pattern study\n\
           sad-texture SAD texture-vs-global ablation\n\
           mri-sfu     MRI-Q SFU-vs-polynomial trig ablation\n\
           rc5-rotate  RC5 native-vs-emulated rotate ablation\n\
           arch        architecture-shift study (8800 GTS / GTX / GT200)\n\
           regcap      register-cap (occupancy vs spill) study\n\
           all         everything above"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let what = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let cfg = GpuConfig::geforce_8800_gtx();

    let run = |name: &str| match name {
        "table1" => print!("{}", table1::render(&table1::run(&cfg))),
        "fig3" => {
            let mm = g80_apps::matmul::MatMul { n: 256 };
            for v in [
                g80_apps::matmul::Variant::Naive,
                g80_apps::matmul::Variant::Tiled {
                    tile: 16,
                    unroll: false,
                },
            ] {
                println!("{}", g80_isa::disasm::disassemble(&mm.kernel(v)));
            }
        }
        "fig4" => {
            let n = if small { 96 } else { 192 };
            print!(
                "{}",
                matmul_study::render_figure4(&matmul_study::figure4(n))
            );
        }
        "sec4" => {
            let n = if small { 128 } else { 256 };
            let steps = matmul_study::section4(n);
            let cliff = matmul_study::register_cliff(n);
            print!("{}", matmul_study::render_section4(&steps, &cliff));
            let (label, gflops) = matmul_study::tuner_search(if small { 96 } else { 192 });
            println!("\nAuto-tuner optimum over the config space: {label} at {gflops:.2} GFLOPS");
            let (sl, sg, bl, bg) = matmul_study::local_maximum_demo(if small { 96 } else { 192 });
            println!(
                "Local-maximum demo (tile-only strategy): stuck at {sl} ({sg:.2} GFLOPS) \
                 vs global best {bl} ({bg:.2} GFLOPS) — Section 6's warning, quantified"
            );
        }
        "table2" | "table3" => {
            let scale = if small {
                suite::Scale::Small
            } else {
                suite::Scale::Full
            };
            let mut reports = suite::run_suite(scale);
            reports.push(suite::matmul_row(if small { 128 } else { 256 }));
            if name == "table2" {
                print!("{}", suite::render_table2(&reports));
            } else {
                print!("{}", suite::render_table3(&reports));
                println!("\nBottleneck groups (Section 5.1):");
                for (b, apps) in suite::bottleneck_groups(&reports) {
                    println!("  {b}: {}", apps.join(", "));
                }
            }
        }
        "fig5" => {
            let (n, steps) = if small { (64, 2) } else { (128, 8) };
            print!(
                "{}",
                ablations::render_figure5(&ablations::figure5(n, steps))
            );
        }
        "sad-texture" => {
            let (g, t, gain) = ablations::sad_texture();
            println!("SAD: global {g:.3} ms, texture {t:.3} ms -> {gain:.2}x (paper: 2.8x)");
        }
        "mri-sfu" => {
            let (s, p, gain) = ablations::mri_sfu();
            println!("MRI-Q: SFU {s:.3} ms, polynomial {p:.3} ms -> {gain:.2}x");
        }
        "rc5-rotate" => {
            let (e, nv, gain) = ablations::rc5_rotate();
            println!("RC5: emulated {e:.3} ms, native {nv:.3} ms -> {gain:.2}x");
        }
        "arch" => {
            let n = if small { 96 } else { 192 };
            print!(
                "{}",
                g80_bench::arch_study::render(&g80_bench::arch_study::run(n))
            );
        }
        "regcap" => {
            print!(
                "{}",
                g80_bench::regcap_study::render(&g80_bench::regcap_study::run())
            );
        }
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    };

    if what == "all" {
        for name in [
            "table1",
            "fig4",
            "sec4",
            "table2",
            "table3",
            "fig5",
            "sad-texture",
            "mri-sfu",
            "rc5-rotate",
            "arch",
            "regcap",
        ] {
            println!("==================================================================");
            println!("== {name}");
            println!("==================================================================");
            run(name);
            println!();
        }
    } else {
        run(what);
    }
}
