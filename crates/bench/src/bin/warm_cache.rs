//! Cross-process warm-cache probe for the persistent disk tier.
//!
//! Runs one tuner-fleet round (the Figure 4 matmul variant family at n=64)
//! against the cache directory given as the first argument, then prints the
//! process-wide cache counters. The round is deterministic — fixed seed,
//! fixed allocation order, fixed kernel content — so every invocation
//! computes identical content-addressed keys, and a second invocation
//! against the same directory must be served from the files the first one
//! published.
//!
//! `--expect-warm` asserts that at least one launch was served from disk
//! (exit 2 otherwise); CI runs the binary twice against one directory to
//! prove the cache survives the process boundary.

use g80_apps::matmul::{MatMul, Variant};
use g80_sim::{
    memo_counters, set_dedup, set_disk_cache, set_engine, set_executor, set_memo, Dedup, Engine,
    Executor, Memo,
};
use std::path::PathBuf;

fn main() {
    let mut expect_warm = false;
    let mut dir: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--expect-warm" {
            expect_warm = true;
        } else {
            dir = Some(PathBuf::from(arg));
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: warm_cache <cache-dir> [--expect-warm]");
        std::process::exit(3);
    };
    // Pin every axis that feeds the memo key's mode byte, so invocations
    // agree on keys regardless of ambient G80_SIM_* variables.
    set_memo(Memo::On);
    set_dedup(Dedup::Off);
    set_engine(Engine::Predecoded);
    set_executor(Executor::Pooled);
    set_disk_cache(Some(dir));

    let mm = MatMul { n: 64 };
    let (a, b) = mm.generate(42);
    let variants = [
        Variant::Tiled {
            tile: 8,
            unroll: false,
        },
        Variant::Tiled {
            tile: 8,
            unroll: true,
        },
        Variant::Tiled {
            tile: 16,
            unroll: false,
        },
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        Variant::Prefetch { tile: 16 },
        Variant::RegTiled { tile: 16 },
    ];
    let mut fp = 0u64;
    for &v in &variants {
        let n = mm.n;
        let mut dev = g80_cuda::Device::new(3 * n * n * 4 + 4096);
        let da = dev.alloc::<f32>((n * n) as usize);
        let db = dev.alloc::<f32>((n * n) as usize);
        let dc = dev.alloc::<f32>((n * n) as usize);
        dev.copy_to_device(&da, &a);
        dev.copy_to_device(&db, &b);
        let params = [da.as_param(), db.as_param(), dc.as_param()];
        let k = mm.kernel(v);
        let t = v.block_edge();
        let (bx, by) = v.block_shape();
        let stats = dev
            .launch(&k, (n / t, n / t), (bx, by, 1), &params)
            .expect("launch");
        fp = fp.wrapping_add(stats.cycles);
    }
    let c = memo_counters();
    println!(
        "fingerprint={fp} memo_hits={} memo_misses={} disk_hits={} disk_misses={} disk_evictions={}",
        c.hits, c.misses, c.disk_hits, c.disk_misses, c.disk_evictions
    );
    if expect_warm && c.disk_hits == 0 {
        eprintln!("warm_cache: expected disk hits on a warm directory, got none");
        std::process::exit(2);
    }
}
