//! Host-performance benchmark of the two timing engines.
//!
//! Runs identical workloads through the frozen reference engine and the
//! predecoded engine and reports wall-clock seconds plus the speedup
//! ratio. The simulated `KernelStats` of both engines are asserted
//! bit-identical for every workload along the way (cheap insurance on
//! top of `tests/golden_stats.rs`).
//!
//! Writes a JSON report to the path given as the first argument
//! (default `BENCH_sim.json`). The committed copy at the repo root is
//! regenerated with:
//!
//! ```text
//! cargo run --release -p g80-bench --bin bench_sim -- BENCH_sim.json
//! ```

use g80_apps::matmul::{MatMul, Variant};
use g80_apps::saxpy::Saxpy;
use g80_apps::tpacf::Tpacf;
use g80_sim::{set_engine, Engine, KernelStats};
use std::time::Instant;

/// Timed runs per engine per workload (after one warm-up run).
const RUNS: usize = 5;

struct Row {
    name: &'static str,
    reference_s: f64,
    predecoded_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_s / self.predecoded_s
    }
}

/// Minimum wall-clock over `RUNS` timed executions (min is the standard
/// low-noise estimator for a deterministic workload).
fn time_engine(engine: Engine, run: &mut dyn FnMut() -> KernelStats) -> (f64, KernelStats) {
    set_engine(engine);
    let stats = run(); // warm-up; also the stats sample for the A/B check
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, stats)
}

fn bench(name: &'static str, mut run: impl FnMut() -> KernelStats) -> Row {
    let (reference_s, ref_stats) = time_engine(Engine::Reference, &mut run);
    let (predecoded_s, pre_stats) = time_engine(Engine::Predecoded, &mut run);
    assert_eq!(
        (
            ref_stats.cycles,
            ref_stats.warp_instructions,
            ref_stats.stall_cycles
        ),
        (
            pre_stats.cycles,
            pre_stats.warp_instructions,
            pre_stats.stall_cycles
        ),
        "{name}: engines disagree on simulated timing"
    );
    let row = Row {
        name,
        reference_s,
        predecoded_s,
    };
    eprintln!(
        "{:<24} reference {:>8.4}s  predecoded {:>8.4}s  speedup {:>5.2}x",
        row.name,
        row.reference_s,
        row.predecoded_s,
        row.speedup()
    );
    row
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".into());
    let mut rows = Vec::new();

    // The headline workload: the paper's best matmul configuration
    // (16x16 tiled, fully unrolled) at a production-ish size.
    let mm = MatMul { n: 256 };
    let (a, b) = mm.generate(42);
    let tiled = Variant::Tiled {
        tile: 16,
        unroll: true,
    };
    rows.push(bench("matmul_256_tiled16u", move || {
        mm.run(tiled, &a, &b).1
    }));

    // Streaming memory-bound kernel: little arithmetic, scheduler- and
    // coalescing-path dominated.
    let sx = Saxpy {
        n: 1 << 18,
        alpha: 2.0,
    };
    let (x, y) = sx.generate(42);
    rows.push(bench("saxpy_262144", move || sx.run(&x, &y).1));

    // Divergent, atomic-heavy kernel: stresses the settle/retire paths.
    let tp = Tpacf { n: 1024 };
    let sky = tp.generate(42);
    rows.push(bench("tpacf_1024", move || tp.run(&sky).1));

    set_engine(Engine::Predecoded);

    let mut json = String::from("{\n  \"benchmark\": \"g80-sim engine wall-clock\",\n");
    json.push_str(&format!(
        "  \"runs_per_engine\": {RUNS},\n  \"workloads\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reference_s\": {:.6}, \"predecoded_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.reference_s,
            r.predecoded_s,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    eprintln!("wrote {out_path}");

    let headline = rows[0].speedup();
    assert!(
        headline >= 2.0,
        "headline matmul speedup {headline:.2}x is below the 2x floor"
    );
}
