//! Host-performance benchmark of the simulator's execution strategies.
//!
//! Two comparisons, both on identical workloads with bit-identical
//! simulated `KernelStats` asserted along the way:
//!
//! * **engines** — the frozen reference interpreter vs the predecoded
//!   engine (PR 1), single-launch wall clock;
//! * **sweeps** — the per-launch `thread::scope` spawn baseline
//!   (`Executor::SpawnPerLaunch`, under which `launch_batch` degrades to a
//!   serial launch loop) vs the pooled batched path (`Executor::Pooled`),
//!   on fleet workloads: the full Figure 4 sweep, a tuner-style fleet of
//!   many small launches, and the 12-app suite at test scale.
//!
//! Writes a JSON report to the path given as the last argument
//! (default `BENCH_sim.json`). The committed copy at the repo root is
//! regenerated with:
//!
//! ```text
//! cargo run --release -p g80-bench --bin bench_sim -- BENCH_sim.json
//! ```
//!
//! `--check` runs fewer repetitions and is what CI's benchmark-floor job
//! uses; the speedup floors are asserted in every mode.

use g80_apps::matmul::{MatMul, Variant};
use g80_apps::saxpy::Saxpy;
use g80_apps::tpacf::Tpacf;
use g80_bench::{matmul_study, suite};
use g80_sim::{set_engine, set_executor, Engine, Executor, KernelStats};
use std::time::Instant;

struct Row {
    name: &'static str,
    reference_s: f64,
    predecoded_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_s / self.predecoded_s
    }
}

/// Minimum wall-clock over `runs` timed executions (min is the standard
/// low-noise estimator for a deterministic workload).
fn time_engine(
    engine: Engine,
    runs: usize,
    run: &mut dyn FnMut() -> KernelStats,
) -> (f64, KernelStats) {
    set_engine(engine);
    let stats = run(); // warm-up; also the stats sample for the A/B check
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, stats)
}

fn bench(name: &'static str, runs: usize, mut run: impl FnMut() -> KernelStats) -> Row {
    let (reference_s, ref_stats) = time_engine(Engine::Reference, runs, &mut run);
    let (predecoded_s, pre_stats) = time_engine(Engine::Predecoded, runs, &mut run);
    assert_eq!(
        (
            ref_stats.cycles,
            ref_stats.warp_instructions,
            ref_stats.stall_cycles
        ),
        (
            pre_stats.cycles,
            pre_stats.warp_instructions,
            pre_stats.stall_cycles
        ),
        "{name}: engines disagree on simulated timing"
    );
    let row = Row {
        name,
        reference_s,
        predecoded_s,
    };
    eprintln!(
        "{:<24} reference {:>8.4}s  predecoded {:>8.4}s  speedup {:>5.2}x",
        row.name,
        row.reference_s,
        row.predecoded_s,
        row.speedup()
    );
    row
}

struct SweepRow {
    name: &'static str,
    spawn_s: f64,
    pooled_s: f64,
}

impl SweepRow {
    fn speedup(&self) -> f64 {
        self.spawn_s / self.pooled_s
    }
}

/// Times a fleet workload under both executors. `run` returns a
/// fingerprint of the simulated results, asserted identical across
/// executors (the pool must move *where* work runs, never *what* it
/// computes).
fn bench_sweep(name: &'static str, runs: usize, mut run: impl FnMut() -> u64) -> SweepRow {
    let mut time_executor = |ex: Executor| {
        set_executor(ex);
        let fp = run(); // warm-up + fingerprint sample
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let t0 = Instant::now();
            run();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, fp)
    };
    let (spawn_s, spawn_fp) = time_executor(Executor::SpawnPerLaunch);
    let (pooled_s, pooled_fp) = time_executor(Executor::Pooled);
    set_executor(Executor::Pooled);
    assert_eq!(
        spawn_fp, pooled_fp,
        "{name}: executors disagree on simulated results"
    );
    let row = SweepRow {
        name,
        spawn_s,
        pooled_s,
    };
    eprintln!(
        "{:<24} spawn     {:>8.4}s  pooled     {:>8.4}s  speedup {:>5.2}x",
        row.name,
        row.spawn_s,
        row.pooled_s,
        row.speedup()
    );
    row
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_sim.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }
    // --check (CI) repeats less; floors are asserted either way.
    let runs = if check { 2 } else { 5 };

    // ---- engine A/B (single launches) ----
    let mut rows = Vec::new();

    // The headline workload: the paper's best matmul configuration
    // (16x16 tiled, fully unrolled) at a production-ish size.
    let mm = MatMul { n: 256 };
    let (a, b) = mm.generate(42);
    let tiled = Variant::Tiled {
        tile: 16,
        unroll: true,
    };
    rows.push(bench("matmul_256_tiled16u", runs, move || {
        mm.run(tiled, &a, &b).1
    }));

    // Streaming memory-bound kernel: little arithmetic, scheduler- and
    // coalescing-path dominated.
    let sx = Saxpy {
        n: 1 << 18,
        alpha: 2.0,
    };
    let (x, y) = sx.generate(42);
    rows.push(bench("saxpy_262144", runs, move || sx.run(&x, &y).1));

    // Divergent, atomic-heavy kernel: stresses the settle/retire paths.
    let tp = Tpacf { n: 1024 };
    let sky = tp.generate(42);
    rows.push(bench("tpacf_1024", runs, move || tp.run(&sky).1));

    set_engine(Engine::Predecoded);

    // ---- executor A/B (launch fleets) ----
    let mut sweeps = Vec::new();

    // The full Figure 4 tile/unroll sweep at its smallest legal size.
    // Large grids keep every SM busy, so this measures the batched path
    // on simulation-bound launches.
    sweeps.push(bench_sweep("fig4_sweep_48", runs, || {
        matmul_study::figure4(48)
            .iter()
            .map(|r| r.gflops.to_bits())
            .fold(0u64, u64::wrapping_add)
    }));

    // A tuner-style fleet: the Figure 4 variant family at n=16 — one or a
    // few blocks per launch — re-evaluated round after round on prebuilt
    // kernels and devices (a hill-climber or sweep revisits the same
    // configurations; building them is not the cost being measured).
    // Per-launch thread-spawn overhead dominates such fleets; this row is
    // the pooled engine's headline.
    let fleet = MatMul { n: 16 };
    let (fa, fb) = fleet.generate(42);
    let mut fleet_variants = vec![Variant::Naive, Variant::RegTiled { tile: 16 }];
    for tile in [4u32, 8, 16] {
        for unroll in [false, true] {
            fleet_variants.push(Variant::Tiled { tile, unroll });
        }
    }
    let fleet_preps: Vec<_> = fleet_variants
        .iter()
        .map(|&v| {
            let n = fleet.n;
            let mut dev = g80_cuda::Device::new(3 * n * n * 4 + 4096);
            let da = dev.alloc::<f32>((n * n) as usize);
            let db = dev.alloc::<f32>((n * n) as usize);
            let dc = dev.alloc::<f32>((n * n) as usize);
            dev.copy_to_device(&da, &fa);
            dev.copy_to_device(&db, &fb);
            let params = [da.as_param(), db.as_param(), dc.as_param()];
            (fleet.kernel(v), dev, params)
        })
        .collect();
    // Ten evaluation rounds of every variant, submitted as one batch of 80
    // launches: the batch path predecodes each kernel once for the whole
    // fleet, while the spawn baseline pays per-launch predecode and a
    // 16-thread spawn burst for every entry.
    let fleet_entries: Vec<g80_cuda::BatchLaunch> = std::iter::repeat_n((), 10)
        .flat_map(|()| {
            fleet_variants
                .iter()
                .zip(&fleet_preps)
                .map(|(&v, (k, dev, params))| {
                    let t = v.block_edge();
                    let (bx, by) = v.block_shape();
                    g80_cuda::BatchLaunch {
                        device: dev,
                        kernel: k,
                        grid: (fleet.n / t, fleet.n / t),
                        block: (bx, by, 1),
                        params,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    sweeps.push(bench_sweep("tuner_fleet_16", runs, || {
        g80_cuda::launch_batch(&fleet_entries)
            .into_iter()
            .map(|r| r.unwrap().cycles)
            .fold(0u64, u64::wrapping_add)
    }));

    // Block-size occupancy probes: the tuner's smallest unit of work — a
    // few hundred launches of a tiny streaming kernel, one to eight blocks
    // each. Per-launch thread-spawn overhead *is* the cost here, so this
    // row isolates what the pooled executor removes.
    let probe_kernel = {
        use g80_isa::builder::KernelBuilder;
        use g80_isa::inst::Operand;
        let mut b = KernelBuilder::new("probe");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let d = b.fmul(v, Operand::imm_f(2.0));
        b.st_global(a, 0, d);
        b.build()
    };
    let mut probe_dev = g80_cuda::Device::new(4096);
    let probe_buf = probe_dev.alloc::<f32>(256);
    probe_dev.copy_to_device(&probe_buf, &vec![1.0f32; 256]);
    sweeps.push(bench_sweep("probe_fleet_256", runs, || {
        let mut fp = 0u64;
        for _ in 0..50 {
            for bs in [32u32, 64, 128, 256] {
                let stats = probe_dev
                    .launch(
                        &probe_kernel,
                        (256 / bs, 1),
                        (bs, 1, 1),
                        &[probe_buf.as_param()],
                    )
                    .unwrap();
                fp = fp.wrapping_add(stats.cycles);
            }
        }
        fp
    }));

    // The 12-application suite at test scale: app-level pool tasks whose
    // inner launches nest on the same pool.
    sweeps.push(bench_sweep("suite_small", runs, || {
        suite::run_suite(suite::Scale::Small)
            .iter()
            .map(|r| r.stats.cycles)
            .fold(0u64, u64::wrapping_add)
    }));

    // ---- report ----
    let mut json = String::from("{\n  \"benchmark\": \"g80-sim engine wall-clock\",\n");
    json.push_str(&format!(
        "  \"runs_per_engine\": {runs},\n  \"workloads\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reference_s\": {:.6}, \"predecoded_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.reference_s,
            r.predecoded_s,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"sweeps\": [\n");
    for (i, r) in sweeps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"spawn_s\": {:.6}, \"pooled_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.spawn_s,
            r.pooled_s,
            r.speedup(),
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    eprintln!("wrote {out_path}");

    let headline = rows[0].speedup();
    assert!(
        headline >= 2.0,
        "headline matmul speedup {headline:.2}x is below the 2x floor"
    );
    let sweep_floor = |name: &str, floor: f64| {
        let s = sweeps.iter().find(|r| r.name == name).unwrap().speedup();
        assert!(
            s >= floor,
            "{name} pooled speedup {s:.2}x is below the {floor}x floor"
        );
    };
    sweep_floor("tuner_fleet_16", 2.0);
    sweep_floor("probe_fleet_256", 3.0);
}
