//! Host-performance benchmark of the simulator's execution strategies.
//!
//! Two comparisons, both on identical workloads with bit-identical
//! simulated `KernelStats` asserted along the way:
//!
//! * **engines** — the frozen reference interpreter vs the predecoded
//!   engine (PR 1), single-launch wall clock;
//! * **sweeps** — the per-launch `thread::scope` spawn baseline
//!   (`Executor::SpawnPerLaunch`, under which `launch_batch` degrades to a
//!   serial launch loop) vs the pooled batched path (`Executor::Pooled`),
//!   on fleet workloads: the full Figure 4 sweep, a tuner-style fleet of
//!   many small launches, and the 12-app suite at test scale.
//!
//! Writes a JSON report to the path given as the last argument
//! (default `BENCH_sim.json`). The committed copy at the repo root is
//! regenerated with:
//!
//! ```text
//! cargo run --release -p g80-bench --bin bench_sim -- BENCH_sim.json
//! ```
//!
//! `--check` runs fewer repetitions and is what CI's benchmark-floor job
//! uses; the speedup floors are asserted in every mode.
//!
//! Exit codes: `0` all floors met, `2` a performance floor was missed,
//! `3` the harness itself failed (an A/B bit-identity mismatch, a
//! nondeterministic fleet, an unwritable report path).

use g80_apps::matmul::{MatMul, Variant};
use g80_apps::saxpy::Saxpy;
use g80_apps::tpacf::Tpacf;
use g80_bench::{matmul_study, suite};
use g80_sim::{
    clear_memo_cache, memo_counters, row_counters, set_dedup, set_disk_cache, set_engine,
    set_executor, set_faults, set_memo, set_rows, set_watchdog_cycles, Dedup, Engine, Executor,
    FaultConfig, KernelStats, Memo, Rows,
};
use std::time::Instant;

struct Row {
    name: &'static str,
    reference_s: f64,
    predecoded_s: f64,
    compiled_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_s / self.predecoded_s
    }
    fn compiled_speedup(&self) -> f64 {
        self.reference_s / self.compiled_s
    }
}

/// Minimum wall-clock over `runs` timed executions (min is the standard
/// low-noise estimator for a deterministic workload).
fn time_engine(
    engine: Engine,
    runs: usize,
    run: &mut dyn FnMut() -> KernelStats,
) -> (f64, KernelStats) {
    set_engine(engine);
    let stats = run(); // warm-up; also the stats sample for the A/B check
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, stats)
}

fn bench(name: &'static str, runs: usize, mut run: impl FnMut() -> KernelStats) -> Row {
    let (reference_s, ref_stats) = time_engine(Engine::Reference, runs, &mut run);
    let (predecoded_s, pre_stats) = time_engine(Engine::Predecoded, runs, &mut run);
    let (compiled_s, com_stats) = time_engine(Engine::Compiled, runs, &mut run);
    for (other, stats) in [("predecoded", &pre_stats), ("compiled", &com_stats)] {
        assert_eq!(
            (
                ref_stats.cycles,
                ref_stats.warp_instructions,
                &ref_stats.stall_cycles
            ),
            (stats.cycles, stats.warp_instructions, &stats.stall_cycles),
            "{name}: reference and {other} engines disagree on simulated timing"
        );
    }
    let row = Row {
        name,
        reference_s,
        predecoded_s,
        compiled_s,
    };
    eprintln!(
        "{:<24} reference {:>8.4}s  predecoded {:>8.4}s ({:>5.2}x)  compiled {:>8.4}s ({:>5.2}x)",
        row.name,
        row.reference_s,
        row.predecoded_s,
        row.speedup(),
        row.compiled_s,
        row.compiled_speedup()
    );
    row
}

struct SweepRow {
    name: &'static str,
    spawn_s: f64,
    pooled_s: f64,
}

impl SweepRow {
    fn speedup(&self) -> f64 {
        self.spawn_s / self.pooled_s
    }
}

/// Times a fleet workload under both executors. `run` returns a
/// fingerprint of the simulated results, asserted identical across
/// executors (the pool must move *where* work runs, never *what* it
/// computes).
fn bench_sweep(name: &'static str, runs: usize, mut run: impl FnMut() -> u64) -> SweepRow {
    let mut time_executor = |ex: Executor| {
        set_executor(ex);
        let fp = run(); // warm-up + fingerprint sample
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let t0 = Instant::now();
            run();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, fp)
    };
    let (spawn_s, spawn_fp) = time_executor(Executor::SpawnPerLaunch);
    let (pooled_s, pooled_fp) = time_executor(Executor::Pooled);
    set_executor(Executor::Pooled);
    assert_eq!(
        spawn_fp, pooled_fp,
        "{name}: executors disagree on simulated results"
    );
    let row = SweepRow {
        name,
        spawn_s,
        pooled_s,
    };
    eprintln!(
        "{:<24} spawn     {:>8.4}s  pooled     {:>8.4}s  speedup {:>5.2}x",
        row.name,
        row.spawn_s,
        row.pooled_s,
        row.speedup()
    );
    row
}

/// A redundancy-elimination A/B row: the optimization off vs on, on
/// bit-identical simulated results.
struct RedundancyRow {
    name: &'static str,
    baseline_s: f64,
    optimized_s: f64,
    memo_hits: u64,
    memo_misses: u64,
    dedup_fast_blocks: u64,
    dedup_sim_blocks: u64,
}

impl RedundancyRow {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s
    }
}

fn main() {
    // Floor misses and harness breakage must be distinguishable to CI:
    // a missed floor is a performance regression (exit 2), while a panic
    // anywhere in the harness — bit-identity mismatch, nondeterministic
    // fleet, unwritable report — is a correctness failure (exit 3).
    match std::panic::catch_unwind(run) {
        Ok(0) => {}
        Ok(code) => std::process::exit(code),
        Err(_) => {
            eprintln!("bench_sim: harness error (see panic above)");
            std::process::exit(3);
        }
    }
}

fn run() -> i32 {
    let mut check = false;
    let mut out_path = String::from("BENCH_sim.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }
    // --check (CI) repeats less; floors are asserted either way.
    let runs = if check { 2 } else { 5 };

    // The engine and executor A/B rows measure *simulation* strategies, so
    // the redundancy-elimination layer must stay out of them: a warm memo
    // cache would replace every timed repetition with a cache replay. The
    // disk tier likewise (a warm G80_SIM_DISK_CACHE dir from the CI env
    // would serve the timed arms); the disk row below arms its own dir.
    set_memo(Memo::Off);
    set_dedup(Dedup::Off);
    set_disk_cache(None);

    // ---- engine A/B (single launches) ----
    let mut rows = Vec::new();

    // The headline workload: the paper's best matmul configuration
    // (16x16 tiled, fully unrolled) at a production-ish size.
    let mm = MatMul { n: 256 };
    let (a, b) = mm.generate(42);
    let tiled = Variant::Tiled {
        tile: 16,
        unroll: true,
    };
    rows.push(bench("matmul_256_tiled16u", runs, move || {
        mm.run(tiled, &a, &b).1
    }));

    // Streaming memory-bound kernel: little arithmetic, scheduler- and
    // coalescing-path dominated.
    let sx = Saxpy {
        n: 1 << 18,
        alpha: 2.0,
    };
    let (x, y) = sx.generate(42);
    rows.push(bench("saxpy_262144", runs, move || sx.run(&x, &y).1));

    // Divergent, atomic-heavy kernel: stresses the settle/retire paths.
    let tp = Tpacf { n: 1024 };
    let sky = tp.generate(42);
    rows.push(bench("tpacf_1024", runs, move || tp.run(&sky).1));

    set_engine(Engine::Predecoded);

    // ---- row structure (lane-row shape tracking vs eager full rows) ----
    // A/B of the warp value representation: `Rows::Full` forces the frozen
    // eager path (every register write materializes 32 lanes), `Rows::
    // Tracked` lets uniform/affine shapes fold arithmetic to O(1) per warp
    // and memory degrees to closed form. Simulated stats must be
    // bit-identical; the tracked arm also reports its shape mix.
    struct RowStructRow {
        name: &'static str,
        full_s: f64,
        tracked_s: f64,
        uniform: u64,
        affine: u64,
        full_ops: u64,
    }
    impl RowStructRow {
        fn speedup(&self) -> f64 {
            self.full_s / self.tracked_s
        }
        fn shaped_fraction(&self) -> f64 {
            let total = self.uniform + self.affine + self.full_ops;
            if total == 0 {
                0.0
            } else {
                (self.uniform + self.affine) as f64 / total as f64
            }
        }
    }
    let mut row_structure = Vec::new();
    let mut bench_row_structure =
        |name: &'static str, runs: usize, run: &mut dyn FnMut() -> KernelStats| {
            set_engine(Engine::Predecoded);
            set_rows(Rows::Full);
            let full_stats = run(); // warm-up + stats sample
            let mut full_s = f64::INFINITY;
            for _ in 0..runs {
                let t0 = Instant::now();
                run();
                full_s = full_s.min(t0.elapsed().as_secs_f64());
            }
            set_rows(Rows::Tracked);
            let shapes_before = row_counters();
            let tracked_stats = run(); // warm-up + stats sample + shape mix
            let shapes = row_counters().since(&shapes_before);
            let mut tracked_s = f64::INFINITY;
            for _ in 0..runs {
                let t0 = Instant::now();
                run();
                tracked_s = tracked_s.min(t0.elapsed().as_secs_f64());
            }
            assert_eq!(
                (
                    full_stats.cycles,
                    full_stats.warp_instructions,
                    &full_stats.stall_cycles
                ),
                (
                    tracked_stats.cycles,
                    tracked_stats.warp_instructions,
                    &tracked_stats.stall_cycles
                ),
                "{name}: row-shape tracking changed simulated timing"
            );
            let row = RowStructRow {
                name,
                full_s,
                tracked_s,
                uniform: shapes.uniform,
                affine: shapes.affine,
                full_ops: shapes.full,
            };
            eprintln!(
                "{:<24} rows full {:>8.4}s  tracked    {:>8.4}s  speedup {:>5.2}x  ({:.0}% shaped)",
                row.name,
                row.full_s,
                row.tracked_s,
                row.speedup(),
                row.shaped_fraction() * 100.0
            );
            row_structure.push(row);
        };
    {
        let sx = Saxpy {
            n: 1 << 18,
            alpha: 2.0,
        };
        let (x, y) = sx.generate(42);
        bench_row_structure("saxpy_rows", runs, &mut || sx.run(&x, &y).1);
        let tp = Tpacf { n: 1024 };
        let sky = tp.generate(42);
        bench_row_structure("tpacf_rows", runs, &mut || tp.run(&sky).1);
        let mm = MatMul { n: 256 };
        let (a, b) = mm.generate(42);
        let tiled = Variant::Tiled {
            tile: 16,
            unroll: true,
        };
        bench_row_structure("matmul_rows", runs, &mut || mm.run(tiled, &a, &b).1);
    }
    set_rows(Rows::Tracked);
    set_engine(Engine::Predecoded);

    // ---- executor A/B (launch fleets) ----
    let mut sweeps = Vec::new();

    // The full Figure 4 tile/unroll sweep at its smallest legal size.
    // Large grids keep every SM busy, so this measures the batched path
    // on simulation-bound launches.
    sweeps.push(bench_sweep("fig4_sweep_48", runs, || {
        matmul_study::figure4(48)
            .iter()
            .map(|r| r.gflops.to_bits())
            .fold(0u64, u64::wrapping_add)
    }));

    // A tuner-style fleet: the Figure 4 variant family at n=16 — one or a
    // few blocks per launch — re-evaluated round after round on prebuilt
    // kernels and devices (a hill-climber or sweep revisits the same
    // configurations; building them is not the cost being measured).
    // Per-launch thread-spawn overhead dominates such fleets; this row is
    // the pooled engine's headline.
    let fleet = MatMul { n: 16 };
    let (fa, fb) = fleet.generate(42);
    let mut fleet_variants = vec![Variant::Naive, Variant::RegTiled { tile: 16 }];
    for tile in [4u32, 8, 16] {
        for unroll in [false, true] {
            fleet_variants.push(Variant::Tiled { tile, unroll });
        }
    }
    let fleet_preps: Vec<_> = fleet_variants
        .iter()
        .map(|&v| {
            let n = fleet.n;
            let mut dev = g80_cuda::Device::new(3 * n * n * 4 + 4096);
            let da = dev.alloc::<f32>((n * n) as usize);
            let db = dev.alloc::<f32>((n * n) as usize);
            let dc = dev.alloc::<f32>((n * n) as usize);
            dev.copy_to_device(&da, &fa);
            dev.copy_to_device(&db, &fb);
            let params = [da.as_param(), db.as_param(), dc.as_param()];
            (fleet.kernel(v), dev, params)
        })
        .collect();
    // Ten evaluation rounds of every variant, submitted as one batch of 80
    // launches: the batch path predecodes each kernel once for the whole
    // fleet, while the spawn baseline pays per-launch predecode and a
    // 16-thread spawn burst for every entry.
    let fleet_entries: Vec<g80_cuda::BatchLaunch> = std::iter::repeat_n((), 10)
        .flat_map(|()| {
            fleet_variants
                .iter()
                .zip(&fleet_preps)
                .map(|(&v, (k, dev, params))| {
                    let t = v.block_edge();
                    let (bx, by) = v.block_shape();
                    g80_cuda::BatchLaunch {
                        device: dev,
                        kernel: k,
                        grid: (fleet.n / t, fleet.n / t),
                        block: (bx, by, 1),
                        params,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    sweeps.push(bench_sweep("tuner_fleet_16", runs, || {
        g80_cuda::launch_batch(&fleet_entries)
            .into_iter()
            .map(|r| r.unwrap().cycles)
            .fold(0u64, u64::wrapping_add)
    }));

    // Block-size occupancy probes: the tuner's smallest unit of work — a
    // few hundred launches of a tiny streaming kernel, one to eight blocks
    // each. Per-launch thread-spawn overhead *is* the cost here, so this
    // row isolates what the pooled executor removes.
    let probe_kernel = {
        use g80_isa::builder::KernelBuilder;
        use g80_isa::inst::Operand;
        let mut b = KernelBuilder::new("probe");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let d = b.fmul(v, Operand::imm_f(2.0));
        b.st_global(a, 0, d);
        b.build()
    };
    let mut probe_dev = g80_cuda::Device::new(4096);
    let probe_buf = probe_dev.alloc::<f32>(256);
    probe_dev.copy_to_device(&probe_buf, &vec![1.0f32; 256]);
    sweeps.push(bench_sweep("probe_fleet_256", runs, || {
        let mut fp = 0u64;
        for _ in 0..50 {
            for bs in [32u32, 64, 128, 256] {
                let stats = probe_dev
                    .launch(
                        &probe_kernel,
                        (256 / bs, 1),
                        (bs, 1, 1),
                        &[probe_buf.as_param()],
                    )
                    .unwrap();
                fp = fp.wrapping_add(stats.cycles);
            }
        }
        fp
    }));

    // The 12-application suite at test scale: app-level pool tasks whose
    // inner launches nest on the same pool. One extra repetition: the row
    // guards a ≥1.0x floor with a true ratio near 1.1x, so its min needs
    // more samples than the wide-margin rows to stay on the right side.
    sweeps.push(bench_sweep("suite_small", runs + 1, || {
        suite::run_suite(suite::Scale::Small)
            .iter()
            .map(|r| r.stats.cycles)
            .fold(0u64, u64::wrapping_add)
    }));

    // ---- compiled tier (region bytecode vs per-instruction dispatch) ----
    // The compiled engine's headline: matmul 1024² tiled16u is dominated by
    // long straight-line runs (the unrolled inner loop is ~48 eligible ops
    // between branches), so hoisting functional execution to region entry
    // must beat the predecoded per-instruction dispatch by 2x. Memo and
    // dedup stay off — this row measures the execution engine alone.
    let big = MatMul { n: 1024 };
    let (big_a, big_b) = big.generate(42);
    let tiled16u = Variant::Tiled {
        tile: 16,
        unroll: true,
    };
    let compiled_runs = if check { 1 } else { 2 };
    let time_big = |e: Engine| {
        set_engine(e);
        let mut best = f64::INFINITY;
        let mut stats = None;
        for _ in 0..compiled_runs {
            let t0 = Instant::now();
            let s = big.run(tiled16u, &big_a, &big_b).1;
            best = best.min(t0.elapsed().as_secs_f64());
            stats = Some(s);
        }
        (best, stats.unwrap())
    };
    let (big_pre_s, big_pre_stats) = time_big(Engine::Predecoded);
    let (big_com_s, big_com_stats) = time_big(Engine::Compiled);
    set_engine(Engine::Predecoded);
    assert_eq!(
        (
            big_pre_stats.cycles,
            big_pre_stats.warp_instructions,
            big_pre_stats.stall_cycles
        ),
        (
            big_com_stats.cycles,
            big_com_stats.warp_instructions,
            big_com_stats.stall_cycles
        ),
        "matmul_1024_compiled: compiled engine changed simulated timing"
    );
    let compiled_speedup = big_pre_s / big_com_s;
    eprintln!(
        "{:<24} predecoded {:>7.4}s  compiled   {:>8.4}s  speedup {:>5.2}x",
        "matmul_1024_compiled", big_pre_s, big_com_s, compiled_speedup
    );

    // ---- redundancy elimination A/B (memo cache + block-class dedup) ----
    let mut redundancy = Vec::new();

    // Block-class dedup on a large uniform grid: matmul 1024² is 4096
    // blocks that differ only by base address, so after the donor SM's
    // transient the remaining blocks replay functionally instead of
    // re-simulating. Memo stays off — this row measures dedup alone.
    // One timed run per arm: at ~30 s a run the workload is far above the
    // timer noise floor, and the predecode registry is process-wide so
    // neither arm pays a first-run penalty worth warming away.
    let dedup_runs = if check { 1 } else { 2 };
    // Counter deltas over the timed arms, not literals: the row must report
    // what the run actually did. The memo is *on* but cleared before every
    // timed run, so each launch probes cold, records a genuine miss, and is
    // never replayed — both arms pay the identical lookup/record cost and
    // the ratio still measures dedup alone. (A zero miss count here would
    // flag a harness bug: real launches were timed, so the cache must have
    // seen them.)
    set_memo(Memo::On);
    let time_dedup = |d: Dedup| {
        set_dedup(d);
        let before = memo_counters();
        let mut best = f64::INFINITY;
        let mut stats = None;
        for _ in 0..dedup_runs {
            clear_memo_cache();
            let t0 = Instant::now();
            let s = big.run(tiled16u, &big_a, &big_b).1;
            best = best.min(t0.elapsed().as_secs_f64());
            stats = Some(s);
        }
        (best, stats.unwrap(), memo_counters(), before)
    };
    let (dedup_off_s, off_stats, _, _) = time_dedup(Dedup::Off);
    let (dedup_on_s, on_stats, after, before) = time_dedup(Dedup::On);
    set_memo(Memo::Off);
    set_dedup(Dedup::Off);
    assert_eq!(
        (off_stats.cycles, off_stats.stall_cycles),
        (on_stats.cycles, on_stats.stall_cycles),
        "matmul_1024_dedup: dedup changed simulated timing"
    );
    assert!(
        after.misses - before.misses >= dedup_runs as u64,
        "matmul_1024_dedup: every timed launch must record a memo miss \
         (got {} over {dedup_runs} runs)",
        after.misses - before.misses
    );
    redundancy.push(RedundancyRow {
        name: "matmul_1024_dedup",
        baseline_s: dedup_off_s,
        optimized_s: dedup_on_s,
        memo_hits: after.hits - before.hits,
        memo_misses: after.misses - before.misses,
        dedup_fast_blocks: after.dedup_fast_blocks - before.dedup_fast_blocks,
        dedup_sim_blocks: after.dedup_sim_blocks - before.dedup_sim_blocks,
    });
    eprintln!(
        "{:<24} dedup off {:>8.4}s  dedup on   {:>8.4}s  speedup {:>5.2}x",
        "matmul_1024_dedup",
        dedup_off_s,
        dedup_on_s,
        dedup_off_s / dedup_on_s
    );

    // Launch memoization on a tuner fleet that *revisits* configurations:
    // the Figure-4 variant family at n=64, re-evaluated round after round
    // on prebuilt devices. With the cache warm every launch is a replay;
    // dedup stays off so this row measures the memo cache alone.
    let rev = MatMul { n: 64 };
    let (rev_a, rev_b) = rev.generate(42);
    let rev_variants = [
        Variant::Tiled {
            tile: 8,
            unroll: false,
        },
        Variant::Tiled {
            tile: 8,
            unroll: true,
        },
        Variant::Tiled {
            tile: 16,
            unroll: false,
        },
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        Variant::Prefetch { tile: 16 },
        Variant::RegTiled { tile: 16 },
    ];
    let rev_preps: Vec<_> = rev_variants
        .iter()
        .map(|&v| {
            let n = rev.n;
            let mut dev = g80_cuda::Device::new(3 * n * n * 4 + 4096);
            let da = dev.alloc::<f32>((n * n) as usize);
            let db = dev.alloc::<f32>((n * n) as usize);
            let dc = dev.alloc::<f32>((n * n) as usize);
            dev.copy_to_device(&da, &rev_a);
            dev.copy_to_device(&db, &rev_b);
            let params = [da.as_param(), db.as_param(), dc.as_param()];
            (rev.kernel(v), dev, params)
        })
        .collect();
    let revisit_round = || -> u64 {
        let mut fp = 0u64;
        for (v, (k, dev, params)) in rev_variants.iter().zip(&rev_preps) {
            let t = v.block_edge();
            let (bx, by) = v.block_shape();
            let stats = dev
                .launch(k, (rev.n / t, rev.n / t), (bx, by, 1), params)
                .unwrap();
            fp = fp.wrapping_add(stats.cycles);
        }
        fp
    };
    // Each device's C region reaches its fixed point after the first round
    // (every round computes the same product), so run one round before
    // timing either arm: from here on the pre-launch memory image — and
    // with it the memo key — is identical for every revisit.
    revisit_round();
    let revisit_rounds = if check { 2 } else { 5 };
    let time_revisit = |m: Memo| {
        set_memo(m);
        clear_memo_cache();
        let fp = revisit_round(); // memo-on: the recording round
        let before = memo_counters();
        let mut best = f64::INFINITY;
        for _ in 0..revisit_rounds {
            let t0 = Instant::now();
            assert_eq!(revisit_round(), fp, "revisit fleet is not deterministic");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let after = memo_counters();
        (
            best,
            fp,
            after.hits - before.hits,
            after.misses - before.misses,
        )
    };
    let (revisit_off_s, off_fp, _, _) = time_revisit(Memo::Off);
    let (revisit_on_s, on_fp, rev_hits, rev_misses) = time_revisit(Memo::On);
    set_memo(Memo::Off);
    assert_eq!(off_fp, on_fp, "memo cache changed simulated results");
    assert_eq!(
        rev_hits,
        (revisit_rounds * rev_variants.len()) as u64,
        "every revisit launch must be served from the warm cache ({rev_misses} misses)"
    );
    redundancy.push(RedundancyRow {
        name: "tuner_fleet_revisit",
        baseline_s: revisit_off_s,
        optimized_s: revisit_on_s,
        memo_hits: rev_hits,
        memo_misses: rev_misses,
        dedup_fast_blocks: 0, // dedup is off for this row by construction
        dedup_sim_blocks: 0,
    });
    eprintln!(
        "{:<24} memo off  {:>8.4}s  memo on    {:>8.4}s  speedup {:>5.2}x  ({} hits / {} misses)",
        "tuner_fleet_revisit",
        revisit_off_s,
        revisit_on_s,
        revisit_off_s / revisit_on_s,
        rev_hits,
        rev_misses
    );

    // ---- disk tier (persistent cache, cold process vs warm directory) ----
    // The same revisit fleet, but served across the process boundary: the
    // cold arm runs against an empty cache directory with a cold LRU (every
    // launch simulates and spills to disk); the warm arm clears the LRU
    // before every round, so each launch must come back from the disk files
    // alone — exactly what a fresh tuner process sees against a warm shared
    // directory. The content-addressed key is derived from kernel content,
    // config, params, and the memory image, so replaying here proves a
    // restarted fleet would replay too.
    let disk_dir = std::env::temp_dir().join(format!("g80-bench-disk-{}", std::process::id()));
    let disk_rounds = if check { 2 } else { 5 };
    set_memo(Memo::On);
    let disk_before = memo_counters();
    let mut disk_cold_s = f64::INFINITY;
    let mut disk_fp = 0u64;
    for _ in 0..disk_rounds {
        // A truly cold start every repetition: empty directory, empty LRU.
        let _ = std::fs::remove_dir_all(&disk_dir);
        set_disk_cache(Some(disk_dir.clone()));
        clear_memo_cache();
        let t0 = Instant::now();
        disk_fp = revisit_round();
        disk_cold_s = disk_cold_s.min(t0.elapsed().as_secs_f64());
    }
    let disk_mid = memo_counters();
    let mut disk_warm_s = f64::INFINITY;
    for _ in 0..disk_rounds {
        clear_memo_cache(); // kill the in-process tier; only the files remain
        let t0 = Instant::now();
        assert_eq!(
            revisit_round(),
            disk_fp,
            "disk replay changed simulated results"
        );
        disk_warm_s = disk_warm_s.min(t0.elapsed().as_secs_f64());
    }
    let disk_after = memo_counters();
    set_disk_cache(None);
    set_memo(Memo::Off);
    let _ = std::fs::remove_dir_all(&disk_dir);
    let disk_hits = disk_after.disk_hits - disk_mid.disk_hits;
    let disk_misses = disk_after.disk_misses - disk_before.disk_misses;
    let disk_evictions = disk_after.disk_evictions - disk_before.disk_evictions;
    assert_eq!(
        disk_hits,
        (disk_rounds * rev_variants.len()) as u64,
        "every warm-arm launch must be served from disk"
    );
    assert_eq!(disk_evictions, 0, "no bench entry may be corrupt");
    let disk_speedup = disk_cold_s / disk_warm_s;
    eprintln!(
        "{:<24} cold      {:>8.4}s  disk warm  {:>8.4}s  speedup {:>5.2}x  ({disk_hits} disk hits)",
        "disk_tuner_fleet", disk_cold_s, disk_warm_s, disk_speedup
    );

    // ---- hardening overhead (fault sites + watchdog armed but silent) ----
    // The fault-injection sites and the watchdog are compiled in
    // unconditionally, so their disarmed fast path must stay free and the
    // armed-but-silent path must stay cheap. Baseline: injector disarmed,
    // watchdog off. Hardened: every site armed at rate 0.0 (each poll runs
    // its full decision path but never fires, and each launch snapshots
    // device memory for the retry contract) with the watchdog counting
    // every cycle against an unreachable budget. The arms interleave so
    // machine drift lands on both equally. Dedup stays on to match the
    // hot configuration this repo actually ships.
    set_dedup(Dedup::On);
    // Three arms even under --check: the row compares two ~7 s runs against
    // a 2% ceiling, and a min-of-2 flaps on container timing noise alone.
    // The ratio is the min over *paired* iterations (armed/disarmed measured
    // back-to-back), not a ratio of independent mins: machine drift between
    // iterations is larger than the overhead being measured, and pairing
    // cancels it while a polluted pair is simply out-voted.
    let hard_runs = 3;
    let mut hardening_base_s = f64::INFINITY;
    let mut hardening_on_s = f64::INFINITY;
    let mut hardening_ratio = f64::INFINITY;
    let mut hardening_stats: Option<(KernelStats, KernelStats)> = None;
    for _ in 0..hard_runs {
        set_faults(None);
        set_watchdog_cycles(None);
        let t0 = Instant::now();
        let base_stats = big.run(tiled16u, &big_a, &big_b).1;
        let base_s = t0.elapsed().as_secs_f64();
        set_faults(Some(FaultConfig::new(1, 0.0, None)));
        set_watchdog_cycles(Some(u64::MAX / 2));
        let t0 = Instant::now();
        let on_stats = big.run(tiled16u, &big_a, &big_b).1;
        let on_s = t0.elapsed().as_secs_f64();
        if on_s / base_s < hardening_ratio {
            hardening_ratio = on_s / base_s;
            hardening_base_s = base_s;
            hardening_on_s = on_s;
        }
        hardening_stats = Some((base_stats, on_stats));
    }
    set_faults(None);
    set_watchdog_cycles(None);
    set_dedup(Dedup::Off);
    let (hb, ho) = hardening_stats.unwrap();
    assert_eq!(
        (hb.cycles, hb.warp_instructions, hb.stall_cycles),
        (ho.cycles, ho.warp_instructions, ho.stall_cycles),
        "hardening_matmul_1024: an armed-but-silent injector changed simulated timing"
    );
    eprintln!(
        "{:<24} disarmed  {:>8.4}s  armed+wdog {:>8.4}s  overhead {:>5.3}x",
        "hardening_matmul_1024", hardening_base_s, hardening_on_s, hardening_ratio
    );

    // ---- serving tier (daemon + 8-tenant probe fleet over loopback) ----
    // The g80-serve daemon shares this process's pool and memo tiers, so
    // this row measures pure serving overhead: framing, admission, and the
    // per-connection threads, on top of launches the warm memo answers.
    // Eight tenants each fire a stream of probe requests (distinct kernel
    // content per tenant; repeats within a tenant hit the memo, as a
    // service's steady state would) and the row reports aggregate
    // throughput and tail latency.
    set_engine(Engine::Predecoded);
    set_executor(Executor::Pooled);
    set_memo(Memo::On);
    clear_memo_cache();
    let serve_tenants = 8u32;
    let serve_requests = if check { 16u32 } else { 64 };
    let (serve_req_per_s, serve_p50_ms, serve_p99_ms, serve_cache_hits) = {
        use g80_serve::{serve, Addr, Client, Quota, ServeConfig, WireLaunch};
        let server = serve(ServeConfig {
            addr: Addr::parse("tcp:127.0.0.1:0").expect("addr"),
            quota: Quota::default(),
            gpu: g80_sim::GpuConfig::geforce_8800_gtx(),
            ..ServeConfig::default()
        })
        .expect("bind serve daemon");
        let addr = server.local_addr().clone();
        let probe_spec = |tenant: u32| {
            use g80_isa::builder::KernelBuilder;
            let mut b = KernelBuilder::new(&format!("bench_serve_probe_{tenant}"));
            let p = b.param();
            let tid = b.tid_x();
            let byte = b.shl(tid, 2u32);
            let a = b.iadd(byte, p);
            let v = b.ld_global(a, 0);
            let w = b.imul(v, 3 + tenant);
            b.st_global(a, 0, w);
            let mut spec = WireLaunch::new(
                b.build(),
                g80_sim::LaunchDims {
                    grid: (8, 1),
                    block: (128, 1, 1),
                },
                vec![g80_isa::Value::from_u32(0)],
                8 * 128 * 4,
            );
            spec.writes = (0..8 * 128).map(|i| (i * 4, i ^ tenant)).collect();
            spec
        };
        let wall0 = Instant::now();
        let workers: Vec<_> = (0..serve_tenants)
            .map(|t| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client =
                        Client::connect(&addr, &format!("bench-{t}")).expect("connect");
                    let spec = probe_spec(t);
                    let mut lat = Vec::with_capacity(serve_requests as usize);
                    let mut hits = 0u64;
                    for _ in 0..serve_requests {
                        let t0 = Instant::now();
                        let (report, _) = client
                            .launch(&spec)
                            .expect("transport")
                            .expect("probe launch");
                        lat.push(t0.elapsed().as_secs_f64());
                        if report.served.from_cache() {
                            hits += 1;
                        }
                    }
                    (lat, hits)
                })
            })
            .collect();
        let mut lat = Vec::new();
        let mut hits = 0u64;
        for w in workers {
            let (l, h) = w.join().expect("serve bench tenant");
            lat.extend(l);
            hits += h;
        }
        let wall = wall0.elapsed().as_secs_f64();
        let mut admin = Client::connect(&addr, "bench-admin").expect("admin connect");
        admin.shutdown().expect("daemon shutdown");
        server.join().expect("daemon drain");
        lat.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize] * 1e3;
        (lat.len() as f64 / wall, pct(0.50), pct(0.99), hits)
    };
    set_memo(Memo::Off);
    clear_memo_cache();
    assert!(
        serve_cache_hits > 0,
        "steady-state probe repeats must hit the shared memo through the daemon"
    );
    eprintln!(
        "{:<24} {serve_tenants} tenants  {:>8.1} req/s  p50 {:>7.3}ms  p99 {:>7.3}ms  ({serve_cache_hits} cache hits)",
        "serve_probe_fleet", serve_req_per_s, serve_p50_ms, serve_p99_ms
    );

    // ---- serve chaos fleet (same daemon, seeded transport faults) ----
    // The fleet runs twice: once clean, once with `G80_SERVE_NET_FAULTS`
    // armed at rate 0.02 — disconnects, corrupt frames, splits, stalls at
    // all four wire sites. The chaos arm must (a) complete, (b) produce
    // aggregate KernelStats bit-identical to the clean arm (reconnect and
    // replay are invisible to results), and (c) stay within 2x of clean
    // throughput. Each request carries a unique loop kernel param so every
    // launch simulates real work (~milliseconds); on memo-hit probes the
    // 0.4 ms round-trips would be dwarfed by any injected stall and the
    // ratio would measure the fault schedule, not the recovery cost.
    fn serve_chaos_spec(tenant: u32, req: u32) -> g80_serve::WireLaunch {
        use g80_isa::builder::{KernelBuilder, Unroll};
        let mut b = KernelBuilder::new("bench_serve_chaos_probe");
        let p = b.param();
        let tid = b.tid_x();
        let acc0 = b.iadd(tid, p);
        let acc = b.mov(acc0);
        b.for_range(0u32, 256u32, 1, Unroll::None, |b, _| {
            let t = b.imul(acc, 1664525u32);
            let t2 = b.iadd(t, 1013904223u32);
            b.mov_to(acc, t2);
        });
        let byte = b.shl(tid, 2u32);
        b.st_global(byte, 0, acc);
        g80_serve::WireLaunch::new(
            b.build(),
            g80_sim::LaunchDims {
                grid: (8, 1),
                block: (128, 1, 1),
            },
            vec![g80_isa::Value::from_u32(tenant * 100_000 + req)],
            8 * 128 * 4,
        )
    }
    let chaos_requests = if check { 8u32 } else { 32 };
    let run_chaos_fleet = |faults: Option<g80_serve::NetFaultConfig>| -> (f64, (u64, u64, u64)) {
        use g80_serve::{serve, Addr, Client, ServeConfig};
        g80_serve::set_net_faults(faults);
        let server = serve(ServeConfig {
            addr: Addr::parse("tcp:127.0.0.1:0").expect("addr"),
            ..ServeConfig::default()
        })
        .expect("bind serve daemon");
        let addr = server.local_addr().clone();
        let wall0 = Instant::now();
        let workers: Vec<_> = (0..serve_tenants)
            .map(|t| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect_retry(
                        &addr,
                        &format!("chaos-{t}"),
                        std::time::Duration::from_secs(10),
                    )
                    .expect("connect");
                    let mut agg = (0u64, 0u64, 0u64);
                    for i in 0..chaos_requests {
                        let (report, _) = client
                            .launch(&serve_chaos_spec(t, i))
                            .expect("transport")
                            .expect("chaos launch");
                        agg.0 += report.stats.cycles;
                        agg.1 += report.stats.warp_instructions;
                        agg.2 += report.stats.thread_instructions;
                    }
                    agg
                })
            })
            .collect();
        let mut agg = (0u64, 0u64, 0u64);
        for w in workers {
            let (c, wi, s) = w.join().expect("chaos fleet tenant");
            agg.0 += c;
            agg.1 += wi;
            agg.2 += s;
        }
        let wall = wall0.elapsed().as_secs_f64();
        // Shut down disarmed: the admin exchange should not have to ride
        // out injected faults after the measurement window closed.
        g80_serve::set_net_faults(None);
        let mut admin =
            Client::connect_retry(&addr, "chaos-admin", std::time::Duration::from_secs(10))
                .expect("admin connect");
        admin.shutdown().expect("daemon shutdown");
        server.join().expect("daemon drain");
        (f64::from(serve_tenants * chaos_requests) / wall, agg)
    };
    set_memo(Memo::On);
    clear_memo_cache();
    let (chaos_clean_rps, chaos_clean_agg) = run_chaos_fleet(None);
    clear_memo_cache();
    let net_before = g80_sim::net_counters();
    let (chaos_armed_rps, chaos_armed_agg) =
        run_chaos_fleet(Some(g80_serve::NetFaultConfig::new(0xC0FF_EE00, 0.02)));
    let chaos_net = g80_sim::net_counters().since(&net_before);
    assert_eq!(
        chaos_clean_agg, chaos_armed_agg,
        "serve_chaos_fleet: transport chaos changed aggregate KernelStats \
         (reconnect-and-replay must be invisible to results)"
    );
    let chaos_ratio = chaos_clean_rps / chaos_armed_rps;
    set_memo(Memo::Off);
    clear_memo_cache();
    eprintln!(
        "{:<24} {serve_tenants} tenants  clean {:>8.1} req/s  chaos {:>8.1} req/s  ratio {:>5.3}x  \
         ({} disconnects, {} frame retries, {} reconnects)",
        "serve_chaos_fleet",
        chaos_clean_rps,
        chaos_armed_rps,
        chaos_ratio,
        chaos_net.disconnects,
        chaos_net.frames_retried,
        chaos_net.reconnects
    );

    // ---- report ----
    let mut json = String::from("{\n  \"benchmark\": \"g80-sim engine wall-clock\",\n");
    json.push_str(&format!(
        "  \"runs_per_engine\": {runs},\n  \"workloads\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reference_s\": {:.6}, \"predecoded_s\": {:.6}, \"speedup\": {:.3}, \"compiled_s\": {:.6}, \"compiled_speedup\": {:.3}}}{}\n",
            r.name,
            r.reference_s,
            r.predecoded_s,
            r.speedup(),
            r.compiled_s,
            r.compiled_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"row_structure\": [\n");
    for (i, r) in row_structure.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"full_s\": {:.6}, \"tracked_s\": {:.6}, \"speedup\": {:.3}, \"uniform\": {}, \"affine\": {}, \"full\": {}, \"shaped_fraction\": {:.4}}}{}\n",
            r.name,
            r.full_s,
            r.tracked_s,
            r.speedup(),
            r.uniform,
            r.affine,
            r.full_ops,
            r.shaped_fraction(),
            if i + 1 < row_structure.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"sweeps\": [\n");
    for (i, r) in sweeps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"spawn_s\": {:.6}, \"pooled_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.spawn_s,
            r.pooled_s,
            r.speedup(),
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"compiled\": {{\"name\": \"matmul_1024_compiled\", \"predecoded_s\": {:.6}, \"compiled_s\": {:.6}, \"speedup\": {:.3}}},\n",
        big_pre_s, big_com_s, compiled_speedup
    ));
    json.push_str("  \"redundancy\": [\n");
    for (i, r) in redundancy.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_s\": {:.6}, \"optimized_s\": {:.6}, \"speedup\": {:.3}, \"memo_hits\": {}, \"memo_misses\": {}, \"dedup_fast_blocks\": {}, \"dedup_sim_blocks\": {}}}{}\n",
            r.name,
            r.baseline_s,
            r.optimized_s,
            r.speedup(),
            r.memo_hits,
            r.memo_misses,
            r.dedup_fast_blocks,
            r.dedup_sim_blocks,
            if i + 1 < redundancy.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"disk\": {{\"name\": \"disk_tuner_fleet\", \"cold_s\": {:.6}, \"warm_s\": {:.6}, \"speedup\": {:.3}, \"disk_hits\": {disk_hits}, \"disk_misses\": {disk_misses}, \"disk_evictions\": {disk_evictions}}},\n",
        disk_cold_s, disk_warm_s, disk_speedup
    ));
    json.push_str(&format!(
        "  \"hardening\": {{\"name\": \"hardening_matmul_1024\", \"disarmed_s\": {:.6}, \"armed_s\": {:.6}, \"overhead_ratio\": {:.4}}},\n",
        hardening_base_s, hardening_on_s, hardening_ratio
    ));
    json.push_str(&format!(
        "  \"serve\": {{\"name\": \"serve_probe_fleet\", \"tenants\": {serve_tenants}, \"requests_per_tenant\": {serve_requests}, \"req_per_s\": {serve_req_per_s:.1}, \"p50_ms\": {serve_p50_ms:.4}, \"p99_ms\": {serve_p99_ms:.4}, \"cache_hit_responses\": {serve_cache_hits}}},\n"
    ));
    json.push_str(&format!(
        "  \"serve_chaos\": {{\"name\": \"serve_chaos_fleet\", \"tenants\": {serve_tenants}, \"requests_per_tenant\": {chaos_requests}, \"clean_req_per_s\": {chaos_clean_rps:.1}, \"chaos_req_per_s\": {chaos_armed_rps:.1}, \"chaos_ratio\": {chaos_ratio:.4}, \"disconnects\": {}, \"frames_retried\": {}, \"reconnects\": {}, \"bytes_resent\": {}}}\n",
        chaos_net.disconnects, chaos_net.frames_retried, chaos_net.reconnects, chaos_net.bytes_resent
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    eprintln!("wrote {out_path}");

    // ---- performance floors (exit 2 on a miss, after reporting all) ----
    let mut missed: Vec<String> = Vec::new();
    let headline = rows[0].speedup();
    if headline < 2.0 {
        missed.push(format!(
            "headline matmul speedup {headline:.2}x is below the 2x floor"
        ));
    }
    let mut sweep_floor = |name: &str, floor: f64| {
        let s = sweeps.iter().find(|r| r.name == name).unwrap().speedup();
        if s < floor {
            missed.push(format!(
                "{name} pooled speedup {s:.2}x is below the {floor}x floor"
            ));
        }
    };
    sweep_floor("tuner_fleet_16", 2.0);
    sweep_floor("probe_fleet_256", 3.0);
    // The pooled executor may never lose to the spawn baseline, even on
    // fleets of tiny nested launches (the caller-runs heuristic's contract).
    sweep_floor("suite_small", 1.0);
    if compiled_speedup < 2.0 {
        missed.push(format!(
            "matmul_1024_compiled speedup {compiled_speedup:.2}x is below the 2x floor"
        ));
    }
    let mut red_floor = |name: &str, floor: f64| {
        let s = redundancy
            .iter()
            .find(|r| r.name == name)
            .unwrap()
            .speedup();
        if s < floor {
            missed.push(format!(
                "{name} speedup {s:.2}x is below the {floor}x floor"
            ));
        }
    };
    // The dedup floor dropped 3x → 2.5x when row-shape tracking landed:
    // the dedup-OFF baseline folds uniform/affine rows and got ~30%
    // faster, while the dedup-ON arm is replay-bound and folds little, so
    // the ratio compressed from ~5x to ~3.0–3.4x. The floor guards the
    // *remaining* benefit of simulating 188 of 8192 blocks.
    red_floor("matmul_1024_dedup", 2.5);
    red_floor("tuner_fleet_revisit", 5.0);
    if disk_speedup < 10.0 {
        missed.push(format!(
            "disk_tuner_fleet warm speedup {disk_speedup:.2}x is below the 10x floor"
        ));
    }
    // The compiled tier's region gate (satellite of the disk-tier PR): a
    // short-region kernel like saxpy must fall back to predecoded dispatch
    // instead of paying region-entry overhead, so compiled may not lose to
    // predecoded by more than timer noise.
    let saxpy = rows.iter().find(|r| r.name == "saxpy_262144").unwrap();
    let saxpy_ratio = saxpy.compiled_s / saxpy.predecoded_s;
    if saxpy_ratio > 1.10 {
        missed.push(format!(
            "saxpy_262144 compiled/predecoded ratio {saxpy_ratio:.3}x exceeds the 1.10x ceiling \
             (the region-length gate should have fallen back)"
        ));
    }
    // Row-structure floors: on the streaming kernel shape tracking must pay
    // for itself with a wide margin (saxpy's arithmetic is entirely
    // uniform/affine and its global accesses take the closed-form degree
    // path), and on no workload may the tracked representation cost more
    // than timer noise over the eager baseline.
    {
        let saxpy_rows = row_structure
            .iter()
            .find(|r| r.name == "saxpy_rows")
            .unwrap();
        // Measured 1.5x–1.6x; the floor sits at 1.4x so container timing
        // noise on the ~10 ms full-row arm cannot flap a true result.
        if saxpy_rows.speedup() < 1.4 {
            missed.push(format!(
                "saxpy_rows tracked speedup {:.2}x is below the 1.4x floor",
                saxpy_rows.speedup()
            ));
        }
        if saxpy_rows.shaped_fraction() < 0.5 {
            missed.push(format!(
                "saxpy_rows shaped fraction {:.2} is below the 0.5 floor \
                 (uniform/affine folding stopped engaging)",
                saxpy_rows.shaped_fraction()
            ));
        }
        for r in &row_structure {
            let ratio = r.tracked_s / r.full_s;
            if ratio > 1.10 {
                missed.push(format!(
                    "{} tracked/full ratio {ratio:.3}x exceeds the 1.10x ceiling \
                     (shape tracking may not cost more than noise)",
                    r.name
                ));
            }
        }
    }
    // Paired-min overhead measures 1.00x–1.03x depending on container
    // load; 1.05x asserts "armed-but-silent costs noise, not a tax"
    // without flapping on a loaded runner.
    if hardening_ratio > 1.05 {
        missed.push(format!(
            "hardening_matmul_1024 overhead {hardening_ratio:.3}x exceeds the 1.05x ceiling"
        ));
    }
    // The serving tier: 8 loopback tenants on warm probes must clear a
    // conservative throughput floor with a bounded tail — a regression here
    // means framing, admission, or the per-connection threads got slow.
    if serve_req_per_s < 200.0 {
        missed.push(format!(
            "serve_probe_fleet {serve_req_per_s:.1} req/s is below the 200 req/s floor"
        ));
    }
    if serve_p99_ms > 250.0 {
        missed.push(format!(
            "serve_probe_fleet p99 {serve_p99_ms:.3}ms exceeds the 250ms ceiling"
        ));
    }
    // The chaos arm: seeded transport faults at rate 0.02 may slow the
    // fleet but not stall it (each fault costs one bounded stall or one
    // reconnect-and-replay) and may never change results — the
    // bit-identity assert above already enforced the latter. The disarmed
    // cost of the CRC/deadline hardening itself is covered by the
    // serve_probe_fleet floor, which runs entirely disarmed.
    if chaos_armed_rps < 100.0 {
        missed.push(format!(
            "serve_chaos_fleet {chaos_armed_rps:.1} req/s under chaos is below the 100 req/s floor"
        ));
    }
    if chaos_ratio > 2.0 {
        missed.push(format!(
            "serve_chaos_fleet chaos-vs-clean ratio {chaos_ratio:.3}x exceeds the 2.0x ceiling"
        ));
    }
    if !missed.is_empty() {
        for m in &missed {
            eprintln!("floor missed: {m}");
        }
        return 2;
    }
    0
}
