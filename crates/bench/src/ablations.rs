//! Figure 5 and the Section 5 ablation experiments: LBM access patterns,
//! SAD texture vs global, MRI SFU vs polynomial trig, RC5 native vs
//! emulated rotate.

use g80_apps::lbm::{Layout, Lbm};
use g80_apps::mriq::MriQ;
use g80_apps::rc5::Rc5;
use g80_apps::sad::SadApp;

/// One bar of the Figure 5 comparison.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    pub label: &'static str,
    pub coalesced_half_warps: u64,
    pub uncoalesced_half_warps: u64,
    pub dram_bytes: u64,
    pub cycles: u64,
    pub mlups: f64,
}

/// Runs the LBM layout study (Figure 5: "LBM global load access patterns").
pub fn figure5(n: u32, steps: u32) -> Vec<Fig5Row> {
    let l = Lbm { n, steps };
    let f0 = l.initial_state();
    let layouts = [Layout::Aos, Layout::Soa, Layout::SoaStaged];
    // The three layout runs are independent; evaluate them as pool tasks.
    let runs = g80_sim::pool::run_tasks(
        layouts
            .iter()
            .map(|&layout| {
                let (l, f0) = (&l, &f0);
                move || l.run(f0, layout).1
            })
            .collect(),
    );
    layouts
        .into_iter()
        .zip(runs)
        .map(|(layout, s)| Fig5Row {
            label: layout.label(),
            coalesced_half_warps: s.coalesced_half_warps,
            uncoalesced_half_warps: s.uncoalesced_half_warps,
            dram_bytes: s.global_bytes,
            cycles: s.cycles,
            mlups: (n as f64 * n as f64 * steps as f64) / (s.elapsed * 1e6),
        })
        .collect()
}

pub fn render_figure5(rows: &[Fig5Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 5: LBM global load/store access patterns\n");
    s.push_str(&format!(
        "{:<34} {:>10} {:>12} {:>12} {:>10} {:>8}\n",
        "layout", "coalesced", "uncoalesced", "DRAM bytes", "cycles", "MLUP/s"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<34} {:>10} {:>12} {:>12} {:>10} {:>8.1}\n",
            r.label,
            r.coalesced_half_warps,
            r.uncoalesced_half_warps,
            r.dram_bytes,
            r.cycles,
            r.mlups
        ));
    }
    s
}

/// SAD: texture vs global reference-frame reads (paper: 2.8×).
pub fn sad_texture() -> (f64, f64, f64) {
    let app = SadApp::default();
    let (cur, reff) = app.generate(3);
    let (_, g, _) = app.run(&cur, &reff, false);
    let (_, t, _) = app.run(&cur, &reff, true);
    let gain = g.cycles as f64 / t.cycles as f64;
    (g.elapsed * 1e3, t.elapsed * 1e3, gain)
}

/// MRI-Q: SFU trig vs polynomial trig on the SPs (paper: SFUs are ~30% of
/// the speedup). Returns (sfu_ms, poly_ms, gain).
pub fn mri_sfu() -> (f64, f64, f64) {
    let m = MriQ {
        n_voxels: 1 << 13,
        n_k: 512,
    };
    let d = m.generate(4);
    let (_, _, sfu, _) = m.run(&d, true);
    let (_, _, poly, _) = m.run(&d, false);
    (
        sfu.elapsed * 1e3,
        poly.elapsed * 1e3,
        poly.cycles as f64 / sfu.cycles as f64,
    )
}

/// RC5: emulated vs native rotate (Section 5.1's missing modulus-shift).
/// Returns (emulated_ms, native_ms, gain).
pub fn rc5_rotate() -> (f64, f64, f64) {
    let r = Rc5 {
        n_keys: 1 << 14,
        ..Default::default()
    };
    let (_, emu, _) = r.run(false);
    let (_, nat, _) = r.run(true);
    (
        emu.elapsed * 1e3,
        nat.elapsed * 1e3,
        emu.cycles as f64 / nat.cycles as f64,
    )
}

pub fn render_ablations() -> String {
    // The three ablation studies are independent pool tasks (each one's
    // two launches nest on the same pool).
    type Study = fn() -> (f64, f64, f64);
    let studies: Vec<Study> = vec![sad_texture, mri_sfu, rc5_rotate];
    let results = g80_sim::pool::run_tasks(studies);
    let mut s = String::new();
    let (g, t, gain) = results[0];
    s.push_str(&format!(
        "SAD reference frame:   global {g:.2} ms  texture {t:.2} ms  -> {gain:.2}x (paper: 2.8x)\n"
    ));
    let (sfu, poly, gain) = results[1];
    s.push_str(&format!(
        "MRI-Q trigonometry:    SFU {sfu:.2} ms  SP polynomial {poly:.2} ms  -> {gain:.2}x (paper: ~30% of speedup)\n"
    ));
    let (emu, nat, gain) = results[2];
    s.push_str(&format!(
        "RC5 modulus-shift:     emulated {emu:.2} ms  native {nat:.2} ms  -> {gain:.2}x (paper: 'several times higher')\n"
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_gradient() {
        let rows = figure5(64, 2);
        assert_eq!(rows.len(), 3);
        // Coalescing improves monotonically along the layout axis.
        assert!(rows[0].coalesced_half_warps < rows[1].coalesced_half_warps);
        assert!(rows[1].uncoalesced_half_warps > rows[2].uncoalesced_half_warps);
        // DRAM traffic and time follow.
        assert!(rows[0].dram_bytes > rows[1].dram_bytes);
        assert!(rows[1].dram_bytes > rows[2].dram_bytes);
        assert!(rows[0].cycles > rows[2].cycles);
    }

    #[test]
    fn ablation_gains_in_range() {
        let (_, _, sad) = sad_texture();
        assert!(sad > 1.3, "sad texture gain {sad}");
        let (_, _, mri) = mri_sfu();
        assert!(mri > 1.15, "mri sfu gain {mri}");
        let (_, _, rc5) = rc5_rotate();
        assert!(rc5 > 1.4, "rc5 rotate gain {rc5}");
    }
}
