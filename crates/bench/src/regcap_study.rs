//! The other Section 6 future-work item: "We will address the control of
//! register usage in future work."
//!
//! Our toolchain already has the knob (`BuildOptions::max_regs`, the
//! `-maxrregcount` analogue, with real spilling to Local/DRAM). This study
//! sweeps it on a register-hungry kernel and maps the three-way trade the
//! paper describes: more registers per thread ⇒ fewer resident blocks ⇒
//! less latency hiding; fewer registers ⇒ spill traffic to DRAM.

use g80_cuda::{BatchLaunch, Device};
use g80_isa::builder::{BuildOptions, KernelBuilder, Unroll};
use g80_isa::inst::Operand;
use g80_isa::{InstClass, OptLevel};

/// One point of the register-cap sweep.
#[derive(Clone, Debug)]
pub struct RegCapPoint {
    pub cap: Option<u32>,
    pub regs: u32,
    pub blocks_per_sm: u32,
    pub spill_insts: u64,
    pub cycles: u64,
    pub gflops: f64,
}

/// A latency-sensitive kernel holding ~20 values live: each thread keeps a
/// working set of partial sums over a strided global walk.
fn hungry_kernel(cap: Option<u32>) -> g80_isa::Kernel {
    const LIVE: usize = 16;
    let mut b = KernelBuilder::new("hungry");
    let (inp, outp) = (b.param(), b.param());
    let tid = b.tid_x();
    let ntid = b.ntid_x();
    let cta = b.ctaid_x();
    let i = b.imad(cta, ntid, tid);
    let byte = b.shl(i, 2u32);
    let base = b.iadd(byte, inp);

    // LIVE simultaneously-live accumulators, each fed every iteration.
    let accs: Vec<_> = (0..LIVE).map(|k| b.mov(Operand::imm_f(k as f32))).collect();
    b.for_range(0u32, 16u32, 1, Unroll::None, |b, _| {
        let v = b.ld_global(base, 0);
        for (k, &acc) in accs.iter().enumerate() {
            b.ffma_to(acc, v, Operand::imm_f(1.0 + k as f32 * 0.01), acc);
        }
    });
    let mut total = accs[0];
    for &a in &accs[1..] {
        total = b.fadd(total, a);
    }
    let oa = b.iadd(byte, outp);
    b.st_global(oa, 0, total);
    b.build_with(BuildOptions {
        opt: OptLevel::O2,
        max_regs: cap,
    })
}

/// Sweeps the register cap from "uncapped" down — every cap's launch goes
/// down as one batch on the shared worker pool.
pub fn run() -> Vec<RegCapPoint> {
    let natural = hungry_kernel(None).regs_per_thread;
    let mut caps: Vec<Option<u32>> = vec![None];
    for c in [16u32, 12, 10, 8, 6] {
        if c < natural {
            caps.push(Some(c));
        }
    }
    let n = 1u32 << 16;
    let preps: Vec<_> = caps
        .iter()
        .map(|&cap| {
            let k = hungry_kernel(cap);
            let mut dev = Device::new(2 * n * 4 + 4096);
            let din = dev.alloc::<f32>(n as usize);
            let dout = dev.alloc::<f32>(n as usize);
            dev.copy_to_device(&din, &vec![1.0f32; n as usize]);
            let params = [din.as_param(), dout.as_param()];
            (k, dev, params)
        })
        .collect();
    let entries: Vec<BatchLaunch> = preps
        .iter()
        .map(|(k, dev, params)| BatchLaunch {
            device: dev,
            kernel: k,
            grid: (n / 256, 1),
            block: (256, 1, 1),
            params,
        })
        .collect();
    let results = g80_cuda::launch_batch(&entries);
    caps.iter()
        .zip(&preps)
        .zip(results)
        .map(|((&cap, (k, _, _)), r)| {
            let stats = r.expect("regcap launch");
            let mix = k.static_mix();
            RegCapPoint {
                cap,
                regs: k.regs_per_thread,
                blocks_per_sm: stats.blocks_per_sm,
                spill_insts: mix.get(InstClass::LdLocal) + mix.get(InstClass::StLocal),
                cycles: stats.cycles,
                gflops: stats.gflops(),
            }
        })
        .collect()
}

pub fn render(points: &[RegCapPoint]) -> String {
    let mut s = String::new();
    s.push_str("Register-cap study (-maxrregcount analogue): occupancy vs spill\n");
    s.push_str(&format!(
        "{:>6} {:>6} {:>9} {:>12} {:>10} {:>8}\n",
        "cap", "regs", "blocks/SM", "spill insts", "cycles", "GFLOPS"
    ));
    for p in points {
        s.push_str(&format!(
            "{:>6} {:>6} {:>9} {:>12} {:>10} {:>8.2}\n",
            p.cap.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            p.regs,
            p.blocks_per_sm,
            p.spill_insts,
            p.cycles,
            p.gflops
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_tradeoff() {
        let points = run();
        assert!(points.len() >= 4);
        // Uncapped point: no spills, needs many registers.
        assert_eq!(points[0].spill_insts, 0);
        assert!(points[0].regs >= 16);
        // Capping raises occupancy (blocks/SM) monotonically…
        for w in points.windows(2) {
            assert!(w[1].blocks_per_sm >= w[0].blocks_per_sm);
            assert!(w[1].regs <= w[0].regs);
        }
        // …but the tightest cap pays heavy spill traffic and is slower than
        // the uncapped build.
        let last = points.last().unwrap();
        assert!(last.spill_insts > 10);
        assert!(
            last.cycles > points[0].cycles,
            "extreme spilling should not win: {} vs {}",
            last.cycles,
            points[0].cycles
        );
    }

    #[test]
    fn capped_kernels_compute_the_same_result() {
        // The functional outputs must be identical whatever the cap.
        let run_out = |cap| {
            let k = hungry_kernel(cap);
            let n = 1024u32;
            let mut dev = Device::new(2 * n * 4 + 4096);
            let din = dev.alloc::<f32>(n as usize);
            let dout = dev.alloc::<f32>(n as usize);
            dev.copy_to_device(&din, &vec![2.0f32; n as usize]);
            dev.launch(
                &k,
                (n / 256, 1),
                (256, 1, 1),
                &[din.as_param(), dout.as_param()],
            )
            .unwrap();
            dev.copy_from_device(&dout)
        };
        let unc = run_out(None);
        let capped = run_out(Some(8));
        assert_eq!(unc, capped);
    }
}
