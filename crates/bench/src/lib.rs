//! # g80-bench — regenerating every table and figure of the paper
//!
//! One module per experiment family; the `repro` binary exposes them as
//! subcommands. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

pub mod ablations;
pub mod arch_study;
pub mod matmul_study;
pub mod regcap_study;
pub mod suite;
pub mod table1;
