//! Criterion benches regenerating the paper's figures/tables at reduced
//! sizes: each bench measures the *simulated-kernel* wall time on the host,
//! while the simulated GFLOPS (the paper's metric) is printed by the
//! `repro` binary. Together they keep both the reproduction results and the
//! simulator's own performance under regression control.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use g80_apps::lbm::{Layout, Lbm};
use g80_apps::matmul::{MatMul, Variant};
use g80_bench::{matmul_study, table1};
use g80_sim::GpuConfig;

/// Figure 4: one bench per matmul configuration.
fn bench_fig4(c: &mut Criterion) {
    let mm = MatMul { n: 96 };
    let (a, b) = mm.generate(42);
    let mut group = c.benchmark_group("fig4_matmul");
    group.sample_size(10);
    for v in [
        Variant::Naive,
        Variant::Tiled {
            tile: 4,
            unroll: true,
        },
        Variant::Tiled {
            tile: 8,
            unroll: true,
        },
        Variant::Tiled {
            tile: 16,
            unroll: false,
        },
        Variant::Tiled {
            tile: 16,
            unroll: true,
        },
        Variant::Prefetch { tile: 16 },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |bch, &v| {
            bch.iter(|| mm.run(v, &a, &b).1.cycles)
        });
    }
    group.finish();
}

/// Figure 5: one bench per LBM layout.
fn bench_fig5(c: &mut Criterion) {
    let l = Lbm { n: 64, steps: 2 };
    let f0 = l.initial_state();
    let mut group = c.benchmark_group("fig5_lbm");
    group.sample_size(10);
    for layout in [Layout::Aos, Layout::Soa, Layout::SoaStaged] {
        group.bench_with_input(
            BenchmarkId::from_parameter(layout.label()),
            &layout,
            |bch, &layout| bch.iter(|| l.run(&f0, layout).1.cycles),
        );
    }
    group.finish();
}

/// Table 1: the memory microbenchmarks.
fn bench_table1(c: &mut Criterion) {
    let cfg = GpuConfig::geforce_8800_gtx();
    let mut group = c.benchmark_group("table1_memory");
    group.sample_size(10);
    group.bench_function("all_rows", |b| b.iter(|| table1::run(&cfg).len()));
    group.finish();
}

/// Section 4: the full optimization walk.
fn bench_sec4(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec4_walk");
    group.sample_size(10);
    group.bench_function("four_steps_n128", |b| {
        b.iter(|| matmul_study::section4(128).len())
    });
    group.finish();
}

criterion_group!(benches, bench_fig4, bench_fig5, bench_table1, bench_sec4);
criterion_main!(benches);
