//! Criterion benches over the application suite (Table 2/3 workloads at
//! reduced sizes): each bench runs the optimized kernel end-to-end through
//! the simulator, so regressions in either the apps or the machine model
//! show up here.

use criterion::{criterion_group, criterion_main, Criterion};
use g80_apps::{cp, fdtd, fem, lbm, mrifhd, mriq, pns, rc5, rpes, sad, saxpy, tpacf};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite");
    group.sample_size(10);

    let s = saxpy::Saxpy {
        n: 1 << 17,
        alpha: 2.0,
    };
    let (x, y) = s.generate(1);
    group.bench_function("saxpy", |b| b.iter(|| s.run(&x, &y).1.cycles));

    let m = mriq::MriQ {
        n_voxels: 2048,
        n_k: 128,
    };
    let d = m.generate(2);
    group.bench_function("mriq", |b| b.iter(|| m.run(&d, true).2.cycles));

    let m2 = mrifhd::MriFhd {
        n_voxels: 2048,
        n_k: 128,
    };
    let d2 = m2.generate(3);
    group.bench_function("mrifhd", |b| b.iter(|| m2.run(&d2).2.cycles));

    let cpw = cp::CoulombicPotential {
        grid: 64,
        n_atoms: 64,
        spacing: 0.5,
    };
    let atoms = cpw.generate(4);
    group.bench_function("cp", |b| b.iter(|| cpw.run(&atoms, true).1.cycles));

    let r = rc5::Rc5 {
        n_keys: 2048,
        ..Default::default()
    };
    group.bench_function("rc5", |b| b.iter(|| r.run(false).1.cycles));

    let t = tpacf::Tpacf { n: 512 };
    let sky = t.generate(5);
    group.bench_function("tpacf", |b| b.iter(|| t.run(&sky).1.cycles));

    let l = lbm::Lbm { n: 64, steps: 2 };
    let f0 = l.initial_state();
    group.bench_function("lbm", |b| {
        b.iter(|| l.run(&f0, lbm::Layout::SoaStaged).1.cycles)
    });

    let f = fdtd::Fdtd { n: 128, steps: 2 };
    let fields = f.initial_state();
    group.bench_function("fdtd", |b| b.iter(|| f.run(&fields).1.cycles));

    let p = pns::Pns {
        n_threads: 2048,
        steps: 64,
        snap_every: 32,
    };
    group.bench_function("pns", |b| b.iter(|| p.run().1.cycles));

    let sd = sad::SadApp {
        width: 64,
        height: 48,
    };
    let (cur, reff) = sd.generate(6);
    group.bench_function("sad", |b| b.iter(|| sd.run(&cur, &reff, true).1.cycles));

    let fe = fem::Fem {
        n_nodes: 8192,
        sweeps: 2,
    };
    let mesh = fe.generate(7);
    group.bench_function("fem", |b| b.iter(|| fe.run(&mesh).1.cycles));

    let rp = rpes::Rpes { n: 4096 };
    let ts = rp.generate(8);
    group.bench_function("rpes", |b| b.iter(|| rp.run(&ts).1.cycles));

    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
