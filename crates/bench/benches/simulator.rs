//! Criterion benches of the simulator infrastructure itself: kernel
//! compilation (builder → passes → register allocation) and raw simulation
//! throughput, plus the host-side CPU reference implementations for
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use g80_apps::matmul::{MatMul, Variant};
use g80_isa::builder::{KernelBuilder, Unroll};
use g80_isa::inst::Operand;
use g80_isa::Value;
use g80_sim::{launch, DeviceMemory, GpuConfig, LaunchDims};

/// Compilation pipeline cost for a mid-sized kernel.
fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.bench_function("matmul_tiled16_unrolled", |b| {
        b.iter(|| {
            MatMul { n: 256 }
                .kernel(Variant::Tiled {
                    tile: 16,
                    unroll: true,
                })
                .regs_per_thread
        })
    });
    group.bench_function("rc5_fully_unrolled", |b| {
        b.iter(|| {
            g80_apps::rc5::Rc5 {
                n_keys: 64,
                ..Default::default()
            }
            .kernel(false)
            .regs_per_thread
        })
    });
    group.finish();
}

/// Raw simulation throughput: host nanoseconds per simulated
/// thread-instruction on an arithmetic-dense kernel.
fn bench_sim_throughput(c: &mut Criterion) {
    let mut b = KernelBuilder::new("throughput");
    let p = b.param();
    let tid = b.tid_x();
    let f = b.un(g80_isa::UnOp::CvtU2F, tid);
    let acc0 = b.mov(Operand::imm_f(1.0));
    let acc1 = b.mov(Operand::imm_f(2.0));
    b.for_range(0u32, 128u32, 1, Unroll::Full, |b, _| {
        b.ffma_to(acc0, f, 1.0001f32, acc0);
        b.ffma_to(acc1, f, 0.9999f32, acc1);
    });
    let s = b.fadd(acc0, acc1);
    let byte = b.shl(tid, 2u32);
    let a = b.iadd(byte, p);
    b.st_global(a, 0, s);
    let k = b.build();

    let cfg = GpuConfig::geforce_8800_gtx();
    let mem = DeviceMemory::new(1 << 16);
    let dims = LaunchDims {
        grid: (48, 1),
        block: (256, 1, 1),
    };
    // thread instructions per launch: 48 blocks * 256 threads * ~260 insts
    let thread_insts = 48u64 * 256 * 262;

    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(thread_insts));
    group.sample_size(10);
    group.bench_function("fma_dense_48_blocks", |bch| {
        bch.iter(|| {
            launch(&cfg, &k, dims, &[Value::from_u32(0)], &mem)
                .unwrap()
                .cycles
        })
    });
    group.finish();
}

/// Reference vs. predecoded engine on the paper's best matmul kernel —
/// the criterion-tracked counterpart of `bin/bench_sim.rs`.
fn bench_engines(c: &mut Criterion) {
    let mm = MatMul { n: 128 };
    let (a, b) = mm.generate(42);
    let v = Variant::Tiled {
        tile: 16,
        unroll: true,
    };

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for (name, engine) in [
        ("reference", g80_sim::Engine::Reference),
        ("predecoded", g80_sim::Engine::Predecoded),
    ] {
        group.bench_function(name, |bch| {
            g80_sim::set_engine(engine);
            bch.iter(|| mm.run(v, &a, &b).1.cycles);
        });
    }
    group.finish();
    g80_sim::set_engine(g80_sim::Engine::Predecoded);
}

/// The host-side CPU reference (for sanity: the simulator is expected to be
/// orders of magnitude slower than native code, that's fine).
fn bench_cpu_reference(c: &mut Criterion) {
    let mm = MatMul { n: 96 };
    let (a, b) = mm.generate(42);
    let mut group = c.benchmark_group("cpu_reference");
    group.sample_size(10);
    group.bench_function("matmul_n96", |bch| {
        bch.iter(|| mm.cpu_reference(&a, &b).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_sim_throughput,
    bench_engines,
    bench_cpu_reference
);
criterion_main!(benches);
