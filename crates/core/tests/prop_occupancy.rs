//! Property tests over the occupancy calculator (the DESIGN.md §7
//! invariants): occupancy is monotone non-increasing in per-thread register
//! demand and per-block shared memory, never exceeds 100%, and always agrees
//! with the simulator's launch-time block scheduler.

use g80_core::occupancy;
use g80_sim::GpuConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// More registers per thread can never increase residency.
    #[test]
    fn monotone_in_registers(
        regs in 1u32..64,
        smem in 0u32..16_384,
        tpb in 1u32..=512,
    ) {
        let cfg = GpuConfig::geforce_8800_gtx();
        let a = occupancy(&cfg, regs, smem, tpb);
        let b = occupancy(&cfg, regs + 1, smem, tpb);
        prop_assert!(b.blocks_per_sm <= a.blocks_per_sm);
        prop_assert!(b.occupancy <= a.occupancy + 1e-12);
    }

    /// More shared memory per block can never increase residency.
    #[test]
    fn monotone_in_shared_memory(
        regs in 1u32..64,
        smem in 0u32..15_872,
        tpb in 1u32..=512,
    ) {
        let cfg = GpuConfig::geforce_8800_gtx();
        let a = occupancy(&cfg, regs, smem, tpb);
        let b = occupancy(&cfg, regs, smem + 512, tpb);
        prop_assert!(b.blocks_per_sm <= a.blocks_per_sm);
    }

    /// Occupancy is bounded by 100% for every configuration (the warp
    /// context limit holds even for partial warps), and resident resources
    /// never exceed the SM's capacity.
    #[test]
    fn never_exceeds_machine_capacity(
        regs in 1u32..64,
        smem in 0u32..20_000,
        tpb in 1u32..600,
    ) {
        let cfg = GpuConfig::geforce_8800_gtx();
        let o = occupancy(&cfg, regs, smem, tpb);
        prop_assert!(o.occupancy <= 1.0 + 1e-12, "occupancy {}", o.occupancy);
        prop_assert!(o.threads_per_sm <= cfg.max_threads_per_sm);
        prop_assert!(o.warps_per_sm <= cfg.max_warps_per_sm());
        prop_assert!(o.blocks_per_sm * regs * tpb.max(1) <= cfg.registers_per_sm || o.blocks_per_sm == 0);
        prop_assert!(o.blocks_per_sm * smem <= cfg.smem_per_sm || o.blocks_per_sm == 0);
        prop_assert!(o.blocks_per_sm <= cfg.max_blocks_per_sm);
    }

    /// The calculator and the simulator's launch-time scheduler never
    /// disagree, across all three machine presets.
    #[test]
    fn agrees_with_every_machine_preset(
        regs in 1u32..64,
        smem in 0u32..16_384,
        tpb in 1u32..=512,
        which in 0u8..3,
    ) {
        let cfg = match which {
            0 => GpuConfig::geforce_8800_gtx(),
            1 => GpuConfig::geforce_8800_gts(),
            _ => GpuConfig::gtx280_like(),
        };
        let o = occupancy(&cfg, regs, smem, tpb);
        prop_assert_eq!(o.blocks_per_sm, cfg.blocks_per_sm(regs, smem, tpb));
    }
}
