//! Configuration auto-tuning.
//!
//! Section 6: "it is also possible to get stuck in local maximums of
//! performance when attempting to follow a particular optimization
//! strategy… Better tools … that … automatically experiment with their
//! performance effects would greatly reduce the optimization effort." This
//! module is that tool for the simulated machine: exhaustive sweeps (in
//! parallel over host cores) and a greedy hill-climber whose trace makes the
//! local-maximum phenomenon observable.

use g80_sim::KernelStats;

/// One evaluated configuration.
#[derive(Clone, Debug)]
pub struct Sample<C> {
    pub config: C,
    pub stats: KernelStats,
}

impl<C> Sample<C> {
    /// The tuner's figure of merit (higher is better).
    pub fn score(&self) -> f64 {
        self.stats.gflops()
    }
}

/// Result of a sweep: best configuration plus the whole surface.
#[derive(Clone, Debug)]
pub struct SweepResult<C> {
    /// Every sample, in input order.
    pub samples: Vec<Sample<C>>,
    /// Index of the best sample.
    pub best: usize,
}

impl<C> SweepResult<C> {
    /// Builds a result from already-evaluated samples (e.g. a
    /// `launch_batch` sweep), computing the best index.
    pub fn from_samples(samples: Vec<Sample<C>>) -> Self {
        assert!(!samples.is_empty(), "empty configuration space");
        finish(samples)
    }

    pub fn best_sample(&self) -> &Sample<C> {
        &self.samples[self.best]
    }

    /// Samples sorted best-first (for reports).
    pub fn ranked(&self) -> Vec<&Sample<C>> {
        let mut v: Vec<&Sample<C>> = self.samples.iter().collect();
        v.sort_by(|a, b| b.score().total_cmp(&a.score()));
        v
    }
}

/// Evaluates every configuration sequentially.
pub fn sweep<C: Clone>(configs: &[C], mut eval: impl FnMut(&C) -> KernelStats) -> SweepResult<C> {
    assert!(!configs.is_empty(), "empty configuration space");
    let samples: Vec<Sample<C>> = configs
        .iter()
        .map(|c| Sample {
            config: c.clone(),
            stats: eval(c),
        })
        .collect();
    finish(samples)
}

/// Evaluates every configuration in parallel on the shared simulation
/// worker pool ([`g80_sim::pool`]). `eval` must be pure with respect to
/// shared state (each call typically builds a fresh device). Results are
/// returned in input order, so the sweep is deterministic for any worker
/// count.
pub fn sweep_parallel<C: Clone + Send + Sync>(
    configs: &[C],
    eval: impl Fn(&C) -> KernelStats + Send + Sync,
) -> SweepResult<C> {
    assert!(!configs.is_empty(), "empty configuration space");
    let eval = &eval;
    let stats = g80_sim::pool::run_tasks(configs.iter().map(|c| move || eval(c)).collect());
    finish(
        configs
            .iter()
            .zip(stats)
            .map(|(c, stats)| Sample {
                config: c.clone(),
                stats,
            })
            .collect(),
    )
}

fn finish<C>(samples: Vec<Sample<C>>) -> SweepResult<C> {
    let best = samples
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.score().total_cmp(&b.score()))
        .map(|(i, _)| i)
        .unwrap();
    SweepResult { samples, best }
}

/// Greedy hill-climbing from a start configuration: repeatedly move to the
/// best-scoring neighbour until no neighbour improves. Returns the path
/// taken — comparing its endpoint against an exhaustive sweep's optimum
/// demonstrates the paper's local-maximum warning.
pub fn hill_climb<C: Clone + PartialEq>(
    start: C,
    neighbours: impl Fn(&C) -> Vec<C>,
    mut eval: impl FnMut(&C) -> KernelStats,
) -> Vec<Sample<C>> {
    let mut path = vec![Sample {
        config: start.clone(),
        stats: eval(&start),
    }];
    loop {
        let current = path.last().unwrap();
        let mut best: Option<Sample<C>> = None;
        for n in neighbours(&current.config) {
            if path.iter().any(|s| s.config == n) {
                continue; // don't revisit
            }
            let s = Sample {
                stats: eval(&n),
                config: n,
            };
            if best.as_ref().is_none_or(|b| s.score() > b.score()) {
                best = Some(s);
            }
        }
        match best {
            Some(b) if b.score() > path.last().unwrap().score() => path.push(b),
            _ => return path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::KernelBuilder;
    use g80_isa::Value;
    use g80_sim::{launch, DeviceMemory, GpuConfig, LaunchDims};

    /// Streaming kernel whose performance depends on block size (occupancy).
    fn eval_block_size(threads: u32) -> KernelStats {
        let mut b = KernelBuilder::new("bs");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let acc = b.fmul(v, 2.0f32);
        b.st_global(a, 0, acc);
        let k = b.build();
        let mem = DeviceMemory::new(1 << 20);
        let total = 1u32 << 18;
        launch(
            &GpuConfig::geforce_8800_gtx(),
            &k,
            LaunchDims {
                grid: (total / threads, 1),
                block: (threads, 1, 1),
            },
            &[Value::from_u32(0)],
            &mem,
        )
        .unwrap()
    }

    #[test]
    fn sweep_finds_a_best_config() {
        let configs = [32u32, 64, 128, 256];
        let r = sweep(&configs, |&c| eval_block_size(c));
        assert_eq!(r.samples.len(), 4);
        let best = r.best_sample();
        for s in &r.samples {
            assert!(best.score() >= s.score());
        }
        let ranked = r.ranked();
        assert!(ranked[0].score() >= ranked.last().unwrap().score());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let configs = [32u32, 64, 128, 256];
        let seq = sweep(&configs, |&c| eval_block_size(c));
        let par = sweep_parallel(&configs, |&c| eval_block_size(c));
        for (a, b) in seq.samples.iter().zip(&par.samples) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.stats.cycles, b.stats.cycles); // determinism
        }
        assert_eq!(seq.best, par.best);
    }

    #[test]
    fn hill_climb_terminates_at_a_maximum() {
        let path = hill_climb(
            32u32,
            |&c| {
                let mut n = Vec::new();
                if c > 32 {
                    n.push(c / 2);
                }
                if c < 256 {
                    n.push(c * 2);
                }
                n
            },
            |&c| eval_block_size(c),
        );
        assert!(!path.is_empty());
        // Scores along the path strictly improve.
        for w in path.windows(2) {
            assert!(w[1].score() > w[0].score());
        }
    }

    #[test]
    #[should_panic(expected = "empty configuration space")]
    fn empty_sweep_panics() {
        let _ = sweep::<u32>(&[], |_| unreachable!());
    }
}
