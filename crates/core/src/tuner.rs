//! Configuration auto-tuning.
//!
//! Section 6: "it is also possible to get stuck in local maximums of
//! performance when attempting to follow a particular optimization
//! strategy… Better tools … that … automatically experiment with their
//! performance effects would greatly reduce the optimization effort." This
//! module is that tool for the simulated machine: exhaustive sweeps (in
//! parallel over host cores) and a greedy hill-climber whose trace makes the
//! local-maximum phenomenon observable.

use g80_sim::{KernelStats, SimError};

/// One evaluated configuration.
#[derive(Clone, Debug)]
pub struct Sample<C> {
    pub config: C,
    pub stats: KernelStats,
}

impl<C> Sample<C> {
    /// The tuner's figure of merit (higher is better).
    pub fn score(&self) -> f64 {
        self.stats.gflops()
    }
}

/// Result of a sweep: best configuration plus the whole surface.
#[derive(Clone, Debug)]
pub struct SweepResult<C> {
    /// Every sample, in input order.
    pub samples: Vec<Sample<C>>,
    /// Index of the best sample.
    pub best: usize,
    /// In-process launch-memo-cache hits observed while this sweep ran. A
    /// fleet that revisits configurations pays simulation only for the
    /// misses; the hit rate is what makes the revisit speedup auditable.
    /// Measured as the delta of the process-wide [`g80_sim::memo_counters`],
    /// so concurrent launches outside the sweep are attributed to it as
    /// well.
    pub memo_hits: u64,
    /// Launch-memo-cache misses observed while this sweep ran (launches
    /// that simulated).
    pub memo_misses: u64,
    /// Launches served by the persistent disk cache tier
    /// ([`g80_sim::set_disk_cache`]) while this sweep ran — replayed from a
    /// prior process without simulating.
    pub disk_hits: u64,
    /// Disk-tier probes during this sweep that found no usable entry.
    pub disk_misses: u64,
    /// Disk-tier entries evicted during this sweep (corruption, version
    /// skew, or byte-budget compaction).
    pub disk_evictions: u64,
    /// Transport faults survived while this sweep ran, when the sweep was
    /// served over the `g80-serve` wire (all-zero for in-process sweeps):
    /// disconnects observed, frames retried after integrity failures,
    /// bytes re-sent, and reconnect-and-replay cycles. Attached by
    /// [`SweepResult::from_parts`] from the client's
    /// [`g80_sim::NetCounters`] delta.
    pub net: g80_sim::NetCounters,
}

impl<C> SweepResult<C> {
    /// Builds a result from already-evaluated samples (e.g. a
    /// `launch_batch` sweep), computing the best index. Cache activity
    /// happened outside this call, so the memo counters are zero; diff
    /// [`g80_sim::memo_counters`] around the evaluation to attribute it.
    pub fn from_samples(samples: Vec<Sample<C>>) -> Self {
        assert!(!samples.is_empty(), "empty configuration space");
        finish(samples, g80_sim::MemoCounters::default())
    }

    /// Builds a result from samples plus externally measured cache
    /// counters, computing the best index. This is how a `g80-serve` client
    /// reassembles a sweep from streamed rows: it pairs the rows with the
    /// configurations it generated them from and attaches the counter delta
    /// the daemon reported for the sweep.
    pub fn from_parts(samples: Vec<Sample<C>>, counters: g80_sim::MemoCounters) -> Self {
        assert!(!samples.is_empty(), "empty configuration space");
        finish(samples, counters)
    }

    /// [`SweepResult::from_parts`], additionally attaching the transport
    /// fault tallies the client observed while streaming the sweep.
    pub fn from_parts_with_net(
        samples: Vec<Sample<C>>,
        counters: g80_sim::MemoCounters,
        net: g80_sim::NetCounters,
    ) -> Self {
        let mut r = Self::from_parts(samples, counters);
        r.net = net;
        r
    }

    /// Cache hit fraction over this sweep's launches, counting both the
    /// in-process memo and the disk tier (0 when nothing was probed — e.g.
    /// the cache is disabled).
    pub fn memo_hit_rate(&self) -> f64 {
        let served = self.memo_hits + self.disk_hits;
        let total = served + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }

    pub fn best_sample(&self) -> &Sample<C> {
        &self.samples[self.best]
    }

    /// Samples sorted best-first (for reports).
    pub fn ranked(&self) -> Vec<&Sample<C>> {
        let mut v: Vec<&Sample<C>> = self.samples.iter().collect();
        v.sort_by(|a, b| b.score().total_cmp(&a.score()));
        v
    }
}

/// Evaluates every configuration sequentially.
pub fn sweep<C: Clone>(configs: &[C], mut eval: impl FnMut(&C) -> KernelStats) -> SweepResult<C> {
    assert!(!configs.is_empty(), "empty configuration space");
    let (samples, delta) = with_memo_delta(|| {
        configs
            .iter()
            .map(|c| Sample {
                config: c.clone(),
                stats: eval(c),
            })
            .collect()
    });
    finish(samples, delta)
}

/// Evaluates every configuration in parallel on the shared simulation
/// worker pool ([`g80_sim::pool`]). `eval` must be pure with respect to
/// shared state (each call typically builds a fresh device). Results are
/// returned in input order, so the sweep is deterministic for any worker
/// count.
pub fn sweep_parallel<C: Clone + Send + Sync>(
    configs: &[C],
    eval: impl Fn(&C) -> KernelStats + Send + Sync,
) -> SweepResult<C> {
    assert!(!configs.is_empty(), "empty configuration space");
    let eval = &eval;
    let (stats, delta) = with_memo_delta(|| {
        g80_sim::pool::run_tasks(configs.iter().map(|c| move || eval(c)).collect())
    });
    finish(
        configs
            .iter()
            .zip(stats)
            .map(|(c, stats)| Sample {
                config: c.clone(),
                stats,
            })
            .collect(),
        delta,
    )
}

/// A sweep over a fallible evaluator: the survivors' surface plus the
/// configurations that failed. Produced by [`sweep_fallible`] /
/// [`sweep_parallel_fallible`].
#[derive(Clone, Debug)]
pub struct FallibleSweep<C> {
    /// Sweep result over the configurations that evaluated successfully.
    pub result: SweepResult<C>,
    /// Configurations whose evaluation failed, with their errors, in input
    /// order.
    pub failures: Vec<(C, SimError)>,
}

/// [`sweep`] for evaluators that can fail (degraded launches, device-layer
/// errors). A failing configuration is dropped from the surface and
/// reported in [`FallibleSweep::failures`]; the sweep itself only errors
/// when *every* configuration failed (the first error is returned).
pub fn sweep_fallible<C: Clone>(
    configs: &[C],
    mut eval: impl FnMut(&C) -> Result<KernelStats, SimError>,
) -> Result<FallibleSweep<C>, SimError> {
    assert!(!configs.is_empty(), "empty configuration space");
    let (evaluated, delta) = with_memo_delta(|| {
        configs
            .iter()
            .map(|c| (c.clone(), eval(c)))
            .collect::<Vec<_>>()
    });
    collect_fallible(evaluated, delta)
}

/// [`sweep_parallel`] for evaluators that can fail; same per-configuration
/// degradation contract as [`sweep_fallible`].
pub fn sweep_parallel_fallible<C: Clone + Send + Sync>(
    configs: &[C],
    eval: impl Fn(&C) -> Result<KernelStats, SimError> + Send + Sync,
) -> Result<FallibleSweep<C>, SimError> {
    assert!(!configs.is_empty(), "empty configuration space");
    let eval = &eval;
    let (results, delta) = with_memo_delta(|| {
        g80_sim::pool::run_tasks(configs.iter().map(|c| move || eval(c)).collect())
    });
    collect_fallible(configs.iter().cloned().zip(results).collect(), delta)
}

fn collect_fallible<C>(
    evaluated: Vec<(C, Result<KernelStats, SimError>)>,
    delta: g80_sim::MemoCounters,
) -> Result<FallibleSweep<C>, SimError> {
    let mut samples = Vec::new();
    let mut failures = Vec::new();
    for (config, r) in evaluated {
        match r {
            Ok(stats) => samples.push(Sample { config, stats }),
            Err(e) => failures.push((config, e)),
        }
    }
    if samples.is_empty() {
        // Nothing to rank; surface the first failure.
        return Err(failures.into_iter().next().unwrap().1);
    }
    Ok(FallibleSweep {
        result: finish(samples, delta),
        failures,
    })
}

/// Runs `f` and returns its result plus the cache activity it caused across
/// both tiers (delta of the process-wide [`g80_sim::memo_counters`];
/// saturating so a concurrent [`g80_sim::reset_memo_counters`] cannot
/// underflow).
fn with_memo_delta<T>(f: impl FnOnce() -> T) -> (T, g80_sim::MemoCounters) {
    let before = g80_sim::memo_counters();
    let out = f();
    let after = g80_sim::memo_counters();
    (
        out,
        g80_sim::MemoCounters {
            hits: after.hits.saturating_sub(before.hits),
            misses: after.misses.saturating_sub(before.misses),
            disk_hits: after.disk_hits.saturating_sub(before.disk_hits),
            disk_misses: after.disk_misses.saturating_sub(before.disk_misses),
            disk_evictions: after.disk_evictions.saturating_sub(before.disk_evictions),
            dedup_fast_blocks: after
                .dedup_fast_blocks
                .saturating_sub(before.dedup_fast_blocks),
            dedup_sim_blocks: after
                .dedup_sim_blocks
                .saturating_sub(before.dedup_sim_blocks),
            dedup_fallbacks: after.dedup_fallbacks.saturating_sub(before.dedup_fallbacks),
        },
    )
}

fn finish<C>(samples: Vec<Sample<C>>, delta: g80_sim::MemoCounters) -> SweepResult<C> {
    let best = samples
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.score().total_cmp(&b.score()))
        .map(|(i, _)| i)
        .unwrap();
    SweepResult {
        samples,
        best,
        memo_hits: delta.hits,
        memo_misses: delta.misses,
        disk_hits: delta.disk_hits,
        disk_misses: delta.disk_misses,
        disk_evictions: delta.disk_evictions,
        net: g80_sim::NetCounters::default(),
    }
}

/// Greedy hill-climbing from a start configuration: repeatedly move to the
/// best-scoring neighbour until no neighbour improves. Returns the path
/// taken — comparing its endpoint against an exhaustive sweep's optimum
/// demonstrates the paper's local-maximum warning.
pub fn hill_climb<C: Clone + PartialEq>(
    start: C,
    neighbours: impl Fn(&C) -> Vec<C>,
    mut eval: impl FnMut(&C) -> KernelStats,
) -> Vec<Sample<C>> {
    let mut path = vec![Sample {
        config: start.clone(),
        stats: eval(&start),
    }];
    loop {
        let current = path.last().unwrap();
        let mut best: Option<Sample<C>> = None;
        for n in neighbours(&current.config) {
            if path.iter().any(|s| s.config == n) {
                continue; // don't revisit
            }
            let s = Sample {
                stats: eval(&n),
                config: n,
            };
            if best.as_ref().is_none_or(|b| s.score() > b.score()) {
                best = Some(s);
            }
        }
        match best {
            Some(b) if b.score() > path.last().unwrap().score() => path.push(b),
            _ => return path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::KernelBuilder;
    use g80_isa::Value;
    use g80_sim::{launch, DeviceMemory, GpuConfig, LaunchDims};

    /// Streaming kernel whose performance depends on block size (occupancy).
    fn eval_block_size(threads: u32) -> KernelStats {
        let mut b = KernelBuilder::new("bs");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let acc = b.fmul(v, 2.0f32);
        b.st_global(a, 0, acc);
        let k = b.build();
        let mem = DeviceMemory::new(1 << 20);
        let total = 1u32 << 18;
        launch(
            &GpuConfig::geforce_8800_gtx(),
            &k,
            LaunchDims {
                grid: (total / threads, 1),
                block: (threads, 1, 1),
            },
            &[Value::from_u32(0)],
            &mem,
        )
        .unwrap()
    }

    #[test]
    fn sweep_finds_a_best_config() {
        let configs = [32u32, 64, 128, 256];
        let r = sweep(&configs, |&c| eval_block_size(c));
        assert_eq!(r.samples.len(), 4);
        let best = r.best_sample();
        for s in &r.samples {
            assert!(best.score() >= s.score());
        }
        let ranked = r.ranked();
        assert!(ranked[0].score() >= ranked.last().unwrap().score());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let configs = [32u32, 64, 128, 256];
        let seq = sweep(&configs, |&c| eval_block_size(c));
        let par = sweep_parallel(&configs, |&c| eval_block_size(c));
        for (a, b) in seq.samples.iter().zip(&par.samples) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.stats.cycles, b.stats.cycles); // determinism
        }
        assert_eq!(seq.best, par.best);
    }

    #[test]
    fn hill_climb_terminates_at_a_maximum() {
        let path = hill_climb(
            32u32,
            |&c| {
                let mut n = Vec::new();
                if c > 32 {
                    n.push(c / 2);
                }
                if c < 256 {
                    n.push(c * 2);
                }
                n
            },
            |&c| eval_block_size(c),
        );
        assert!(!path.is_empty());
        // Scores along the path strictly improve.
        for w in path.windows(2) {
            assert!(w[1].score() > w[0].score());
        }
    }

    #[test]
    fn revisit_sweep_reports_memo_hits() {
        // Meaningless when the cache is globally disabled (the CI matrix
        // runs the suite with G80_SIM_MEMO=off), exact counts are perturbed
        // under the chaos CI's armed fault injector, and a warm disk-cache
        // dir can turn the cold sweep's expected misses into disk hits.
        if g80_sim::memo() == g80_sim::Memo::Off
            || g80_sim::fault::armed()
            || g80_sim::disk_cache_dir().is_some()
        {
            return;
        }
        // The revisit needs every config still resident (the CI matrix
        // forces G80_SIM_MEMO_CAP=1, under which each launch evicts the
        // previous one), so pin a capacity that holds the whole sweep.
        g80_sim::set_memo_capacity(64);
        // A kernel unique to this test (the 0x5eed xor is its fingerprint),
        // so no other test can pre-warm its cache entries. Counter deltas
        // are process-wide, so concurrent tests can only *inflate* them —
        // all assertions are lower bounds.
        let eval = |&threads: &u32| -> KernelStats {
            let mut b = KernelBuilder::new("revisit");
            let p = b.param();
            let tid = b.tid_x();
            let ntid = b.ntid_x();
            let cta = b.ctaid_x();
            let i = b.imad(cta, ntid, tid);
            let m = b.xor(i, 0x5eedu32);
            let byte = b.shl(i, 2u32);
            let a = b.iadd(byte, p);
            b.st_global(a, 0, m);
            let k = b.build();
            let mem = DeviceMemory::new(1 << 16);
            launch(
                &GpuConfig::geforce_8800_gtx(),
                &k,
                LaunchDims {
                    grid: ((1 << 12) / threads, 1),
                    block: (threads, 1, 1),
                },
                &[Value::from_u32(0)],
                &mem,
            )
            .unwrap()
        };
        let configs = [32u32, 64, 128, 256];
        let cold = sweep(&configs, eval);
        assert!(
            cold.memo_misses >= configs.len() as u64,
            "first visit must simulate every configuration: {cold:?}"
        );
        let warm = sweep(&configs, eval);
        assert!(
            warm.memo_hits >= configs.len() as u64,
            "revisit must be served by the launch memo cache: {warm:?}"
        );
        assert!(warm.memo_hit_rate() > 0.0);
        for (a, b) in cold.samples.iter().zip(&warm.samples) {
            assert_eq!(a.stats.cycles, b.stats.cycles);
        }
    }

    #[test]
    #[should_panic(expected = "empty configuration space")]
    fn empty_sweep_panics() {
        let _ = sweep::<u32>(&[], |_| unreachable!());
    }

    /// Evaluator for the fallible sweeps: block size 0 is rejected at
    /// launch, everything else simulates normally.
    fn eval_fallible(threads: u32) -> Result<KernelStats, SimError> {
        if threads == 0 {
            // Reproduce the launch layer's rejection without building a
            // degenerate grid.
            let mut b = KernelBuilder::new("zero");
            let p = b.param();
            let tid = b.tid_x();
            b.st_global(p, 0, tid);
            let k = b.build();
            let mem = DeviceMemory::new(1 << 12);
            return launch(
                &GpuConfig::geforce_8800_gtx(),
                &k,
                LaunchDims {
                    grid: (1, 1),
                    block: (0, 1, 1),
                },
                &[Value::from_u32(0)],
                &mem,
            )
            .map_err(SimError::from);
        }
        Ok(eval_block_size(threads))
    }

    #[test]
    fn fallible_sweep_drops_failures_and_ranks_survivors() {
        let configs = [0u32, 64, 128];
        let r = sweep_fallible(&configs, |&c| eval_fallible(c)).unwrap();
        assert_eq!(r.result.samples.len(), 2);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].0, 0);
        assert!(matches!(
            r.failures[0].1,
            SimError::Launch(g80_sim::LaunchError::BadBlockDims(_))
        ));
        let par = sweep_parallel_fallible(&configs, |&c| eval_fallible(c)).unwrap();
        assert_eq!(par.result.samples.len(), 2);
        for (a, b) in r.result.samples.iter().zip(&par.result.samples) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.stats.cycles, b.stats.cycles);
        }
    }

    #[test]
    fn fallible_sweep_errors_only_when_all_fail() {
        let r = sweep_fallible(&[0u32, 0], |&c| eval_fallible(c));
        assert!(matches!(
            r,
            Err(SimError::Launch(g80_sim::LaunchError::BadBlockDims(_)))
        ));
    }
}
