//! # g80-core — the optimization principles of Ryoo et al., codified
//!
//! The paper's primary contribution is a *methodology*: balance per-thread
//! resources against thread count (occupancy), estimate potential throughput
//! from the instruction mix and the memory traffic, name the bottleneck, and
//! apply the matching transformation. This crate packages that methodology:
//!
//! * [`mod@occupancy`] — the resource-balancing calculator (principles 1 & 2),
//!   reproducing the Section 4.2 register cliff (10 regs ⇒ 3 blocks, 11 ⇒ 2);
//! * [`model`] — Section 4's potential-throughput estimation and bottleneck
//!   classification (instruction issue vs memory bandwidth vs latency);
//! * [`advisor`] — the principles as an executable checklist over a run's
//!   performance counters;
//! * [`tuner`] — exhaustive/parallel configuration sweeps and a greedy
//!   hill-climber that exposes the "local maximums of performance" the
//!   conclusion warns about.

pub mod advisor;
pub mod model;
pub mod occupancy;
pub mod tuner;

pub use advisor::{advise, Hint, HintKind};
pub use model::{estimate, Bottleneck, PerfEstimate};
pub use occupancy::{kernel_occupancy, occupancy, LimitingResource, Occupancy};
pub use tuner::{
    hill_climb, sweep, sweep_fallible, sweep_parallel, sweep_parallel_fallible, FallibleSweep,
    Sample, SweepResult,
};
