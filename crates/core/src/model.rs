//! The analytical performance model of Section 4.
//!
//! The paper's optimization loop repeatedly *estimates potential throughput*
//! from the instruction mix ("one fused multiply-add out of eight operations
//! … for an estimated potential throughput of 43.2 GFLOPS") and the memory
//! traffic ("which would require a bandwidth of 173 GB/s to fully utilize
//! the SPs"), then compares against what the machine achieved to name the
//! bottleneck. This module turns that methodology into code.

use g80_sim::{GpuConfig, KernelStats, StallReason};

/// What limits a kernel, in the paper's vocabulary.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Bottleneck {
    /// Running at the instruction-issue roofline — optimize by removing
    /// instructions (unrolling, CSE; Section 4.3).
    InstructionIssue,
    /// DRAM bandwidth saturated — optimize by reuse (tiling) and coalescing.
    MemoryBandwidth,
    /// Bandwidth is fine but latency is exposed: not enough concurrent
    /// threads (occupancy) or too-serial dependence chains.
    MemoryLatency,
    /// Shared-memory bank conflicts serialize the pipeline.
    BankConflicts,
    /// Warps idle at barriers (unbalanced work or few warps per block).
    Synchronization,
}

/// Roofline estimate + achieved numbers for one kernel run.
#[derive(Clone, Debug)]
pub struct PerfEstimate {
    /// GFLOPS if the only limit were instruction issue: peak issue rate ×
    /// FLOPs per thread-instruction.
    pub issue_bound_gflops: f64,
    /// GFLOPS if the only limit were DRAM bandwidth: bytes-per-FLOP against
    /// 86.4 GB/s.
    pub bandwidth_bound_gflops: f64,
    /// min of the two bounds — the paper's "potential throughput".
    pub potential_gflops: f64,
    /// What the simulator actually delivered.
    pub achieved_gflops: f64,
    /// achieved / potential.
    pub efficiency: f64,
    /// DRAM bandwidth the kernel would need to run at the issue bound
    /// (the "173 GB/s" style number).
    pub required_bandwidth_gbps: f64,
    /// The named bottleneck.
    pub bottleneck: Bottleneck,
}

/// Builds the Section 4 estimate from a finished run's counters.
pub fn estimate(cfg: &GpuConfig, stats: &KernelStats) -> PerfEstimate {
    // Issue-slot accounting: SFU transcendentals occupy the issue port four
    // times longer than SP instructions, so a trig-heavy kernel's roofline
    // is correspondingly lower.
    let sfu = stats
        .by_class
        .get(&g80_isa::InstClass::Sfu)
        .copied()
        .unwrap_or(0);
    let slot_weight = if stats.warp_instructions == 0 {
        1.0
    } else {
        let extra = sfu as f64 * (cfg.sfu_issue_cycles as f64 / cfg.issue_cycles as f64 - 1.0);
        1.0 + extra / stats.warp_instructions as f64
    };
    let flops_per_inst = if stats.thread_instructions == 0 {
        0.0
    } else {
        stats.flops as f64 / stats.thread_instructions as f64
    };
    let issue_bound = cfg.peak_issue_rate() * flops_per_inst / slot_weight / 1e9;

    let bytes_per_flop = if stats.flops == 0 {
        f64::INFINITY
    } else {
        stats.global_bytes as f64 / stats.flops as f64
    };
    let bandwidth_bound = if bytes_per_flop == 0.0 {
        f64::INFINITY
    } else {
        cfg.dram_gbps / bytes_per_flop
    };

    let potential = issue_bound.min(bandwidth_bound);
    let achieved = stats.gflops();
    let efficiency = if potential > 0.0 {
        achieved / potential
    } else {
        0.0
    };

    // Bandwidth needed to sustain the issue bound.
    let elapsed_at_issue = if issue_bound > 0.0 {
        stats.flops as f64 / (issue_bound * 1e9)
    } else {
        f64::INFINITY
    };
    let required_bw = if elapsed_at_issue.is_finite() && elapsed_at_issue > 0.0 {
        stats.global_bytes as f64 / elapsed_at_issue / 1e9
    } else {
        0.0
    };

    let bottleneck = classify(cfg, stats, issue_bound, bandwidth_bound, achieved);

    PerfEstimate {
        issue_bound_gflops: issue_bound,
        bandwidth_bound_gflops: bandwidth_bound,
        potential_gflops: potential,
        achieved_gflops: achieved,
        efficiency,
        required_bandwidth_gbps: required_bw,
        bottleneck,
    }
}

fn classify(
    cfg: &GpuConfig,
    stats: &KernelStats,
    issue_bound: f64,
    bandwidth_bound: f64,
    achieved: f64,
) -> Bottleneck {
    let total_cycles = (stats.cycles * cfg.num_sms as u64).max(1);
    let stall = |r: StallReason| {
        stats.stall_cycles.get(&r).copied().unwrap_or(0) as f64 / total_cycles as f64
    };

    // Shared-memory conflicts serialized a noticeable slice of the pipeline?
    if stats.smem_conflict_extra_cycles as f64 / total_cycles as f64 > 0.10 {
        return Bottleneck::BankConflicts;
    }
    // DRAM interface saturated?
    if stats.bandwidth_gbps() > 0.70 * cfg.dram_gbps {
        return Bottleneck::MemoryBandwidth;
    }
    // Near the issue roofline?
    if issue_bound <= bandwidth_bound && achieved > 0.75 * issue_bound {
        return Bottleneck::InstructionIssue;
    }
    // The issue port is busy nearly all the time (covers integer-only
    // kernels, where a FLOPS roofline says nothing).
    let total_stall: f64 = stats.stall_cycles.values().sum::<u64>() as f64 / total_cycles as f64;
    if total_stall < 0.20 {
        return Bottleneck::InstructionIssue;
    }
    // Otherwise attribute by stall profile.
    if stall(StallReason::Memory) > stall(StallReason::Barrier) {
        Bottleneck::MemoryLatency
    } else if stall(StallReason::Barrier) > 0.05 {
        Bottleneck::Synchronization
    } else if achieved > 0.5 * issue_bound.min(bandwidth_bound) {
        Bottleneck::InstructionIssue
    } else {
        Bottleneck::MemoryLatency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::{KernelBuilder, Unroll};
    use g80_isa::inst::Operand;
    use g80_isa::Value;
    use g80_sim::{launch, DeviceMemory, LaunchDims};

    fn gtx() -> GpuConfig {
        GpuConfig::geforce_8800_gtx()
    }

    /// Compute-heavy kernel: long FMA chain on register data.
    fn compute_kernel() -> g80_isa::Kernel {
        let mut b = KernelBuilder::new("compute");
        let p = b.param();
        let tid = b.tid_x();
        let f = b.un(g80_isa::UnOp::CvtU2F, tid);
        // Two interleaved chains so the ALU latency can be hidden.
        let acc0 = b.mov(Operand::imm_f(1.0));
        let acc1 = b.mov(Operand::imm_f(2.0));
        b.for_range(0u32, 64u32, 1, Unroll::Full, |b, _| {
            b.ffma_to(acc0, f, 1.0001f32, acc0);
            b.ffma_to(acc1, f, 0.9999f32, acc1);
        });
        let s = b.fadd(acc0, acc1);
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        b.st_global(a, 0, s);
        b.build()
    }

    /// Streaming kernel: pure copy, bandwidth-bound.
    fn stream_kernel() -> g80_isa::Kernel {
        let mut b = KernelBuilder::new("stream");
        let (src, dst) = (b.param(), b.param());
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let sa = b.iadd(byte, src);
        let da = b.iadd(byte, dst);
        let v = b.ld_global(sa, 0);
        let w = b.fadd(v, 1.0f32);
        b.st_global(da, 0, w);
        b.build()
    }

    #[test]
    fn compute_kernel_classified_as_issue_bound() {
        let cfg = gtx();
        let mem = DeviceMemory::new(1 << 16);
        let k = compute_kernel();
        let stats = launch(
            &cfg,
            &k,
            LaunchDims {
                grid: (48, 1),
                block: (256, 1, 1),
            },
            &[Value::from_u32(0)],
            &mem,
        )
        .unwrap();
        let est = estimate(&cfg, &stats);
        assert_eq!(est.bottleneck, Bottleneck::InstructionIssue);
        // FMA-dominated: issue bound should be a large fraction of peak.
        assert!(est.issue_bound_gflops > 0.5 * cfg.peak_mad_gflops());
        assert!(est.achieved_gflops > 0.7 * est.issue_bound_gflops);
        assert!(est.bandwidth_bound_gflops > est.issue_bound_gflops);
    }

    #[test]
    fn stream_kernel_classified_as_bandwidth_bound() {
        let cfg = gtx();
        let mem = DeviceMemory::new(1 << 22);
        let k = stream_kernel();
        let stats = launch(
            &cfg,
            &k,
            LaunchDims {
                grid: (1024, 1),
                block: (256, 1, 1),
            },
            &[Value::from_u32(0), Value::from_u32(1 << 21)],
            &mem,
        )
        .unwrap();
        let est = estimate(&cfg, &stats);
        assert_eq!(est.bottleneck, Bottleneck::MemoryBandwidth);
        // A copy kernel's bandwidth bound is far below its issue bound.
        assert!(est.bandwidth_bound_gflops < est.issue_bound_gflops);
        assert!(stats.bandwidth_gbps() > 0.7 * cfg.dram_gbps);
    }

    #[test]
    fn required_bandwidth_reports_oversubscription() {
        // The naive-matmul-style sanity: a kernel that loads 8 bytes per FMA
        // would need 4 B/FLOP x issue-bound GFLOPS of bandwidth.
        let cfg = gtx();
        let mem = DeviceMemory::new(1 << 22);
        let k = stream_kernel();
        let stats = launch(
            &cfg,
            &k,
            LaunchDims {
                grid: (1024, 1),
                block: (256, 1, 1),
            },
            &[Value::from_u32(0), Value::from_u32(1 << 21)],
            &mem,
        )
        .unwrap();
        let est = estimate(&cfg, &stats);
        assert!(
            est.required_bandwidth_gbps > cfg.dram_gbps,
            "a pure copy needs more bandwidth than the chip has to stay issue-bound: {}",
            est.required_bandwidth_gbps
        );
    }
}
