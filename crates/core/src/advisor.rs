//! The optimization advisor: the paper's principles as an executable
//! checklist.
//!
//! Given the counters from a run, produce the ordered list of optimizations
//! a G80 expert would try — coalesce (Section 5.2's buffering-in-shared-
//! memory trick), tile for reuse (Section 4.2), unroll (4.3), rebalance
//! registers vs threads (4.4), pad shared memory (5.2), reorganize divergent
//! threads (principle 3).

use crate::model::{estimate, Bottleneck};
use crate::occupancy::occupancy;
use g80_isa::InstClass;
use g80_sim::{GpuConfig, KernelStats};

/// One recommended optimization.
#[derive(Clone, Debug, PartialEq)]
pub struct Hint {
    pub kind: HintKind,
    /// Why this hint fired, with the relevant counter values.
    pub rationale: String,
    /// Larger = try first.
    pub priority: u32,
}

/// The optimization vocabulary of the paper.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HintKind {
    /// Reorder/bufferedly stage accesses so half-warps coalesce.
    CoalesceGlobalAccesses,
    /// Stage reused data in shared memory (tiling).
    TileIntoSharedMemory,
    /// Unroll inner loops to cut branch/induction overhead.
    UnrollInnerLoop,
    /// Reduce per-thread registers (or block size) to fit more blocks.
    ReduceRegisterPressure,
    /// Pad or re-stride shared arrays to kill bank conflicts.
    FixBankConflicts,
    /// Regroup threads so warps don't diverge.
    AvoidDivergence,
    /// Launch more threads/blocks to hide latency.
    IncreaseParallelism,
    /// Move read-only, spatially-local data into texture memory.
    UseTextureCache,
    /// Move small read-only broadcast data into constant memory.
    UseConstantMemory,
}

/// Analyses a run and returns hints sorted by priority (desc).
pub fn advise(cfg: &GpuConfig, stats: &KernelStats) -> Vec<Hint> {
    let mut hints = Vec::new();
    let est = estimate(cfg, stats);

    // 1. Coalescing: any substantial uncoalesced traffic.
    let half_warps = stats.coalesced_half_warps + stats.uncoalesced_half_warps;
    if half_warps > 0 {
        let frac = stats.uncoalesced_half_warps as f64 / half_warps as f64;
        if frac > 0.10 {
            hints.push(Hint {
                kind: HintKind::CoalesceGlobalAccesses,
                rationale: format!(
                    "{:.0}% of half-warp global accesses are uncoalesced \
                     ({} of {}); each costs up to 16 transactions",
                    frac * 100.0,
                    stats.uncoalesced_half_warps,
                    half_warps
                ),
                priority: 100,
            });
        }
    }

    // 2. Tiling: bandwidth-bound with no shared-memory use.
    let ld_shared = stats
        .by_class
        .get(&InstClass::LdShared)
        .copied()
        .unwrap_or(0);
    if est.bottleneck == Bottleneck::MemoryBandwidth && ld_shared == 0 {
        hints.push(Hint {
            kind: HintKind::TileIntoSharedMemory,
            rationale: format!(
                "kernel needs {:.0} GB/s to stay issue-bound but the chip has \
                 {:.1} GB/s, and shared memory is unused — stage reused data \
                 in tiles",
                est.required_bandwidth_gbps, cfg.dram_gbps
            ),
            priority: 90,
        });
    }

    // 3. Unrolling: issue-bound with a low FMA fraction and visible branches.
    let branches = stats.by_class.get(&InstClass::Branch).copied().unwrap_or(0);
    let branch_frac = branches as f64 / stats.warp_instructions.max(1) as f64;
    if est.bottleneck == Bottleneck::InstructionIssue
        && stats.fma_fraction() < 0.25
        && branch_frac > 0.05
    {
        hints.push(Hint {
            kind: HintKind::UnrollInnerLoop,
            rationale: format!(
                "issue-bound at only {:.0}% FMA with {:.0}% branches — \
                 unrolling removes branch and induction instructions",
                stats.fma_fraction() * 100.0,
                branch_frac * 100.0
            ),
            priority: 80,
        });
    }

    // 4. Occupancy: registers limit residency and memory latency is exposed.
    let occ = occupancy(
        cfg,
        stats.regs_per_thread,
        stats.smem_per_block,
        stats.threads_per_block,
    );
    if est.bottleneck == Bottleneck::MemoryLatency && occ.occupancy < 0.67 {
        let kind = if occ.limiter == crate::occupancy::LimitingResource::Registers {
            HintKind::ReduceRegisterPressure
        } else {
            HintKind::IncreaseParallelism
        };
        hints.push(Hint {
            kind,
            rationale: format!(
                "memory latency exposed at {:.0}% occupancy ({} warps/SM, \
                 limited by {:?})",
                occ.occupancy * 100.0,
                occ.warps_per_sm,
                occ.limiter
            ),
            priority: 85,
        });
    }

    // 5. Bank conflicts.
    let total_cycles = (stats.cycles * cfg.num_sms as u64).max(1);
    let conflict_frac = stats.smem_conflict_extra_cycles as f64 / total_cycles as f64;
    if conflict_frac > 0.05 {
        hints.push(Hint {
            kind: HintKind::FixBankConflicts,
            rationale: format!(
                "{:.0}% of SM cycles serialized by shared-memory bank \
                 conflicts — pad arrays or change the access stride",
                conflict_frac * 100.0
            ),
            priority: 75,
        });
    }

    // 6. Divergence.
    let div_frac = stats.divergent_branches as f64 / branches.max(1) as f64;
    if branches > 100 && div_frac > 0.30 {
        hints.push(Hint {
            kind: HintKind::AvoidDivergence,
            rationale: format!(
                "{:.0}% of branches diverge within warps — regroup threads \
                 so SIMD paths stay together",
                div_frac * 100.0
            ),
            priority: 70,
        });
    }

    // 7. Cache suggestions: read-mostly uncoalesced loads with no texture use.
    let ld_tex = stats.by_class.get(&InstClass::LdTex).copied().unwrap_or(0);
    let ld_const = stats
        .by_class
        .get(&InstClass::LdConst)
        .copied()
        .unwrap_or(0);
    if stats.uncoalesced_half_warps > stats.coalesced_half_warps
        && ld_tex == 0
        && stats.global_st_transactions < stats.global_ld_transactions / 4
    {
        hints.push(Hint {
            kind: HintKind::UseTextureCache,
            rationale: "read-dominated kernel with irregular accesses and no \
                        texture use — the texture cache can absorb locality \
                        the coalescer cannot"
                .to_string(),
            priority: 60,
        });
    }
    if ld_const == 0
        && stats.uncoalesced_half_warps > 0
        && est.bottleneck == Bottleneck::MemoryBandwidth
    {
        hints.push(Hint {
            kind: HintKind::UseConstantMemory,
            rationale: "small read-only data broadcast to all threads belongs \
                        in constant memory (single-cycle on cache hit)"
                .to_string(),
            priority: 50,
        });
    }

    hints.sort_by_key(|h| std::cmp::Reverse(h.priority));
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::{KernelBuilder, Unroll};
    use g80_isa::inst::Operand;
    use g80_isa::Value;
    use g80_sim::{launch, DeviceMemory, LaunchDims};

    fn gtx() -> GpuConfig {
        GpuConfig::geforce_8800_gtx()
    }

    #[test]
    fn uncoalesced_kernel_gets_coalesce_hint_first() {
        // Stride-2 access pattern: every half-warp uncoalesced.
        let mut b = KernelBuilder::new("strided");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 3u32); // *8: stride-2 words
        let a = b.iadd(byte, p);
        let v = b.ld_global(a, 0);
        let w = b.fadd(v, 1.0f32);
        b.st_global(a, 0, w);
        let k = b.build();

        let mem = DeviceMemory::new(1 << 22);
        let stats = launch(
            &gtx(),
            &k,
            LaunchDims {
                grid: (256, 1),
                block: (256, 1, 1),
            },
            &[Value::from_u32(0)],
            &mem,
        )
        .unwrap();
        let hints = advise(&gtx(), &stats);
        assert!(!hints.is_empty());
        assert_eq!(hints[0].kind, HintKind::CoalesceGlobalAccesses);
    }

    #[test]
    fn clean_compute_kernel_gets_no_noise() {
        let mut b = KernelBuilder::new("clean");
        let p = b.param();
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let f = b.un(g80_isa::UnOp::CvtU2F, i);
        let acc0 = b.mov(Operand::imm_f(0.0));
        let acc1 = b.mov(Operand::imm_f(0.0));
        b.for_range(0u32, 128u32, 1, Unroll::Full, |b, _| {
            b.ffma_to(acc0, f, 1.5f32, acc0);
            b.ffma_to(acc1, f, 2.5f32, acc1);
        });
        let s = b.fadd(acc0, acc1);
        let byte = b.shl(i, 2u32);
        let a = b.iadd(byte, p);
        b.st_global(a, 0, s);
        let k = b.build();

        let mem = DeviceMemory::new(1 << 20);
        let stats = launch(
            &gtx(),
            &k,
            LaunchDims {
                grid: (96, 1),
                block: (256, 1, 1),
            },
            &[Value::from_u32(0)],
            &mem,
        )
        .unwrap();
        let hints = advise(&gtx(), &stats);
        // A near-roofline FMA kernel should trigger nothing.
        assert!(
            hints.is_empty(),
            "unexpected hints: {:?}",
            hints.iter().map(|h| h.kind).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bank_conflicts_are_flagged() {
        let mut b = KernelBuilder::new("conflicted");
        let p = b.param();
        let smem = b.shared_alloc(16 * 256);
        let tid = b.tid_x();
        let woff = b.imul(tid, 64u32); // stride-16 words: 16-way conflicts
        let sa = b.iadd(woff, smem);
        let acc = b.mov(Operand::imm_f(0.0));
        b.for_range(0u32, 64u32, 1, Unroll::None, |b, _| {
            let v = b.ld_shared(sa, 0);
            b.ffma_to(acc, v, 1.5f32, acc);
        });
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, p);
        b.st_global(a, 0, acc);
        let k = b.build();

        let mem = DeviceMemory::new(1 << 16);
        let stats = launch(
            &gtx(),
            &k,
            LaunchDims {
                grid: (16, 1),
                block: (256, 1, 1),
            },
            &[Value::from_u32(0)],
            &mem,
        )
        .unwrap();
        let hints = advise(&gtx(), &stats);
        assert!(hints.iter().any(|h| h.kind == HintKind::FixBankConflicts));
    }

    #[test]
    fn streaming_copy_suggests_nothing_impossible() {
        // A perfectly coalesced copy is honestly bandwidth-bound; the only
        // acceptable hints are reuse-oriented.
        let mut b = KernelBuilder::new("copy");
        let (s, d) = (b.param(), b.param());
        let tid = b.tid_x();
        let ntid = b.ntid_x();
        let cta = b.ctaid_x();
        let i = b.imad(cta, ntid, tid);
        let byte = b.shl(i, 2u32);
        let sa = b.iadd(byte, s);
        let da = b.iadd(byte, d);
        let v = b.ld_global(sa, 0);
        b.st_global(da, 0, v);
        let k = b.build();
        let mem = DeviceMemory::new(1 << 22);
        let stats = launch(
            &gtx(),
            &k,
            LaunchDims {
                grid: (512, 1),
                block: (256, 1, 1),
            },
            &[Value::from_u32(0), Value::from_u32(1 << 21)],
            &mem,
        )
        .unwrap();
        let hints = advise(&gtx(), &stats);
        for h in &hints {
            assert!(
                matches!(
                    h.kind,
                    HintKind::TileIntoSharedMemory | HintKind::UseConstantMemory
                ),
                "unexpected hint for clean copy: {:?}",
                h.kind
            );
        }
    }
}
