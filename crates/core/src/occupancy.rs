//! The occupancy calculator (optimization principles 1 and 2).
//!
//! "The number of thread blocks that are simultaneously resident on an SM is
//! limited by whichever limit of registers, shared memory, threads, or
//! thread blocks is reached first" (Section 3.2). This module computes each
//! limit separately and names the binding one — the tool a developer needs
//! when an "attempted optimization allows one fewer thread block to be
//! scheduled per SM, reducing performance" (Section 4.4).

use g80_sim::GpuConfig;

/// Which per-SM resource binds first.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LimitingResource {
    /// The 768-thread (24-warp) context limit.
    ThreadContexts,
    /// The 8192-entry register file.
    Registers,
    /// The 16 KB shared memory.
    SharedMemory,
    /// The 8-block scheduling limit.
    BlockSlots,
    /// The block doesn't fit at all.
    DoesNotFit,
}

/// Full occupancy breakdown for one kernel configuration.
#[derive(Clone, Debug)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
    /// warps / 24.
    pub occupancy: f64,
    /// The resource that limits `blocks_per_sm`.
    pub limiter: LimitingResource,
    /// Block limits by (threads, registers, smem, slots) for reporting.
    pub limit_by_threads: u32,
    pub limit_by_registers: u32,
    pub limit_by_smem: u32,
    pub limit_by_slots: u32,
}

/// Computes the occupancy of a kernel with the given per-thread registers,
/// per-block shared memory, and block size.
pub fn occupancy(
    cfg: &GpuConfig,
    regs_per_thread: u32,
    smem_per_block: u32,
    threads_per_block: u32,
) -> Occupancy {
    let zero = Occupancy {
        blocks_per_sm: 0,
        warps_per_sm: 0,
        threads_per_sm: 0,
        occupancy: 0.0,
        limiter: LimitingResource::DoesNotFit,
        limit_by_threads: 0,
        limit_by_registers: 0,
        limit_by_smem: 0,
        limit_by_slots: cfg.max_blocks_per_sm,
    };
    if threads_per_block == 0 || threads_per_block > cfg.max_threads_per_block {
        return zero;
    }
    // Thread contexts bind twice: raw threads and warp contexts (a partial
    // warp occupies a whole context).
    let warps_per_block = threads_per_block.div_ceil(cfg.warp_size);
    let by_threads =
        (cfg.max_threads_per_sm / threads_per_block).min(cfg.max_warps_per_sm() / warps_per_block);
    let by_regs = if regs_per_thread == 0 {
        u32::MAX
    } else {
        cfg.registers_per_sm / (regs_per_thread * threads_per_block)
    };
    let by_smem = cfg
        .smem_per_sm
        .checked_div(smem_per_block)
        .unwrap_or(u32::MAX);
    let by_slots = cfg.max_blocks_per_sm;

    let blocks = by_threads.min(by_regs).min(by_smem).min(by_slots);
    if blocks == 0 {
        let mut z = zero;
        z.limit_by_threads = by_threads;
        z.limit_by_registers = by_regs.min(99);
        z.limit_by_smem = by_smem.min(99);
        return z;
    }
    // Name the binding limit (ties resolved in the paper's discussion order:
    // threads, registers, shared memory, block slots).
    let limiter = if by_threads == blocks {
        LimitingResource::ThreadContexts
    } else if by_regs == blocks {
        LimitingResource::Registers
    } else if by_smem == blocks {
        LimitingResource::SharedMemory
    } else {
        LimitingResource::BlockSlots
    };
    let warps_per_block = threads_per_block.div_ceil(cfg.warp_size);
    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        threads_per_sm: blocks * threads_per_block,
        occupancy: warps as f64 / cfg.max_warps_per_sm() as f64,
        limiter,
        limit_by_threads: by_threads,
        limit_by_registers: by_regs.min(99),
        limit_by_smem: by_smem.min(99),
        limit_by_slots: by_slots,
    }
}

/// Convenience: occupancy of a built kernel at a block size.
pub fn kernel_occupancy(
    cfg: &GpuConfig,
    kernel: &g80_isa::Kernel,
    threads_per_block: u32,
) -> Occupancy {
    occupancy(
        cfg,
        kernel.regs_per_thread,
        kernel.smem_bytes,
        threads_per_block,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx() -> GpuConfig {
        GpuConfig::geforce_8800_gtx()
    }

    #[test]
    fn paper_matmul_occupancy_cliff() {
        // Section 4.2: 10 regs/thread, 256-thread blocks: 3 blocks, 768
        // threads, full occupancy, limited by thread contexts.
        let o10 = occupancy(&gtx(), 10, 2048, 256);
        assert_eq!(o10.blocks_per_sm, 3);
        assert_eq!(o10.threads_per_sm, 768);
        assert!((o10.occupancy - 1.0).abs() < 1e-9);
        assert_eq!(o10.limiter, LimitingResource::ThreadContexts);

        // 11 regs: the register file binds; 2 blocks.
        let o11 = occupancy(&gtx(), 11, 2048, 256);
        assert_eq!(o11.blocks_per_sm, 2);
        assert_eq!(o11.limiter, LimitingResource::Registers);
        assert!(o11.occupancy < o10.occupancy);
    }

    #[test]
    fn small_tiles_hit_block_slot_limit() {
        // 4x4 tiles = 16-thread blocks: 8-block slot limit binds
        // (Section 4.2: "coupled with the 8 thread block limit").
        let o = occupancy(&gtx(), 10, 128, 16);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, LimitingResource::BlockSlots);
        assert_eq!(o.threads_per_sm, 128);
        // 8 half-empty warps occupy 8 of 24 warp contexts…
        assert!((o.occupancy - 8.0 / 24.0).abs() < 1e-9);
        // …but only 128 of 768 thread contexts do useful work.
        assert!((o.threads_per_sm as f64) / 768.0 < 0.17);
    }

    #[test]
    fn smem_can_be_the_limiter() {
        let o = occupancy(&gtx(), 8, 6 * 1024, 128);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, LimitingResource::SharedMemory);
    }

    #[test]
    fn impossible_blocks_report_does_not_fit() {
        let o = occupancy(&gtx(), 64, 0, 256); // 64*256 = 16384 > 8192
        assert_eq!(o.blocks_per_sm, 0);
        assert_eq!(o.limiter, LimitingResource::DoesNotFit);
        let o = occupancy(&gtx(), 8, 0, 0);
        assert_eq!(o.limiter, LimitingResource::DoesNotFit);
        let o = occupancy(&gtx(), 8, 17 * 1024, 64);
        assert_eq!(o.limiter, LimitingResource::DoesNotFit);
    }

    #[test]
    fn agrees_with_simulator_scheduler() {
        // The occupancy calculator and the launch-time block scheduler must
        // never disagree.
        let cfg = gtx();
        for regs in [1u32, 5, 10, 11, 16, 32] {
            for smem in [0u32, 1024, 4096, 8192] {
                for tpb in [16u32, 64, 128, 256, 512] {
                    let a = occupancy(&cfg, regs, smem, tpb).blocks_per_sm;
                    let b = cfg.blocks_per_sm(regs, smem, tpb);
                    assert_eq!(a, b, "regs={regs} smem={smem} tpb={tpb}");
                }
            }
        }
    }

    #[test]
    fn warps_round_up_for_partial_warps() {
        // 48-thread blocks occupy 2 warp contexts each.
        let o = occupancy(&gtx(), 8, 0, 48);
        assert_eq!(o.warps_per_sm, o.blocks_per_sm * 2);
    }
}
