//! Canonical little-endian binary encoding shared by everything that
//! serializes simulator state: the persistent disk tier ([`crate::disk`]),
//! the serializable [`crate::LaunchReport`], and the `g80-serve` wire
//! protocol.
//!
//! The encoding rules are the disk tier's (PR 7), promoted to a shared
//! module so three serializers cannot drift apart:
//!
//! * all integers little-endian; `f64` as its IEEE bit pattern;
//! * strings length-prefixed (u64) UTF-8;
//! * HashMap-backed fields written sorted by their dense key index, so
//!   equal values serialize to equal bytes regardless of iteration order
//!   (canonical form — re-encoding a decoded value reproduces the input
//!   bytes exactly);
//! * decoding is strict: short input, an unknown enum tag, or non-UTF-8
//!   string bytes all return `None` rather than a best-effort value.
//!
//! [`encode_stats`]/[`decode_stats`] carry a full [`KernelStats`]
//! (including the `pub(crate)` machine-constant fields, which is why this
//! codec must live inside `g80-sim`). Any change to that encoding must
//! bump [`crate::disk`]'s `FORMAT_VERSION` *and* the serve protocol
//! version — both formats embed these bytes.

use crate::counters::{KernelStats, StallReason};
use g80_isa::InstClass;
use std::collections::HashMap;

/// Byte-appending encoder over a plain `Vec<u8>`.
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// A fresh encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Enc(Vec::with_capacity(cap))
    }
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    pub fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
}

/// Strict slice-consuming decoder; every accessor returns `None` on short
/// or malformed input and consumes nothing it did not validate.
pub struct Dec<'a>(pub &'a [u8]);

impl<'a> Dec<'a> {
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    pub fn i32(&mut self) -> Option<i32> {
        self.take(4)
            .map(|b| i32::from_le_bytes(b.try_into().unwrap()))
    }
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    pub fn str(&mut self) -> Option<String> {
        let len = self.u64()?;
        let bytes = self.take(usize::try_from(len).ok()?)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.0.len()
    }
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes` —
/// the checksum the `g80-serve` framed protocol appends to every frame
/// payload so a corrupted frame is detected before it reaches the strict
/// decoders above (which would otherwise report corruption as `Malformed`
/// only when a length field happens to go out of range). Table-driven,
/// no dependencies; the 1 KiB table is built on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

fn stall_from_u8(v: u8) -> Option<StallReason> {
    use StallReason::*;
    Some(match v {
        0 => Memory,
        1 => AluDependency,
        2 => Barrier,
        3 => IssueBusy,
        4 => Drain,
        _ => return None,
    })
}

/// Serializes a full [`KernelStats`] in the canonical field order. The
/// disk tier appends its sparse write-delta after these bytes; other
/// consumers embed them as-is.
pub fn encode_stats(e: &mut Enc, stats: &KernelStats) {
    e.str(&stats.name);
    e.u64(stats.cycles);
    e.f64(stats.elapsed);
    e.u64(stats.warp_instructions);
    e.u64(stats.thread_instructions);
    e.u64(stats.flops);
    e.u64(stats.global_ld_transactions);
    e.u64(stats.global_st_transactions);
    e.u64(stats.global_bytes);
    e.u64(stats.coalesced_half_warps);
    e.u64(stats.uncoalesced_half_warps);
    e.u64(stats.smem_conflict_extra_cycles);
    e.u64(stats.divergent_branches);
    e.u64(stats.tex_hits);
    e.u64(stats.tex_misses);
    e.u64(stats.const_hits);
    e.u64(stats.const_misses);
    e.u64(stats.atomic_transactions);
    e.u64(stats.blocks_executed);
    e.u32(stats.regs_per_thread);
    e.u32(stats.smem_per_block);
    e.u32(stats.threads_per_block);
    e.u32(stats.blocks_per_sm);
    e.u32(stats.max_simultaneous_threads);
    e.u64(stats.total_threads);
    e.f64(stats.clock_ghz);
    e.f64(stats.dram_bytes_per_cycle);
    e.u32(stats.num_sms);
    e.u32(stats.max_warps_per_sm);
    e.u32(stats.warp_size);
    let mut classes: Vec<(usize, u64)> = stats
        .by_class
        .iter()
        .map(|(k, v)| (k.index(), *v))
        .collect();
    classes.sort_unstable();
    e.u32(classes.len() as u32);
    for (k, v) in classes {
        e.u32(k as u32);
        e.u64(v);
    }
    let mut stalls: Vec<(u8, u64)> = stats
        .stall_cycles
        .iter()
        .map(|(k, v)| (*k as u8, *v))
        .collect();
    stalls.sort_unstable();
    e.u32(stalls.len() as u32);
    for (k, v) in stalls {
        e.u32(k as u32);
        e.u64(v);
    }
}

/// Decodes a [`KernelStats`] written by [`encode_stats`], leaving any
/// trailing bytes (a disk delta, the rest of a protocol frame) in `d`.
pub fn decode_stats(d: &mut Dec) -> Option<KernelStats> {
    let mut stats = KernelStats {
        name: d.str()?,
        cycles: d.u64()?,
        elapsed: d.f64()?,
        warp_instructions: d.u64()?,
        thread_instructions: d.u64()?,
        flops: d.u64()?,
        by_class: HashMap::new(),
        global_ld_transactions: d.u64()?,
        global_st_transactions: d.u64()?,
        global_bytes: d.u64()?,
        coalesced_half_warps: d.u64()?,
        uncoalesced_half_warps: d.u64()?,
        smem_conflict_extra_cycles: d.u64()?,
        divergent_branches: d.u64()?,
        tex_hits: d.u64()?,
        tex_misses: d.u64()?,
        const_hits: d.u64()?,
        const_misses: d.u64()?,
        atomic_transactions: d.u64()?,
        stall_cycles: HashMap::new(),
        blocks_executed: d.u64()?,
        regs_per_thread: d.u32()?,
        smem_per_block: d.u32()?,
        threads_per_block: d.u32()?,
        blocks_per_sm: d.u32()?,
        max_simultaneous_threads: d.u32()?,
        total_threads: d.u64()?,
        clock_ghz: d.f64()?,
        dram_bytes_per_cycle: d.f64()?,
        num_sms: d.u32()?,
        max_warps_per_sm: d.u32()?,
        warp_size: d.u32()?,
    };
    let n_classes = d.u32()?;
    for _ in 0..n_classes {
        let idx = d.u32()?;
        let v = d.u64()?;
        let class = *InstClass::ALL.get(idx as usize)?;
        stats.by_class.insert(class, v);
    }
    let n_stalls = d.u32()?;
    for _ in 0..n_stalls {
        let idx = d.u32()?;
        let v = d.u64()?;
        let reason = stall_from_u8(u8::try_from(idx).ok()?)?;
        stats.stall_cycles.insert(reason, v);
    }
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::counters::SmStats;

    fn sample_stats() -> KernelStats {
        let cfg = GpuConfig::geforce_8800_gtx();
        let mut sm = SmStats {
            cycles: 4242,
            warp_instructions: 17,
            thread_instructions: 544,
            flops: 12,
            global_bytes: 1024,
            ..Default::default()
        };
        sm.by_class.insert(InstClass::Fma, 3);
        sm.by_class.insert(InstClass::LdGlobal, 2);
        sm.stall_cycles.insert(StallReason::Memory, 9);
        KernelStats::merge("wire", &cfg, vec![sm], 12, 512, 64, 2, 4)
    }

    #[test]
    fn stats_roundtrip_is_canonical() {
        let stats = sample_stats();
        let mut e = Enc::with_capacity(512);
        encode_stats(&mut e, &stats);
        let mut d = Dec(&e.0);
        let back = decode_stats(&mut d).expect("roundtrip");
        assert!(d.is_empty());
        assert_eq!(stats.name, back.name);
        assert_eq!(stats.cycles, back.cycles);
        assert_eq!(stats.by_class, back.by_class);
        assert_eq!(stats.stall_cycles, back.stall_cycles);
        assert_eq!(stats.clock_ghz.to_bits(), back.clock_ghz.to_bits());
        let mut e2 = Enc::with_capacity(512);
        encode_stats(&mut e2, &back);
        assert_eq!(e.0, e2.0, "re-encoding must reproduce the same bytes");
    }

    #[test]
    fn truncated_stats_decode_to_none() {
        let stats = sample_stats();
        let mut e = Enc::with_capacity(512);
        encode_stats(&mut e, &stats);
        for cut in [0, 1, 8, e.0.len() / 2, e.0.len() - 1] {
            assert!(
                decode_stats(&mut Dec(&e.0[..cut])).is_none(),
                "decode must reject a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        // Single-bit sensitivity: flipping any one bit changes the sum.
        let base = crc32(b"g80-serve frame");
        let mut buf = b"g80-serve frame".to_vec();
        buf[3] ^= 0x01;
        assert_ne!(crc32(&buf), base);
    }

    #[test]
    fn scalar_roundtrips() {
        let mut e = Enc::with_capacity(64);
        e.u8(0xab);
        e.u16(0xbeef);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 1);
        e.i32(-12345);
        e.f64(-0.5);
        e.str("tenant-π");
        let mut d = Dec(&e.0);
        assert_eq!(d.u8(), Some(0xab));
        assert_eq!(d.u16(), Some(0xbeef));
        assert_eq!(d.u32(), Some(0xdead_beef));
        assert_eq!(d.u64(), Some(u64::MAX - 1));
        assert_eq!(d.i32(), Some(-12345));
        assert_eq!(d.f64(), Some(-0.5));
        assert_eq!(d.str().as_deref(), Some("tenant-π"));
        assert!(d.is_empty());
        assert_eq!(d.u8(), None);
    }
}
