//! The **reference** timing engine: a frozen copy of the original
//! instruction-at-a-time scheduler, kept as the executable specification for
//! the predecoded engine in [`crate::sm`].
//!
//! This module is intentionally unoptimized: it rebuilds the warp schedule
//! every scheduler iteration, re-walks instruction operands on every
//! readiness check, allocates coalescing scratch per memory access, and
//! allocates fresh register files per block. The `golden_stats` integration
//! test (workspace root) runs kernels through both engines and asserts
//! field-for-field identical [`crate::KernelStats`]; any timing divergence in
//! the optimized engine fails against this spec. Select it at runtime with
//! [`crate::launch::set_engine`]`(Engine::Reference)`.
//!
//! Do not edit this engine except to fix a modeling bug — and then change
//! both engines in lockstep.
#![allow(clippy::too_many_arguments)] // load/store helpers mirror the instruction fields

use crate::config::GpuConfig;
use crate::counters::{SmStats, StallReason};
use crate::memory::{coalesce_half_warp, smem_conflict_degree, DeviceMemory, TagCache};
use crate::sm::LaunchDims;
use crate::warp::{RegSource, Warp};
use g80_isa::exec;
use g80_isa::inst::{AluOp, Inst, Operand, Space};
use g80_isa::{Kernel, Value};

struct Resident {
    warps: Vec<Warp>,
    smem: Vec<Value>,
}

impl Resident {
    fn new(cfg_regs: u32, kernel: &Kernel, dims: &LaunchDims, ctaid: (u32, u32)) -> Self {
        let warps_per_block = dims.threads_per_block().div_ceil(32);
        // The register *file* must cover every register the code names even
        // when the reported count was forced lower for an occupancy
        // ablation (Kernel::with_forced_regs): the report drives
        // scheduling, the code drives storage.
        let file_regs = cfg_regs.max(g80_isa::liveness::num_regs(&kernel.code) as u32);
        let warps = (0..warps_per_block)
            .map(|w| Warp::new(w, file_regs, dims.block, ctaid, dims.grid))
            .collect();
        Resident {
            warps,
            smem: vec![Value::ZERO; (kernel.smem_bytes as usize).div_ceil(4)],
        }
    }

    fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.done)
    }
}

/// Simulates one SM over its assigned blocks with the reference engine.
/// Deterministic.
pub fn run_sm_reference(
    cfg: &GpuConfig,
    kernel: &Kernel,
    dims: &LaunchDims,
    params: &[Value],
    mem: &DeviceMemory,
    my_blocks: &[(u32, u32)],
    blocks_per_sm: u32,
) -> SmStats {
    // Same site as the predecoded engine: one probe per SM invocation.
    crate::fault::poll(crate::fault::Site::SmStep);
    let watchdog = crate::fault::watchdog_cycles();

    let mut stats = SmStats::default();
    let mut queue = my_blocks.iter().copied();
    let mut resident: Vec<Resident> = Vec::new();
    for _ in 0..blocks_per_sm {
        if let Some(ctaid) = queue.next() {
            resident.push(Resident::new(kernel.regs_per_thread, kernel, dims, ctaid));
        }
    }

    let mut cycle: u64 = 0;
    let mut chan_free: u64 = 0;
    let mut const_cache = TagCache::new(cfg.const_cache_bytes, 64);
    let mut tex_cache = TagCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes);
    let mut rr: usize = 0;

    loop {
        if cycle >= watchdog {
            stats.cycles = cycle;
            crate::fault::watchdog_abort(&kernel.name, watchdog, cycle, stats.warp_instructions);
        }
        // Retire completed blocks, refill from the queue.
        let mut i = 0;
        while i < resident.len() {
            if resident[i].all_done() {
                stats.blocks_executed += 1;
                match queue.next() {
                    Some(ctaid) => {
                        resident[i] = Resident::new(kernel.regs_per_thread, kernel, dims, ctaid);
                        i += 1;
                    }
                    None => {
                        resident.remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
        if resident.is_empty() {
            break;
        }

        // Flatten the warp schedule.
        let order: Vec<(usize, usize)> = resident
            .iter()
            .enumerate()
            .flat_map(|(bi, r)| (0..r.warps.len()).map(move |wi| (bi, wi)))
            .collect();
        let n = order.len();

        // Scan for a ready warp, remembering the earliest future candidate.
        let mut issued = false;
        let mut best_next: u64 = u64::MAX;
        let mut best_reason = StallReason::Drain;
        for k in 0..n {
            let (bi, wi) = order[(rr + k) % n];
            let block = &mut resident[bi];
            let warp = &mut block.warps[wi];
            if warp.done || warp.at_barrier {
                continue;
            }
            if !warp.settle() {
                continue; // retired just now
            }
            let pc = warp.pc() as usize;
            let inst = &kernel.code[pc];
            let (reg_ready, gate) = inst_ready(warp, inst);
            // A post-barrier pipeline drain dominates register readiness:
            // attribute that wait to the barrier, not the ALU/memory.
            let barrier_gated = warp.resume_at > reg_ready;
            let ready_at = reg_ready.max(warp.resume_at);
            if ready_at <= cycle {
                let mut ctx = ExecCtx {
                    cfg,
                    kernel,
                    params,
                    mem,
                    stats: &mut stats,
                    chan_free: &mut chan_free,
                    const_cache: &mut const_cache,
                    tex_cache: &mut tex_cache,
                    cycle,
                };
                let dur = ctx.execute(block, wi);
                cycle += dur;
                rr = (rr + k + 1) % n;
                issued = true;

                // Barrier release: if every live warp of the block is now
                // parked, free them all. This must be checked both when a
                // warp parks AND when a warp exits — an exiting warp can be
                // the last one its parked siblings were waiting for.
                let block = &mut resident[bi];
                if block.warps[wi].at_barrier || block.warps[wi].done {
                    let any_parked = block.warps.iter().any(|w| w.at_barrier);
                    let all_parked = block.warps.iter().all(|w| w.done || w.at_barrier);
                    if any_parked && all_parked {
                        let resume = cycle + cfg.barrier_latency;
                        for w in block.warps.iter_mut() {
                            w.at_barrier = false;
                            w.resume_at = resume;
                        }
                    }
                }
                break;
            } else {
                let reason = if barrier_gated {
                    StallReason::Barrier
                } else {
                    match gate {
                        Some(RegSource::Memory) => StallReason::Memory,
                        Some(RegSource::Alu) => StallReason::AluDependency,
                        // Defensive: gate is None only when no register is
                        // pending, and then the wait is a barrier drain
                        // (handled above) — this arm is unreachable today.
                        None => StallReason::IssueBusy,
                    }
                };
                if ready_at < best_next {
                    best_next = ready_at;
                    best_reason = reason;
                }
            }
        }

        if issued {
            continue;
        }

        if best_next == u64::MAX {
            // Every live warp is parked at a barrier but the block never
            // filled — or warps retired during the scan; re-run the retire
            // loop. A genuine deadlock (divergent barrier) is a kernel bug.
            let any_live = resident
                .iter()
                .any(|b| b.warps.iter().any(|w| !w.done && !w.at_barrier));
            let all_done = resident.iter().all(|b| b.all_done());
            if !any_live && !all_done {
                panic!(
                    "kernel {}: deadlock — all warps parked at a barrier",
                    kernel.name
                );
            }
            continue;
        }

        // Nothing ready: event-skip to the earliest candidate.
        let skip = best_next.saturating_sub(cycle).max(1);
        stats.stall(best_reason, skip);
        cycle += skip;
    }

    stats.cycles = cycle;
    stats
}

/// (earliest cycle at which the instruction's registers are ready, the
/// source kind of the gating register).
fn inst_ready(warp: &Warp, inst: &Inst) -> (u64, Option<RegSource>) {
    // Allocation-free: this runs on every readiness check of the scheduler's
    // inner scan, the hottest path in the simulator.
    let mut t = 0u64;
    let mut gate = None;
    let mut consider = |r: u32| {
        let ready = warp.reg_ready[r as usize];
        if ready > t {
            t = ready;
            gate = Some(warp.reg_source[r as usize]);
        }
    };
    // (for_each_use covers branch predicates too)
    inst.for_each_use(|op| {
        if let g80_isa::Operand::Reg(r) = op {
            consider(r.0);
        }
    });
    if let Some(d) = inst.def() {
        consider(d.0); // WAW hazard
    }
    (t, gate)
}

struct ExecCtx<'a> {
    cfg: &'a GpuConfig,
    kernel: &'a Kernel,
    params: &'a [Value],
    mem: &'a DeviceMemory,
    stats: &'a mut SmStats,
    chan_free: &'a mut u64,
    const_cache: &'a mut TagCache,
    tex_cache: &'a mut TagCache,
    cycle: u64,
}

/// Builds the two half-warp address arrays for the active lanes.
fn half_warp_addrs(
    warp: &Warp,
    addr_op: Operand,
    off: i32,
    params: &[Value],
) -> ([Option<u32>; 16], [Option<u32>; 16]) {
    let mut lo = [None; 16];
    let mut hi = [None; 16];
    for lane in warp.active_lanes() {
        let a = warp
            .operand(addr_op, lane, params)
            .as_u32()
            .wrapping_add(off as u32);
        if lane < 16 {
            lo[lane] = Some(a);
        } else {
            hi[lane - 16] = Some(a);
        }
    }
    (lo, hi)
}

impl<'a> ExecCtx<'a> {
    /// Issues a global-memory request of `bytes` through this SM's channel
    /// slice; returns the completion cycle.
    fn memory_request(&mut self, bytes: u64) -> u64 {
        let bpc = self.cfg.dram_bytes_per_cycle_per_sm();
        let start = self.cycle.max(*self.chan_free);
        let service = (bytes as f64 / bpc).ceil() as u64;
        *self.chan_free = start + service;
        start + self.cfg.global_latency
    }

    /// Executes the next instruction of warp `wi` in `block`. Returns the
    /// issue-port occupancy in cycles.
    fn execute(&mut self, block: &mut Resident, wi: usize) -> u64 {
        let cfg = self.cfg;
        let smem_len = block.smem.len();
        let warp = &mut block.warps[wi];
        let pc = warp.pc() as usize;
        let inst = self.kernel.code[pc];
        let mask = warp.active_mask();
        let lanes = mask.count_ones();
        self.stats.count_inst(inst.class(), lanes, inst.flops());

        let alu_done = self.cycle + cfg.alu_latency;
        match inst {
            Inst::Alu { op, dst, a, b } => {
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let av = warp.operand(a, lane, self.params);
                        let bv = warp.operand(b, lane, self.params);
                        warp.set_reg(dst.0, lane, exec::eval_alu(op, av, bv));
                    }
                }
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                if matches!(op, AluOp::IMul) {
                    cfg.imul_issue_cycles
                } else {
                    cfg.issue_cycles
                }
            }
            Inst::Ffma { dst, a, b, c } => {
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let av = warp.operand(a, lane, self.params);
                        let bv = warp.operand(b, lane, self.params);
                        let cv = warp.operand(c, lane, self.params);
                        warp.set_reg(dst.0, lane, exec::eval_ffma(av, bv, cv));
                    }
                }
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Imad { dst, a, b, c } => {
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let av = warp.operand(a, lane, self.params);
                        let bv = warp.operand(b, lane, self.params);
                        let cv = warp.operand(c, lane, self.params);
                        warp.set_reg(dst.0, lane, exec::eval_imad(av, bv, cv));
                    }
                }
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.imul_issue_cycles
            }
            Inst::Un { op, dst, a } => {
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let av = warp.operand(a, lane, self.params);
                        warp.set_reg(dst.0, lane, exec::eval_un(op, av));
                    }
                }
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Sfu { op, dst, a } => {
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let av = warp.operand(a, lane, self.params);
                        warp.set_reg(dst.0, lane, exec::eval_sfu(op, av));
                    }
                }
                warp.reg_ready[dst.0 as usize] = self.cycle + cfg.sfu_latency;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.sfu_issue_cycles
            }
            Inst::SetP { op, ty, dst, a, b } => {
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let av = warp.operand(a, lane, self.params);
                        let bv = warp.operand(b, lane, self.params);
                        warp.set_reg(dst.0, lane, exec::eval_cmp(op, ty, av, bv));
                    }
                }
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Sel { dst, c, a, b } => {
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let cv = warp.operand(c, lane, self.params);
                        let v = if cv.as_bool() {
                            warp.operand(a, lane, self.params)
                        } else {
                            warp.operand(b, lane, self.params)
                        };
                        warp.set_reg(dst.0, lane, v);
                    }
                }
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Ld {
                space,
                dst,
                addr,
                off,
            } => {
                let dur = self.do_load(block, wi, space, dst.0, addr, off, smem_len);
                block.warps[wi].advance();
                dur
            }
            Inst::St {
                space,
                addr,
                off,
                src,
            } => {
                let dur = self.do_store(block, wi, space, addr, off, src, smem_len);
                block.warps[wi].advance();
                dur
            }
            Inst::Atom {
                op,
                space,
                dst,
                addr,
                off,
                src,
            } => {
                let (warps, smem) = (&mut block.warps, &mut block.smem);
                let warp = &mut warps[wi];
                let completion;
                match space {
                    Space::Global => {
                        let mut bytes = 0u64;
                        for lane in 0..32 {
                            if mask >> lane & 1 == 1 {
                                let a = warp
                                    .operand(addr, lane, self.params)
                                    .as_u32()
                                    .wrapping_add(off as u32);
                                let s = warp.operand(src, lane, self.params);
                                let old = self.mem.atomic(op, a, s);
                                if let Some(d) = dst {
                                    warp.set_reg(d.0, lane, old);
                                }
                                bytes += cfg.uncoalesced_txn_bytes as u64;
                                self.stats.atomic_transactions += 1;
                            }
                        }
                        self.stats.global_bytes += bytes;
                        completion = self.memory_request(bytes);
                    }
                    Space::Shared => {
                        for lane in 0..32 {
                            if mask >> lane & 1 == 1 {
                                let a = warp
                                    .operand(addr, lane, self.params)
                                    .as_u32()
                                    .wrapping_add(off as u32);
                                let idx = (a / 4) as usize;
                                assert!(idx < smem_len, "shared atomic out of bounds");
                                let s = warp.operand(src, lane, self.params);
                                let (new, old) = exec::eval_atom(op, smem[idx], s);
                                smem[idx] = new;
                                if let Some(d) = dst {
                                    warp.set_reg(d.0, lane, old);
                                }
                                self.stats.atomic_transactions += 1;
                            }
                        }
                        completion = self.cycle + cfg.smem_latency;
                    }
                    _ => panic!("atomics only on global/shared memory"),
                }
                if let Some(d) = dst {
                    warp.reg_ready[d.0 as usize] = completion;
                    warp.reg_source[d.0 as usize] = RegSource::Memory;
                }
                warp.advance();
                // Atomics serialize per distinct address; charge per lane.
                cfg.issue_cycles + 2 * (lanes.saturating_sub(1)) as u64
            }
            Inst::Bra {
                target,
                reconv,
                pred,
            } => {
                let warp = &mut block.warps[wi];
                let next_pc = pc as u32 + 1;
                match pred {
                    None => {
                        let m = warp.active_mask();
                        warp.take_branch(m, target.0, reconv.0, next_pc);
                    }
                    Some(p) => {
                        let mut taken = 0u32;
                        for lane in 0..32 {
                            if mask >> lane & 1 == 1 {
                                let v = warp.reg(p.reg.0, lane).as_bool();
                                if v != p.negate {
                                    taken |= 1 << lane;
                                }
                            }
                        }
                        if warp.take_branch(taken, target.0, reconv.0, next_pc) {
                            self.stats.divergent_branches += 1;
                        }
                    }
                }
                cfg.issue_cycles
            }
            Inst::Bar => {
                let warp = &mut block.warps[wi];
                // Converged means a single divergence frame: lanes that
                // exited earlier are excluded from every frame, so comparing
                // against init_mask would wrongly reject legal barriers after
                // partial-warp exits.
                assert_eq!(
                    warp.frames.len(),
                    1,
                    "kernel {}: __syncthreads() in divergent control flow",
                    self.kernel.name
                );
                warp.advance();
                warp.at_barrier = true;
                cfg.issue_cycles
            }
            Inst::Exit => {
                let warp = &mut block.warps[wi];
                let m = warp.active_mask();
                warp.exit_lanes(m);
                warp.settle();
                cfg.issue_cycles
            }
        }
    }

    fn do_load(
        &mut self,
        block: &mut Resident,
        wi: usize,
        space: Space,
        dst: u32,
        addr: Operand,
        off: i32,
        smem_len: usize,
    ) -> u64 {
        let cfg = self.cfg;
        let (warps, smem) = (&mut block.warps, &block.smem);
        let warp = &mut warps[wi];
        let mask = warp.active_mask();
        match space {
            Space::Global => {
                let (lo, hi) = half_warp_addrs(warp, addr, off, self.params);
                let mut bytes = 0u64;
                for half in [&lo, &hi] {
                    let acc = coalesce_half_warp(cfg, half);
                    if acc.transactions > 0 {
                        if acc.coalesced {
                            self.stats.coalesced_half_warps += 1;
                        } else {
                            self.stats.uncoalesced_half_warps += 1;
                        }
                        self.stats.global_ld_transactions += acc.transactions as u64;
                        bytes += acc.bytes;
                    }
                }
                self.stats.global_bytes += bytes;
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        let v = self.mem.read(a);
                        warp.set_reg(dst, lane, v);
                    }
                }
                let done = self.memory_request(bytes);
                warp.reg_ready[dst as usize] = done;
                warp.reg_source[dst as usize] = RegSource::Memory;
                cfg.issue_cycles
            }
            Space::Shared => {
                let (lo, hi) = half_warp_addrs(warp, addr, off, self.params);
                let degree = smem_conflict_degree(cfg, &lo).max(smem_conflict_degree(cfg, &hi));
                let extra = cfg.issue_cycles * (degree as u64 - 1);
                self.stats.smem_conflict_extra_cycles += extra;
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        let idx = (a / 4) as usize;
                        assert!(
                            idx < smem_len,
                            "kernel {}: shared load out of bounds ({} >= {})",
                            self.kernel.name,
                            idx,
                            smem_len
                        );
                        let v = smem[idx];
                        warp.set_reg(dst, lane, v);
                    }
                }
                warp.reg_ready[dst as usize] = self.cycle + cfg.smem_latency + extra;
                warp.reg_source[dst as usize] = RegSource::Alu;
                cfg.issue_cycles + extra
            }
            Space::Const => {
                // Distinct addresses within the warp serialize; each line
                // goes through the per-SM constant cache. A broadcast (one
                // address) is as fast as a register read.
                let mut distinct: Vec<u32> = Vec::new();
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        if !distinct.contains(&a) {
                            distinct.push(a);
                        }
                        let v = self.mem.read_const(a);
                        warp.set_reg(dst, lane, v);
                    }
                }
                let mut miss_bytes = 0u64;
                for &a in &distinct {
                    if self.const_cache.access(a) {
                        self.stats.const_hits += 1;
                    } else {
                        self.stats.const_misses += 1;
                        miss_bytes += 64;
                    }
                }
                let ready = if miss_bytes > 0 {
                    self.stats.global_bytes += miss_bytes;
                    self.memory_request(miss_bytes)
                } else {
                    self.cycle + cfg.const_hit_latency
                };
                warp.reg_ready[dst as usize] = ready;
                warp.reg_source[dst as usize] = if miss_bytes > 0 {
                    RegSource::Memory
                } else {
                    RegSource::Alu
                };
                // Serialization beyond the broadcast case.
                let ser = (distinct.len().max(1) as u64 - 1) * 2;
                cfg.issue_cycles + ser
            }
            Space::Tex => {
                let mut lines: Vec<u32> = Vec::new();
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        let g = self.mem.tex_to_global(a);
                        let line = g / cfg.tex_line_bytes;
                        if !lines.contains(&line) {
                            lines.push(line);
                        }
                        let v = self.mem.read(g);
                        warp.set_reg(dst, lane, v);
                    }
                }
                let mut miss_bytes = 0u64;
                for &line in &lines {
                    if self.tex_cache.access(line * cfg.tex_line_bytes) {
                        self.stats.tex_hits += 1;
                    } else {
                        self.stats.tex_misses += 1;
                        miss_bytes += cfg.tex_line_bytes as u64;
                    }
                }
                let ready = if miss_bytes > 0 {
                    self.stats.global_bytes += miss_bytes;
                    self.stats.global_ld_transactions +=
                        (miss_bytes / cfg.tex_line_bytes as u64).max(1);
                    self.memory_request(miss_bytes)
                } else {
                    self.cycle + cfg.tex_hit_latency
                };
                warp.reg_ready[dst as usize] = ready;
                warp.reg_source[dst as usize] = RegSource::Memory;
                cfg.issue_cycles
            }
            Space::Local => {
                let mut bytes = 0u64;
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        let v = warp.local_read(lane, a);
                        warp.set_reg(dst, lane, v);
                        bytes += cfg.uncoalesced_txn_bytes as u64;
                    }
                }
                self.stats.global_bytes += bytes;
                self.stats.global_ld_transactions += mask.count_ones() as u64;
                let done = self.memory_request(bytes);
                warp.reg_ready[dst as usize] = done;
                warp.reg_source[dst as usize] = RegSource::Memory;
                cfg.issue_cycles
            }
        }
    }

    fn do_store(
        &mut self,
        block: &mut Resident,
        wi: usize,
        space: Space,
        addr: Operand,
        off: i32,
        src: Operand,
        smem_len: usize,
    ) -> u64 {
        let cfg = self.cfg;
        let warp = &mut block.warps[wi];
        let mask = warp.active_mask();
        match space {
            Space::Global => {
                let (lo, hi) = half_warp_addrs(warp, addr, off, self.params);
                let mut bytes = 0u64;
                for half in [&lo, &hi] {
                    let acc = coalesce_half_warp(cfg, half);
                    if acc.transactions > 0 {
                        if acc.coalesced {
                            self.stats.coalesced_half_warps += 1;
                        } else {
                            self.stats.uncoalesced_half_warps += 1;
                        }
                        self.stats.global_st_transactions += acc.transactions as u64;
                        bytes += acc.bytes;
                    }
                }
                self.stats.global_bytes += bytes;
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        let v = warp.operand(src, lane, self.params);
                        self.mem.write(a, v);
                    }
                }
                let _ = self.memory_request(bytes); // bandwidth only
                cfg.issue_cycles
            }
            Space::Shared => {
                let (lo, hi) = half_warp_addrs(warp, addr, off, self.params);
                let degree = smem_conflict_degree(cfg, &lo).max(smem_conflict_degree(cfg, &hi));
                let extra = cfg.issue_cycles * (degree as u64 - 1);
                self.stats.smem_conflict_extra_cycles += extra;
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let warp = &block.warps[wi];
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        let v = warp.operand(src, lane, self.params);
                        let idx = (a / 4) as usize;
                        assert!(
                            idx < smem_len,
                            "kernel {}: shared store out of bounds ({} >= {})",
                            self.kernel.name,
                            idx,
                            smem_len
                        );
                        block.smem[idx] = v;
                    }
                }
                cfg.issue_cycles + extra
            }
            Space::Local => {
                let mut bytes = 0u64;
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let a = warp
                            .operand(addr, lane, self.params)
                            .as_u32()
                            .wrapping_add(off as u32);
                        let v = warp.operand(src, lane, self.params);
                        warp.local_write(lane, a, v);
                        bytes += cfg.uncoalesced_txn_bytes as u64;
                    }
                }
                self.stats.global_bytes += bytes;
                self.stats.global_st_transactions += mask.count_ones() as u64;
                let _ = self.memory_request(bytes);
                cfg.issue_cycles
            }
            Space::Const | Space::Tex => panic!("stores to read-only memory space"),
        }
    }
}
