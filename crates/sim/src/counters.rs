//! Performance counters collected during a kernel launch.

use crate::config::GpuConfig;
use g80_isa::InstClass;
use std::collections::HashMap;

/// Why the issue unit of an SM was idle.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum StallReason {
    /// All warps waiting on global/local/texture memory results.
    Memory,
    /// All warps waiting on arithmetic pipeline results.
    AluDependency,
    /// All warps parked at a barrier.
    Barrier,
    /// Warps exist but their issue slots are busy (multi-cycle instructions).
    IssueBusy,
    /// No resident work (tail of the grid).
    Drain,
}

/// Counters for one SM; merged into [`KernelStats`] after the launch.
#[derive(Clone, Debug, Default)]
pub struct SmStats {
    pub cycles: u64,
    pub warp_instructions: u64,
    pub thread_instructions: u64,
    pub flops: u64,
    pub by_class: HashMap<InstClass, u64>,
    pub global_ld_transactions: u64,
    pub global_st_transactions: u64,
    pub global_bytes: u64,
    pub coalesced_half_warps: u64,
    pub uncoalesced_half_warps: u64,
    pub smem_conflict_extra_cycles: u64,
    pub divergent_branches: u64,
    pub tex_hits: u64,
    pub tex_misses: u64,
    pub const_hits: u64,
    pub const_misses: u64,
    pub atomic_transactions: u64,
    pub stall_cycles: HashMap<StallReason, u64>,
    pub blocks_executed: u64,
}

impl SmStats {
    pub(crate) fn count_inst(&mut self, class: InstClass, active_lanes: u32, flops: u32) {
        self.warp_instructions += 1;
        self.thread_instructions += active_lanes as u64;
        self.flops += flops as u64 * active_lanes as u64;
        *self.by_class.entry(class).or_insert(0) += 1;
    }

    pub(crate) fn stall(&mut self, reason: StallReason, cycles: u64) {
        *self.stall_cycles.entry(reason).or_insert(0) += cycles;
    }

    /// Counter increments since `base` (a clone of this struct taken
    /// earlier). Used by block-class dedup: the delta of one steady-state
    /// period is what a fast-forwarded period contributes. `cycles` is
    /// excluded — the scheduler maintains it separately mid-run.
    pub(crate) fn delta_since(&self, base: &SmStats) -> SmStats {
        let mut d = SmStats {
            warp_instructions: self.warp_instructions - base.warp_instructions,
            thread_instructions: self.thread_instructions - base.thread_instructions,
            flops: self.flops - base.flops,
            global_ld_transactions: self.global_ld_transactions - base.global_ld_transactions,
            global_st_transactions: self.global_st_transactions - base.global_st_transactions,
            global_bytes: self.global_bytes - base.global_bytes,
            coalesced_half_warps: self.coalesced_half_warps - base.coalesced_half_warps,
            uncoalesced_half_warps: self.uncoalesced_half_warps - base.uncoalesced_half_warps,
            smem_conflict_extra_cycles: self.smem_conflict_extra_cycles
                - base.smem_conflict_extra_cycles,
            divergent_branches: self.divergent_branches - base.divergent_branches,
            tex_hits: self.tex_hits - base.tex_hits,
            tex_misses: self.tex_misses - base.tex_misses,
            const_hits: self.const_hits - base.const_hits,
            const_misses: self.const_misses - base.const_misses,
            atomic_transactions: self.atomic_transactions - base.atomic_transactions,
            blocks_executed: self.blocks_executed - base.blocks_executed,
            ..Default::default()
        };
        for (k, v) in &self.by_class {
            let inc = v - base.by_class.get(k).copied().unwrap_or(0);
            if inc > 0 {
                d.by_class.insert(*k, inc);
            }
        }
        for (k, v) in &self.stall_cycles {
            let inc = v - base.stall_cycles.get(k).copied().unwrap_or(0);
            if inc > 0 {
                d.stall_cycles.insert(*k, inc);
            }
        }
        d
    }

    /// Adds a period delta produced by [`SmStats::delta_since`].
    pub(crate) fn add_delta(&mut self, d: &SmStats) {
        self.warp_instructions += d.warp_instructions;
        self.thread_instructions += d.thread_instructions;
        self.flops += d.flops;
        self.global_ld_transactions += d.global_ld_transactions;
        self.global_st_transactions += d.global_st_transactions;
        self.global_bytes += d.global_bytes;
        self.coalesced_half_warps += d.coalesced_half_warps;
        self.uncoalesced_half_warps += d.uncoalesced_half_warps;
        self.smem_conflict_extra_cycles += d.smem_conflict_extra_cycles;
        self.divergent_branches += d.divergent_branches;
        self.tex_hits += d.tex_hits;
        self.tex_misses += d.tex_misses;
        self.const_hits += d.const_hits;
        self.const_misses += d.const_misses;
        self.atomic_transactions += d.atomic_transactions;
        self.blocks_executed += d.blocks_executed;
        for (k, v) in &d.by_class {
            *self.by_class.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &d.stall_cycles {
            *self.stall_cycles.entry(*k).or_insert(0) += v;
        }
    }
}

/// Aggregated result of a kernel launch.
#[derive(Clone, Debug)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Elapsed cycles (max over SMs — the kernel finishes when its slowest
    /// SM drains).
    pub cycles: u64,
    /// Elapsed wall-clock seconds on the simulated machine.
    pub elapsed: f64,
    /// Dynamic warp instructions issued, summed over SMs.
    pub warp_instructions: u64,
    /// Dynamic thread instructions (warp instructions × active lanes).
    pub thread_instructions: u64,
    /// Floating-point operations executed (FMA = 2).
    pub flops: u64,
    /// Dynamic warp-instruction counts by class.
    pub by_class: HashMap<InstClass, u64>,
    /// Global memory read transactions.
    pub global_ld_transactions: u64,
    /// Global memory write transactions.
    pub global_st_transactions: u64,
    /// Bytes moved to/from DRAM.
    pub global_bytes: u64,
    /// Half-warp global accesses that met the coalescing rules.
    pub coalesced_half_warps: u64,
    /// Half-warp global accesses that did not.
    pub uncoalesced_half_warps: u64,
    /// Extra issue cycles serialized by shared-memory bank conflicts.
    pub smem_conflict_extra_cycles: u64,
    /// Warp branches where the warp split.
    pub divergent_branches: u64,
    /// Texture cache hits / misses.
    pub tex_hits: u64,
    pub tex_misses: u64,
    /// Constant cache hits / misses.
    pub const_hits: u64,
    pub const_misses: u64,
    /// Atomic transactions to memory.
    pub atomic_transactions: u64,
    /// Idle issue cycles by reason, summed over SMs.
    pub stall_cycles: HashMap<StallReason, u64>,
    /// Thread blocks executed.
    pub blocks_executed: u64,

    // ---- static/launch-derived ----
    /// Registers per thread of the launched kernel.
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes.
    pub smem_per_block: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Blocks resident per SM under the occupancy limits.
    pub blocks_per_sm: u32,
    /// Maximum simultaneously active threads across the chip (Table 3
    /// column: min(grid size, capacity)).
    pub max_simultaneous_threads: u32,
    /// Total threads launched.
    pub total_threads: u64,

    pub(crate) clock_ghz: f64,
    pub(crate) dram_bytes_per_cycle: f64,
    pub(crate) num_sms: u32,
    pub(crate) max_warps_per_sm: u32,
    pub(crate) warp_size: u32,
}

impl KernelStats {
    #[allow(clippy::too_many_arguments)] // internal constructor fed by launch()
    pub(crate) fn merge(
        name: &str,
        cfg: &GpuConfig,
        per_sm: Vec<SmStats>,
        regs_per_thread: u32,
        smem_per_block: u32,
        threads_per_block: u32,
        blocks_per_sm: u32,
        total_blocks: u64,
    ) -> Self {
        let mut s = KernelStats {
            name: name.to_string(),
            cycles: 0,
            elapsed: 0.0,
            warp_instructions: 0,
            thread_instructions: 0,
            flops: 0,
            by_class: HashMap::new(),
            global_ld_transactions: 0,
            global_st_transactions: 0,
            global_bytes: 0,
            coalesced_half_warps: 0,
            uncoalesced_half_warps: 0,
            smem_conflict_extra_cycles: 0,
            divergent_branches: 0,
            tex_hits: 0,
            tex_misses: 0,
            const_hits: 0,
            const_misses: 0,
            atomic_transactions: 0,
            stall_cycles: HashMap::new(),
            blocks_executed: 0,
            regs_per_thread,
            smem_per_block,
            threads_per_block,
            blocks_per_sm,
            max_simultaneous_threads: (blocks_per_sm * cfg.num_sms).min(total_blocks as u32)
                * threads_per_block,
            total_threads: total_blocks * threads_per_block as u64,
            clock_ghz: cfg.clock_ghz,
            dram_bytes_per_cycle: cfg.dram_bytes_per_cycle(),
            num_sms: cfg.num_sms,
            max_warps_per_sm: cfg.max_warps_per_sm(),
            warp_size: cfg.warp_size,
        };
        for sm in per_sm {
            s.cycles = s.cycles.max(sm.cycles);
            s.warp_instructions += sm.warp_instructions;
            s.thread_instructions += sm.thread_instructions;
            s.flops += sm.flops;
            for (k, v) in sm.by_class {
                *s.by_class.entry(k).or_insert(0) += v;
            }
            s.global_ld_transactions += sm.global_ld_transactions;
            s.global_st_transactions += sm.global_st_transactions;
            s.global_bytes += sm.global_bytes;
            s.coalesced_half_warps += sm.coalesced_half_warps;
            s.uncoalesced_half_warps += sm.uncoalesced_half_warps;
            s.smem_conflict_extra_cycles += sm.smem_conflict_extra_cycles;
            s.divergent_branches += sm.divergent_branches;
            s.tex_hits += sm.tex_hits;
            s.tex_misses += sm.tex_misses;
            s.const_hits += sm.const_hits;
            s.const_misses += sm.const_misses;
            s.atomic_transactions += sm.atomic_transactions;
            for (k, v) in sm.stall_cycles {
                *s.stall_cycles.entry(k).or_insert(0) += v;
            }
            s.blocks_executed += sm.blocks_executed;
        }
        s.elapsed = s.cycles as f64 / (s.clock_ghz * 1e9);
        s
    }

    /// Folds another launch's counters into this one (for time-stepped
    /// applications that relaunch a kernel per step: cycles and traffic add;
    /// static occupancy fields keep the first launch's values).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.elapsed += other.elapsed;
        self.warp_instructions += other.warp_instructions;
        self.thread_instructions += other.thread_instructions;
        self.flops += other.flops;
        for (k, v) in &other.by_class {
            *self.by_class.entry(*k).or_insert(0) += v;
        }
        self.global_ld_transactions += other.global_ld_transactions;
        self.global_st_transactions += other.global_st_transactions;
        self.global_bytes += other.global_bytes;
        self.coalesced_half_warps += other.coalesced_half_warps;
        self.uncoalesced_half_warps += other.uncoalesced_half_warps;
        self.smem_conflict_extra_cycles += other.smem_conflict_extra_cycles;
        self.divergent_branches += other.divergent_branches;
        self.tex_hits += other.tex_hits;
        self.tex_misses += other.tex_misses;
        self.const_hits += other.const_hits;
        self.const_misses += other.const_misses;
        self.atomic_transactions += other.atomic_transactions;
        for (k, v) in &other.stall_cycles {
            *self.stall_cycles.entry(*k).or_insert(0) += v;
        }
        self.blocks_executed += other.blocks_executed;
    }

    /// Achieved GFLOPS over the kernel execution.
    pub fn gflops(&self) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.flops as f64 / self.elapsed / 1e9
        }
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.global_bytes as f64 / self.elapsed / 1e9
        }
    }

    /// The paper's Table 3 "GPU global-memory-to-computation cycle ratio":
    /// cycles the DRAM interface is busy divided by cycles the issue units
    /// are busy.
    pub fn global_to_compute_ratio(&self) -> f64 {
        let mem_cycles = self.global_bytes as f64 / self.dram_bytes_per_cycle;
        let issue_cycles = (self.warp_instructions * 4) as f64 / self.num_sms as f64;
        if issue_cycles == 0.0 {
            0.0
        } else {
            mem_cycles / issue_cycles
        }
    }

    /// Fraction of half-warp global accesses that were coalesced.
    pub fn coalesced_fraction(&self) -> f64 {
        let t = self.coalesced_half_warps + self.uncoalesced_half_warps;
        if t == 0 {
            1.0
        } else {
            self.coalesced_half_warps as f64 / t as f64
        }
    }

    /// Fraction of dynamic warp instructions that are f32 FMAs.
    pub fn fma_fraction(&self) -> f64 {
        if self.warp_instructions == 0 {
            return 0.0;
        }
        self.by_class.get(&InstClass::Fma).copied().unwrap_or(0) as f64
            / self.warp_instructions as f64
    }

    /// Achieved occupancy: resident warps relative to the machine's
    /// per-SM warp-context maximum (24 on the G80).
    pub fn occupancy(&self) -> f64 {
        let warps_per_block = self.threads_per_block.div_ceil(self.warp_size);
        (self.blocks_per_sm * warps_per_block) as f64 / self.max_warps_per_sm as f64
    }

    /// Total idle issue cycles.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.values().sum()
    }
}

/// Process-wide row-shape counters: how many warp-instruction executions
/// resolved through each [`g80_isa::LaneRow`] shape (`uniform`/`affine` =
/// folded in O(1) or served by a closed-form memory-degree formula; `full` =
/// evaluated eagerly across all lanes).
///
/// Deliberately *not* part of [`KernelStats`]: golden stats must stay
/// bit-identical with row tracking on and off (and across engines — the
/// reference engine never folds), so host-side attribution lives in this
/// separate, monotonically increasing process-wide snapshot. Diff
/// [`row_counters`] around a launch to attribute a single run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RowCounters {
    /// Executions resolved through a `Uniform` row shape.
    pub uniform: u64,
    /// Executions resolved through an `Affine` row shape.
    pub affine: u64,
    /// Executions that fell back to eager full-row evaluation.
    pub full: u64,
}

static ROWS_UNIFORM: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ROWS_AFFINE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ROWS_FULL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Snapshot of the process-wide row-shape counters.
pub fn row_counters() -> RowCounters {
    use std::sync::atomic::Ordering::Relaxed;
    RowCounters {
        uniform: ROWS_UNIFORM.load(Relaxed),
        affine: ROWS_AFFINE.load(Relaxed),
        full: ROWS_FULL.load(Relaxed),
    }
}

/// Resets the process-wide row-shape counters to zero (tests/benchmarks).
pub fn reset_row_counters() {
    use std::sync::atomic::Ordering::Relaxed;
    ROWS_UNIFORM.store(0, Relaxed);
    ROWS_AFFINE.store(0, Relaxed);
    ROWS_FULL.store(0, Relaxed);
}

/// Flushes one SM run's locally tallied row counts (called once per
/// `run_sm`, not per instruction, to keep atomics off the hot path).
pub(crate) fn add_row_counts(tally: RowCounters) {
    use std::sync::atomic::Ordering::Relaxed;
    if tally.uniform != 0 {
        ROWS_UNIFORM.fetch_add(tally.uniform, Relaxed);
    }
    if tally.affine != 0 {
        ROWS_AFFINE.fetch_add(tally.affine, Relaxed);
    }
    if tally.full != 0 {
        ROWS_FULL.fetch_add(tally.full, Relaxed);
    }
}

impl RowCounters {
    /// Tallies one execution of the given shape.
    #[inline]
    pub(crate) fn tally(&mut self, shape: &g80_isa::LaneRow) {
        match shape {
            g80_isa::LaneRow::Uniform(_) => self.uniform += 1,
            g80_isa::LaneRow::Affine { .. } => self.affine += 1,
            g80_isa::LaneRow::Full => self.full += 1,
        }
    }

    /// Component-wise difference (`self - earlier`), for attributing a
    /// single launch from two process-wide snapshots.
    pub fn since(&self, earlier: &RowCounters) -> RowCounters {
        RowCounters {
            uniform: self.uniform - earlier.uniform,
            affine: self.affine - earlier.affine,
            full: self.full - earlier.full,
        }
    }

    /// Total executions attributed across all shapes.
    pub fn total(&self) -> u64 {
        self.uniform + self.affine + self.full
    }
}

/// Process-wide transport-fault counters: what the `g80-serve` network
/// layer survived. Mirrors [`RowCounters`]' shape — monotonically
/// increasing process-wide totals, diffed by callers to attribute a
/// window — and lives here (not in the serve crate) so [`crate::report`]
/// can snapshot it into every [`crate::LaunchReport`] without a dependency
/// cycle. The serve crate's transport layer is the only writer; an
/// in-process-only simulation leaves every field at zero.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Connection losses observed mid-conversation (peer vanished, socket
    /// error, or an injected disconnect/truncation), on either end.
    pub disconnects: u64,
    /// Request frames resent on a still-open connection after the peer
    /// reported frame corruption (typed `BadFrame`) or a response frame
    /// failed its CRC locally.
    pub frames_retried: u64,
    /// Payload bytes re-sent across all frame retries and reconnect
    /// replays.
    pub bytes_resent: u64,
    /// Successful reconnect-and-replay cycles (a fresh connection plus a
    /// replayed in-flight request after a disconnect).
    pub reconnects: u64,
}

static NET_DISCONNECTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static NET_FRAMES_RETRIED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static NET_BYTES_RESENT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static NET_RECONNECTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Snapshot of the process-wide transport-fault counters.
pub fn net_counters() -> NetCounters {
    use std::sync::atomic::Ordering::Relaxed;
    NetCounters {
        disconnects: NET_DISCONNECTS.load(Relaxed),
        frames_retried: NET_FRAMES_RETRIED.load(Relaxed),
        bytes_resent: NET_BYTES_RESENT.load(Relaxed),
        reconnects: NET_RECONNECTS.load(Relaxed),
    }
}

/// Resets the process-wide transport-fault counters (tests/benchmarks).
pub fn reset_net_counters() {
    use std::sync::atomic::Ordering::Relaxed;
    NET_DISCONNECTS.store(0, Relaxed);
    NET_FRAMES_RETRIED.store(0, Relaxed);
    NET_BYTES_RESENT.store(0, Relaxed);
    NET_RECONNECTS.store(0, Relaxed);
}

/// Tallies one observed connection loss (serve transport layer).
pub fn note_net_disconnect() {
    NET_DISCONNECTS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Tallies one same-connection frame retry of `payload_bytes` resent.
pub fn note_net_frame_retried(payload_bytes: u64) {
    use std::sync::atomic::Ordering::Relaxed;
    NET_FRAMES_RETRIED.fetch_add(1, Relaxed);
    NET_BYTES_RESENT.fetch_add(payload_bytes, Relaxed);
}

/// Tallies one reconnect-and-replay cycle of `payload_bytes` resent.
pub fn note_net_reconnect(payload_bytes: u64) {
    use std::sync::atomic::Ordering::Relaxed;
    NET_RECONNECTS.fetch_add(1, Relaxed);
    NET_BYTES_RESENT.fetch_add(payload_bytes, Relaxed);
}

impl NetCounters {
    /// Component-wise saturating difference (`self - earlier`), for
    /// attributing a window from two process-wide snapshots.
    pub fn since(&self, earlier: &NetCounters) -> NetCounters {
        NetCounters {
            disconnects: self.disconnects.saturating_sub(earlier.disconnects),
            frames_retried: self.frames_retried.saturating_sub(earlier.frames_retried),
            bytes_resent: self.bytes_resent.saturating_sub(earlier.bytes_resent),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
        }
    }

    /// Component-wise saturating sum — merges the client-observed and
    /// daemon-reported deltas of one request. With an in-process daemon
    /// the two ends share these process-wide counters, so daemon-noted
    /// events can appear in both views; the sum is a monotone upper
    /// bound, not an exact attribution.
    pub fn saturating_add(&self, other: &NetCounters) -> NetCounters {
        NetCounters {
            disconnects: self.disconnects.saturating_add(other.disconnects),
            frames_retried: self.frames_retried.saturating_add(other.frames_retried),
            bytes_resent: self.bytes_resent.saturating_add(other.bytes_resent),
            reconnects: self.reconnects.saturating_add(other.reconnects),
        }
    }

    /// True when any fault was observed in this snapshot/delta.
    pub fn any(&self) -> bool {
        self.disconnects != 0
            || self.frames_retried != 0
            || self.bytes_resent != 0
            || self.reconnects != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(cycles: u64, flops: u64) -> KernelStats {
        let cfg = GpuConfig::geforce_8800_gtx();
        let sm = SmStats {
            cycles,
            flops,
            warp_instructions: 100,
            thread_instructions: 3200,
            global_bytes: 4096,
            ..Default::default()
        };
        KernelStats::merge("d", &cfg, vec![sm], 10, 0, 256, 3, 8)
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_counters() {
        let cfg = GpuConfig::geforce_8800_gtx();
        let a = SmStats {
            cycles: 100,
            flops: 10,
            ..Default::default()
        };
        let b = SmStats {
            cycles: 250,
            flops: 20,
            ..Default::default()
        };
        let s = KernelStats::merge("m", &cfg, vec![a, b], 8, 0, 128, 2, 4);
        assert_eq!(s.cycles, 250); // slowest SM
        assert_eq!(s.flops, 30);
        assert_eq!(s.max_simultaneous_threads, 4 * 128); // grid-limited
        assert_eq!(s.total_threads, 4 * 128);
    }

    #[test]
    fn accumulate_adds_cycles_for_multi_launch_apps() {
        let mut a = dummy(1000, 500);
        let b = dummy(2000, 700);
        let (e1, e2) = (a.elapsed, b.elapsed);
        a.accumulate(&b);
        assert_eq!(a.cycles, 3000);
        assert_eq!(a.flops, 1200);
        assert!((a.elapsed - (e1 + e2)).abs() < 1e-12);
        assert_eq!(a.warp_instructions, 200);
    }

    #[test]
    fn derived_metrics_behave() {
        let s = dummy(1350, 2700); // 1 us at 1.35 GHz
        assert!((s.elapsed - 1e-6).abs() < 1e-12);
        assert!((s.gflops() - 2.7e-3 / 1e-6 / 1e3).abs() < 1e-9);
        assert!(s.bandwidth_gbps() > 0.0);
        assert!((s.occupancy() - 1.0).abs() < 1e-9); // 3 blocks * 8 warps / 24
        assert_eq!(s.coalesced_fraction(), 1.0); // no accesses recorded
    }
}
