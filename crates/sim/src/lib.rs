//! # g80-sim — a cycle-approximate GeForce 8800 GTX performance simulator
//!
//! The machine substrate for the reproduction of Ryoo et al. (PPoPP 2008).
//! Executes [`g80_isa::Kernel`]s functionally (bit-accurate integer ops,
//! host-f32 floating point) while modeling the G80 timing mechanisms the
//! paper's optimization principles hinge on:
//!
//! * one instruction-issue port per SM, 4 cycles per warp instruction
//!   (16 for SFU transcendentals and 32-bit integer multiplies);
//! * a per-warp scoreboard — memory latency hides only when other warps or
//!   independent instructions are available (principle 1);
//! * CC 1.0 half-warp coalescing rules and a bandwidth-limited DRAM channel
//!   (86.4 GB/s chip-wide, partitioned per SM);
//! * 16-bank shared memory with conflict serialization and broadcast
//!   (principle 3);
//! * per-SM constant and texture caches;
//! * SIMD divergence via a reconvergence stack (principle 3);
//! * occupancy limits — 768 threads / 24 warps / 8 blocks / 8192 registers /
//!   16 KB shared memory per SM (principle 2).
//!
//! ```
//! use g80_isa::builder::KernelBuilder;
//! use g80_sim::{launch, DeviceMemory, GpuConfig, LaunchDims};
//! use g80_isa::Value;
//!
//! // Doubles 1024 floats in place.
//! let mut b = KernelBuilder::new("double");
//! let buf = b.param();
//! let tid = b.tid_x();
//! let ntid = b.ntid_x();
//! let cta = b.ctaid_x();
//! let i = b.imad(cta, ntid, tid);
//! let byte = b.shl(i, 2u32);
//! let a = b.iadd(byte, buf);
//! let v = b.ld_global(a, 0);
//! let d = b.fadd(v, v);
//! b.st_global(a, 0, d);
//! let k = b.build();
//!
//! let cfg = GpuConfig::geforce_8800_gtx();
//! let mem = DeviceMemory::new(4096);
//! for i in 0..1024u32 {
//!     mem.write(i * 4, Value::from_f32(i as f32));
//! }
//! let stats = launch(
//!     &cfg,
//!     &k,
//!     LaunchDims { grid: (8, 1), block: (128, 1, 1) },
//!     &[Value::from_u32(0)],
//!     &mem,
//! )
//! .unwrap();
//! assert_eq!(mem.read(40).as_f32(), 20.0);
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.coalesced_half_warps, 2 * 64); // 1 ld + 1 st per half-warp
//! ```

mod compiled;
pub mod config;
pub mod counters;
pub mod disk;
pub mod error;
pub mod fault;
pub mod launch;
pub mod memo;
pub mod memory;
pub mod pool;
pub mod reference;
pub mod report;
pub mod sm;
pub mod warp;
pub mod wire;
mod witness;

pub use config::GpuConfig;
pub use counters::{
    net_counters, note_net_disconnect, note_net_frame_retried, note_net_reconnect,
    reset_net_counters, reset_row_counters, row_counters, KernelStats, NetCounters, RowCounters,
    StallReason,
};
pub use disk::{disk_cache_dir, set_disk_cache, set_disk_cache_cap};
pub use error::{CudaError, SimError};
pub use fault::{set_faults, set_watchdog_cycles, watchdog_cycles, FaultConfig, FaultKind, Site};
pub use launch::{
    engine, executor, launch, launch_batch, launch_batch_traced, launch_traced, rows, set_engine,
    set_executor, set_rows, Engine, Executor, LaunchError, LaunchSpec, Rows,
};
pub use memo::{
    clear_memo_cache, dedup, kernel_info, memo, memo_counters, reset_memo_counters, set_dedup,
    set_memo, set_memo_capacity, Dedup, KernelInfo, Memo, MemoCounters, Served,
};
pub use memory::DeviceMemory;
pub use report::{launch_reported, LaunchReport, REPORT_VERSION};
pub use sm::LaunchDims;
