//! Warp state: the SIMD reconvergence stack, per-lane registers, and the
//! per-warp scoreboard.
//!
//! The GeForce 8800 executes 32-thread warps in SIMD fashion with a
//! divergence stack: when a branch splits a warp, one path runs to the
//! reconvergence point, then the other, then the full warp resumes
//! (Section 3.2 / optimization principle 3). The scoreboard tracks when each
//! architectural register's pending write completes, which is what lets
//! independent instructions (and other warps) cover memory latency.

use g80_isa::inst::{Operand, SpecialReg};
use g80_isa::row::LaneRow;
use g80_isa::Value;

/// Sentinel "no reconvergence point".
pub const NO_RPC: u32 = u32::MAX;

/// One entry of the divergence stack.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Next instruction index for this path.
    pub pc: u32,
    /// Reconvergence PC: when `pc == rpc`, the path has finished and pops.
    pub rpc: u32,
    /// Lanes executing this path.
    pub mask: u32,
}

/// What produced a register's pending value (for stall attribution).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RegSource {
    Alu,
    Memory,
}

/// Per-warp execution state.
pub struct Warp {
    /// Divergence stack; the top entry is the executing path.
    pub frames: Vec<Frame>,
    /// Register file backing store: `regs[r * 32 + lane]`. Only valid for a
    /// register whose shape is [`LaneRow::Full`]; a `Uniform`/`Affine` shape
    /// supersedes the backing row (which may hold stale lanes) until
    /// [`Warp::materialize`] expands it.
    pub regs: Vec<Value>,
    /// Row-shape tag per register (see [`LaneRow`]). With row tracking off
    /// ([`crate::launch::Rows::Full`]) every entry stays `Full` forever and
    /// the register file behaves exactly as the eager baseline.
    pub shapes: Vec<LaneRow>,
    /// Whether this warp tracks row shapes (resolved from
    /// [`crate::launch::rows`] at construction). Fold fast paths in the
    /// engines must check this before consulting operand shapes: immediate
    /// and param operands are `Uniform` even in full mode and would
    /// otherwise fold.
    pub rows_enabled: bool,
    /// Shapes of the per-lane tid.{x,y,z} rows, classified once at
    /// construction (`Full` placeholders when row tracking is off).
    pub(crate) tid_shape: [LaneRow; 3],
    /// Scoreboard: cycle at which each register's pending write lands.
    pub reg_ready: Vec<u64>,
    /// What kind of instruction produced each pending write.
    pub reg_source: Vec<RegSource>,
    /// Per-lane local (spill) memory, lazily grown, word-indexed.
    pub local: Vec<Vec<Value>>,
    /// Compiled-engine scratch: one timing-aux word (shared-memory
    /// bank-conflict degree; 0 for pure ops) per instruction of the region
    /// this warp most recently entered, filled at region entry and consumed
    /// by the interior timing-only steps. Unused by the other engines.
    pub region_aux: Vec<u32>,
    /// Lanes that exist (partial warps at the end of a block have fewer).
    pub init_mask: u32,
    /// Parked at a barrier, waiting for the rest of the block.
    pub at_barrier: bool,
    /// Earliest cycle this warp may issue again (barrier pipeline drain).
    pub resume_at: u64,
    /// All lanes exited.
    pub done: bool,
    /// Per-lane (tid.x, tid.y, tid.z).
    pub tids: Vec<(u32, u32, u32)>,
    /// Block coordinates (ctaid.x, ctaid.y).
    pub ctaid: (u32, u32),
    /// Block dimensions.
    pub ntid: (u32, u32, u32),
    /// Grid dimensions.
    pub nctaid: (u32, u32),
}

impl Warp {
    /// Creates warp `warp_idx` of a block.
    pub fn new(
        warp_idx: u32,
        nregs: u32,
        block_dim: (u32, u32, u32),
        ctaid: (u32, u32),
        nctaid: (u32, u32),
    ) -> Self {
        let threads_per_block = block_dim.0 * block_dim.1 * block_dim.2;
        let base = warp_idx * 32;
        let mut mask = 0u32;
        let mut tids = Vec::with_capacity(32);
        for lane in 0..32 {
            let lin = base + lane;
            if lin < threads_per_block {
                mask |= 1 << lane;
                let tx = lin % block_dim.0;
                let ty = (lin / block_dim.0) % block_dim.1;
                let tz = lin / (block_dim.0 * block_dim.1);
                tids.push((tx, ty, tz));
            } else {
                tids.push((0, 0, 0));
            }
        }
        let rows_enabled = crate::launch::rows() == crate::launch::Rows::Tracked;
        let tid_shape = if rows_enabled {
            let classify_dim = |pick: fn(&(u32, u32, u32)) -> u32| {
                let mut row = [Value::ZERO; 32];
                for (lane, t) in tids.iter().enumerate() {
                    row[lane] = Value::from_u32(pick(t));
                }
                LaneRow::classify(&row)
            };
            [
                classify_dim(|t| t.0),
                classify_dim(|t| t.1),
                classify_dim(|t| t.2),
            ]
        } else {
            [LaneRow::Full; 3]
        };
        let init_shape = if rows_enabled {
            LaneRow::Uniform(Value::ZERO)
        } else {
            LaneRow::Full
        };
        Warp {
            frames: vec![Frame {
                pc: 0,
                rpc: NO_RPC,
                mask,
            }],
            regs: vec![Value::ZERO; (nregs as usize) * 32],
            shapes: vec![init_shape; nregs as usize],
            rows_enabled,
            tid_shape,
            reg_ready: vec![0; nregs as usize],
            reg_source: vec![RegSource::Alu; nregs as usize],
            local: vec![Vec::new(); 32],
            region_aux: Vec::new(),
            init_mask: mask,
            at_barrier: false,
            resume_at: 0,
            done: mask == 0,
            tids,
            ctaid,
            ntid: block_dim,
            nctaid,
        }
    }

    /// Reinitializes this warp for a new block of the same launch, reusing
    /// the register file, scoreboard, and local-memory allocations.
    /// Equivalent to `Warp::new` with the same geometry (block dimensions
    /// and warp index are launch constants, so `tids` and `init_mask` carry
    /// over) but allocation-free.
    pub fn reset(&mut self, ctaid: (u32, u32)) {
        self.frames.clear();
        self.frames.push(Frame {
            pc: 0,
            rpc: NO_RPC,
            mask: self.init_mask,
        });
        if self.rows_enabled {
            // All-zero registers are one Uniform tag each; the backing rows
            // go stale and are re-expanded on demand, so the O(nregs * 32)
            // fill disappears from the per-block reset path.
            self.shapes.fill(LaneRow::Uniform(Value::ZERO));
        } else {
            self.regs.fill(Value::ZERO);
        }
        self.reg_ready.fill(0);
        self.reg_source.fill(RegSource::Alu);
        for lane in &mut self.local {
            lane.clear(); // reads lazily re-zero (local_read resizes with ZERO)
        }
        self.at_barrier = false;
        self.resume_at = 0;
        self.done = self.init_mask == 0;
        self.ctaid = ctaid;
    }

    /// Pops finished paths; afterwards the top frame (if any) is executable.
    /// Returns false if the warp has fully retired.
    pub fn settle(&mut self) -> bool {
        while let Some(top) = self.frames.last() {
            if top.mask == 0 || (top.rpc != NO_RPC && top.pc == top.rpc) {
                self.frames.pop();
            } else {
                return true;
            }
        }
        self.done = true;
        false
    }

    /// Current PC (top frame). Call only after a successful [`Warp::settle`].
    pub fn pc(&self) -> u32 {
        self.frames.last().expect("retired warp has no pc").pc
    }

    /// Currently active lanes.
    pub fn active_mask(&self) -> u32 {
        self.frames.last().map_or(0, |f| f.mask)
    }

    /// Advances the top frame to the next sequential instruction.
    pub fn advance(&mut self) {
        self.frames.last_mut().unwrap().pc += 1;
    }

    /// Reads a register lane through its shape.
    #[inline]
    pub fn reg(&self, r: u32, lane: usize) -> Value {
        match self.shapes[r as usize] {
            LaneRow::Uniform(v) => v,
            LaneRow::Affine { base, stride } => {
                Value(base.wrapping_add(stride.wrapping_mul(lane as u32)))
            }
            LaneRow::Full => self.regs[(r as usize) * 32 + lane],
        }
    }

    /// Expands a register's shape into the backing row (no-op when already
    /// `Full`). After this, `regs[r*32..]` is valid and the shape is `Full`.
    #[inline]
    pub fn materialize(&mut self, r: u32) {
        let shape = self.shapes[r as usize];
        if shape != LaneRow::Full {
            let base = (r as usize) * 32;
            let row: &mut [Value; 32] = (&mut self.regs[base..base + 32]).try_into().unwrap();
            shape.expand_into(row);
            self.shapes[r as usize] = LaneRow::Full;
        }
    }

    /// Writes a register lane (materializing the row first so the other
    /// lanes keep their shape-implied values).
    #[inline]
    pub fn set_reg(&mut self, r: u32, lane: usize, v: Value) {
        self.materialize(r);
        self.regs[(r as usize) * 32 + lane] = v;
    }

    /// Records a folded whole-row write: `r` becomes `shape` without
    /// touching the backing store. Only valid under a full active mask —
    /// a partial write must go through [`Warp::reg_row_mut`]/
    /// [`Warp::set_reg`] so inactive lanes keep their prior values.
    #[inline]
    pub fn set_shape(&mut self, r: u32, shape: LaneRow) {
        debug_assert_ne!(shape, LaneRow::Full);
        self.shapes[r as usize] = shape;
    }

    /// A register's full 32-lane backing row. The register must already be
    /// materialized (shape `Full`); use [`Warp::reg`]/[`Warp::operand_row`]
    /// for shape-transparent reads.
    #[inline]
    pub fn reg_row(&self, r: u32) -> &[Value; 32] {
        debug_assert_eq!(self.shapes[r as usize], LaneRow::Full);
        let base = (r as usize) * 32;
        (&self.regs[base..base + 32]).try_into().unwrap()
    }

    /// A register's full 32-lane row, mutably (materializing it first).
    #[inline]
    pub fn reg_row_mut(&mut self, r: u32) -> &mut [Value; 32] {
        self.materialize(r);
        let base = (r as usize) * 32;
        (&mut self.regs[base..base + 32]).try_into().unwrap()
    }

    /// The shape of an operand row. `Full` means "no structure known"; the
    /// fold fast paths fall back to [`Warp::operand_row`] in that case.
    #[inline]
    pub fn operand_shape(&self, op: Operand, params: &[Value]) -> LaneRow {
        match op {
            Operand::Reg(r) => self.shapes[r.0 as usize],
            Operand::Imm(v) => LaneRow::Uniform(v),
            Operand::Param(i) => LaneRow::Uniform(params[i as usize]),
            Operand::Special(s) => self.special_shape(s),
        }
    }

    /// The shape of a special-register row. Block/grid geometry registers
    /// are uniform across the warp by definition; tid rows were classified
    /// at construction.
    #[inline]
    pub fn special_shape(&self, s: SpecialReg) -> LaneRow {
        match s {
            SpecialReg::TidX => self.tid_shape[0],
            SpecialReg::TidY => self.tid_shape[1],
            SpecialReg::TidZ => self.tid_shape[2],
            SpecialReg::NtidX => LaneRow::Uniform(Value::from_u32(self.ntid.0)),
            SpecialReg::NtidY => LaneRow::Uniform(Value::from_u32(self.ntid.1)),
            SpecialReg::NtidZ => LaneRow::Uniform(Value::from_u32(self.ntid.2)),
            SpecialReg::CtaidX => LaneRow::Uniform(Value::from_u32(self.ctaid.0)),
            SpecialReg::CtaidY => LaneRow::Uniform(Value::from_u32(self.ctaid.1)),
            SpecialReg::NctaidX => LaneRow::Uniform(Value::from_u32(self.nctaid.0)),
            SpecialReg::NctaidY => LaneRow::Uniform(Value::from_u32(self.nctaid.1)),
        }
    }

    /// The taken-lane mask of a predicated branch: active lanes whose
    /// predicate register (xor `negate`) is true. O(1) for a uniform
    /// predicate row, bit-identical to the per-lane scan otherwise.
    pub fn taken_mask(&self, r: u32, negate: bool, mask: u32) -> u32 {
        match self.shapes[r as usize] {
            LaneRow::Uniform(v) => {
                if v.as_bool() != negate {
                    mask
                } else {
                    0
                }
            }
            shape => {
                let mut taken = 0u32;
                for lane in 0..32 {
                    if (mask >> lane) & 1 == 1 {
                        let pv = match shape {
                            LaneRow::Full => self.regs[(r as usize) * 32 + lane],
                            s => s.lane(lane).unwrap(),
                        };
                        if pv.as_bool() != negate {
                            taken |= 1 << lane;
                        }
                    }
                }
                taken
            }
        }
    }

    /// Evaluates an operand for all 32 lanes at once. Operand reads are
    /// pure, so materializing inactive lanes is harmless; copying the row
    /// out resolves the operand kind once per instruction (instead of per
    /// lane) and decouples the sources from a destination row that may
    /// alias them.
    #[inline]
    pub fn operand_row(&self, op: Operand, params: &[Value]) -> [Value; 32] {
        match op {
            Operand::Reg(r) => match self.shapes[r.0 as usize] {
                LaneRow::Full => {
                    let base = (r.0 as usize) * 32;
                    let row: &[Value; 32] = (&self.regs[base..base + 32]).try_into().unwrap();
                    *row
                }
                shape => {
                    let mut row = [Value::ZERO; 32];
                    shape.expand_into(&mut row);
                    row
                }
            },
            Operand::Imm(v) => [v; 32],
            Operand::Param(i) => [params[i as usize]; 32],
            Operand::Special(_) => std::array::from_fn(|lane| self.operand(op, lane, params)),
        }
    }

    /// Evaluates an operand for one lane.
    pub fn operand(&self, op: Operand, lane: usize, params: &[Value]) -> Value {
        match op {
            Operand::Reg(r) => self.reg(r.0, lane),
            Operand::Imm(v) => v,
            Operand::Param(i) => params[i as usize],
            Operand::Special(s) => {
                let (tx, ty, tz) = self.tids[lane];
                Value::from_u32(match s {
                    SpecialReg::TidX => tx,
                    SpecialReg::TidY => ty,
                    SpecialReg::TidZ => tz,
                    SpecialReg::NtidX => self.ntid.0,
                    SpecialReg::NtidY => self.ntid.1,
                    SpecialReg::NtidZ => self.ntid.2,
                    SpecialReg::CtaidX => self.ctaid.0,
                    SpecialReg::CtaidY => self.ctaid.1,
                    SpecialReg::NctaidX => self.nctaid.0,
                    SpecialReg::NctaidY => self.nctaid.1,
                })
            }
        }
    }

    /// Applies a branch. `taken` must be a subset of the active mask.
    /// Returns true if the warp diverged.
    pub fn take_branch(&mut self, taken: u32, target: u32, reconv: u32, next_pc: u32) -> bool {
        let top = self.frames.last_mut().unwrap();
        let active = top.mask;
        debug_assert_eq!(taken & !active, 0);
        if taken == active {
            top.pc = target;
            false
        } else if taken == 0 {
            top.pc = next_pc;
            false
        } else {
            // Divergence: the current frame becomes the reconvergence entry;
            // the not-taken path runs after the taken path completes.
            top.pc = reconv;
            let not_taken = active & !taken;
            self.frames.push(Frame {
                pc: next_pc,
                rpc: reconv,
                mask: not_taken,
            });
            self.frames.push(Frame {
                pc: target,
                rpc: reconv,
                mask: taken,
            });
            true
        }
    }

    /// Retires `mask` lanes (they executed Exit): removes them from every
    /// frame in the stack.
    pub fn exit_lanes(&mut self, mask: u32) {
        for f in &mut self.frames {
            f.mask &= !mask;
        }
    }

    /// Reads a local (per-thread) word, growing the backing store lazily.
    pub fn local_read(&mut self, lane: usize, addr: u32) -> Value {
        let idx = (addr / 4) as usize;
        let mem = &mut self.local[lane];
        if idx >= mem.len() {
            mem.resize(idx + 1, Value::ZERO);
        }
        mem[idx]
    }

    /// Writes a local (per-thread) word.
    pub fn local_write(&mut self, lane: usize, addr: u32, v: Value) {
        let idx = (addr / 4) as usize;
        let mem = &mut self.local[lane];
        if idx >= mem.len() {
            mem.resize(idx + 1, Value::ZERO);
        }
        mem[idx] = v;
    }

    /// Iterates active lanes of the current frame.
    pub fn active_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.active_mask();
        (0..32).filter(move |l| (mask >> l) & 1 != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_warp() -> Warp {
        Warp::new(0, 8, (32, 1, 1), (0, 0), (1, 1))
    }

    #[test]
    fn partial_warp_mask() {
        // 40-thread block: warp 1 has 8 active lanes.
        let w = Warp::new(1, 4, (40, 1, 1), (0, 0), (1, 1));
        assert_eq!(w.init_mask, 0xff);
        assert!(!w.done);
        // warp 1 lane 0 is thread 32.
        assert_eq!(w.tids[0], (32, 0, 0));
    }

    #[test]
    fn empty_warp_is_done() {
        let w = Warp::new(2, 4, (40, 1, 1), (0, 0), (1, 1));
        assert!(w.done);
    }

    #[test]
    fn tid_decomposition_2d() {
        let w = Warp::new(0, 4, (16, 16, 1), (3, 5), (8, 8));
        // lane 17 = thread 17 = (1, 1, 0) in a 16-wide block.
        assert_eq!(w.tids[17], (1, 1, 0));
        assert_eq!(w.ctaid, (3, 5));
    }

    #[test]
    fn uniform_branch_no_divergence() {
        let mut w = full_warp();
        let all = w.active_mask();
        assert!(!w.take_branch(all, 10, 20, 1));
        assert_eq!(w.pc(), 10);
        assert_eq!(w.frames.len(), 1);

        assert!(!w.take_branch(0, 30, 40, 11));
        assert_eq!(w.pc(), 11);
    }

    #[test]
    fn divergent_branch_runs_taken_then_fallthrough_then_reconverges() {
        let mut w = full_warp();
        let taken = 0x0000ffff;
        assert!(w.take_branch(taken, 10, 50, 1));
        // Taken path on top.
        assert!(w.settle());
        assert_eq!(w.pc(), 10);
        assert_eq!(w.active_mask(), taken);
        // Taken path reaches the reconvergence point.
        w.frames.last_mut().unwrap().pc = 50;
        assert!(w.settle());
        assert_eq!(w.pc(), 1); // fallthrough path
        assert_eq!(w.active_mask(), 0xffff0000);
        // Fallthrough path reaches reconvergence.
        w.frames.last_mut().unwrap().pc = 50;
        assert!(w.settle());
        assert_eq!(w.pc(), 50);
        assert_eq!(w.active_mask(), 0xffffffffu32);
        assert_eq!(w.frames.len(), 1);
    }

    #[test]
    fn nested_divergence() {
        let mut w = full_warp();
        w.take_branch(0x0000ffff, 10, 100, 1);
        w.settle();
        // Inner divergence within the taken path.
        assert!(w.take_branch(0x000000ff, 20, 90, 11));
        w.settle();
        assert_eq!(w.active_mask(), 0x000000ff);
        w.frames.last_mut().unwrap().pc = 90;
        w.settle();
        assert_eq!(w.active_mask(), 0x0000ff00);
        w.frames.last_mut().unwrap().pc = 90;
        w.settle();
        // Inner reconverged: the outer taken path resumes at the inner
        // reconvergence point with its full mask.
        assert_eq!(w.active_mask(), 0x0000ffff);
        assert_eq!(w.pc(), 90);
        assert_eq!(w.frames.last().unwrap().rpc, 100);
    }

    #[test]
    fn exit_retires_lanes_everywhere() {
        let mut w = full_warp();
        w.take_branch(0x0000ffff, 10, 50, 1);
        w.settle();
        // Taken lanes exit inside the divergent region.
        w.exit_lanes(0x0000ffff);
        assert!(w.settle());
        // Fallthrough path still runs.
        assert_eq!(w.active_mask(), 0xffff0000);
        w.exit_lanes(0xffff0000);
        assert!(!w.settle());
        assert!(w.done);
    }

    #[test]
    fn local_memory_is_per_lane() {
        let mut w = full_warp();
        w.local_write(3, 8, Value::from_u32(42));
        assert_eq!(w.local_read(3, 8).as_u32(), 42);
        assert_eq!(w.local_read(4, 8).as_u32(), 0);
    }

    #[test]
    fn shapes_read_through_and_materialize_on_lane_write() {
        let mut w = full_warp();
        if !w.rows_enabled {
            return; // G80_SIM_ROWS=full: nothing to test
        }
        // Fresh registers read as zero through the Uniform(0) shape.
        assert_eq!(w.reg(2, 31).as_u32(), 0);
        w.set_shape(
            3,
            LaneRow::Affine {
                base: 100,
                stride: 8,
            },
        );
        assert_eq!(w.reg(3, 0).as_u32(), 100);
        assert_eq!(w.reg(3, 5).as_u32(), 140);
        let row = w.operand_row(Operand::Reg(g80_isa::inst::Reg(3)), &[]);
        assert_eq!(row[7].as_u32(), 156);
        // A lane write materializes: the other lanes keep their affine values.
        w.set_reg(3, 2, Value::from_u32(7));
        assert_eq!(w.shapes[3], LaneRow::Full);
        assert_eq!(w.reg(3, 2).as_u32(), 7);
        assert_eq!(w.reg(3, 3).as_u32(), 124);
    }

    #[test]
    fn tid_shapes_classified_at_construction() {
        let w = full_warp(); // 32x1x1 block: tid.x = lane, tid.y = tid.z = 0
        if !w.rows_enabled {
            return;
        }
        assert_eq!(w.tid_shape[0], LaneRow::Affine { base: 0, stride: 1 });
        assert_eq!(w.tid_shape[1], LaneRow::Uniform(Value::ZERO));
        // Partial warp: trailing lanes carry tid 0, breaking the affine run.
        let p = Warp::new(1, 4, (40, 1, 1), (0, 0), (1, 1));
        assert_eq!(p.tid_shape[0], LaneRow::Full);
        // 2-D block: tid.x wraps every 16 lanes.
        let w2 = Warp::new(0, 4, (16, 16, 1), (0, 0), (1, 1));
        assert_eq!(w2.tid_shape[0], LaneRow::Full);
    }

    #[test]
    fn taken_mask_matches_per_lane_scan() {
        let mut w = full_warp();
        let mask = 0x0f0f_0f0fu32;
        for (shape, label) in [
            (LaneRow::Uniform(Value::from_u32(1)), "uniform-true"),
            (LaneRow::Uniform(Value::ZERO), "uniform-false"),
            (LaneRow::Affine { base: 0, stride: 1 }, "affine"),
        ] {
            if w.rows_enabled {
                w.set_shape(1, shape);
            } else {
                let mut row = [Value::ZERO; 32];
                shape.expand_into(&mut row);
                *w.reg_row_mut(1) = row;
            }
            for negate in [false, true] {
                let mut want = 0u32;
                for lane in 0..32 {
                    if (mask >> lane) & 1 == 1 && (w.reg(1, lane).as_bool() != negate) {
                        want |= 1 << lane;
                    }
                }
                assert_eq!(w.taken_mask(1, negate, mask), want, "{label} neg={negate}");
            }
        }
    }

    #[test]
    fn reset_restores_zero_registers() {
        let mut w = full_warp();
        w.set_reg(0, 4, Value::from_u32(99));
        if w.rows_enabled {
            w.set_shape(5, LaneRow::Affine { base: 1, stride: 2 });
        }
        w.reset((0, 0));
        for r in 0..8 {
            for lane in 0..32 {
                assert_eq!(w.reg(r, lane), Value::ZERO);
            }
        }
    }

    #[test]
    fn operand_specials() {
        let w = Warp::new(0, 4, (16, 4, 1), (2, 7), (10, 20));
        use g80_isa::inst::Operand as O;
        assert_eq!(
            w.operand(O::Special(SpecialReg::CtaidX), 0, &[]).as_u32(),
            2
        );
        assert_eq!(
            w.operand(O::Special(SpecialReg::NctaidY), 0, &[]).as_u32(),
            20
        );
        assert_eq!(w.operand(O::Special(SpecialReg::TidY), 16, &[]).as_u32(), 1);
        assert_eq!(w.operand(O::imm_f(1.5), 0, &[]).as_f32(), 1.5);
        let params = [Value::from_u32(99)];
        assert_eq!(w.operand(O::Param(0), 5, &params).as_u32(), 99);
    }
}
