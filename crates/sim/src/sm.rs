//! The streaming-multiprocessor timing engine.
//!
//! Each SM holds up to eight resident blocks (subject to the register /
//! shared-memory / thread limits), schedules their warps round-robin through
//! a single issue port (one warp instruction per 4 cycles, longer for SFU /
//! 32-bit multiply / conflicted shared accesses), and tracks data readiness
//! with a per-warp scoreboard. Global memory requests flow through a
//! bandwidth-limited channel (this SM's slice of the 86.4 GB/s) plus a fixed
//! DRAM round-trip latency.
//!
//! **Functional-at-issue, timed-completion**: instruction side effects are
//! applied the moment the instruction issues; the scoreboard only delays
//! *when* dependents may issue. Programs that follow the CUDA consistency
//! rules (barriers between shared-memory producers and consumers, no
//! inter-block races except commutative atomics) observe exactly the values
//! hardware would produce, while timing still exhibits latency, queueing,
//! coalescing, divergence and bank-conflict effects.
//!
//! # The predecoded hot loop
//!
//! This engine consumes a [`DecodedKernel`] (see [`g80_isa::decode`]) and is
//! written to keep the scheduler's steady state allocation-free:
//!
//! * **readiness is a gate-list scan** — each micro-op carries its
//!   precomputed scoreboard gate set (source registers + WAW destination),
//!   so [`inst_ready`] indexes the scoreboard directly instead of walking
//!   instruction operands;
//! * **the warp schedule is incremental** — all resident blocks share one
//!   geometry, so refilling a retired block in place preserves the
//!   round-robin order; the schedule is rebuilt only when the grid tail
//!   shrinks the resident set, and the retire scan itself runs only after
//!   some warp actually retired;
//! * **coalescing scratch is pooled** — the constant-space `distinct` and
//!   texture-space `lines` working sets live in a per-SM [`Scratch`] reused
//!   across accesses;
//! * **register files and shared memory are recycled** — a retired block's
//!   [`Resident`] storage is reset in place for the next block instead of
//!   being reallocated (the degenerate form of a free pool when every block
//!   has the same shape).
//!
//! None of this may change simulated timing: [`crate::reference`] keeps the
//! original engine as an executable spec, and the `golden_stats` test
//! asserts bit-identical [`crate::KernelStats`] between the two.

#![allow(clippy::too_many_arguments)] // load/store helpers mirror the instruction fields

use crate::config::GpuConfig;
use crate::counters::{RowCounters, SmStats, StallReason};
use crate::memory::{
    coalesce_affine_half, coalesce_half_warp_noalloc, smem_conflict_degree_noalloc,
    smem_degree_affine, DeviceMemory, TagCache,
};
use crate::warp::{RegSource, Warp};
use crate::witness::{half_sig, replay_block, Ev, WitnessRecorder, WriteBuf};
use g80_isa::compile::{CompiledKernel, Step};
use g80_isa::decode::{DecodedKernel, IssueClass, MemKind, MicroOp, NO_REG};
use g80_isa::exec;
use g80_isa::inst::{Inst, InstClass, Operand, Space};
use g80_isa::row;
use g80_isa::{Kernel, LaneRow, Value};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Grid/block geometry of a launch.
#[derive(Copy, Clone, Debug)]
pub struct LaunchDims {
    pub grid: (u32, u32),
    pub block: (u32, u32, u32),
}

impl LaunchDims {
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1 * self.block.2
    }
    pub fn total_blocks(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64
    }
}

struct Resident {
    warps: Vec<Warp>,
    smem: Vec<Value>,
}

impl Resident {
    fn new(cfg_regs: u32, kernel: &Kernel, dims: &LaunchDims, ctaid: (u32, u32)) -> Self {
        let warps_per_block = dims.threads_per_block().div_ceil(32);
        // The register *file* must cover every register the code names even
        // when the reported count was forced lower for an occupancy
        // ablation (Kernel::with_forced_regs): the report drives
        // scheduling, the code drives storage.
        let file_regs = cfg_regs.max(g80_isa::liveness::num_regs(&kernel.code) as u32);
        let warps = (0..warps_per_block)
            .map(|w| Warp::new(w, file_regs, dims.block, ctaid, dims.grid))
            .collect();
        Resident {
            warps,
            smem: vec![Value::ZERO; (kernel.smem_bytes as usize).div_ceil(4)],
        }
    }

    /// Recycles this slot's register files and shared memory for a new block
    /// of the same launch: equivalent to `Resident::new` with the same
    /// geometry, but without reallocating.
    fn reset(&mut self, ctaid: (u32, u32)) {
        for w in &mut self.warps {
            w.reset(ctaid);
        }
        self.smem.fill(Value::ZERO);
    }

    fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.done)
    }
}

/// One schedule entry: a resident warp plus its cached stall verdict.
#[derive(Copy, Clone)]
struct Slot {
    bi: usize,
    wi: usize,
    /// `(ready_at, reason)` from the last scan that found the warp stalled;
    /// exact until the warp issues, its block releases a barrier, or the
    /// slot is refilled.
    cached: Option<(u64, StallReason)>,
}

/// Reusable per-SM working buffers for the memory path.
#[derive(Default)]
struct Scratch {
    /// Distinct constant-space addresses of one warp access.
    distinct: Vec<u32>,
    /// Distinct texture lines of one warp access.
    lines: Vec<u32>,
}

/// One observed block-refill boundary of the dedup period detector: the
/// absolute progress at the instant the scheduler state had a given
/// (relative) snapshot. A later recurrence of the snapshot yields the
/// per-period deltas by subtraction.
struct Boundary {
    cycle: u64,
    stats: SmStats,
    class_counts: [u64; InstClass::COUNT],
    consumed: usize,
}

/// Distinct boundary states tracked before giving up on period detection
/// (a transient longer than this means the launch is not steady-state).
const DEDUP_MAX_BOUNDARIES: usize = 64;

/// Simulates one SM over its assigned blocks. Deterministic. With `dedup`
/// set (only for witness-eligible kernels, see [`crate::memo::KernelInfo`]),
/// steady-state periods of the block stream are fast-forwarded: timing by
/// recurrence of the scheduler-state snapshot, functional effects by
/// witness-verified replay. Aggregate stats are bit-identical either way.
///
/// When `witness_out` is provided and *every* block this SM executed was
/// verified class-identical to the representative, the representative
/// streams are moved into it. The SM's timing is a deterministic function of
/// its inputs, and every timing-relevant quantity the scheduler consumes is
/// captured by the event streams — so another SM whose equally-long block
/// queue replays clean against the same streams would evolve identically,
/// and may adopt this SM's stats outright (donor-SM reuse in
/// [`crate::launch`]).
pub fn run_sm(
    cfg: &GpuConfig,
    kernel: &Kernel,
    decoded: &DecodedKernel,
    compiled: Option<&CompiledKernel>,
    dims: &LaunchDims,
    params: &[Value],
    mem: &DeviceMemory,
    my_blocks: &[(u32, u32)],
    blocks_per_sm: u32,
    dedup: bool,
    shared_uniform: bool,
    witness_out: Option<&mut Option<Vec<Vec<Ev>>>>,
) -> SmStats {
    // One injection probe per SM invocation: enough for the soak harness to
    // exercise the site at every launch without making the per-launch fault
    // probability scale with grid size.
    crate::fault::poll(crate::fault::Site::SmStep);
    let watchdog = crate::fault::watchdog_cycles();

    let mut stats = SmStats::default();
    let mut next_block: usize = 0;
    let mut resident: Vec<Resident> = Vec::new();
    for _ in 0..blocks_per_sm {
        if next_block < my_blocks.len() {
            let ctaid = my_blocks[next_block];
            next_block += 1;
            resident.push(Resident::new(kernel.regs_per_thread, kernel, dims, ctaid));
        }
    }
    let wpb = dims.threads_per_block().div_ceil(32) as usize;
    let file_regs = kernel
        .regs_per_thread
        .max(g80_isa::liveness::num_regs(&kernel.code) as u32);
    // Dedup only pays off when the grid refills the resident set at least
    // once; otherwise there is no steady state to detect.
    let mut recorder = if dedup && my_blocks.len() > resident.len() {
        Some(WitnessRecorder::new(resident.len(), wpb))
    } else {
        None
    };
    let mut boundaries: HashMap<Vec<u64>, Boundary> = HashMap::new();
    let mut fast_blocks: u64 = 0;

    let mut cycle: u64 = 0;
    let mut chan_free: u64 = 0;
    let mut const_cache = TagCache::new(cfg.const_cache_bytes, 64);
    let mut tex_cache = TagCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes);
    let mut scratch = Scratch::default();
    // Dense per-class instruction counters, folded into the by_class map
    // once at the end (a per-instruction HashMap update is hot-loop cost).
    let mut class_counts = [0u64; InstClass::COUNT];
    let mut row_tally = RowCounters::default();
    let mut rr: usize = 0;

    // The flattened warp schedule, maintained incrementally: every block of
    // a launch has the same warp count, so an in-place refill leaves the
    // schedule unchanged; only removing a slot (grid tail) invalidates it.
    //
    // Each slot also caches the warp's last computed stall verdict. A
    // stalled warp's (ready_at, reason) depends only on its own state
    // (frames, scoreboard, resume_at), which changes exactly when the warp
    // issues, its block releases a barrier, or the slot is refilled with a
    // new block — the three places that clear the cache below. Between
    // those events the scan skips the settle + gate-list recomputation.
    let mut order: Vec<Slot> = Vec::new();
    let mut order_stale = true;
    // A block's all_done() can only flip after some warp retires; gate the
    // retire/refill scan on that event instead of re-checking every
    // scheduler iteration.
    let mut check_retire = true;

    loop {
        if cycle >= watchdog {
            stats.cycles = cycle;
            crate::fault::watchdog_abort(&kernel.name, watchdog, cycle, stats.warp_instructions);
        }
        if check_retire {
            check_retire = false;
            // Retire completed blocks, refill from the queue.
            let mut refilled = false;
            let mut i = 0;
            while i < resident.len() {
                if resident[i].all_done() {
                    stats.blocks_executed += 1;
                    if let Some(rec) = recorder.as_mut() {
                        rec.on_retire(i);
                    }
                    if next_block < my_blocks.len() {
                        let ctaid = my_blocks[next_block];
                        next_block += 1;
                        resident[i].reset(ctaid);
                        for s in order.iter_mut() {
                            if s.bi == i {
                                s.cached = None;
                            }
                        }
                        refilled = true;
                        i += 1;
                    } else {
                        // Grid tail: drop the slot's witness state so the
                        // remaining slot indices realign (no fast-forward is
                        // possible with an empty queue, but the per-block
                        // verification must survive for donor-SM reuse).
                        if let Some(rec) = recorder.as_mut() {
                            rec.on_remove(i);
                        }
                        resident.remove(i);
                        order_stale = true;
                    }
                } else {
                    i += 1;
                }
            }

            // Period detection + fast-forward, at block-refill boundaries.
            if refilled && !order_stale {
                if let Some(rec) = recorder.as_mut() {
                    if rec.valid && rec.rep_done() && next_block < my_blocks.len() {
                        debug_assert_eq!(order.len(), resident.len() * wpb);
                        let snap =
                            dedup_snapshot(&resident, &order, wpb, rr, cycle, chan_free, rec);
                        let n_boundaries = boundaries.len();
                        match boundaries.entry(snap) {
                            Entry::Occupied(occ) => {
                                let b = occ.get();
                                let d_cycle = cycle - b.cycle;
                                let d_consumed = next_block - b.consumed;
                                if d_consumed > 0
                                    && d_cycle > 0
                                    && my_blocks.len() - next_block >= 2 * d_consumed
                                {
                                    // The skipped windows also involve the
                                    // currently resident blocks: their full
                                    // event streams must match the
                                    // representative for the measured deltas
                                    // to transfer to them.
                                    let residents_ok = resident.iter().all(|r| {
                                        let mut dry = WriteBuf::default();
                                        replay_block(
                                            cfg,
                                            kernel,
                                            decoded,
                                            dims,
                                            params,
                                            mem,
                                            r.warps[0].ctaid,
                                            file_regs,
                                            rec.rep(),
                                            &mut dry,
                                            shared_uniform,
                                        )
                                    });
                                    if !residents_ok {
                                        crate::memo::count_dedup_fallback();
                                        rec.valid = false;
                                    } else {
                                        let d_stats = stats.delta_since(&b.stats);
                                        let mut d_class = [0u64; InstClass::COUNT];
                                        for (dc, (now, base)) in d_class
                                            .iter_mut()
                                            .zip(class_counts.iter().zip(b.class_counts.iter()))
                                        {
                                            *dc = now - base;
                                        }
                                        while my_blocks.len() - next_block >= 2 * d_consumed {
                                            let mut buf = WriteBuf::default();
                                            let ok = (0..d_consumed).all(|j| {
                                                replay_block(
                                                    cfg,
                                                    kernel,
                                                    decoded,
                                                    dims,
                                                    params,
                                                    mem,
                                                    my_blocks[next_block + j],
                                                    file_regs,
                                                    rec.rep(),
                                                    &mut buf,
                                                    shared_uniform,
                                                )
                                            });
                                            if !ok {
                                                // Nothing committed: fall back
                                                // to full simulation from this
                                                // exact state.
                                                crate::memo::count_dedup_fallback();
                                                rec.valid = false;
                                                break;
                                            }
                                            buf.commit(mem);
                                            next_block += d_consumed;
                                            fast_blocks += d_consumed as u64;
                                            stats.add_delta(&d_stats);
                                            for (cc, dc) in
                                                class_counts.iter_mut().zip(d_class.iter())
                                            {
                                                *cc += dc;
                                            }
                                            // Shift every absolute-cycle value
                                            // uniformly; all scheduler
                                            // comparisons are invariant under
                                            // this.
                                            cycle += d_cycle;
                                            chan_free += d_cycle;
                                            for r in resident.iter_mut() {
                                                for w in r.warps.iter_mut() {
                                                    for t in w.reg_ready.iter_mut() {
                                                        *t += d_cycle;
                                                    }
                                                    w.resume_at += d_cycle;
                                                }
                                            }
                                            for s in order.iter_mut() {
                                                if let Some((t, _)) = s.cached.as_mut() {
                                                    *t += d_cycle;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            Entry::Vacant(v) => {
                                if n_boundaries < DEDUP_MAX_BOUNDARIES {
                                    v.insert(Boundary {
                                        cycle,
                                        stats: stats.clone(),
                                        class_counts,
                                        consumed: next_block,
                                    });
                                } else {
                                    // Transient too long: stop paying the
                                    // recording overhead.
                                    rec.valid = false;
                                }
                            }
                        }
                    }
                }
            }
        }
        if resident.is_empty() {
            break;
        }

        if order_stale {
            order_stale = false;
            order.clear();
            for (bi, r) in resident.iter().enumerate() {
                for wi in 0..r.warps.len() {
                    order.push(Slot {
                        bi,
                        wi,
                        cached: None,
                    });
                }
            }
        }
        let n = order.len();

        // Scan for a ready warp, remembering the earliest future candidate.
        let mut issued = false;
        let mut best_next: u64 = u64::MAX;
        let mut best_reason = StallReason::Drain;
        for k in 0..n {
            let idx = (rr + k) % n;
            let Slot { bi, wi, cached } = order[idx];
            let block = &mut resident[bi];
            let warp = &mut block.warps[wi];
            if warp.done || warp.at_barrier {
                continue;
            }
            let (ready_at, reason) = match cached {
                Some(c) => c,
                None => {
                    if !warp.settle() {
                        check_retire = true;
                        continue; // retired just now
                    }
                    let pc = warp.pc() as usize;
                    let mop = &decoded.ops[pc];
                    let (reg_ready, gate) = inst_ready(warp, mop);
                    // A post-barrier pipeline drain dominates register
                    // readiness: attribute that wait to the barrier, not
                    // the ALU/memory.
                    let reason = if warp.resume_at > reg_ready {
                        StallReason::Barrier
                    } else {
                        match gate {
                            Some(RegSource::Memory) => StallReason::Memory,
                            Some(RegSource::Alu) => StallReason::AluDependency,
                            // Defensive: gate is None only when no register
                            // is pending, and then the wait is a barrier
                            // drain (handled above) — unreachable today.
                            None => StallReason::IssueBusy,
                        }
                    };
                    (reg_ready.max(warp.resume_at), reason)
                }
            };
            if ready_at <= cycle {
                let pc = warp.pc() as usize;
                let mop = &decoded.ops[pc];
                let pre_mask = warp.active_mask();
                let record = recorder.as_ref().is_some_and(|r| r.valid);
                let step = compiled.map_or(Step::Interp, |c| c.step(pc));
                let (dur, ev_aux, ev_bytes) = match step {
                    Step::Enter(ri) => {
                        // First instruction of a compiled region: run the
                        // whole region's functional effects (and precompute
                        // each op's timing aux), then charge this
                        // instruction's timing.
                        let (region, _) = compiled.unwrap().region_at(ri, pc);
                        let (warps, smem) = (&mut block.warps, &mut block.smem);
                        let warp = &mut warps[wi];
                        crate::compiled::run_region(
                            region,
                            warp,
                            smem,
                            params,
                            &kernel.name,
                            cfg,
                            &mut row_tally,
                        );
                        let aux = warp.region_aux[0];
                        let dur =
                            timed_step(cfg, warp, mop, aux, cycle, &mut stats, &mut class_counts);
                        (dur, aux, 0)
                    }
                    Step::Timed(ri) => {
                        // Interior of a compiled region: the functional work
                        // already ran at entry; timing only.
                        let (_, off) = compiled.unwrap().region_at(ri, pc);
                        let warp = &mut block.warps[wi];
                        let aux = warp.region_aux[off];
                        let dur =
                            timed_step(cfg, warp, mop, aux, cycle, &mut stats, &mut class_counts);
                        (dur, aux, 0)
                    }
                    Step::Interp => {
                        let mut ctx = ExecCtx {
                            cfg,
                            kernel,
                            params,
                            mem,
                            stats: &mut stats,
                            chan_free: &mut chan_free,
                            const_cache: &mut const_cache,
                            tex_cache: &mut tex_cache,
                            scratch: &mut scratch,
                            class_counts: &mut class_counts,
                            cycle,
                            record,
                            ev_aux: 0,
                            ev_bytes: 0,
                            rows: &mut row_tally,
                        };
                        let dur = ctx.execute(block, wi, mop);
                        (dur, ctx.ev_aux, ctx.ev_bytes)
                    }
                };
                cycle += dur;
                rr = (rr + k + 1) % n;
                issued = true;
                order[idx].cached = None; // the warp advanced
                if record {
                    if let Some(rec) = recorder.as_mut() {
                        rec.record(bi, wi, Ev::new(pc as u32, pre_mask, ev_aux, ev_bytes));
                    }
                }

                // Barrier release: if every live warp of the block is now
                // parked, free them all. This must be checked both when a
                // warp parks AND when a warp exits — an exiting warp can be
                // the last one its parked siblings were waiting for.
                let block = &mut resident[bi];
                if block.warps[wi].done {
                    check_retire = true;
                }
                if block.warps[wi].at_barrier || block.warps[wi].done {
                    let any_parked = block.warps.iter().any(|w| w.at_barrier);
                    let all_parked = block.warps.iter().all(|w| w.done || w.at_barrier);
                    if any_parked && all_parked {
                        let resume = cycle + cfg.barrier_latency;
                        for w in block.warps.iter_mut() {
                            w.at_barrier = false;
                            w.resume_at = resume;
                        }
                        // resume_at moved for the whole block.
                        for s in order.iter_mut() {
                            if s.bi == bi {
                                s.cached = None;
                            }
                        }
                    }
                }
                break;
            } else {
                order[idx].cached = Some((ready_at, reason));
                if ready_at < best_next {
                    best_next = ready_at;
                    best_reason = reason;
                }
            }
        }

        if issued {
            continue;
        }

        if best_next == u64::MAX {
            // Every live warp is parked at a barrier but the block never
            // filled — or warps retired during the scan (check_retire is
            // set, so the retire loop runs next). A genuine deadlock
            // (divergent barrier) is a kernel bug.
            let any_live = resident
                .iter()
                .any(|b| b.warps.iter().any(|w| !w.done && !w.at_barrier));
            let all_done = resident.iter().all(|b| b.all_done());
            if !any_live && !all_done {
                panic!(
                    "kernel {}: deadlock — all warps parked at a barrier",
                    kernel.name
                );
            }
            continue;
        }

        // Nothing ready: event-skip to the earliest candidate.
        let skip = best_next.saturating_sub(cycle).max(1);
        stats.stall(best_reason, skip);
        cycle += skip;
    }

    for c in InstClass::ALL {
        let n = class_counts[c.index()];
        if n > 0 {
            *stats.by_class.entry(c).or_insert(0) += n;
        }
    }
    stats.cycles = cycle;
    crate::counters::add_row_counts(row_tally);
    if dedup {
        crate::memo::count_dedup_fast_blocks(fast_blocks);
        crate::memo::count_dedup_sim_blocks(my_blocks.len() as u64 - fast_blocks);
    }
    if let (Some(out), Some(rec)) = (witness_out, recorder.as_mut()) {
        *out = rec.take_verified();
    }
    stats
}

/// The compiled engine's per-instruction timing step: statistics, scoreboard
/// update, pc advance, and issue-port occupancy for an instruction whose
/// functional effects already ran at region entry
/// ([`crate::compiled::run_region`]). Must mirror the timing arms of
/// [`ExecCtx::execute`] exactly — `golden_stats` asserts bit-identical
/// [`crate::KernelStats`] across engines. `aux` is the precomputed
/// shared-memory bank-conflict degree (0 for pure ops).
#[inline]
fn timed_step(
    cfg: &GpuConfig,
    warp: &mut Warp,
    mop: &MicroOp,
    aux: u32,
    cycle: u64,
    stats: &mut SmStats,
    class_counts: &mut [u64; InstClass::COUNT],
) -> u64 {
    let lanes = warp.active_mask().count_ones();
    stats.warp_instructions += 1;
    stats.thread_instructions += lanes as u64;
    stats.flops += mop.flops as u64 * lanes as u64;
    class_counts[mop.class.index()] += 1;
    let dur = match mop.mem {
        Some(MemKind::Load(Space::Shared)) => {
            let extra = cfg.issue_cycles * (aux as u64 - 1);
            stats.smem_conflict_extra_cycles += extra;
            warp.reg_ready[mop.dst as usize] = cycle + cfg.smem_latency + extra;
            warp.reg_source[mop.dst as usize] = RegSource::Alu;
            cfg.issue_cycles + extra
        }
        Some(MemKind::Store(Space::Shared)) => {
            let extra = cfg.issue_cycles * (aux as u64 - 1);
            stats.smem_conflict_extra_cycles += extra;
            cfg.issue_cycles + extra
        }
        _ => {
            // A pure op: exactly one register row write, scoreboarded at
            // ALU (or SFU) latency.
            let (done, occupancy) = match mop.issue {
                IssueClass::Sfu => (cycle + cfg.sfu_latency, cfg.sfu_issue_cycles),
                IssueClass::Imul => (cycle + cfg.alu_latency, cfg.imul_issue_cycles),
                IssueClass::Normal => (cycle + cfg.alu_latency, cfg.issue_cycles),
            };
            if mop.dst != NO_REG {
                warp.reg_ready[mop.dst as usize] = done;
                warp.reg_source[mop.dst as usize] = RegSource::Alu;
            }
            occupancy
        }
    };
    warp.advance();
    dur
}

/// Maps a stall reason to a stable snapshot code.
fn stall_code(r: StallReason) -> u64 {
    match r {
        StallReason::Memory => 1,
        StallReason::AluDependency => 2,
        StallReason::Barrier => 3,
        StallReason::IssueBusy => 4,
        StallReason::Drain => 5,
    }
}

/// Serializes the scheduler's timing-relevant state *relative to the current
/// cycle* at a block-refill boundary. Two boundaries with equal snapshots
/// (plus witness-verified block streams) evolve identically, so the machine
/// is periodic between them.
///
/// Values already in the past are canonicalized to 0 — the scheduler only
/// ever compares them against `cycle`, never against each other on a path
/// that matters: a warp whose `ready_at` is past issues regardless of the
/// gate attribution, so the attribution is dropped for rel 0 entries.
fn dedup_snapshot(
    resident: &[Resident],
    order: &[Slot],
    wpb: usize,
    rr: usize,
    cycle: u64,
    chan_free: u64,
    rec: &WitnessRecorder,
) -> Vec<u64> {
    let mut s = Vec::with_capacity(4 + resident.len() * wpb * 8);
    s.push(resident.len() as u64);
    s.push(rr as u64);
    s.push(chan_free.saturating_sub(cycle));
    for (bi, r) in resident.iter().enumerate() {
        for (wi, w) in r.warps.iter().enumerate() {
            s.push(((w.done as u64) << 1) | w.at_barrier as u64);
            s.push(w.resume_at.saturating_sub(cycle));
            s.push(w.frames.len() as u64);
            for f in &w.frames {
                s.push(((f.pc as u64) << 32) | f.rpc as u64);
                s.push(f.mask as u64);
            }
            for (ri, &t) in w.reg_ready.iter().enumerate() {
                let rel = t.saturating_sub(cycle);
                let src = if rel > 0 {
                    matches!(w.reg_source[ri], RegSource::Memory) as u64
                } else {
                    0
                };
                s.push((rel << 1) | src);
            }
            // Witness cursor: the same pc at different loop iterations of
            // the block must not alias.
            s.push(rec.cursor(bi, wi) as u64);
            s.push(match order[bi * wpb + wi].cached {
                None => u64::MAX,
                Some((t, reason)) => {
                    let rel = t.saturating_sub(cycle);
                    if rel == 0 {
                        0
                    } else {
                        (rel << 3) | stall_code(reason)
                    }
                }
            });
        }
    }
    s
}

/// (earliest cycle at which the instruction's registers are ready, the
/// source kind of the gating register).
///
/// The micro-op's precomputed gate set lists exactly the registers the
/// reference engine's operand walk would consider, in the same order, so
/// the strict-`>` max keeps the same gate attribution.
#[inline]
fn inst_ready(warp: &Warp, mop: &MicroOp) -> (u64, Option<RegSource>) {
    let mut t = 0u64;
    let mut gate = None;
    for &r in mop.gate_regs() {
        let ready = warp.reg_ready[r as usize];
        if ready > t {
            t = ready;
            gate = Some(warp.reg_source[r as usize]);
        }
    }
    (t, gate)
}

struct ExecCtx<'a> {
    cfg: &'a GpuConfig,
    kernel: &'a Kernel,
    params: &'a [Value],
    mem: &'a DeviceMemory,
    stats: &'a mut SmStats,
    chan_free: &'a mut u64,
    const_cache: &'a mut TagCache,
    tex_cache: &'a mut TagCache,
    scratch: &'a mut Scratch,
    class_counts: &'a mut [u64; InstClass::COUNT],
    cycle: u64,
    /// Dedup witness recording active: the memory/branch paths below fill
    /// `ev_aux`/`ev_bytes` with the instruction's timing signature, exactly
    /// mirroring what [`crate::witness`]'s replay executor recomputes.
    record: bool,
    ev_aux: u32,
    ev_bytes: u32,
    /// Per-SM row-shape tally (flushed to the process-wide counters once
    /// per `run_sm`).
    rows: &'a mut RowCounters,
}

/// Per-lane effective addresses of a memory instruction (the address
/// operand is resolved once for the whole warp).
#[inline]
pub(crate) fn addr_row(warp: &Warp, addr_op: Operand, off: i32, params: &[Value]) -> [u32; 32] {
    let row = warp.operand_row(addr_op, params);
    std::array::from_fn(|l| row[l].as_u32().wrapping_add(off as u32))
}

/// The shape of a memory instruction's per-lane effective-address row
/// (`operand + off`): the immediate offset shifts the base and preserves
/// the stride. `Full` means no closed form — fall back to [`addr_row`].
#[inline]
pub(crate) fn addr_shape(warp: &Warp, addr_op: Operand, off: i32, params: &[Value]) -> LaneRow {
    match warp.operand_shape(addr_op, params) {
        LaneRow::Uniform(v) => LaneRow::Uniform(Value(v.0.wrapping_add(off as u32))),
        LaneRow::Affine { base, stride } => LaneRow::Affine {
            base: base.wrapping_add(off as u32),
            stride,
        },
        LaneRow::Full => LaneRow::Full,
    }
}

/// Splits an address row into the two half-warp arrays the coalescing and
/// bank-conflict models consume (active lanes only).
#[inline]
pub(crate) fn split_half_warps(
    addrs: &[u32; 32],
    mask: u32,
) -> ([Option<u32>; 16], [Option<u32>; 16]) {
    let mut lo = [None; 16];
    let mut hi = [None; 16];
    for lane in 0..32 {
        if mask >> lane & 1 == 1 {
            if lane < 16 {
                lo[lane] = Some(addrs[lane]);
            } else {
                hi[lane - 16] = Some(addrs[lane]);
            }
        }
    }
    (lo, hi)
}

impl<'a> ExecCtx<'a> {
    /// Issues a global-memory request of `bytes` through this SM's channel
    /// slice; returns the completion cycle.
    fn memory_request(&mut self, bytes: u64) -> u64 {
        let bpc = self.cfg.dram_bytes_per_cycle_per_sm();
        let start = self.cycle.max(*self.chan_free);
        let service = (bytes as f64 / bpc).ceil() as u64;
        *self.chan_free = start + service;
        start + self.cfg.global_latency
    }

    /// Executes the next instruction of warp `wi` in `block`. Returns the
    /// issue-port occupancy in cycles.
    fn execute(&mut self, block: &mut Resident, wi: usize, mop: &MicroOp) -> u64 {
        let cfg = self.cfg;
        let smem_len = block.smem.len();
        let warp = &mut block.warps[wi];
        let pc = warp.pc() as usize;
        let inst = mop.inst;
        let mask = warp.active_mask();
        let lanes = mask.count_ones();
        self.stats.warp_instructions += 1;
        self.stats.thread_instructions += lanes as u64;
        self.stats.flops += mop.flops as u64 * lanes as u64;
        self.class_counts[mop.class.index()] += 1;

        let alu_done = self.cycle + cfg.alu_latency;
        // Row-shape fold fast paths: under a full active mask, an
        // instruction whose operand shapes fold produces its entire result
        // row as one `LaneRow` tag — no lane evaluation, no backing-store
        // write. Gated on `rows_enabled` (immediates/params are `Uniform`
        // even with tracking off and would otherwise fold). Folds are
        // bit-exact by construction (`g80_isa::row` tests), so the
        // scoreboard/timing effects below mirror the eager arms verbatim.
        let fold = warp.rows_enabled && mask == u32::MAX;
        match inst {
            Inst::Alu { op, dst, a, b } => {
                if fold {
                    let sa = warp.operand_shape(a, self.params);
                    let sb = warp.operand_shape(b, self.params);
                    if let Some(shape) = row::fold_alu(op, sa, sb) {
                        warp.set_shape(dst.0, shape);
                        self.rows.tally(&shape);
                        warp.reg_ready[dst.0 as usize] = alu_done;
                        warp.reg_source[dst.0 as usize] = RegSource::Alu;
                        warp.advance();
                        return if mop.issue == IssueClass::Imul {
                            cfg.imul_issue_cycles
                        } else {
                            cfg.issue_cycles
                        };
                    }
                }
                self.rows.full += 1;
                let ar = warp.operand_row(a, self.params);
                let br = warp.operand_row(b, self.params);
                exec::eval_alu_row(op, &ar, &br, warp.reg_row_mut(dst.0), mask);
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                if mop.issue == IssueClass::Imul {
                    cfg.imul_issue_cycles
                } else {
                    cfg.issue_cycles
                }
            }
            Inst::Ffma { dst, a, b, c } => {
                if fold {
                    let sa = warp.operand_shape(a, self.params);
                    let sb = warp.operand_shape(b, self.params);
                    let sc = warp.operand_shape(c, self.params);
                    if let Some(shape) = row::fold_ffma(sa, sb, sc) {
                        warp.set_shape(dst.0, shape);
                        self.rows.tally(&shape);
                        warp.reg_ready[dst.0 as usize] = alu_done;
                        warp.reg_source[dst.0 as usize] = RegSource::Alu;
                        warp.advance();
                        return cfg.issue_cycles;
                    }
                }
                self.rows.full += 1;
                let ar = warp.operand_row(a, self.params);
                let br = warp.operand_row(b, self.params);
                let cr = warp.operand_row(c, self.params);
                exec::eval_ffma_row(&ar, &br, &cr, warp.reg_row_mut(dst.0), mask);
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Imad { dst, a, b, c } => {
                if fold {
                    let sa = warp.operand_shape(a, self.params);
                    let sb = warp.operand_shape(b, self.params);
                    let sc = warp.operand_shape(c, self.params);
                    if let Some(shape) = row::fold_imad(sa, sb, sc) {
                        warp.set_shape(dst.0, shape);
                        self.rows.tally(&shape);
                        warp.reg_ready[dst.0 as usize] = alu_done;
                        warp.reg_source[dst.0 as usize] = RegSource::Alu;
                        warp.advance();
                        return cfg.imul_issue_cycles;
                    }
                }
                self.rows.full += 1;
                let ar = warp.operand_row(a, self.params);
                let br = warp.operand_row(b, self.params);
                let cr = warp.operand_row(c, self.params);
                exec::eval_imad_row(&ar, &br, &cr, warp.reg_row_mut(dst.0), mask);
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.imul_issue_cycles
            }
            Inst::Un { op, dst, a } => {
                if fold {
                    let sa = warp.operand_shape(a, self.params);
                    if let Some(shape) = row::fold_un(op, sa) {
                        warp.set_shape(dst.0, shape);
                        self.rows.tally(&shape);
                        warp.reg_ready[dst.0 as usize] = alu_done;
                        warp.reg_source[dst.0 as usize] = RegSource::Alu;
                        warp.advance();
                        return cfg.issue_cycles;
                    }
                }
                self.rows.full += 1;
                let ar = warp.operand_row(a, self.params);
                exec::eval_un_row(op, &ar, warp.reg_row_mut(dst.0), mask);
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Sfu { op, dst, a } => {
                if fold {
                    let sa = warp.operand_shape(a, self.params);
                    if let Some(shape) = row::fold_sfu(op, sa) {
                        warp.set_shape(dst.0, shape);
                        self.rows.tally(&shape);
                        warp.reg_ready[dst.0 as usize] = self.cycle + cfg.sfu_latency;
                        warp.reg_source[dst.0 as usize] = RegSource::Alu;
                        warp.advance();
                        return cfg.sfu_issue_cycles;
                    }
                }
                self.rows.full += 1;
                let ar = warp.operand_row(a, self.params);
                exec::eval_sfu_row(op, &ar, warp.reg_row_mut(dst.0), mask);
                warp.reg_ready[dst.0 as usize] = self.cycle + cfg.sfu_latency;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.sfu_issue_cycles
            }
            Inst::SetP { op, ty, dst, a, b } => {
                if fold {
                    let sa = warp.operand_shape(a, self.params);
                    let sb = warp.operand_shape(b, self.params);
                    if let Some(shape) = row::fold_cmp(op, ty, sa, sb) {
                        warp.set_shape(dst.0, shape);
                        self.rows.tally(&shape);
                        warp.reg_ready[dst.0 as usize] = alu_done;
                        warp.reg_source[dst.0 as usize] = RegSource::Alu;
                        warp.advance();
                        return cfg.issue_cycles;
                    }
                }
                self.rows.full += 1;
                let ar = warp.operand_row(a, self.params);
                let br = warp.operand_row(b, self.params);
                exec::eval_cmp_row(op, ty, &ar, &br, warp.reg_row_mut(dst.0), mask);
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Sel { dst, c, a, b } => {
                if fold {
                    let sc = warp.operand_shape(c, self.params);
                    let sa = warp.operand_shape(a, self.params);
                    let sb = warp.operand_shape(b, self.params);
                    if let Some(shape) = row::fold_sel(sc, sa, sb) {
                        warp.set_shape(dst.0, shape);
                        self.rows.tally(&shape);
                        warp.reg_ready[dst.0 as usize] = alu_done;
                        warp.reg_source[dst.0 as usize] = RegSource::Alu;
                        warp.advance();
                        return cfg.issue_cycles;
                    }
                }
                self.rows.full += 1;
                let cr = warp.operand_row(c, self.params);
                let ar = warp.operand_row(a, self.params);
                let br = warp.operand_row(b, self.params);
                exec::eval_sel_row(&cr, &ar, &br, warp.reg_row_mut(dst.0), mask);
                warp.reg_ready[dst.0 as usize] = alu_done;
                warp.reg_source[dst.0 as usize] = RegSource::Alu;
                warp.advance();
                cfg.issue_cycles
            }
            Inst::Ld {
                space,
                dst,
                addr,
                off,
            } => {
                let dur = self.do_load(block, wi, space, dst.0, addr, off, smem_len);
                block.warps[wi].advance();
                dur
            }
            Inst::St {
                space,
                addr,
                off,
                src,
            } => {
                let dur = self.do_store(block, wi, space, addr, off, src, smem_len);
                block.warps[wi].advance();
                dur
            }
            Inst::Atom {
                op,
                space,
                dst,
                addr,
                off,
                src,
            } => {
                debug_assert!(!self.record, "dedup witness on atomic");
                let (warps, smem) = (&mut block.warps, &mut block.smem);
                let warp = &mut warps[wi];
                let addrs = addr_row(warp, addr, off, self.params);
                let srcs = warp.operand_row(src, self.params);
                let completion;
                match space {
                    Space::Global => {
                        let mut bytes = 0u64;
                        for lane in 0..32 {
                            if mask >> lane & 1 == 1 {
                                let old = self.mem.atomic(op, addrs[lane], srcs[lane]);
                                if let Some(d) = dst {
                                    warp.set_reg(d.0, lane, old);
                                }
                                bytes += cfg.uncoalesced_txn_bytes as u64;
                                self.stats.atomic_transactions += 1;
                            }
                        }
                        self.stats.global_bytes += bytes;
                        completion = self.memory_request(bytes);
                    }
                    Space::Shared => {
                        for lane in 0..32 {
                            if mask >> lane & 1 == 1 {
                                let idx = (addrs[lane] / 4) as usize;
                                assert!(idx < smem_len, "shared atomic out of bounds");
                                let (new, old) = exec::eval_atom(op, smem[idx], srcs[lane]);
                                smem[idx] = new;
                                if let Some(d) = dst {
                                    warp.set_reg(d.0, lane, old);
                                }
                                self.stats.atomic_transactions += 1;
                            }
                        }
                        completion = self.cycle + cfg.smem_latency;
                    }
                    _ => panic!("atomics only on global/shared memory"),
                }
                if let Some(d) = dst {
                    warp.reg_ready[d.0 as usize] = completion;
                    warp.reg_source[d.0 as usize] = RegSource::Memory;
                }
                warp.advance();
                // Atomics serialize per distinct address; charge per lane.
                cfg.issue_cycles + 2 * (lanes.saturating_sub(1)) as u64
            }
            Inst::Bra {
                target,
                reconv,
                pred,
            } => {
                let warp = &mut block.warps[wi];
                let next_pc = pc as u32 + 1;
                match pred {
                    None => {
                        let m = warp.active_mask();
                        if self.record {
                            self.ev_aux = m;
                        }
                        warp.take_branch(m, target.0, reconv.0, next_pc);
                    }
                    Some(p) => {
                        let taken = warp.taken_mask(p.reg.0, p.negate, mask);
                        if self.record {
                            self.ev_aux = taken;
                        }
                        if warp.take_branch(taken, target.0, reconv.0, next_pc) {
                            self.stats.divergent_branches += 1;
                        }
                    }
                }
                cfg.issue_cycles
            }
            Inst::Bar => {
                let warp = &mut block.warps[wi];
                // Converged means a single divergence frame: lanes that
                // exited earlier are excluded from every frame, so comparing
                // against init_mask would wrongly reject legal barriers after
                // partial-warp exits.
                assert_eq!(
                    warp.frames.len(),
                    1,
                    "kernel {}: __syncthreads() in divergent control flow",
                    self.kernel.name
                );
                warp.advance();
                warp.at_barrier = true;
                cfg.issue_cycles
            }
            Inst::Exit => {
                let warp = &mut block.warps[wi];
                let m = warp.active_mask();
                warp.exit_lanes(m);
                warp.settle();
                cfg.issue_cycles
            }
        }
    }

    fn do_load(
        &mut self,
        block: &mut Resident,
        wi: usize,
        space: Space,
        dst: u32,
        addr: Operand,
        off: i32,
        smem_len: usize,
    ) -> u64 {
        let cfg = self.cfg;
        let (warps, smem) = (&mut block.warps, &block.smem);
        let warp = &mut warps[wi];
        let mask = warp.active_mask();
        match space {
            Space::Global => {
                // Affine-address fast path: coalescing degree of both
                // halves in closed form; the per-lane work shrinks to the
                // functional reads.
                if warp.rows_enabled && mask == u32::MAX {
                    let ashape = addr_shape(warp, addr, off, self.params);
                    if let Some((base, stride)) = ashape.base_stride() {
                        let hi_base = base.wrapping_add(stride.wrapping_mul(16));
                        if let (Some(lo), Some(hi)) = (
                            coalesce_affine_half(cfg, base, stride),
                            coalesce_affine_half(cfg, hi_base, stride),
                        ) {
                            self.rows.tally(&ashape);
                            let mut bytes = 0u64;
                            for (i, acc) in [&lo, &hi].into_iter().enumerate() {
                                if acc.coalesced {
                                    self.stats.coalesced_half_warps += 1;
                                } else {
                                    self.stats.uncoalesced_half_warps += 1;
                                }
                                self.stats.global_ld_transactions += acc.transactions as u64;
                                if self.record {
                                    self.ev_aux |= half_sig(acc) << (16 * i);
                                }
                                bytes += acc.bytes;
                            }
                            self.stats.global_bytes += bytes;
                            if self.record {
                                self.ev_bytes = bytes as u32;
                            }
                            let dst_row = warp.reg_row_mut(dst);
                            let mut a = base;
                            for slot in dst_row.iter_mut() {
                                *slot = self.mem.read(a);
                                a = a.wrapping_add(stride);
                            }
                            let done = self.memory_request(bytes);
                            warp.reg_ready[dst as usize] = done;
                            warp.reg_source[dst as usize] = RegSource::Memory;
                            return cfg.issue_cycles;
                        }
                    }
                }
                self.rows.full += 1;
                let addrs = addr_row(warp, addr, off, self.params);
                let (lo, hi) = split_half_warps(&addrs, mask);
                let mut bytes = 0u64;
                for (i, half) in [&lo, &hi].into_iter().enumerate() {
                    let acc = coalesce_half_warp_noalloc(cfg, half);
                    if acc.transactions > 0 {
                        if acc.coalesced {
                            self.stats.coalesced_half_warps += 1;
                        } else {
                            self.stats.uncoalesced_half_warps += 1;
                        }
                        self.stats.global_ld_transactions += acc.transactions as u64;
                        if self.record {
                            self.ev_aux |= half_sig(&acc) << (16 * i);
                        }
                        bytes += acc.bytes;
                    }
                }
                self.stats.global_bytes += bytes;
                if self.record {
                    self.ev_bytes = bytes as u32;
                }
                for (lane, &a) in addrs.iter().enumerate() {
                    if mask >> lane & 1 == 1 {
                        let v = self.mem.read(a);
                        warp.set_reg(dst, lane, v);
                    }
                }
                let done = self.memory_request(bytes);
                warp.reg_ready[dst as usize] = done;
                warp.reg_source[dst as usize] = RegSource::Memory;
                cfg.issue_cycles
            }
            Space::Shared => {
                // Affine-address fast path: the bank-conflict degree is
                // base-independent and identical for both halves, so one
                // closed-form evaluation replaces both scans.
                if warp.rows_enabled && mask == u32::MAX {
                    let ashape = addr_shape(warp, addr, off, self.params);
                    if let Some((base, stride)) = ashape.base_stride() {
                        if let Some(degree) = smem_degree_affine(cfg, stride) {
                            self.rows.tally(&ashape);
                            let extra = cfg.issue_cycles * (degree as u64 - 1);
                            self.stats.smem_conflict_extra_cycles += extra;
                            if self.record {
                                self.ev_aux = degree;
                            }
                            let dst_row = warp.reg_row_mut(dst);
                            let mut a = base;
                            for slot in dst_row.iter_mut() {
                                let idx = (a / 4) as usize;
                                assert!(
                                    idx < smem_len,
                                    "kernel {}: shared load out of bounds ({} >= {})",
                                    self.kernel.name,
                                    idx,
                                    smem_len
                                );
                                *slot = smem[idx];
                                a = a.wrapping_add(stride);
                            }
                            warp.reg_ready[dst as usize] = self.cycle + cfg.smem_latency + extra;
                            warp.reg_source[dst as usize] = RegSource::Alu;
                            return cfg.issue_cycles + extra;
                        }
                    }
                }
                self.rows.full += 1;
                let addrs = addr_row(warp, addr, off, self.params);
                let (lo, hi) = split_half_warps(&addrs, mask);
                let degree = smem_conflict_degree_noalloc(cfg, &lo)
                    .max(smem_conflict_degree_noalloc(cfg, &hi));
                let extra = cfg.issue_cycles * (degree as u64 - 1);
                self.stats.smem_conflict_extra_cycles += extra;
                if self.record {
                    self.ev_aux = degree;
                }
                let dst_row = warp.reg_row_mut(dst);
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let idx = (addrs[lane] / 4) as usize;
                        assert!(
                            idx < smem_len,
                            "kernel {}: shared load out of bounds ({} >= {})",
                            self.kernel.name,
                            idx,
                            smem_len
                        );
                        dst_row[lane] = smem[idx];
                    }
                }
                warp.reg_ready[dst as usize] = self.cycle + cfg.smem_latency + extra;
                warp.reg_source[dst as usize] = RegSource::Alu;
                cfg.issue_cycles + extra
            }
            Space::Const => {
                debug_assert!(!self.record, "dedup witness on constant-cache load");
                // Distinct addresses within the warp serialize; each line
                // goes through the per-SM constant cache. A broadcast (one
                // address) is as fast as a register read. The distinct-set
                // buffer is per-SM scratch, reused across accesses.
                let addrs = addr_row(warp, addr, off, self.params);
                let distinct = &mut self.scratch.distinct;
                distinct.clear();
                for (lane, &a) in addrs.iter().enumerate() {
                    if mask >> lane & 1 == 1 {
                        if !distinct.contains(&a) {
                            distinct.push(a);
                        }
                        let v = self.mem.read_const(a);
                        warp.set_reg(dst, lane, v);
                    }
                }
                let mut miss_bytes = 0u64;
                for &a in distinct.iter() {
                    if self.const_cache.access(a) {
                        self.stats.const_hits += 1;
                    } else {
                        self.stats.const_misses += 1;
                        miss_bytes += 64;
                    }
                }
                // Serialization beyond the broadcast case.
                let ser = (distinct.len().max(1) as u64 - 1) * 2;
                let ready = if miss_bytes > 0 {
                    self.stats.global_bytes += miss_bytes;
                    self.memory_request(miss_bytes)
                } else {
                    self.cycle + cfg.const_hit_latency
                };
                warp.reg_ready[dst as usize] = ready;
                warp.reg_source[dst as usize] = if miss_bytes > 0 {
                    RegSource::Memory
                } else {
                    RegSource::Alu
                };
                cfg.issue_cycles + ser
            }
            Space::Tex => {
                debug_assert!(!self.record, "dedup witness on texture-cache load");
                let addrs = addr_row(warp, addr, off, self.params);
                let lines = &mut self.scratch.lines;
                lines.clear();
                for (lane, &a) in addrs.iter().enumerate() {
                    if mask >> lane & 1 == 1 {
                        let g = self.mem.tex_to_global(a);
                        let line = g / cfg.tex_line_bytes;
                        if !lines.contains(&line) {
                            lines.push(line);
                        }
                        let v = self.mem.read(g);
                        warp.set_reg(dst, lane, v);
                    }
                }
                let mut miss_bytes = 0u64;
                for i in 0..lines.len() {
                    let line = self.scratch.lines[i];
                    if self.tex_cache.access(line * cfg.tex_line_bytes) {
                        self.stats.tex_hits += 1;
                    } else {
                        self.stats.tex_misses += 1;
                        miss_bytes += cfg.tex_line_bytes as u64;
                    }
                }
                let ready = if miss_bytes > 0 {
                    self.stats.global_bytes += miss_bytes;
                    self.stats.global_ld_transactions +=
                        (miss_bytes / cfg.tex_line_bytes as u64).max(1);
                    self.memory_request(miss_bytes)
                } else {
                    self.cycle + cfg.tex_hit_latency
                };
                warp.reg_ready[dst as usize] = ready;
                warp.reg_source[dst as usize] = RegSource::Memory;
                cfg.issue_cycles
            }
            Space::Local => {
                let addrs = addr_row(warp, addr, off, self.params);
                let mut bytes = 0u64;
                for (lane, &a) in addrs.iter().enumerate() {
                    if mask >> lane & 1 == 1 {
                        let v = warp.local_read(lane, a);
                        warp.set_reg(dst, lane, v);
                        bytes += cfg.uncoalesced_txn_bytes as u64;
                    }
                }
                self.stats.global_bytes += bytes;
                self.stats.global_ld_transactions += mask.count_ones() as u64;
                if self.record {
                    self.ev_bytes = bytes as u32;
                }
                let done = self.memory_request(bytes);
                warp.reg_ready[dst as usize] = done;
                warp.reg_source[dst as usize] = RegSource::Memory;
                cfg.issue_cycles
            }
        }
    }

    fn do_store(
        &mut self,
        block: &mut Resident,
        wi: usize,
        space: Space,
        addr: Operand,
        off: i32,
        src: Operand,
        smem_len: usize,
    ) -> u64 {
        let cfg = self.cfg;
        let warp = &mut block.warps[wi];
        let mask = warp.active_mask();
        match space {
            Space::Global => {
                if warp.rows_enabled && mask == u32::MAX {
                    let ashape = addr_shape(warp, addr, off, self.params);
                    if let Some((base, stride)) = ashape.base_stride() {
                        let hi_base = base.wrapping_add(stride.wrapping_mul(16));
                        if let (Some(lo), Some(hi)) = (
                            coalesce_affine_half(cfg, base, stride),
                            coalesce_affine_half(cfg, hi_base, stride),
                        ) {
                            self.rows.tally(&ashape);
                            let srcs = warp.operand_row(src, self.params);
                            let mut bytes = 0u64;
                            for (i, acc) in [&lo, &hi].into_iter().enumerate() {
                                if acc.coalesced {
                                    self.stats.coalesced_half_warps += 1;
                                } else {
                                    self.stats.uncoalesced_half_warps += 1;
                                }
                                self.stats.global_st_transactions += acc.transactions as u64;
                                if self.record {
                                    self.ev_aux |= half_sig(acc) << (16 * i);
                                }
                                bytes += acc.bytes;
                            }
                            self.stats.global_bytes += bytes;
                            if self.record {
                                self.ev_bytes = bytes as u32;
                            }
                            let mut a = base;
                            for &v in srcs.iter() {
                                self.mem.write(a, v);
                                a = a.wrapping_add(stride);
                            }
                            let _ = self.memory_request(bytes); // bandwidth only
                            return cfg.issue_cycles;
                        }
                    }
                }
                self.rows.full += 1;
                let addrs = addr_row(warp, addr, off, self.params);
                let srcs = warp.operand_row(src, self.params);
                let (lo, hi) = split_half_warps(&addrs, mask);
                let mut bytes = 0u64;
                for (i, half) in [&lo, &hi].into_iter().enumerate() {
                    let acc = coalesce_half_warp_noalloc(cfg, half);
                    if acc.transactions > 0 {
                        if acc.coalesced {
                            self.stats.coalesced_half_warps += 1;
                        } else {
                            self.stats.uncoalesced_half_warps += 1;
                        }
                        self.stats.global_st_transactions += acc.transactions as u64;
                        if self.record {
                            self.ev_aux |= half_sig(&acc) << (16 * i);
                        }
                        bytes += acc.bytes;
                    }
                }
                self.stats.global_bytes += bytes;
                if self.record {
                    self.ev_bytes = bytes as u32;
                }
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        self.mem.write(addrs[lane], srcs[lane]);
                    }
                }
                let _ = self.memory_request(bytes); // bandwidth only
                cfg.issue_cycles
            }
            Space::Shared => {
                if warp.rows_enabled && mask == u32::MAX {
                    let ashape = addr_shape(warp, addr, off, self.params);
                    if let Some((base, stride)) = ashape.base_stride() {
                        if let Some(degree) = smem_degree_affine(cfg, stride) {
                            self.rows.tally(&ashape);
                            let srcs = warp.operand_row(src, self.params);
                            let extra = cfg.issue_cycles * (degree as u64 - 1);
                            self.stats.smem_conflict_extra_cycles += extra;
                            if self.record {
                                self.ev_aux = degree;
                            }
                            let mut a = base;
                            for &v in srcs.iter() {
                                let idx = (a / 4) as usize;
                                assert!(
                                    idx < smem_len,
                                    "kernel {}: shared store out of bounds ({} >= {})",
                                    self.kernel.name,
                                    idx,
                                    smem_len
                                );
                                block.smem[idx] = v;
                                a = a.wrapping_add(stride);
                            }
                            return cfg.issue_cycles + extra;
                        }
                    }
                }
                self.rows.full += 1;
                let addrs = addr_row(warp, addr, off, self.params);
                let srcs = warp.operand_row(src, self.params);
                let (lo, hi) = split_half_warps(&addrs, mask);
                let degree = smem_conflict_degree_noalloc(cfg, &lo)
                    .max(smem_conflict_degree_noalloc(cfg, &hi));
                let extra = cfg.issue_cycles * (degree as u64 - 1);
                self.stats.smem_conflict_extra_cycles += extra;
                if self.record {
                    self.ev_aux = degree;
                }
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        let idx = (addrs[lane] / 4) as usize;
                        assert!(
                            idx < smem_len,
                            "kernel {}: shared store out of bounds ({} >= {})",
                            self.kernel.name,
                            idx,
                            smem_len
                        );
                        block.smem[idx] = srcs[lane];
                    }
                }
                cfg.issue_cycles + extra
            }
            Space::Local => {
                let addrs = addr_row(warp, addr, off, self.params);
                let srcs = warp.operand_row(src, self.params);
                let mut bytes = 0u64;
                for lane in 0..32 {
                    if mask >> lane & 1 == 1 {
                        warp.local_write(lane, addrs[lane], srcs[lane]);
                        bytes += cfg.uncoalesced_txn_bytes as u64;
                    }
                }
                self.stats.global_bytes += bytes;
                self.stats.global_st_transactions += mask.count_ones() as u64;
                if self.record {
                    self.ev_bytes = bytes as u32;
                }
                let _ = self.memory_request(bytes);
                cfg.issue_cycles
            }
            Space::Const | Space::Tex => panic!("stores to read-only memory space"),
        }
    }
}
