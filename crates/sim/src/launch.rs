//! Kernel launch: occupancy-checked block scheduling across the 16 SMs,
//! simulated in parallel with scoped threads.
//!
//! Blocks are distributed round-robin over SMs at launch, and each SM refills
//! its own slots as resident blocks retire. Because DRAM bandwidth is
//! partitioned evenly per SM (see `GpuConfig::dram_bytes_per_cycle_per_sm`),
//! SM simulations are mutually independent and the result is deterministic
//! regardless of host thread scheduling.

use crate::config::GpuConfig;
use crate::counters::{KernelStats, SmStats};
use crate::memory::DeviceMemory;
use crate::reference::run_sm_reference;
use crate::sm::{run_sm, LaunchDims};
use g80_isa::{DecodedKernel, Kernel, Value};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which timing-engine implementation [`launch`] uses. Both produce
/// bit-identical [`KernelStats`]; they differ only in host-side speed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The predecoded, allocation-free hot loop in [`crate::sm`] (default).
    Predecoded,
    /// The original instruction-at-a-time engine, kept in
    /// [`crate::reference`] as the executable spec for equivalence testing
    /// and as the "before" side of host-performance benchmarks.
    Reference,
}

static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Selects the engine used by subsequent [`launch`] calls (process-wide).
/// Intended for A/B equivalence tests and benchmarks; production callers
/// should leave the default.
pub fn set_engine(e: Engine) {
    ENGINE.store(e as u8, Ordering::SeqCst);
}

/// The engine currently selected for [`launch`].
pub fn engine() -> Engine {
    match ENGINE.load(Ordering::SeqCst) {
        1 => Engine::Reference,
        _ => Engine::Predecoded,
    }
}

/// Errors rejected at launch time (the CUDA runtime would fail the same way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block dimensions exceed the 512-thread limit or are zero.
    BadBlockDims(String),
    /// Grid dimensions are zero or exceed the 65535 limit.
    BadGridDims(String),
    /// One block alone exceeds a per-SM resource (registers / shared
    /// memory / threads).
    BlockDoesNotFit(String),
    /// Wrong number of kernel parameters.
    BadParams(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::BadBlockDims(s)
            | LaunchError::BadGridDims(s)
            | LaunchError::BlockDoesNotFit(s)
            | LaunchError::BadParams(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Launches a kernel on the simulated GPU and runs it to completion.
///
/// Returns the performance counters; output data lands in `mem`.
pub fn launch(
    cfg: &GpuConfig,
    kernel: &Kernel,
    dims: LaunchDims,
    params: &[Value],
    mem: &DeviceMemory,
) -> Result<KernelStats, LaunchError> {
    // The timing engine's warp machinery (masks, register file striding) is
    // fixed at 32 lanes; configs are free to vary everything else.
    assert_eq!(
        cfg.warp_size, 32,
        "the simulation engine only supports 32-lane warps"
    );
    let tpb = dims.threads_per_block();
    if tpb == 0 || tpb > cfg.max_threads_per_block {
        return Err(LaunchError::BadBlockDims(format!(
            "kernel {}: {} threads per block (limit {})",
            kernel.name, tpb, cfg.max_threads_per_block
        )));
    }
    if dims.grid.0 == 0 || dims.grid.1 == 0 || dims.grid.0 > 65535 || dims.grid.1 > 65535 {
        return Err(LaunchError::BadGridDims(format!(
            "kernel {}: grid {:?}",
            kernel.name, dims.grid
        )));
    }
    if params.len() != kernel.num_params as usize {
        return Err(LaunchError::BadParams(format!(
            "kernel {} expects {} params, got {}",
            kernel.name,
            kernel.num_params,
            params.len()
        )));
    }
    let blocks_per_sm = cfg.blocks_per_sm(kernel.regs_per_thread, kernel.smem_bytes, tpb);
    if blocks_per_sm == 0 {
        return Err(LaunchError::BlockDoesNotFit(format!(
            "kernel {}: a {}-thread block with {} regs/thread and {} B smem does not fit on an SM",
            kernel.name, tpb, kernel.regs_per_thread, kernel.smem_bytes
        )));
    }

    // Round-robin static assignment of blocks to SMs.
    let mut per_sm_blocks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cfg.num_sms as usize];
    let mut i = 0usize;
    for cy in 0..dims.grid.1 {
        for cx in 0..dims.grid.0 {
            per_sm_blocks[i % cfg.num_sms as usize].push((cx, cy));
            i += 1;
        }
    }

    // Predecode once per launch; every SM thread shares the table.
    let eng = engine();
    let decoded = match eng {
        Engine::Predecoded => Some(DecodedKernel::new(kernel)),
        Engine::Reference => None,
    };
    let decoded = decoded.as_ref();

    // Simulate SMs in parallel; they share only the atomic global memory.
    let mut results: Vec<SmStats> = Vec::with_capacity(cfg.num_sms as usize);
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_sm_blocks
            .iter()
            .map(|blocks| {
                scope.spawn(move || match decoded {
                    Some(d) => run_sm(cfg, kernel, d, &dims, params, mem, blocks, blocks_per_sm),
                    None => {
                        run_sm_reference(cfg, kernel, &dims, params, mem, blocks, blocks_per_sm)
                    }
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("SM simulation thread panicked"));
        }
    });

    Ok(KernelStats::merge(
        &kernel.name,
        cfg,
        results,
        kernel.regs_per_thread,
        kernel.smem_bytes,
        tpb,
        blocks_per_sm,
        dims.total_blocks(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::KernelBuilder;

    /// A one-parameter kernel that stores tid to the param address.
    fn tiny_kernel() -> Kernel {
        let mut bk = KernelBuilder::new("tiny");
        let p = bk.param();
        let tid = bk.tid_x();
        let byte = bk.shl(tid, 2u32);
        let addr = bk.iadd(byte, p);
        bk.st_global(addr, 0, tid);
        bk.build()
    }

    fn setup() -> (GpuConfig, Kernel, DeviceMemory) {
        (
            GpuConfig::geforce_8800_gtx(),
            tiny_kernel(),
            DeviceMemory::new(1 << 16),
        )
    }

    fn dims(grid: (u32, u32), block: (u32, u32, u32)) -> LaunchDims {
        LaunchDims { grid, block }
    }

    #[test]
    fn zero_block_dim_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(
            &cfg,
            &k,
            dims((1, 1), (0, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadBlockDims(_))), "{r:?}");
    }

    #[test]
    fn oversized_block_is_rejected() {
        let (cfg, k, mem) = setup();
        // 32x32 = 1024 threads > the 512-thread CC 1.0 limit.
        let r = launch(
            &cfg,
            &k,
            dims((1, 1), (32, 32, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadBlockDims(_))), "{r:?}");
    }

    #[test]
    fn zero_grid_dim_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(
            &cfg,
            &k,
            dims((0, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadGridDims(_))), "{r:?}");
        let r = launch(
            &cfg,
            &k,
            dims((1, 0), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadGridDims(_))), "{r:?}");
    }

    #[test]
    fn oversized_grid_dim_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(
            &cfg,
            &k,
            dims((65536, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadGridDims(_))), "{r:?}");
    }

    #[test]
    fn wrong_param_count_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(&cfg, &k, dims((1, 1), (32, 1, 1)), &[], &mem);
        assert!(matches!(r, Err(LaunchError::BadParams(_))), "{r:?}");
        let two = [Value::from_u32(0), Value::from_u32(0)];
        let r = launch(&cfg, &k, dims((1, 1), (32, 1, 1)), &two, &mem);
        assert!(matches!(r, Err(LaunchError::BadParams(_))), "{r:?}");
    }

    #[test]
    fn block_exceeding_smem_does_not_fit() {
        let (cfg, _, mem) = setup();
        let mut bk = KernelBuilder::new("smem_hog");
        let p = bk.param();
        // One word more shared memory than an SM has.
        bk.shared_alloc(cfg.smem_per_sm / 4 + 1);
        let tid = bk.tid_x();
        let byte = bk.shl(tid, 2u32);
        let addr = bk.iadd(byte, p);
        bk.st_global(addr, 0, tid);
        let k = bk.build();
        let r = launch(
            &cfg,
            &k,
            dims((1, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BlockDoesNotFit(_))), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "32-lane warps")]
    fn non_32_lane_warp_config_panics() {
        let (mut cfg, k, mem) = setup();
        cfg.warp_size = 16;
        let _ = launch(
            &cfg,
            &k,
            dims((1, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
    }

    #[test]
    fn valid_launch_succeeds_and_errors_display() {
        let (cfg, k, mem) = setup();
        let stats = launch(
            &cfg,
            &k,
            dims((2, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        )
        .expect("valid launch");
        assert_eq!(stats.total_threads, 64);
        let e = LaunchError::BadBlockDims("kernel t: 0 threads per block".into());
        assert!(e.to_string().contains("threads per block"));
    }
}
