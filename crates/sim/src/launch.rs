//! Kernel launch: occupancy-checked block scheduling across the 16 SMs,
//! simulated in parallel on the process-wide worker pool.
//!
//! Blocks are distributed round-robin over SMs at launch, and each SM refills
//! its own slots as resident blocks retire. Because DRAM bandwidth is
//! partitioned evenly per SM (see `GpuConfig::dram_bytes_per_cycle_per_sm`),
//! SM simulations are mutually independent and the result is deterministic
//! regardless of host thread scheduling.
//!
//! Two host-side execution strategies exist (see [`Executor`]): the default
//! routes each non-empty SM's simulation through [`crate::pool`], so fleets
//! of launches share one set of worker threads; the frozen
//! [`Executor::SpawnPerLaunch`] baseline reproduces the original
//! 16-threads-per-launch `std::thread::scope` burst for A/B benchmarks and
//! equivalence tests. Both produce bit-identical [`KernelStats`].
//!
//! [`launch_batch`] amortizes further across *independent* launches: one
//! predecode per distinct kernel and a single pool scope for every SM task
//! of every launch in the batch.

use crate::config::GpuConfig;
use crate::counters::{KernelStats, SmStats};
use crate::fault;
use crate::memo::{self, Served};
use crate::memory::DeviceMemory;
use crate::pool;
use crate::reference::run_sm_reference;
use crate::sm::{run_sm, LaunchDims};
use crate::witness::{replay_sm, Ev};
use g80_isa::{CompiledKernel, DecodedKernel, Kernel, Value};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Which timing-engine implementation [`launch`] uses. All three produce
/// bit-identical [`KernelStats`]; they differ only in host-side speed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The predecoded, allocation-free hot loop in [`crate::sm`] (default).
    Predecoded,
    /// The original instruction-at-a-time engine, kept in
    /// [`crate::reference`] as the executable spec for equivalence testing
    /// and as the "before" side of host-performance benchmarks.
    Reference,
    /// The predecoded engine plus per-kernel straight-line regions lowered
    /// at predecode time ([`g80_isa::compile`]): a region's functional
    /// effects run in one pre-bound pass when its first instruction issues,
    /// and the interior instructions pay timing-only steps with no `Inst`
    /// dispatch at all. Scheduling, coalescing, and bank-conflict timing
    /// are untouched.
    Compiled,
}

// 0 = unresolved (read G80_SIM_ENGINE on first use), else Engine + 1.
static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Selects the engine used by subsequent [`launch`] calls (process-wide).
/// Overrides the `G80_SIM_ENGINE` environment variable. Intended for A/B
/// equivalence tests and benchmarks; production callers should leave the
/// default.
pub fn set_engine(e: Engine) {
    ENGINE.store(e as u8 + 1, Ordering::SeqCst);
}

/// The engine currently selected for [`launch`]
/// (`G80_SIM_ENGINE=reference|compiled` overrides the default).
pub fn engine() -> Engine {
    match ENGINE.load(Ordering::SeqCst) {
        0 => {
            let e = match std::env::var("G80_SIM_ENGINE").as_deref() {
                Ok("reference") => Engine::Reference,
                Ok("compiled") => Engine::Compiled,
                _ => Engine::Predecoded,
            };
            // Racing first reads resolve to the same value.
            ENGINE.store(e as u8 + 1, Ordering::SeqCst);
            e
        }
        2 => Engine::Reference,
        3 => Engine::Compiled,
        _ => Engine::Predecoded,
    }
}

/// Whether the warp register file tracks uniform/affine row shapes
/// (see [`g80_isa::LaneRow`] and `DESIGN.md` §15). Both modes produce
/// bit-identical [`KernelStats`]; they differ only in host-side speed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Rows {
    /// Tagged rows (default): warp-invariant and lane-affine register rows
    /// are carried symbolically, ALU results fold in O(1) per warp, and
    /// affine address rows take closed-form coalescing / bank-conflict
    /// degrees instead of per-lane scans.
    Tracked,
    /// The frozen eager baseline: every register row is materialized and
    /// every instruction evaluates all lanes. Kill-switch for A/B
    /// equivalence runs (`G80_SIM_ROWS=full`).
    Full,
}

// 0 = unresolved (read G80_SIM_ROWS on first use), else Rows + 1.
static ROWS: AtomicU8 = AtomicU8::new(0);

/// Selects the row-tracking mode for subsequently constructed warps
/// (process-wide). Overrides the `G80_SIM_ROWS` environment variable.
/// Intended for A/B equivalence tests and benchmarks.
pub fn set_rows(r: Rows) {
    ROWS.store(r as u8 + 1, Ordering::SeqCst);
}

/// The row-tracking mode currently selected
/// (`G80_SIM_ROWS=full` overrides the default).
pub fn rows() -> Rows {
    match ROWS.load(Ordering::SeqCst) {
        0 => {
            let r = match std::env::var("G80_SIM_ROWS").as_deref() {
                Ok("full") => Rows::Full,
                _ => Rows::Tracked,
            };
            // Racing first reads resolve to the same value.
            ROWS.store(r as u8 + 1, Ordering::SeqCst);
            r
        }
        2 => Rows::Full,
        _ => Rows::Tracked,
    }
}

/// How the host executes the per-SM simulation tasks of a launch. Both
/// strategies produce bit-identical [`KernelStats`]; they differ only in
/// host-side wall-clock.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Executor {
    /// The process-wide work-stealing pool in [`crate::pool`] (default):
    /// no threads are spawned per launch, SMs with an empty block list are
    /// skipped, and concurrent launches share the workers.
    Pooled,
    /// The original strategy, kept as the "before" side of sweep-throughput
    /// benchmarks: every launch spawns `num_sms` scoped threads, one per SM,
    /// including SMs with no blocks to run.
    SpawnPerLaunch,
}

static EXECUTOR: AtomicU8 = AtomicU8::new(0);

/// Selects the executor used by subsequent [`launch`]/[`launch_batch`]
/// calls (process-wide). Intended for A/B equivalence tests and benchmarks;
/// production callers should leave the default.
pub fn set_executor(e: Executor) {
    EXECUTOR.store(e as u8, Ordering::SeqCst);
}

/// The executor currently selected for [`launch`].
pub fn executor() -> Executor {
    match EXECUTOR.load(Ordering::SeqCst) {
        1 => Executor::SpawnPerLaunch,
        _ => Executor::Pooled,
    }
}

/// Errors rejected at launch time (the CUDA runtime would fail the same
/// way), plus per-launch degradation outcomes: a launch whose simulation
/// aborts (watchdog budget, injected fault, kernel panic) degrades to an
/// `Err` for that launch alone instead of unwinding through the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block dimensions exceed the 512-thread limit or are zero.
    BadBlockDims(String),
    /// Grid dimensions are zero or exceed the 65535 limit.
    BadGridDims(String),
    /// One block alone exceeds a per-SM resource (registers / shared
    /// memory / threads).
    BlockDoesNotFit(String),
    /// Wrong number of kernel parameters.
    BadParams(String),
    /// An SM exceeded the watchdog cycle budget
    /// (`G80_SIM_WATCHDOG_CYCLES` / [`crate::fault::set_watchdog_cycles`]),
    /// carrying the aborting SM's partial progress.
    Watchdog {
        /// Kernel name.
        kernel: String,
        /// The budget that was exceeded.
        budget: u64,
        /// Simulated cycles reached on the aborting SM.
        cycles: u64,
        /// Warp instructions issued on the aborting SM before the abort.
        warp_instructions: u64,
    },
    /// A typed fault from the deterministic injector ([`crate::fault`])
    /// surfaced at the named site.
    Fault {
        /// [`crate::fault::Site::name`] of the firing site.
        site: &'static str,
    },
    /// The launch's simulation panicked (kernel bug — e.g. an out-of-bounds
    /// access or a divergent barrier — or a panic-kind injected fault);
    /// the panic message is captured.
    Panic(String),
}

impl LaunchError {
    /// True when the error was manufactured by the fault injector (either
    /// kind) rather than by the kernel or the machine. The absorb layer
    /// retries these; everything else is reported.
    pub fn is_injected(&self) -> bool {
        match self {
            LaunchError::Fault { .. } => true,
            LaunchError::Panic(msg) => msg.starts_with(crate::fault::PANIC_MARKER),
            _ => false,
        }
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Every variant leads with its name: log lines stay distinguishable
        // even though the payloads are free-form strings.
        match self {
            LaunchError::BadBlockDims(s) => write!(f, "BadBlockDims: {s}"),
            LaunchError::BadGridDims(s) => write!(f, "BadGridDims: {s}"),
            LaunchError::BlockDoesNotFit(s) => write!(f, "BlockDoesNotFit: {s}"),
            LaunchError::BadParams(s) => write!(f, "BadParams: {s}"),
            LaunchError::Watchdog {
                kernel,
                budget,
                cycles,
                warp_instructions,
            } => write!(
                f,
                "Watchdog: kernel {kernel}: exceeded the {budget}-cycle budget \
                 (aborted at cycle {cycles} after {warp_instructions} warp instructions)"
            ),
            LaunchError::Fault { site } => write!(f, "Fault: injected fault at {site}"),
            LaunchError::Panic(msg) => write!(f, "Panic: {msg}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Classifies an unwind payload caught at the launch boundary.
fn classify_panic(p: Box<dyn std::any::Any + Send>) -> LaunchError {
    if let Some(w) = p.downcast_ref::<crate::fault::WatchdogAbort>() {
        return LaunchError::Watchdog {
            kernel: w.kernel.clone(),
            budget: w.budget,
            cycles: w.cycles,
            warp_instructions: w.warp_instructions,
        };
    }
    if let Some(fi) = p.downcast_ref::<crate::fault::InjectedFault>() {
        return LaunchError::Fault { site: fi.site };
    }
    LaunchError::Panic(
        crate::fault::payload_str(p.as_ref())
            .unwrap_or("non-string panic payload")
            .to_string(),
    )
}

/// One launch of a batch: everything [`launch`] takes except the shared
/// machine configuration. Entries are independent; if several specs share a
/// [`DeviceMemory`] they must follow the same consistency rules concurrent
/// blocks already do (disjoint or idempotent writes, commutative atomics).
#[derive(Copy, Clone)]
pub struct LaunchSpec<'a> {
    pub kernel: &'a Kernel,
    pub dims: LaunchDims,
    pub params: &'a [Value],
    pub mem: &'a DeviceMemory,
}

/// Occupancy-checks a launch request; returns blocks/SM on success.
fn validate(cfg: &GpuConfig, spec: &LaunchSpec) -> Result<u32, LaunchError> {
    // The timing engine's warp machinery (masks, register file striding) is
    // fixed at 32 lanes; configs are free to vary everything else.
    assert_eq!(
        cfg.warp_size, 32,
        "the simulation engine only supports 32-lane warps"
    );
    let (kernel, dims) = (spec.kernel, spec.dims);
    let tpb = dims.threads_per_block();
    if tpb == 0 || tpb > cfg.max_threads_per_block {
        return Err(LaunchError::BadBlockDims(format!(
            "kernel {}: {} threads per block (limit {})",
            kernel.name, tpb, cfg.max_threads_per_block
        )));
    }
    if dims.grid.0 == 0 || dims.grid.1 == 0 || dims.grid.0 > 65535 || dims.grid.1 > 65535 {
        return Err(LaunchError::BadGridDims(format!(
            "kernel {}: grid {:?}",
            kernel.name, dims.grid
        )));
    }
    if spec.params.len() != kernel.num_params as usize {
        return Err(LaunchError::BadParams(format!(
            "kernel {} expects {} params, got {}",
            kernel.name,
            kernel.num_params,
            spec.params.len()
        )));
    }
    let blocks_per_sm = cfg.blocks_per_sm(kernel.regs_per_thread, kernel.smem_bytes, tpb);
    if blocks_per_sm == 0 {
        return Err(LaunchError::BlockDoesNotFit(format!(
            "kernel {}: a {}-thread block with {} regs/thread and {} B smem does not fit on an SM",
            kernel.name, tpb, kernel.regs_per_thread, kernel.smem_bytes
        )));
    }
    Ok(blocks_per_sm)
}

/// Round-robin static assignment of blocks to SMs.
fn assign_blocks(cfg: &GpuConfig, dims: LaunchDims) -> Vec<Vec<(u32, u32)>> {
    let mut per_sm_blocks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cfg.num_sms as usize];
    let mut i = 0usize;
    for cy in 0..dims.grid.1 {
        for cx in 0..dims.grid.0 {
            per_sm_blocks[i % cfg.num_sms as usize].push((cx, cy));
            i += 1;
        }
    }
    per_sm_blocks
}

/// The per-kernel artifacts the non-reference engines consume: the decoded
/// micro-op table, plus (compiled engine only) the lowered regions. Both
/// come out of the same [`memo::kernel_info`] registry entry.
#[derive(Copy, Clone)]
struct EngineKernel<'a> {
    decoded: &'a DecodedKernel,
    compiled: Option<&'a CompiledKernel>,
}

impl<'a> EngineKernel<'a> {
    /// The engine artifacts for `info` under the currently selected engine;
    /// `None` means the reference engine runs. Under [`Engine::Compiled`]
    /// the lowered regions engage only when the registry judged them
    /// profitable ([`memo::KernelInfo::compiled_profitable`]); a kernel
    /// with only short regions (e.g. a streaming saxpy, whose global
    /// accesses are region-ineligible) falls back to the predecoded path,
    /// which is bit-identical and strictly cheaper to drive.
    fn select(eng: Engine, info: Option<&'a memo::KernelInfo>) -> Option<Self> {
        info.map(|i| EngineKernel {
            decoded: &i.decoded,
            compiled: (eng == Engine::Compiled && i.compiled_profitable).then_some(&i.compiled),
        })
    }
}

/// A validated launch, ready to have its SM tasks executed.
struct Prepared<'a> {
    spec: LaunchSpec<'a>,
    blocks_per_sm: u32,
    per_sm_blocks: Vec<Vec<(u32, u32)>>,
}

impl<'a> Prepared<'a> {
    /// Simulates one SM of this launch.
    fn run_sm(
        &self,
        ek: Option<EngineKernel>,
        blocks: &[(u32, u32)],
        cfg: &GpuConfig,
        dedup: bool,
        shared_uniform: bool,
        witness_out: Option<&mut Option<Vec<Vec<Ev>>>>,
    ) -> SmStats {
        let s = &self.spec;
        match ek {
            Some(e) => run_sm(
                cfg,
                s.kernel,
                e.decoded,
                e.compiled,
                &s.dims,
                s.params,
                s.mem,
                blocks,
                self.blocks_per_sm,
                dedup,
                shared_uniform,
                witness_out,
            ),
            None => run_sm_reference(
                cfg,
                s.kernel,
                &s.dims,
                s.params,
                s.mem,
                blocks,
                self.blocks_per_sm,
            ),
        }
    }

    /// Donor-SM reuse: if this SM's block queue is exactly as long as the
    /// donor's and every block replays clean against the donor's verified
    /// witness, the SM's evolution is the same deterministic computation as
    /// the donor's — adopt the donor's stats and commit the replayed writes.
    /// Any mismatch falls back to full simulation (nothing committed).
    #[allow(clippy::too_many_arguments)]
    fn reuse_or_run_sm(
        &self,
        cfg: &GpuConfig,
        ek: EngineKernel,
        shared_uniform: bool,
        blocks: &[(u32, u32)],
        donor_len: usize,
        donor_stats: &SmStats,
        rep: Option<&[Vec<Ev>]>,
    ) -> SmStats {
        if let Some(rep) = rep {
            if blocks.len() == donor_len {
                let s = &self.spec;
                let file_regs = s
                    .kernel
                    .regs_per_thread
                    .max(g80_isa::liveness::num_regs(&s.kernel.code) as u32);
                if replay_sm(
                    cfg,
                    s.kernel,
                    ek.decoded,
                    &s.dims,
                    s.params,
                    s.mem,
                    blocks,
                    file_regs,
                    rep,
                    shared_uniform,
                ) {
                    memo::count_dedup_fast_blocks(blocks.len() as u64);
                    return donor_stats.clone();
                }
                memo::count_dedup_fallback();
            }
        }
        self.run_sm(Some(ek), blocks, cfg, true, shared_uniform, None)
    }

    fn merge(&self, cfg: &GpuConfig, results: Vec<SmStats>) -> KernelStats {
        KernelStats::merge(
            &self.spec.kernel.name,
            cfg,
            results,
            self.spec.kernel.regs_per_thread,
            self.spec.kernel.smem_bytes,
            self.spec.dims.threads_per_block(),
            self.blocks_per_sm,
            self.spec.dims.total_blocks(),
        )
    }
}

/// Launches a kernel on the simulated GPU and runs it to completion.
///
/// Returns the performance counters; output data lands in `mem`.
pub fn launch(
    cfg: &GpuConfig,
    kernel: &Kernel,
    dims: LaunchDims,
    params: &[Value],
    mem: &DeviceMemory,
) -> Result<KernelStats, LaunchError> {
    let spec = LaunchSpec {
        kernel,
        dims,
        params,
        mem,
    };
    // A single launch has exclusive use of its memory for the duration of
    // the call (the caller handed us `&DeviceMemory` and blocks on the
    // result), so the memo snapshot/diff is sound.
    launch_with_memo(cfg, spec, true).map(|(stats, _)| stats)
}

/// [`launch`], but also reports which tier served the result (simulated
/// fresh, replayed from the in-process memo LRU, or replayed from the
/// persistent disk tier). Host runtimes use this to attribute cache
/// activity to the launch that caused it instead of diffing the
/// process-wide [`memo_counters`].
///
/// [`memo_counters`]: crate::memo_counters
pub fn launch_traced(
    cfg: &GpuConfig,
    kernel: &Kernel,
    dims: LaunchDims,
    params: &[Value],
    mem: &DeviceMemory,
) -> Result<(KernelStats, Served), LaunchError> {
    let spec = LaunchSpec {
        kernel,
        dims,
        params,
        mem,
    };
    launch_with_memo(cfg, spec, true)
}

/// Bound on absorb-mode retries of injected-class failures. At realistic
/// injection rates the probability of exhausting this is negligible; at
/// rate 1.0 it prevents an infinite loop (the error is reported instead).
const MAX_FAULT_RETRIES: u32 = 32;

/// [`launch`] body with an explicit memo-exclusivity verdict (batches pass
/// `false` for specs that share a [`DeviceMemory`] with a concurrent spec).
/// The [`Served`] in the result is the cache-tier verdict.
///
/// When fault injection is armed with absorb-and-retry enabled (the
/// default), injected-class failures are retried after restoring the
/// pre-launch memory image — a retry without the restore would double-apply
/// the partial writes of in-place kernels. Simulation is deterministic, so
/// an absorbed launch is bit-identical to an unfaulted one.
fn launch_with_memo(
    cfg: &GpuConfig,
    spec: LaunchSpec,
    exclusive_mem: bool,
) -> Result<(KernelStats, Served), LaunchError> {
    if !fault::armed() {
        return launch_once(cfg, spec, exclusive_mem);
    }
    let snapshot = if fault::retry() {
        Some(spec.mem.snapshot_words())
    } else {
        None
    };
    let mut attempts = 0u32;
    loop {
        match launch_once(cfg, spec, exclusive_mem) {
            Err(e) if e.is_injected() && attempts < MAX_FAULT_RETRIES && snapshot.is_some() => {
                attempts += 1;
                spec.mem.restore_words(snapshot.as_ref().unwrap());
            }
            r => return r,
        }
    }
}

/// One attempt at a launch: validate, probe the memo cache, simulate,
/// record. Unwinds from the simulation (kernel bugs, watchdog aborts,
/// injected faults) are caught per launch and classified into
/// [`LaunchError`]s; launch-time validation panics (e.g. the 32-lane-warp
/// engine limit) stay panics.
fn launch_once(
    cfg: &GpuConfig,
    spec: LaunchSpec,
    exclusive_mem: bool,
) -> Result<(KernelStats, Served), LaunchError> {
    let blocks_per_sm = validate(cfg, &spec)?;
    let lookup = memo::memo_lookup(
        cfg,
        spec.kernel,
        spec.dims,
        spec.params,
        spec.mem,
        exclusive_mem,
    );
    if let memo::MemoLookup::Hit(stats, served) = lookup {
        return Ok((*stats, served));
    }
    let prepared = Prepared {
        spec,
        blocks_per_sm,
        per_sm_blocks: assign_blocks(cfg, spec.dims),
    };

    // Predecode (and dataflow-analyze) once per process per kernel content.
    // Decode can unwind (injected isa.decode fault); that costs this launch
    // only.
    let eng = engine();
    let info = match eng {
        Engine::Reference => None,
        _ => Some(
            catch_unwind(AssertUnwindSafe(|| memo::kernel_info(spec.kernel)))
                .map_err(classify_panic)?,
        ),
    };
    let ek = EngineKernel::select(eng, info.as_deref());
    let dedup =
        memo::dedup() == memo::Dedup::On && info.as_deref().is_some_and(|i| i.dedup_eligible);
    let shared_uniform = info.as_deref().is_some_and(|i| i.shared_uniform);

    let results = match executor() {
        Executor::Pooled => run_sms_pooled(cfg, &prepared, ek, dedup, shared_uniform)?,
        Executor::SpawnPerLaunch => run_sms_spawn(cfg, &prepared, ek, dedup, shared_uniform)?,
    };
    let stats = prepared.merge(cfg, results);
    if let memo::MemoLookup::Miss(pending) = lookup {
        memo::memo_record(pending, prepared.spec.mem, &stats);
    }
    Ok((stats, Served::Simulated))
}

/// Collects per-SM task results, degrading the first panic (in SM order)
/// into a classified [`LaunchError`] for the owning launch. Every task ran
/// to completion or unwound inside its own slot, so losing the launch loses
/// nothing else.
fn collect_sm_results(
    slots: Vec<Result<SmStats, pool::TaskPanic>>,
) -> Result<Vec<SmStats>, LaunchError> {
    let mut out = Vec::with_capacity(slots.len());
    let mut first_err: Option<LaunchError> = None;
    for slot in slots {
        match slot {
            Ok(stats) => out.push(stats),
            Err(p) => {
                if first_err.is_none() {
                    first_err = Some(classify_panic(p.0));
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Below this many simulated threads in the whole grid, the per-SM tasks of
/// a pooled launch run serially on the caller thread instead of through the
/// pool. A launch this small simulates in well under a millisecond per SM,
/// so the pool's queue lock and condvar wakeups cost more than the work —
/// and when the caller is itself a pool task (an application job whose
/// inner launches nest on the same pool, as in the benchmark suite), those
/// queue operations contend with every sibling job's. SM simulations are
/// independent, so running them serially on the caller is bit-identical.
const CALLER_RUNS_THREADS: u64 = 8192;

/// Runs per-SM closures through the pool, or serially on the caller for
/// launches under the [`CALLER_RUNS_THREADS`] floor, preserving
/// [`pool::try_run_tasks`]'s per-slot panic isolation either way.
fn run_sm_tasks<F>(small: bool, fns: Vec<F>) -> Vec<Result<SmStats, pool::TaskPanic>>
where
    F: FnOnce() -> SmStats + Send,
{
    if small {
        fns.into_iter()
            .map(|f| catch_unwind(AssertUnwindSafe(f)).map_err(pool::TaskPanic))
            .collect()
    } else {
        pool::try_run_tasks(fns)
    }
}

/// Default path: one pool task per SM *with work to do*. An empty SM's
/// simulation is the empty `SmStats` (it never enters the scheduler loop),
/// so skipping it is bit-identical and a small grid costs a handful of
/// queue operations instead of `num_sms` thread spawns.
fn run_sms_pooled(
    cfg: &GpuConfig,
    prepared: &Prepared,
    ek: Option<EngineKernel>,
    dedup: bool,
    shared_uniform: bool,
) -> Result<Vec<SmStats>, LaunchError> {
    let busy: Vec<(usize, &Vec<(u32, u32)>)> = prepared
        .per_sm_blocks
        .iter()
        .enumerate()
        .filter(|(_, blocks)| !blocks.is_empty())
        .collect();
    let mut results: Vec<SmStats> = vec![SmStats::default(); cfg.num_sms as usize];
    let small = prepared.spec.dims.total_blocks() * prepared.spec.dims.threads_per_block() as u64
        <= CALLER_RUNS_THREADS;

    // Donor-SM reuse: the first SM runs to completion on the caller thread,
    // exporting its verified witness streams. Every other SM with an
    // equally-long block queue evolves identically (same deterministic
    // computation once its blocks are verified class-identical), so it
    // replays functionally and adopts the donor's stats.
    if let (true, Some(d)) = (dedup && busy.len() > 1, ek) {
        let (donor_sm, donor_blocks) = busy[0];
        let mut rep: Option<Vec<Vec<Ev>>> = None;
        let donor_stats = catch_unwind(AssertUnwindSafe(|| {
            prepared.run_sm(ek, donor_blocks, cfg, true, shared_uniform, Some(&mut rep))
        }))
        .map_err(classify_panic)?;
        let rep = rep; // frozen for shared capture below
        let donor_len = donor_blocks.len();
        let donor_ref = &donor_stats;
        let rep_ref = rep.as_deref();
        let partial = collect_sm_results(run_sm_tasks(
            small,
            busy[1..]
                .iter()
                .map(|&(_, blocks)| {
                    move || {
                        prepared.reuse_or_run_sm(
                            cfg,
                            d,
                            shared_uniform,
                            blocks,
                            donor_len,
                            donor_ref,
                            rep_ref,
                        )
                    }
                })
                .collect(),
        ))?;
        for ((sm, _), stats) in busy[1..].iter().zip(partial) {
            results[*sm] = stats;
        }
        results[donor_sm] = donor_stats;
        return Ok(results);
    }

    let partial = collect_sm_results(run_sm_tasks(
        small,
        busy.iter()
            .map(|&(_, blocks)| {
                move || prepared.run_sm(ek, blocks, cfg, dedup, shared_uniform, None)
            })
            .collect(),
    ))?;
    for ((sm, _), stats) in busy.into_iter().zip(partial) {
        results[sm] = stats;
    }
    Ok(results)
}

/// Frozen baseline: the original per-launch `std::thread::scope` burst,
/// one OS thread per SM, empty or not. Kept as the "before" side of the
/// sweep-throughput benchmarks and as extra test surface.
fn run_sms_spawn(
    cfg: &GpuConfig,
    prepared: &Prepared,
    ek: Option<EngineKernel>,
    dedup: bool,
    shared_uniform: bool,
) -> Result<Vec<SmStats>, LaunchError> {
    let mut results: Vec<SmStats> = Vec::with_capacity(cfg.num_sms as usize);
    let mut first_err: Option<LaunchError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = prepared
            .per_sm_blocks
            .iter()
            .map(|blocks| {
                scope.spawn(move || prepared.run_sm(ek, blocks, cfg, dedup, shared_uniform, None))
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(stats) => results.push(stats),
                Err(p) => {
                    if first_err.is_none() {
                        first_err = Some(classify_panic(p));
                    }
                }
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(results),
    }
}

/// Launches a fleet of independent kernels and runs them all to completion,
/// returning one result per spec **in input order**.
///
/// Compared with calling [`launch`] in a loop, a batch predecodes each
/// distinct kernel once (specs are keyed by the `&Kernel` reference they
/// share) and submits every SM task of every launch into a single pool
/// scope, so the whole fleet drains through one set of workers with work
/// stealing across launches. Simulated statistics are bit-identical to the
/// sequential loop for any worker count.
pub fn launch_batch(
    cfg: &GpuConfig,
    specs: &[LaunchSpec],
) -> Vec<Result<KernelStats, LaunchError>> {
    launch_batch_traced(cfg, specs)
        .into_iter()
        .map(|r| r.map(|(stats, _)| stats))
        .collect()
}

/// [`launch_batch`], but each entry also reports which cache tier served it
/// (see [`launch_traced`]).
pub fn launch_batch_traced(
    cfg: &GpuConfig,
    specs: &[LaunchSpec],
) -> Vec<Result<(KernelStats, Served), LaunchError>> {
    // The frozen baseline executes the batch as the studies used to: one
    // launch at a time, each paying its own spawn burst (each launch gets
    // its own absorb/retry through `launch_with_memo`).
    if executor() == Executor::SpawnPerLaunch {
        return specs
            .iter()
            .map(|s| launch_with_memo(cfg, *s, true))
            .collect();
    }
    if !fault::armed() {
        return launch_batch_once(cfg, specs);
    }

    // Absorb/retry for the pooled batch: specs may share memories, so a
    // per-launch restore could clobber a sibling's committed writes. Retry
    // the *whole batch* instead, restoring every distinct memory first.
    // Simulation is deterministic, so unfaulted entries recompute the same
    // stats and writes on every attempt.
    let snapshots: Option<Vec<(&DeviceMemory, Vec<u32>)>> = fault::retry().then(|| {
        let mut seen: HashMap<*const DeviceMemory, ()> = HashMap::new();
        let mut snaps = Vec::new();
        for s in specs {
            if seen.insert(std::ptr::from_ref(s.mem), ()).is_none() {
                snaps.push((s.mem, s.mem.snapshot_words()));
            }
        }
        snaps
    });
    let mut attempts = 0u32;
    loop {
        let results = launch_batch_once(cfg, specs);
        let injected = results
            .iter()
            .any(|r| matches!(r, Err(e) if e.is_injected()));
        match &snapshots {
            Some(snaps) if injected && attempts < MAX_FAULT_RETRIES => {
                attempts += 1;
                for (mem, words) in snaps {
                    mem.restore_words(words);
                }
            }
            _ => return results,
        }
    }
}

/// One attempt at a pooled batch. A panic in any SM task (or in a spec's
/// predecode) costs only the launch that owns it; every other entry's tasks
/// still run and merge normally.
fn launch_batch_once(
    cfg: &GpuConfig,
    specs: &[LaunchSpec],
) -> Vec<Result<(KernelStats, Served), LaunchError>> {
    let prepared: Vec<Result<Prepared, LaunchError>> = specs
        .iter()
        .map(|&spec| {
            let blocks_per_sm = validate(cfg, &spec)?;
            Ok(Prepared {
                spec,
                blocks_per_sm,
                per_sm_blocks: assign_blocks(cfg, spec.dims),
            })
        })
        .collect();

    // Degradation outcomes discovered after validation (decode unwinds, SM
    // task panics) land here; the first per spec wins.
    let mut per_spec_err: Vec<Option<LaunchError>> = vec![None; specs.len()];

    // Kernel info comes from the process-wide content-hash registry: each
    // distinct kernel is predecoded (and dataflow-analyzed) once per
    // *process*, shared across batches and with plain `launch` calls. A
    // decode unwind (injected isa.decode fault) fails only the specs that
    // use that kernel.
    let eng = engine();
    let infos: Vec<Option<Arc<memo::KernelInfo>>> = prepared
        .iter()
        .enumerate()
        .map(|(si, p)| match (eng, p) {
            (Engine::Reference, _) | (_, Err(_)) => None,
            (_, Ok(p)) => {
                match catch_unwind(AssertUnwindSafe(|| memo::kernel_info(p.spec.kernel))) {
                    Ok(info) => Some(info),
                    Err(e) => {
                        per_spec_err[si] = Some(classify_panic(e));
                        None
                    }
                }
            }
        })
        .collect();

    // Memo exclusivity: launches in the batch run concurrently, so a spec
    // sharing its `DeviceMemory` with another spec cannot be memoized (its
    // input snapshot / output diff would race the other launch's writes).
    let mut mem_uses: HashMap<*const DeviceMemory, usize> = HashMap::new();
    for s in specs {
        *mem_uses.entry(std::ptr::from_ref(s.mem)).or_insert(0) += 1;
    }

    // Probe the memo cache per spec before any simulation starts. Hits
    // apply their memory delta immediately, which is safe precisely because
    // only exclusively-owned memories are probed.
    let mut hit_stats: Vec<Option<(KernelStats, Served)>> = vec![None; specs.len()];
    let mut pendings: Vec<Option<memo::MemoPending>> = Vec::with_capacity(specs.len());
    for (si, p) in prepared.iter().enumerate() {
        let mut pending = None;
        if let (Ok(p), None) = (p, &per_spec_err[si]) {
            let exclusive = mem_uses[&std::ptr::from_ref(p.spec.mem)] == 1;
            let s = &p.spec;
            match memo::memo_lookup(cfg, s.kernel, s.dims, s.params, s.mem, exclusive) {
                memo::MemoLookup::Hit(stats, served) => hit_stats[si] = Some((*stats, served)),
                memo::MemoLookup::Miss(pend) => pending = Some(pend),
                memo::MemoLookup::Disabled => {}
            }
        }
        pendings.push(pending);
    }

    // One flat task list across all launches in the batch; memo hits are
    // already resolved and submit no tasks.
    let dedup_on = memo::dedup() == memo::Dedup::On;
    let mut tasks: Vec<Box<dyn FnOnce() -> SmStats + Send + '_>> = Vec::new();
    let mut owners: Vec<(usize, usize)> = Vec::new(); // (spec index, sm index)
    for (si, p) in prepared.iter().enumerate() {
        let Ok(p) = p else { continue };
        if hit_stats[si].is_some() || per_spec_err[si].is_some() {
            continue;
        }
        let ek = EngineKernel::select(eng, infos[si].as_deref());
        let dedup = dedup_on && infos[si].as_deref().is_some_and(|i| i.dedup_eligible);
        let su = infos[si].as_deref().is_some_and(|i| i.shared_uniform);
        for (sm, blocks) in p.per_sm_blocks.iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            owners.push((si, sm));
            tasks.push(Box::new(move || p.run_sm(ek, blocks, cfg, dedup, su, None)));
        }
    }
    let flat = pool::try_run_tasks(tasks);

    // Scatter SM results back to their launches and merge per launch. A
    // panicked task fails its owning spec (first panic in SM order wins)
    // without contaminating any other entry: every slot was filled
    // independently under its own catch.
    let mut per_spec: Vec<Vec<SmStats>> = prepared
        .iter()
        .map(|p| match p {
            Ok(_) => vec![SmStats::default(); cfg.num_sms as usize],
            Err(_) => Vec::new(),
        })
        .collect();
    for ((si, sm), slot) in owners.into_iter().zip(flat) {
        match slot {
            Ok(stats) => per_spec[si][sm] = stats,
            Err(p) => {
                if per_spec_err[si].is_none() {
                    per_spec_err[si] = Some(classify_panic(p.0));
                }
            }
        }
    }
    prepared
        .into_iter()
        .zip(per_spec)
        .enumerate()
        .map(|(si, (p, results))| {
            p.and_then(|p| {
                if let Some(e) = per_spec_err[si].take() {
                    return Err(e);
                }
                if let Some((stats, served)) = hit_stats[si].take() {
                    return Ok((stats, served));
                }
                let stats = p.merge(cfg, results);
                if let Some(pending) = pendings[si].take() {
                    memo::memo_record(pending, p.spec.mem, &stats);
                }
                Ok((stats, Served::Simulated))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use g80_isa::builder::KernelBuilder;

    /// A one-parameter kernel that stores tid to the param address.
    fn tiny_kernel() -> Kernel {
        let mut bk = KernelBuilder::new("tiny");
        let p = bk.param();
        let tid = bk.tid_x();
        let byte = bk.shl(tid, 2u32);
        let addr = bk.iadd(byte, p);
        bk.st_global(addr, 0, tid);
        bk.build()
    }

    fn setup() -> (GpuConfig, Kernel, DeviceMemory) {
        (
            GpuConfig::geforce_8800_gtx(),
            tiny_kernel(),
            DeviceMemory::new(1 << 16),
        )
    }

    fn dims(grid: (u32, u32), block: (u32, u32, u32)) -> LaunchDims {
        LaunchDims { grid, block }
    }

    #[test]
    fn zero_block_dim_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(
            &cfg,
            &k,
            dims((1, 1), (0, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadBlockDims(_))), "{r:?}");
    }

    #[test]
    fn oversized_block_is_rejected() {
        let (cfg, k, mem) = setup();
        // 32x32 = 1024 threads > the 512-thread CC 1.0 limit.
        let r = launch(
            &cfg,
            &k,
            dims((1, 1), (32, 32, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadBlockDims(_))), "{r:?}");
    }

    #[test]
    fn zero_grid_dim_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(
            &cfg,
            &k,
            dims((0, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadGridDims(_))), "{r:?}");
        let r = launch(
            &cfg,
            &k,
            dims((1, 0), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadGridDims(_))), "{r:?}");
    }

    #[test]
    fn oversized_grid_dim_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(
            &cfg,
            &k,
            dims((65536, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BadGridDims(_))), "{r:?}");
    }

    #[test]
    fn wrong_param_count_is_rejected() {
        let (cfg, k, mem) = setup();
        let r = launch(&cfg, &k, dims((1, 1), (32, 1, 1)), &[], &mem);
        assert!(matches!(r, Err(LaunchError::BadParams(_))), "{r:?}");
        let two = [Value::from_u32(0), Value::from_u32(0)];
        let r = launch(&cfg, &k, dims((1, 1), (32, 1, 1)), &two, &mem);
        assert!(matches!(r, Err(LaunchError::BadParams(_))), "{r:?}");
    }

    #[test]
    fn block_exceeding_smem_does_not_fit() {
        let (cfg, _, mem) = setup();
        let mut bk = KernelBuilder::new("smem_hog");
        let p = bk.param();
        // One word more shared memory than an SM has.
        bk.shared_alloc(cfg.smem_per_sm / 4 + 1);
        let tid = bk.tid_x();
        let byte = bk.shl(tid, 2u32);
        let addr = bk.iadd(byte, p);
        bk.st_global(addr, 0, tid);
        let k = bk.build();
        let r = launch(
            &cfg,
            &k,
            dims((1, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
        assert!(matches!(r, Err(LaunchError::BlockDoesNotFit(_))), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "32-lane warps")]
    fn non_32_lane_warp_config_panics() {
        let (mut cfg, k, mem) = setup();
        cfg.warp_size = 16;
        let _ = launch(
            &cfg,
            &k,
            dims((1, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        );
    }

    /// Satellite check: a grid smaller than the SM count produces the same
    /// stats and outputs on the pooled path (which submits tasks only for
    /// busy SMs) as on the spawn-per-launch baseline (which spins up a
    /// thread for all 16).
    #[test]
    fn small_grid_matches_spawn_baseline_bit_for_bit() {
        let (cfg, k, _) = setup();
        assert!(2 < cfg.num_sms);
        let run = |exec: Executor| {
            set_executor(exec);
            let mem = DeviceMemory::new(1 << 16);
            let stats = launch(
                &cfg,
                &k,
                dims((2, 1), (32, 1, 1)),
                &[Value::from_u32(0)],
                &mem,
            )
            .expect("small grid launch");
            set_executor(Executor::Pooled);
            let words: Vec<u32> = (0..64).map(|i| mem.read(i * 4).as_u32()).collect();
            (stats, words)
        };
        let (pooled, pooled_mem) = run(Executor::Pooled);
        let (spawned, spawned_mem) = run(Executor::SpawnPerLaunch);
        assert_eq!(pooled_mem, spawned_mem);
        // Both blocks store tid (block-local) to the same 32 words.
        assert_eq!(
            pooled_mem,
            (0..32)
                .chain(std::iter::repeat_n(0, 32))
                .collect::<Vec<u32>>()
        );
        assert_eq!(pooled.cycles, spawned.cycles);
        assert_eq!(pooled.warp_instructions, spawned.warp_instructions);
        assert_eq!(pooled.stall_cycles, spawned.stall_cycles);
        assert_eq!(pooled.blocks_executed, spawned.blocks_executed);
    }

    #[test]
    fn batch_matches_sequential_launches_and_keeps_error_order() {
        let (cfg, k, _) = setup();
        let mems: Vec<DeviceMemory> = (0..3).map(|_| DeviceMemory::new(1 << 16)).collect();
        let params = [Value::from_u32(0)];
        let specs = vec![
            LaunchSpec {
                kernel: &k,
                dims: dims((2, 1), (32, 1, 1)),
                params: &params,
                mem: &mems[0],
            },
            // Invalid: zero grid. Must come back as Err in position 1.
            LaunchSpec {
                kernel: &k,
                dims: dims((0, 1), (32, 1, 1)),
                params: &params,
                mem: &mems[1],
            },
            LaunchSpec {
                kernel: &k,
                dims: dims((40, 1), (64, 1, 1)),
                params: &params,
                mem: &mems[2],
            },
        ];
        let batch = launch_batch(&cfg, &specs);
        assert_eq!(batch.len(), 3);
        assert!(matches!(batch[1], Err(LaunchError::BadGridDims(_))));
        for (i, spec) in specs.iter().enumerate() {
            let serial_mem = DeviceMemory::new(1 << 16);
            let serial = launch(&cfg, spec.kernel, spec.dims, spec.params, &serial_mem);
            match (&batch[i], serial) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.cycles, s.cycles, "spec {i}");
                    assert_eq!(b.warp_instructions, s.warp_instructions, "spec {i}");
                    assert_eq!(b.stall_cycles, s.stall_cycles, "spec {i}");
                    assert_eq!(b.total_threads, s.total_threads, "spec {i}");
                }
                (Err(b), Err(s)) => assert_eq!(b, &s, "spec {i}"),
                (b, s) => panic!("spec {i}: batch {b:?} vs serial {s:?}"),
            }
        }
    }

    #[test]
    fn batch_shares_predecode_across_specs_of_one_kernel() {
        // Same kernel reference three times: the batch predecodes it once
        // (observable only through correctness here; the stats must match
        // three independent launches).
        let (cfg, k, _) = setup();
        let mems: Vec<DeviceMemory> = (0..3).map(|_| DeviceMemory::new(1 << 16)).collect();
        let params = [Value::from_u32(0)];
        let specs: Vec<LaunchSpec> = mems
            .iter()
            .map(|mem| LaunchSpec {
                kernel: &k,
                dims: dims((4, 1), (32, 1, 1)),
                params: &params,
                mem,
            })
            .collect();
        let batch = launch_batch(&cfg, &specs);
        let first = batch[0].as_ref().unwrap();
        for r in &batch {
            let r = r.as_ref().unwrap();
            assert_eq!(r.cycles, first.cycles);
            assert_eq!(r.warp_instructions, first.warp_instructions);
        }
        for mem in &mems {
            assert_eq!(mem.read(4 * 7).as_u32(), 7); // every block stores tid
        }
    }

    #[test]
    fn valid_launch_succeeds_and_errors_display() {
        let (cfg, k, mem) = setup();
        let stats = launch(
            &cfg,
            &k,
            dims((2, 1), (32, 1, 1)),
            &[Value::from_u32(0)],
            &mem,
        )
        .expect("valid launch");
        assert_eq!(stats.total_threads, 64);
        let e = LaunchError::BadBlockDims("kernel t: 0 threads per block".into());
        assert!(e.to_string().contains("threads per block"));
    }
}
