//! Kernel launch: occupancy-checked block scheduling across the 16 SMs,
//! simulated in parallel with scoped threads.
//!
//! Blocks are distributed round-robin over SMs at launch, and each SM refills
//! its own slots as resident blocks retire. Because DRAM bandwidth is
//! partitioned evenly per SM (see `GpuConfig::dram_bytes_per_cycle_per_sm`),
//! SM simulations are mutually independent and the result is deterministic
//! regardless of host thread scheduling.

use crate::config::GpuConfig;
use crate::counters::{KernelStats, SmStats};
use crate::memory::DeviceMemory;
use crate::sm::{run_sm, LaunchDims};
use g80_isa::{Kernel, Value};

/// Errors rejected at launch time (the CUDA runtime would fail the same way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block dimensions exceed the 512-thread limit or are zero.
    BadBlockDims(String),
    /// Grid dimensions are zero or exceed the 65535 limit.
    BadGridDims(String),
    /// One block alone exceeds a per-SM resource (registers / shared
    /// memory / threads).
    BlockDoesNotFit(String),
    /// Wrong number of kernel parameters.
    BadParams(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::BadBlockDims(s)
            | LaunchError::BadGridDims(s)
            | LaunchError::BlockDoesNotFit(s)
            | LaunchError::BadParams(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Launches a kernel on the simulated GPU and runs it to completion.
///
/// Returns the performance counters; output data lands in `mem`.
pub fn launch(
    cfg: &GpuConfig,
    kernel: &Kernel,
    dims: LaunchDims,
    params: &[Value],
    mem: &DeviceMemory,
) -> Result<KernelStats, LaunchError> {
    // The timing engine's warp machinery (masks, register file striding) is
    // fixed at 32 lanes; configs are free to vary everything else.
    assert_eq!(
        cfg.warp_size, 32,
        "the simulation engine only supports 32-lane warps"
    );
    let tpb = dims.threads_per_block();
    if tpb == 0 || tpb > cfg.max_threads_per_block {
        return Err(LaunchError::BadBlockDims(format!(
            "kernel {}: {} threads per block (limit {})",
            kernel.name, tpb, cfg.max_threads_per_block
        )));
    }
    if dims.grid.0 == 0 || dims.grid.1 == 0 || dims.grid.0 > 65535 || dims.grid.1 > 65535 {
        return Err(LaunchError::BadGridDims(format!(
            "kernel {}: grid {:?}",
            kernel.name, dims.grid
        )));
    }
    if params.len() != kernel.num_params as usize {
        return Err(LaunchError::BadParams(format!(
            "kernel {} expects {} params, got {}",
            kernel.name,
            kernel.num_params,
            params.len()
        )));
    }
    let blocks_per_sm = cfg.blocks_per_sm(kernel.regs_per_thread, kernel.smem_bytes, tpb);
    if blocks_per_sm == 0 {
        return Err(LaunchError::BlockDoesNotFit(format!(
            "kernel {}: a {}-thread block with {} regs/thread and {} B smem does not fit on an SM",
            kernel.name, tpb, kernel.regs_per_thread, kernel.smem_bytes
        )));
    }

    // Round-robin static assignment of blocks to SMs.
    let mut per_sm_blocks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cfg.num_sms as usize];
    let mut i = 0usize;
    for cy in 0..dims.grid.1 {
        for cx in 0..dims.grid.0 {
            per_sm_blocks[i % cfg.num_sms as usize].push((cx, cy));
            i += 1;
        }
    }

    // Simulate SMs in parallel; they share only the atomic global memory.
    let mut results: Vec<SmStats> = Vec::with_capacity(cfg.num_sms as usize);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = per_sm_blocks
            .iter()
            .map(|blocks| {
                scope.spawn(move |_| {
                    run_sm(cfg, kernel, &dims, params, mem, blocks, blocks_per_sm)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("SM simulation thread panicked"));
        }
    })
    .expect("simulation scope panicked");

    Ok(KernelStats::merge(
        &kernel.name,
        cfg,
        results,
        kernel.regs_per_thread,
        kernel.smem_bytes,
        tpb,
        blocks_per_sm,
        dims.total_blocks(),
    ))
}
