//! Warp-level evaluator for the compiled engine's straight-line regions.
//!
//! When the scheduler issues the first instruction of a region
//! ([`Step::Enter`](g80_isa::compile::Step)), [`run_region`] applies the
//! *functional* effects of every instruction in the region — register row
//! writes and shared-memory traffic — in one pre-bound pass over the warp,
//! and records each instruction's timing aux (the shared-memory
//! bank-conflict degree; 0 for pure ops) into [`Warp::region_aux`]. The
//! scheduler then charges the interior instructions cheap timing-only steps
//! (`timed_step` in `sm.rs`) with no instruction interpretation at all.
//!
//! The evaluator runs under the mask the warp entered the region with:
//! regions never span a branch, barrier, or exit (see
//! [`g80_isa::compile`]), so the active mask is constant across the whole
//! region. Each op materializes its source rows before writing its
//! destination row — the same discipline as `Warp::operand_row` — so
//! destination/source aliasing behaves identically to the interpreted
//! engine.
//!
//! Row shapes thread straight through the pre-lowered form: each op first
//! tries the same [`g80_isa::row`] fold the interpreted engine uses (under
//! a full mask, with `rows_enabled`), writing one `LaneRow` tag instead of
//! 32 lanes; shared accesses with affine address rows take the closed-form
//! bank-conflict degree.

use g80_isa::compile::{CompiledOp, Region, Src};
use g80_isa::exec::{self, Row};
use g80_isa::inst::SpecialReg;
use g80_isa::row;
use g80_isa::{LaneRow, Value};

use crate::config::GpuConfig;
use crate::counters::RowCounters;
use crate::memory::{smem_conflict_degree_noalloc, smem_degree_affine};
use crate::sm::split_half_warps;
use crate::warp::Warp;

/// The warp-invariant operand environment: everything a [`Src`] other than
/// a register can resolve to.
struct Sp<'a> {
    params: &'a [Value],
    tids: &'a [(u32, u32, u32)],
    tid_shape: [LaneRow; 3],
    ctaid: (u32, u32),
    ntid: (u32, u32, u32),
    nctaid: (u32, u32),
}

/// Materializes a pre-lowered source as a full 32-lane row. Mirrors
/// `Warp::operand_row`: copying the row out resolves the source kind once
/// per op and decouples sources from a destination row that may alias them.
/// Register sources read through their shape (the backing row of a
/// `Uniform`/`Affine` register is stale).
#[inline(always)]
fn src_row(regs: &[Value], shapes: &[LaneRow], sp: &Sp, s: Src) -> Row {
    match s {
        Src::Reg(base) => {
            let base = base as usize;
            match shapes[base / 32] {
                LaneRow::Full => *<&Row>::try_from(&regs[base..base + 32]).unwrap(),
                shape => {
                    let mut row = [Value::ZERO; 32];
                    shape.expand_into(&mut row);
                    row
                }
            }
        }
        Src::Imm(v) => [v; 32],
        Src::Param(i) => [sp.params[i as usize]; 32],
        Src::Special(r) => std::array::from_fn(|l| {
            let (tx, ty, tz) = sp.tids[l];
            Value::from_u32(match r {
                SpecialReg::TidX => tx,
                SpecialReg::TidY => ty,
                SpecialReg::TidZ => tz,
                SpecialReg::NtidX => sp.ntid.0,
                SpecialReg::NtidY => sp.ntid.1,
                SpecialReg::NtidZ => sp.ntid.2,
                SpecialReg::CtaidX => sp.ctaid.0,
                SpecialReg::CtaidY => sp.ctaid.1,
                SpecialReg::NctaidX => sp.nctaid.0,
                SpecialReg::NctaidY => sp.nctaid.1,
            })
        }),
    }
}

/// The shape of a pre-lowered source row (mirrors `Warp::operand_shape`).
#[inline(always)]
fn src_shape(shapes: &[LaneRow], sp: &Sp, s: Src) -> LaneRow {
    match s {
        Src::Reg(base) => shapes[(base as usize) / 32],
        Src::Imm(v) => LaneRow::Uniform(v),
        Src::Param(i) => LaneRow::Uniform(sp.params[i as usize]),
        Src::Special(r) => match r {
            SpecialReg::TidX => sp.tid_shape[0],
            SpecialReg::TidY => sp.tid_shape[1],
            SpecialReg::TidZ => sp.tid_shape[2],
            SpecialReg::NtidX => LaneRow::Uniform(Value::from_u32(sp.ntid.0)),
            SpecialReg::NtidY => LaneRow::Uniform(Value::from_u32(sp.ntid.1)),
            SpecialReg::NtidZ => LaneRow::Uniform(Value::from_u32(sp.ntid.2)),
            SpecialReg::CtaidX => LaneRow::Uniform(Value::from_u32(sp.ctaid.0)),
            SpecialReg::CtaidY => LaneRow::Uniform(Value::from_u32(sp.ctaid.1)),
            SpecialReg::NctaidX => LaneRow::Uniform(Value::from_u32(sp.nctaid.0)),
            SpecialReg::NctaidY => LaneRow::Uniform(Value::from_u32(sp.nctaid.1)),
        },
    }
}

/// A destination register's row, in place, materializing its shape first
/// (a subsequent masked write must preserve the shape-implied lanes).
#[inline(always)]
fn dst_row<'r>(regs: &'r mut [Value], shapes: &mut [LaneRow], base: u32) -> &'r mut Row {
    let base = base as usize;
    let row: &mut Row = (&mut regs[base..base + 32]).try_into().unwrap();
    let shape = &mut shapes[base / 32];
    if *shape != LaneRow::Full {
        (*shape).expand_into(row);
        *shape = LaneRow::Full;
    }
    row
}

/// Warp-level shared-memory bank-conflict degree, with fast paths for the
/// two access shapes that dominate real kernels — a half-warp broadcast
/// (one address) and a word-stride run (16 consecutive words touch each of
/// the 16 banks exactly once). Both shapes scan to degree 1 under the
/// general first-occurrence counter, so the early return is exact; every
/// other shape (and every non-16-bank config) falls through to the same
/// scan the interpreted engine runs.
#[inline]
fn warp_degree(cfg: &GpuConfig, addrs: &[u32; 32], mask: u32) -> u32 {
    if mask == u32::MAX && cfg.smem_banks == 16 {
        let fast = |half: &[u32]| {
            let b = half[0];
            half.iter().all(|&a| a == b)
                || half
                    .iter()
                    .enumerate()
                    .all(|(i, &a)| a == b.wrapping_add(4 * i as u32))
        };
        if fast(&addrs[..16]) && fast(&addrs[16..]) {
            return 1;
        }
    }
    let (lo, hi) = split_half_warps(addrs, mask);
    smem_conflict_degree_noalloc(cfg, &lo).max(smem_conflict_degree_noalloc(cfg, &hi))
}

/// Runs a region's functional effects over `warp` and refills
/// `warp.region_aux` with one timing-aux word per instruction. Scoreboard,
/// statistics, and pc advancement are the per-instruction timing steps'
/// job — this function only touches registers, shared memory, the aux
/// buffer, and the row-shape tally.
pub(crate) fn run_region(
    region: &Region,
    warp: &mut Warp,
    smem: &mut [Value],
    params: &[Value],
    kernel_name: &str,
    cfg: &GpuConfig,
    rows: &mut RowCounters,
) {
    let mask = warp.active_mask();
    let fold = warp.rows_enabled && mask == u32::MAX;
    let Warp {
        regs,
        shapes,
        tids,
        tid_shape,
        ctaid,
        ntid,
        nctaid,
        region_aux,
        ..
    } = warp;
    let sp = Sp {
        params,
        tids,
        tid_shape: *tid_shape,
        ctaid: *ctaid,
        ntid: *ntid,
        nctaid: *nctaid,
    };
    region_aux.clear();
    for op in &region.ops {
        let mut aux = 0u32;
        match *op {
            CompiledOp::Alu { op, dst, a, b } => {
                if fold {
                    if let Some(shape) =
                        row::fold_alu(op, src_shape(shapes, &sp, a), src_shape(shapes, &sp, b))
                    {
                        shapes[(dst as usize) / 32] = shape;
                        rows.tally(&shape);
                        region_aux.push(aux);
                        continue;
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, a);
                let br = src_row(regs, shapes, &sp, b);
                exec::eval_alu_row(op, &ar, &br, dst_row(regs, shapes, dst), mask);
            }
            CompiledOp::Ffma { dst, a, b, c } => {
                if fold {
                    if let Some(shape) = row::fold_ffma(
                        src_shape(shapes, &sp, a),
                        src_shape(shapes, &sp, b),
                        src_shape(shapes, &sp, c),
                    ) {
                        shapes[(dst as usize) / 32] = shape;
                        rows.tally(&shape);
                        region_aux.push(aux);
                        continue;
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, a);
                let br = src_row(regs, shapes, &sp, b);
                let cr = src_row(regs, shapes, &sp, c);
                exec::eval_ffma_row(&ar, &br, &cr, dst_row(regs, shapes, dst), mask);
            }
            CompiledOp::Imad { dst, a, b, c } => {
                if fold {
                    if let Some(shape) = row::fold_imad(
                        src_shape(shapes, &sp, a),
                        src_shape(shapes, &sp, b),
                        src_shape(shapes, &sp, c),
                    ) {
                        shapes[(dst as usize) / 32] = shape;
                        rows.tally(&shape);
                        region_aux.push(aux);
                        continue;
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, a);
                let br = src_row(regs, shapes, &sp, b);
                let cr = src_row(regs, shapes, &sp, c);
                exec::eval_imad_row(&ar, &br, &cr, dst_row(regs, shapes, dst), mask);
            }
            CompiledOp::Un { op, dst, a } => {
                if fold {
                    if let Some(shape) = row::fold_un(op, src_shape(shapes, &sp, a)) {
                        shapes[(dst as usize) / 32] = shape;
                        rows.tally(&shape);
                        region_aux.push(aux);
                        continue;
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, a);
                exec::eval_un_row(op, &ar, dst_row(regs, shapes, dst), mask);
            }
            CompiledOp::Sfu { op, dst, a } => {
                if fold {
                    if let Some(shape) = row::fold_sfu(op, src_shape(shapes, &sp, a)) {
                        shapes[(dst as usize) / 32] = shape;
                        rows.tally(&shape);
                        region_aux.push(aux);
                        continue;
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, a);
                exec::eval_sfu_row(op, &ar, dst_row(regs, shapes, dst), mask);
            }
            CompiledOp::SetP { op, ty, dst, a, b } => {
                if fold {
                    if let Some(shape) =
                        row::fold_cmp(op, ty, src_shape(shapes, &sp, a), src_shape(shapes, &sp, b))
                    {
                        shapes[(dst as usize) / 32] = shape;
                        rows.tally(&shape);
                        region_aux.push(aux);
                        continue;
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, a);
                let br = src_row(regs, shapes, &sp, b);
                exec::eval_cmp_row(op, ty, &ar, &br, dst_row(regs, shapes, dst), mask);
            }
            CompiledOp::Sel { dst, c, a, b } => {
                if fold {
                    if let Some(shape) = row::fold_sel(
                        src_shape(shapes, &sp, c),
                        src_shape(shapes, &sp, a),
                        src_shape(shapes, &sp, b),
                    ) {
                        shapes[(dst as usize) / 32] = shape;
                        rows.tally(&shape);
                        region_aux.push(aux);
                        continue;
                    }
                }
                rows.full += 1;
                let cr = src_row(regs, shapes, &sp, c);
                let ar = src_row(regs, shapes, &sp, a);
                let br = src_row(regs, shapes, &sp, b);
                exec::eval_sel_row(&cr, &ar, &br, dst_row(regs, shapes, dst), mask);
            }
            CompiledOp::LdShared { dst, addr, off } => {
                if fold {
                    if let Some((base, stride)) = shifted(src_shape(shapes, &sp, addr), off) {
                        if let Some(d) = smem_degree_affine(cfg, stride) {
                            rows.tally(&LaneRow::affine(base, stride));
                            let dr = dst_row(regs, shapes, dst);
                            let mut a = base;
                            for slot in dr.iter_mut() {
                                let idx = (a / 4) as usize;
                                assert!(
                                    idx < smem.len(),
                                    "kernel {}: shared load out of bounds ({} >= {})",
                                    kernel_name,
                                    idx,
                                    smem.len()
                                );
                                *slot = smem[idx];
                                a = a.wrapping_add(stride);
                            }
                            region_aux.push(d);
                            continue;
                        }
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, addr);
                let mut addrs = [0u32; 32];
                for (l, a) in addrs.iter_mut().enumerate() {
                    *a = ar[l].as_u32().wrapping_add(off as u32);
                }
                aux = warp_degree(cfg, &addrs, mask);
                let dr = dst_row(regs, shapes, dst);
                for (l, &a) in addrs.iter().enumerate() {
                    if mask >> l & 1 == 1 {
                        let idx = (a / 4) as usize;
                        assert!(
                            idx < smem.len(),
                            "kernel {}: shared load out of bounds ({} >= {})",
                            kernel_name,
                            idx,
                            smem.len()
                        );
                        dr[l] = smem[idx];
                    }
                }
            }
            CompiledOp::StShared { addr, off, src } => {
                if fold {
                    if let Some((base, stride)) = shifted(src_shape(shapes, &sp, addr), off) {
                        if let Some(d) = smem_degree_affine(cfg, stride) {
                            rows.tally(&LaneRow::affine(base, stride));
                            let srcs = src_row(regs, shapes, &sp, src);
                            let mut a = base;
                            for &v in srcs.iter() {
                                let idx = (a / 4) as usize;
                                assert!(
                                    idx < smem.len(),
                                    "kernel {}: shared store out of bounds ({} >= {})",
                                    kernel_name,
                                    idx,
                                    smem.len()
                                );
                                smem[idx] = v;
                                a = a.wrapping_add(stride);
                            }
                            region_aux.push(d);
                            continue;
                        }
                    }
                }
                rows.full += 1;
                let ar = src_row(regs, shapes, &sp, addr);
                let srcs = src_row(regs, shapes, &sp, src);
                let mut addrs = [0u32; 32];
                for (l, a) in addrs.iter_mut().enumerate() {
                    *a = ar[l].as_u32().wrapping_add(off as u32);
                }
                aux = warp_degree(cfg, &addrs, mask);
                for (l, &a) in addrs.iter().enumerate() {
                    if mask >> l & 1 == 1 {
                        let idx = (a / 4) as usize;
                        assert!(
                            idx < smem.len(),
                            "kernel {}: shared store out of bounds ({} >= {})",
                            kernel_name,
                            idx,
                            smem.len()
                        );
                        smem[idx] = srcs[l];
                    }
                }
            }
        }
        region_aux.push(aux);
    }
}

/// `(base + off, stride)` of an address row shape, or `None` for `Full`.
#[inline(always)]
fn shifted(shape: LaneRow, off: i32) -> Option<(u32, u32)> {
    let (base, stride) = shape.base_stride()?;
    Some((base.wrapping_add(off as u32), stride))
}
