//! Device memory and the access-pattern machinery: global-memory coalescing,
//! shared-memory bank conflicts, and the constant/texture caches.
//!
//! Global memory is stored as `AtomicU32` words so the 16 SM simulation
//! threads can execute concurrently in safe Rust; kernels that follow the
//! CUDA consistency rules (no data races between blocks except via atomics)
//! observe exactly the values they would on hardware. All accesses are
//! 4-byte words at byte addresses.

use crate::config::GpuConfig;
use g80_isa::Value;
use std::sync::atomic::{AtomicU32, Ordering};

/// Device global memory plus the read-only constant bank and an optional
/// texture binding.
pub struct DeviceMemory {
    words: Vec<AtomicU32>,
    /// Constant bank contents (read-only during kernels).
    pub const_bank: Vec<u32>,
    /// Texture binding: (base byte address, length in bytes) into global
    /// memory. Texture fetches address this window.
    pub tex_binding: Option<(u32, u32)>,
}

impl DeviceMemory {
    /// Creates a device memory of `bytes` bytes (rounded up to a word).
    pub fn new(bytes: u32) -> Self {
        let words = (bytes as usize).div_ceil(4);
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU32::new(0));
        DeviceMemory {
            words: v,
            const_bank: Vec::new(),
            tex_binding: None,
        }
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Reads the word at a byte address.
    #[inline]
    pub fn read(&self, addr: u32) -> Value {
        let idx = (addr / 4) as usize;
        assert!(
            idx < self.words.len(),
            "global read out of bounds: addr {addr:#x}"
        );
        Value(self.words[idx].load(Ordering::Relaxed))
    }

    /// Writes the word at a byte address.
    #[inline]
    pub fn write(&self, addr: u32, v: Value) {
        let idx = (addr / 4) as usize;
        assert!(
            idx < self.words.len(),
            "global write out of bounds: addr {addr:#x}"
        );
        self.words[idx].store(v.0, Ordering::Relaxed);
    }

    /// Atomic read-modify-write; returns the old value. Uses a CAS loop so
    /// every [`g80_isa::AtomOp`] works uniformly.
    pub fn atomic(&self, op: g80_isa::AtomOp, addr: u32, src: Value) -> Value {
        let idx = (addr / 4) as usize;
        assert!(
            idx < self.words.len(),
            "atomic out of bounds: addr {addr:#x}"
        );
        let cell = &self.words[idx];
        let mut old = cell.load(Ordering::Relaxed);
        loop {
            let (new, _) = g80_isa::exec::eval_atom(op, Value(old), src);
            match cell.compare_exchange_weak(old, new.0, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Value(old),
                Err(cur) => old = cur,
            }
        }
    }

    /// Host-side bulk write (cudaMemcpy host-to-device).
    pub fn write_slice(&self, byte_addr: u32, data: &[u32]) {
        for (i, &w) in data.iter().enumerate() {
            self.write(byte_addr + (i as u32) * 4, Value(w));
        }
    }

    /// Host-side bulk read (cudaMemcpy device-to-host).
    pub fn read_slice(&self, byte_addr: u32, out: &mut [u32]) {
        for (i, w) in out.iter_mut().enumerate() {
            *w = self.read(byte_addr + (i as u32) * 4).0;
        }
    }

    /// Copies the entire word array out (memo-cache snapshots and digests).
    pub fn snapshot_words(&self) -> Vec<u32> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Restores a [`snapshot_words`](Self::snapshot_words) image, undoing
    /// every global write since the snapshot. The launch layer uses this to
    /// retry a launch whose partial writes would otherwise double-apply
    /// (kernels cannot write the constant bank or rebind textures, so the
    /// word image is the whole mutable state).
    pub fn restore_words(&self, snapshot: &[u32]) {
        assert_eq!(snapshot.len(), self.words.len(), "snapshot size mismatch");
        for (cell, &w) in self.words.iter().zip(snapshot) {
            cell.store(w, Ordering::Relaxed);
        }
    }

    /// Reads a constant-bank word at a byte address.
    #[inline]
    pub fn read_const(&self, addr: u32) -> Value {
        let idx = (addr / 4) as usize;
        assert!(
            idx < self.const_bank.len(),
            "const read out of bounds: addr {addr:#x}"
        );
        Value(self.const_bank[idx])
    }

    /// Resolves a texture fetch (byte offset into the bound window) to a
    /// global byte address.
    #[inline]
    pub fn tex_to_global(&self, addr: u32) -> u32 {
        let (base, len) = self
            .tex_binding
            .expect("texture fetch without a bound texture");
        assert!(addr < len, "texture fetch out of bounds: addr {addr:#x}");
        base + addr
    }
}

/// Result of analysing one half-warp's global access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HalfWarpAccess {
    /// Whether the access met the CC 1.0 coalescing rules.
    pub coalesced: bool,
    /// Number of memory transactions issued.
    pub transactions: u32,
    /// Total bytes moved.
    pub bytes: u64,
}

/// Applies the GeForce 8800 (compute capability 1.0) coalescing rules to one
/// half-warp of byte addresses (`None` = inactive lane).
///
/// The access coalesces into a single transaction iff every active lane `k`
/// accesses word `k` of one aligned 16-word (64 B) segment. Anything else —
/// permuted, misaligned, strided, or broadcast — issues a separate
/// transaction per distinct address (duplicates optionally combined,
/// paper footnote 4) at DRAM burst granularity.
pub fn coalesce_half_warp(cfg: &GpuConfig, addrs: &[Option<u32>; 16]) -> HalfWarpAccess {
    let active: Vec<(usize, u32)> = addrs
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|a| (i, a)))
        .collect();
    if active.is_empty() {
        return HalfWarpAccess {
            coalesced: true,
            transactions: 0,
            bytes: 0,
        };
    }

    // Segment base from any active lane: lane k at word k of the segment.
    let (lane0, addr0) = active[0];
    let base = addr0.wrapping_sub((lane0 as u32) * 4);
    let aligned = base % (cfg.coalesced_txn_bytes) == 0;
    let coalesced = aligned
        && active
            .iter()
            .all(|&(lane, addr)| addr == base + (lane as u32) * 4);

    if coalesced {
        HalfWarpAccess {
            coalesced: true,
            transactions: 1,
            bytes: cfg.coalesced_txn_bytes as u64,
        }
    } else {
        let mut addrs: Vec<u32> = active.iter().map(|&(_, a)| a).collect();
        if cfg.combine_duplicates {
            addrs.sort_unstable();
            addrs.dedup();
        }
        let n = addrs.len() as u32;
        HalfWarpAccess {
            coalesced: false,
            transactions: n,
            bytes: n as u64 * cfg.uncoalesced_txn_bytes as u64,
        }
    }
}

/// Computes the bank-conflict degree of one half-warp of shared-memory byte
/// addresses: the maximum number of *distinct* addresses mapping to one bank
/// (identical addresses broadcast for free on G80).
pub fn smem_conflict_degree(cfg: &GpuConfig, addrs: &[Option<u32>; 16]) -> u32 {
    let nbanks = cfg.smem_banks as usize;
    let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); nbanks];
    for a in addrs.iter().flatten() {
        let bank = ((a / 4) as usize) % nbanks;
        if !per_bank[bank].contains(a) {
            per_bank[bank].push(*a);
        }
    }
    per_bank
        .iter()
        .map(|v| v.len() as u32)
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Allocation-free twin of [`coalesce_half_warp`]: same result for every
/// input, computed in stack buffers. The predecoded engine calls this in
/// its hot loop; the reference engine keeps the original, which is part of
/// its frozen host-cost baseline.
pub fn coalesce_half_warp_noalloc(cfg: &GpuConfig, addrs: &[Option<u32>; 16]) -> HalfWarpAccess {
    let mut lanes = [0u32; 16];
    let mut act = [0u32; 16];
    let mut n = 0usize;
    for (i, a) in addrs.iter().enumerate() {
        if let Some(a) = *a {
            lanes[n] = i as u32;
            act[n] = a;
            n += 1;
        }
    }
    if n == 0 {
        return HalfWarpAccess {
            coalesced: true,
            transactions: 0,
            bytes: 0,
        };
    }

    // Segment base from any active lane: lane k at word k of the segment.
    let base = act[0].wrapping_sub(lanes[0] * 4);
    let aligned = base % (cfg.coalesced_txn_bytes) == 0;
    let coalesced = aligned && (0..n).all(|k| act[k] == base + lanes[k] * 4);

    if coalesced {
        HalfWarpAccess {
            coalesced: true,
            transactions: 1,
            bytes: cfg.coalesced_txn_bytes as u64,
        }
    } else {
        let mut distinct = n as u32;
        if cfg.combine_duplicates {
            let s = &mut act[..n];
            s.sort_unstable();
            distinct = 1;
            for k in 1..n {
                if s[k] != s[k - 1] {
                    distinct += 1;
                }
            }
        }
        HalfWarpAccess {
            coalesced: false,
            transactions: distinct,
            bytes: distinct as u64 * cfg.uncoalesced_txn_bytes as u64,
        }
    }
}

/// Allocation-free twin of [`smem_conflict_degree`]: same result for every
/// input. A shared-memory address maps to exactly one bank, so the
/// per-bank distinct-address count equals a global first-occurrence scan
/// bumping that bank's counter. Falls back to the allocating version for
/// configs with more banks than the stack buffer covers.
pub fn smem_conflict_degree_noalloc(cfg: &GpuConfig, addrs: &[Option<u32>; 16]) -> u32 {
    let nbanks = cfg.smem_banks as usize;
    if nbanks > 64 {
        return smem_conflict_degree(cfg, addrs);
    }
    let mut counts = [0u32; 64];
    let mut seen = [0u32; 16];
    let mut nseen = 0usize;
    for a in addrs.iter().flatten() {
        if !seen[..nseen].contains(a) {
            seen[nseen] = *a;
            nseen += 1;
            counts[((a / 4) as usize) % nbanks] += 1;
        }
    }
    counts[..nbanks].iter().copied().max().unwrap_or(0).max(1)
}

/// Closed-form CC 1.0 coalescing for a *full* half-warp whose addresses are
/// affine in the lane index: lane `k` accesses `base + stride·k` (mod 2^32)
/// for `k = 0..16`. Returns `None` when no closed form applies (the caller
/// falls back to the per-lane scan); `Some(acc)` is bit-identical to
/// [`coalesce_half_warp_noalloc`] on the expanded addresses.
///
/// Derivation (DESIGN.md §15): the coalesced pattern requires
/// `addr_k = seg + 4k` with `seg` aligned, and matching lane 1 already
/// forces `stride == 4` — so the access coalesces iff `stride == 4` and
/// `base % coalesced_txn_bytes == 0`. A zero stride is a broadcast: one
/// distinct address (16 when duplicates are not combined). Any other stride
/// yields 16 pairwise-distinct addresses provided `stride·d ≠ 0 (mod 2^32)`
/// for all `1 ≤ d ≤ 15`, i.e. the stride's 2-adic valuation is below 29;
/// the rare `2^29`-divisible strides fall back to the scan.
pub fn coalesce_affine_half(cfg: &GpuConfig, base: u32, stride: u32) -> Option<HalfWarpAccess> {
    if stride == 4 && base.is_multiple_of(cfg.coalesced_txn_bytes) {
        return Some(HalfWarpAccess {
            coalesced: true,
            transactions: 1,
            bytes: cfg.coalesced_txn_bytes as u64,
        });
    }
    let distinct = if stride == 0 {
        if cfg.combine_duplicates {
            1
        } else {
            16
        }
    } else if stride.trailing_zeros() >= 29 {
        return None; // lanes may collide mod 2^32
    } else {
        16
    };
    Some(HalfWarpAccess {
        coalesced: false,
        transactions: distinct,
        bytes: distinct as u64 * cfg.uncoalesced_txn_bytes as u64,
    })
}

/// Closed-form shared-memory bank-conflict degree for a *full* half-warp
/// with affine addresses (lane `k` at `base + stride·k`, mod 2^32). `None`
/// means no closed form applies (the caller falls back to the scan);
/// `Some(d)` is bit-identical to [`smem_conflict_degree_noalloc`] on the
/// expanded addresses, for *any* base — so one evaluation covers both
/// halves of a warp.
///
/// With 16 banks and a word-multiple stride `4w`, lane `k` hits bank
/// `(base/4 + w·k) mod 16`; the addresses are pairwise distinct (same
/// 2-adic-valuation guard as [`coalesce_affine_half`]), so the per-bank
/// distinct count — hence the degree — is `gcd(w mod 16, 16)`, with
/// `w ≡ 0 (mod 16)` putting all 16 lanes in one bank. A zero stride
/// broadcasts (degree 1). Non-word strides fall back.
pub fn smem_degree_affine(cfg: &GpuConfig, stride: u32) -> Option<u32> {
    if cfg.smem_banks != 16 {
        return None;
    }
    if stride == 0 {
        return Some(1);
    }
    if !stride.is_multiple_of(4) || stride.trailing_zeros() >= 29 {
        return None;
    }
    let w = (stride / 4) % 16;
    Some(if w == 0 { 16 } else { g80_isa::row::gcd(w, 16) })
}

/// A direct-mapped per-SM cache model (tags only — data comes from the
/// backing store functionally). Used for both the constant and texture
/// caches.
pub struct TagCache {
    line_bytes: u32,
    tags: Vec<u64>,
}

impl TagCache {
    /// A cache of `size_bytes` capacity with `line_bytes` lines.
    pub fn new(size_bytes: u32, line_bytes: u32) -> Self {
        let lines = (size_bytes / line_bytes).max(1) as usize;
        TagCache {
            line_bytes,
            tags: vec![u64::MAX; lines],
        }
    }

    /// Looks up the line containing `addr`, filling on miss. Returns true on
    /// hit.
    pub fn access(&mut self, addr: u32) -> bool {
        let line = (addr / self.line_bytes) as u64;
        let set = (line as usize) % self.tags.len();
        if self.tags[set] == line {
            true
        } else {
            self.tags[set] = line;
            false
        }
    }

    /// Invalidates all lines.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::geforce_8800_gtx()
    }

    fn lanes(addrs: &[u32]) -> [Option<u32>; 16] {
        let mut a = [None; 16];
        for (i, &x) in addrs.iter().enumerate() {
            a[i] = Some(x);
        }
        a
    }

    fn affine_half(base: u32, stride: u32) -> [Option<u32>; 16] {
        let mut a = [None; 16];
        for k in 0..16u32 {
            a[k as usize] = Some(base.wrapping_add(stride.wrapping_mul(k)));
        }
        a
    }

    #[test]
    fn affine_closed_forms_match_scans() {
        // Deterministic LCG sweep over (base, stride), plus targeted edges.
        // Bases stay below 2^31 so the scan's non-wrapping coalesced check
        // cannot overflow in debug builds (the closed form is specified
        // against the release-mode wrapping scan).
        let mut configs = vec![cfg()];
        let mut alt = cfg();
        alt.combine_duplicates = !alt.combine_duplicates;
        configs.push(alt);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut cases: Vec<(u32, u32)> = Vec::new();
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let base = ((state >> 33) as u32) & 0x7fff_ffff;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mix small strides (the interesting regime) with arbitrary ones.
            let stride = if state & 1 == 0 {
                ((state >> 40) as u32) & 0xff
            } else {
                (state >> 32) as u32 & 0x7fff_ffff
            };
            cases.push((base, stride));
        }
        for s in [
            0,
            4,
            8,
            12,
            16,
            64,
            1,
            2,
            3,
            60,
            68,
            1 << 29,
            1 << 30,
            3 << 28,
        ] {
            for b in [0, 4, 64, 60, 0x1000, 0x1004, 0x7fff_0000] {
                cases.push((b, s));
            }
        }
        for c in &configs {
            for &(base, stride) in &cases {
                let half = affine_half(base, stride);
                if let Some(got) = coalesce_affine_half(c, base, stride) {
                    let want = coalesce_half_warp_noalloc(c, &half);
                    assert_eq!(got, want, "global base={base:#x} stride={stride}");
                    assert_eq!(got, coalesce_half_warp(c, &half));
                }
                if let Some(got) = smem_degree_affine(c, stride) {
                    let want = smem_conflict_degree_noalloc(c, &half);
                    assert_eq!(got, want, "smem base={base:#x} stride={stride}");
                }
            }
        }
    }

    #[test]
    fn affine_closed_form_known_answers() {
        let c = cfg();
        // Unit word stride, aligned: the coalesced fast case.
        let r = coalesce_affine_half(&c, 0x1000, 4).unwrap();
        assert!(r.coalesced);
        assert_eq!(r.transactions, 1);
        // Unit word stride, misaligned: 16 transactions.
        let r = coalesce_affine_half(&c, 0x1004, 4).unwrap();
        assert!(!r.coalesced);
        assert_eq!(r.transactions, 16);
        // Broadcast: one combined transaction (8800 GTX combines duplicates).
        let r = coalesce_affine_half(&c, 0x1000, 0).unwrap();
        assert_eq!(r.transactions, if c.combine_duplicates { 1 } else { 16 });
        // Collision-prone stride falls back.
        assert!(coalesce_affine_half(&c, 0, 1 << 29).is_none());
        assert!(coalesce_affine_half(&c, 0, 1 << 31).is_none());
        // Shared: broadcast 1, word stride 1, 2-word stride 2, 16-word 16.
        assert_eq!(smem_degree_affine(&c, 0), Some(1));
        assert_eq!(smem_degree_affine(&c, 4), Some(1));
        assert_eq!(smem_degree_affine(&c, 8), Some(2));
        assert_eq!(smem_degree_affine(&c, 64), Some(16));
        assert_eq!(smem_degree_affine(&c, 2), None); // sub-word stride
    }

    #[test]
    fn contiguous_aligned_coalesces() {
        let a: Vec<u32> = (0..16).map(|i| 0x1000 + i * 4).collect();
        let r = coalesce_half_warp(&cfg(), &lanes(&a));
        assert!(r.coalesced);
        assert_eq!(r.transactions, 1);
        assert_eq!(r.bytes, 64);
    }

    #[test]
    fn partial_half_warp_still_coalesces() {
        // Only 8 active lanes, but each at its own word slot.
        let mut a = [None; 16];
        for i in 0..8 {
            a[i] = Some(0x2000 + (i as u32) * 4);
        }
        let r = coalesce_half_warp(&cfg(), &a);
        assert!(r.coalesced);
        assert_eq!(r.transactions, 1);
    }

    #[test]
    fn misaligned_contiguous_does_not_coalesce() {
        // Contiguous but shifted by one word: 16 separate transactions on
        // CC 1.0 — the classic 16x penalty.
        let a: Vec<u32> = (0..16).map(|i| 0x1004 + i * 4).collect();
        let r = coalesce_half_warp(&cfg(), &lanes(&a));
        assert!(!r.coalesced);
        assert_eq!(r.transactions, 16);
        assert_eq!(r.bytes, 16 * cfg().uncoalesced_txn_bytes as u64);
    }

    #[test]
    fn permuted_does_not_coalesce() {
        let mut a: Vec<u32> = (0..16).map(|i| 0x1000 + i * 4).collect();
        a.swap(0, 1);
        let r = coalesce_half_warp(&cfg(), &lanes(&a));
        assert!(!r.coalesced);
        assert_eq!(r.transactions, 16);
    }

    #[test]
    fn strided_pays_per_lane() {
        // Stride-2 words: every active lane its own transaction.
        let a: Vec<u32> = (0..16).map(|i| 0x1000 + i * 8).collect();
        let r = coalesce_half_warp(&cfg(), &lanes(&a));
        assert!(!r.coalesced);
        assert_eq!(r.transactions, 16);
    }

    #[test]
    fn broadcast_combines_when_enabled() {
        // Footnote-4 combining is available as a model option…
        let mut c = cfg();
        c.combine_duplicates = true;
        let a = vec![0x1000u32; 16];
        let r = coalesce_half_warp(&c, &lanes(&a));
        assert!(!r.coalesced);
        assert_eq!(r.transactions, 1);
        assert_eq!(r.bytes, c.uncoalesced_txn_bytes as u64);
    }

    #[test]
    fn broadcast_serializes_by_default() {
        // …but the calibrated CC 1.0 default issues one transaction per
        // active lane, duplicates included.
        let a = vec![0x1000u32; 16];
        let r = coalesce_half_warp(&cfg(), &lanes(&a));
        assert_eq!(r.transactions, 16);
    }

    #[test]
    fn inactive_half_warp_is_free() {
        let r = coalesce_half_warp(&cfg(), &[None; 16]);
        assert_eq!(r.transactions, 0);
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn bank_conflicts() {
        let c = cfg();
        // All 16 lanes hit distinct banks: degree 1.
        let a: Vec<u32> = (0..16).map(|i| i * 4).collect();
        assert_eq!(smem_conflict_degree(&c, &lanes(&a)), 1);
        // Stride-2 words: 8 banks each hit by 2 distinct addrs: degree 2.
        let a: Vec<u32> = (0..16).map(|i| i * 8).collect();
        assert_eq!(smem_conflict_degree(&c, &lanes(&a)), 2);
        // Stride-16 words: all in bank 0: degree 16.
        let a: Vec<u32> = (0..16).map(|i| i * 64).collect();
        assert_eq!(smem_conflict_degree(&c, &lanes(&a)), 16);
        // Same address everywhere: broadcast, degree 1.
        let a = vec![128u32; 16];
        assert_eq!(smem_conflict_degree(&c, &lanes(&a)), 1);
    }

    #[test]
    fn device_memory_rw_and_atomics() {
        let m = DeviceMemory::new(1024);
        m.write(0, Value::from_f32(1.5));
        assert_eq!(m.read(0).as_f32(), 1.5);
        m.write_slice(16, &[1, 2, 3]);
        let mut out = [0u32; 3];
        m.read_slice(16, &mut out);
        assert_eq!(out, [1, 2, 3]);

        let old = m.atomic(g80_isa::AtomOp::Add, 16, Value::from_u32(10));
        assert_eq!(old.as_u32(), 1);
        assert_eq!(m.read(16).as_u32(), 11);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let m = DeviceMemory::new(64);
        m.read(64);
    }

    #[test]
    fn mixed_half_warp_scattered_lanes_coalesce_at_their_slots() {
        // Active lanes 1, 5, 12 each at word k of the segment: coalesces.
        let mut a = [None; 16];
        for lane in [1usize, 5, 12] {
            a[lane] = Some(0x4000 + (lane as u32) * 4);
        }
        let r = coalesce_half_warp(&cfg(), &a);
        assert!(r.coalesced);
        assert_eq!(r.transactions, 1);

        // One of them off its slot breaks the whole half-warp.
        a[5] = Some(0x4000 + 6 * 4);
        let r = coalesce_half_warp(&cfg(), &a);
        assert!(!r.coalesced);
        assert_eq!(r.transactions, 3);
    }

    #[test]
    fn unaligned_segment_base_never_coalesces() {
        // A single active lane whose implied segment base is not 64 B
        // aligned: lane 0 at 0x1010 puts the base mid-segment.
        let mut a = [None; 16];
        a[0] = Some(0x1010);
        let r = coalesce_half_warp(&cfg(), &a);
        assert!(!r.coalesced);
        assert_eq!(r.transactions, 1);
        assert_eq!(r.bytes, cfg().uncoalesced_txn_bytes as u64);
    }

    /// The allocation-free twins must agree with the originals on every
    /// access shape the engine can produce. Sweeps structured patterns and
    /// an LCG-driven random battery under both duplicate-combining modes.
    #[test]
    fn noalloc_twins_match_originals() {
        let mut cfgs = [cfg(), cfg()];
        cfgs[1].combine_duplicates = true;

        let mut patterns: Vec<[Option<u32>; 16]> = vec![
            [None; 16],
            lanes(&(0..16).map(|i| 0x1000 + i * 4).collect::<Vec<_>>()),
            lanes(&(0..16).map(|i| 0x1004 + i * 4).collect::<Vec<_>>()),
            lanes(&(0..16).map(|i| 0x1000 + i * 8).collect::<Vec<_>>()),
            lanes(&[0x2000u32; 16]),
            lanes(&(0..16).map(|i| i * 64).collect::<Vec<_>>()),
        ];
        // Deterministic LCG battery: random addresses, random lane masks.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..200 {
            let mask = next() & 0xffff;
            let mut a = [None; 16];
            for (lane, slot) in a.iter_mut().enumerate() {
                if mask & (1 << lane) != 0 {
                    // Word-aligned addresses in a small window so duplicates
                    // and shared-bank collisions actually occur.
                    *slot = Some((next() % 256) * 4);
                }
            }
            patterns.push(a);
        }

        for c in &cfgs {
            for a in &patterns {
                assert_eq!(
                    coalesce_half_warp(c, a),
                    coalesce_half_warp_noalloc(c, a),
                    "coalesce twins disagree on {a:?}"
                );
                assert_eq!(
                    smem_conflict_degree(c, a),
                    smem_conflict_degree_noalloc(c, a),
                    "smem twins disagree on {a:?}"
                );
            }
        }
    }

    #[test]
    fn tag_cache_eviction_is_per_set() {
        let mut c = TagCache::new(128, 32); // 4 direct-mapped lines
        assert!(!c.access(0)); // set 0 cold
        assert!(!c.access(32)); // set 1 cold
        assert!(!c.access(128)); // set 0 conflict, evicts line 0
        assert!(c.access(128 + 28)); // line 4 now resident in set 0
        assert!(c.access(32)); // set 1 untouched by set 0 eviction
        assert!(!c.access(0)); // line 0 was indeed evicted
    }

    #[test]
    fn tag_cache_behaviour() {
        let mut c = TagCache::new(128, 32); // 4 lines
        assert!(!c.access(0)); // cold miss
        assert!(c.access(4)); // same line
        assert!(!c.access(128)); // maps to set 0, evicts
        assert!(!c.access(0)); // conflict miss
        c.flush();
        assert!(!c.access(4));
    }
}
