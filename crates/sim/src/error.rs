//! The unified error hierarchy for the simulator stack.
//!
//! [`crate::LaunchError`] covers launch-time rejection and per-launch
//! degradation (watchdog aborts, injected faults, caught kernel panics).
//! [`CudaError`] covers the host-runtime device layer (allocation,
//! transfers, constant uploads) — it lives here rather than in `g80-cuda`
//! because the dependency points that way, and because sweeps in `g80-core`
//! plumb both through one [`SimError`].

use crate::launch::LaunchError;

/// Typed failures of the host-runtime device layer (`g80-cuda`). The
/// legacy infallible APIs (`Device::alloc` etc.) panic with the same
/// messages they always did; the `try_*` twins return these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CudaError {
    /// Allocation exceeds remaining device memory.
    OutOfMemory {
        /// Bytes requested.
        want: u32,
        /// Byte offset the allocation would start at.
        at: u32,
        /// Total device memory in bytes.
        have: u32,
    },
    /// A host-to-device copy is larger than the destination buffer.
    OversizedCopy {
        /// Elements in the host slice.
        len: usize,
        /// Capacity of the device buffer in elements.
        capacity: usize,
    },
    /// A constant-bank upload exceeds the bank size.
    ConstOverflow {
        /// Bytes in the upload.
        want: usize,
        /// Constant bank capacity in bytes.
        have: usize,
    },
    /// A deterministic fault injected at the named device-layer site
    /// (see [`crate::fault`]).
    InjectedFault {
        /// [`crate::fault::Site::name`] of the firing site.
        site: &'static str,
    },
}

impl std::fmt::Display for CudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CudaError::OutOfMemory { want, at, have } => write!(
                f,
                "OutOfMemory: device out of memory: want {want} B at {at}, have {have} B"
            ),
            CudaError::OversizedCopy { len, capacity } => write!(
                f,
                "OversizedCopy: h2d copy larger than buffer ({len} > {capacity} elements)"
            ),
            CudaError::ConstOverflow { want, have } => write!(
                f,
                "ConstOverflow: constant bank overflow ({want} B > {have} B)"
            ),
            CudaError::InjectedFault { site } => {
                write!(f, "InjectedFault: injected fault at {site}")
            }
        }
    }
}

impl std::error::Error for CudaError {}

/// Any failure the simulator stack can report: a launch-layer error or a
/// device-layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A launch was rejected or degraded (see [`LaunchError`]).
    Launch(LaunchError),
    /// A device-layer operation failed (see [`CudaError`]).
    Cuda(CudaError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Launch(e) => write!(f, "Launch: {e}"),
            SimError::Cuda(e) => write!(f, "Cuda: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Launch(e) => Some(e),
            SimError::Cuda(e) => Some(e),
        }
    }
}

impl From<LaunchError> for SimError {
    fn from(e: LaunchError) -> Self {
        SimError::Launch(e)
    }
}

impl From<CudaError> for SimError {
    fn from(e: CudaError) -> Self {
        SimError::Cuda(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_include_variant_names() {
        let e = CudaError::OutOfMemory {
            want: 4000,
            at: 0,
            have: 1024,
        };
        assert!(e.to_string().starts_with("OutOfMemory:"));
        assert!(e.to_string().contains("device out of memory"));
        let e = CudaError::ConstOverflow {
            want: 80000,
            have: 65536,
        };
        assert!(e.to_string().contains("constant bank overflow"));
        let s: SimError = LaunchError::BadParams("kernel k expects 1 params, got 0".into()).into();
        assert!(s.to_string().starts_with("Launch: BadParams:"), "{s}");
        let s: SimError = CudaError::InjectedFault {
            site: "device.alloc",
        }
        .into();
        assert!(s.to_string().contains("device.alloc"));
        assert!(std::error::Error::source(&s).is_some());
    }
}
