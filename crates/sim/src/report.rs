//! Serializable per-launch report: stats, cache-tier provenance, and the
//! redundancy-elimination counters, in one struct.
//!
//! [`crate::launch_traced`] tells a caller *which tier* served a launch;
//! the process-wide [`crate::memo_counters`] tell it how the cache tiers
//! are doing overall — but before this module the two could only be
//! combined by hand (`g80-cuda`'s `Timeline` does exactly that diffing).
//! [`LaunchReport`] packages both, and serializes with the canonical
//! [`crate::wire`] codec, so the same struct a host runtime inspects
//! in-process is what the `g80-serve` daemon streams to remote tenants —
//! a client can see not just its own launch's provenance but the shared
//! cache heat its fleet (and every other tenant's) has built up.

use crate::config::GpuConfig;
use crate::counters::{net_counters, row_counters, KernelStats, NetCounters, RowCounters};
use crate::launch::{launch_traced, LaunchError};
use crate::memo::{memo_counters, MemoCounters, Served};
use crate::memory::DeviceMemory;
use crate::sm::LaunchDims;
use crate::wire::{self, Dec, Enc};
use g80_isa::{Kernel, Value};

/// Everything one launch reports: the simulated counters, which cache tier
/// answered, and a snapshot of the process-wide redundancy counters taken
/// when the launch completed.
///
/// `counters` is a *snapshot of totals*, not a per-launch delta: totals
/// are race-free under concurrent launches (a delta would attribute other
/// threads' traffic to this launch), and successive reports let a caller
/// diff for itself.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// The launch's performance counters, bit-identical to what
    /// [`crate::launch`] returns for the same spec.
    pub stats: KernelStats,
    /// Which tier served this launch (fresh simulation, in-process memo
    /// LRU, or the persistent disk tier).
    pub served: Served,
    /// Process-wide [`memo_counters`] observed at completion.
    pub counters: MemoCounters,
    /// Process-wide [`row_counters`] observed at completion: how many
    /// warp-instruction executions resolved through uniform/affine lane-row
    /// shapes versus eager full-row evaluation. Like `counters`, a snapshot
    /// of totals — diff successive reports to attribute a single launch.
    pub rows: RowCounters,
    /// Process-wide [`net_counters`] observed at completion: transport
    /// faults the serving tier survived (disconnects, frame retries, bytes
    /// re-sent, reconnect replays). All-zero for in-process launches. Like
    /// `counters`, a snapshot of totals.
    pub net: NetCounters,
}

/// Bumped on any change to [`LaunchReport::encode`]'s byte layout (which
/// includes the embedded [`wire::encode_stats`] layout). Version 2 added
/// the three row-shape counters after the memo counters; version 3 added
/// the four transport-fault counters after the row counters.
pub const REPORT_VERSION: u16 = 3;

fn served_to_u8(s: Served) -> u8 {
    match s {
        Served::Simulated => 0,
        Served::Memo => 1,
        Served::Disk => 2,
    }
}

fn served_from_u8(v: u8) -> Option<Served> {
    Some(match v {
        0 => Served::Simulated,
        1 => Served::Memo,
        2 => Served::Disk,
        _ => return None,
    })
}

impl LaunchReport {
    /// Appends the canonical encoding to `e`.
    pub fn encode_into(&self, e: &mut Enc) {
        e.u16(REPORT_VERSION);
        e.u8(served_to_u8(self.served));
        e.u64(self.counters.hits);
        e.u64(self.counters.misses);
        e.u64(self.counters.disk_hits);
        e.u64(self.counters.disk_misses);
        e.u64(self.counters.disk_evictions);
        e.u64(self.counters.dedup_fast_blocks);
        e.u64(self.counters.dedup_sim_blocks);
        e.u64(self.counters.dedup_fallbacks);
        e.u64(self.rows.uniform);
        e.u64(self.rows.affine);
        e.u64(self.rows.full);
        e.u64(self.net.disconnects);
        e.u64(self.net.frames_retried);
        e.u64(self.net.bytes_resent);
        e.u64(self.net.reconnects);
        wire::encode_stats(e, &self.stats);
    }

    /// The canonical encoding as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(640);
        self.encode_into(&mut e);
        e.0
    }

    /// Decodes a report from `d`, leaving trailing bytes unconsumed.
    /// Returns `None` on truncation, version skew, or an unknown tag.
    pub fn decode_from(d: &mut Dec) -> Option<Self> {
        if d.u16()? != REPORT_VERSION {
            return None;
        }
        let served = served_from_u8(d.u8()?)?;
        let counters = MemoCounters {
            hits: d.u64()?,
            misses: d.u64()?,
            disk_hits: d.u64()?,
            disk_misses: d.u64()?,
            disk_evictions: d.u64()?,
            dedup_fast_blocks: d.u64()?,
            dedup_sim_blocks: d.u64()?,
            dedup_fallbacks: d.u64()?,
        };
        let rows = RowCounters {
            uniform: d.u64()?,
            affine: d.u64()?,
            full: d.u64()?,
        };
        let net = NetCounters {
            disconnects: d.u64()?,
            frames_retried: d.u64()?,
            bytes_resent: d.u64()?,
            reconnects: d.u64()?,
        };
        let stats = wire::decode_stats(d)?;
        Some(LaunchReport {
            stats,
            served,
            counters,
            rows,
            net,
        })
    }

    /// Decodes a standalone encoding (rejects trailing garbage).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec(bytes);
        let r = Self::decode_from(&mut d)?;
        if !d.is_empty() {
            return None;
        }
        Some(r)
    }
}

/// [`launch_traced`], packaged as a [`LaunchReport`].
pub fn launch_reported(
    cfg: &GpuConfig,
    kernel: &Kernel,
    dims: LaunchDims,
    params: &[Value],
    mem: &DeviceMemory,
) -> Result<LaunchReport, LaunchError> {
    let (stats, served) = launch_traced(cfg, kernel, dims, params, mem)?;
    Ok(LaunchReport {
        stats,
        served,
        counters: memo_counters(),
        rows: row_counters(),
        net: net_counters(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::counters::SmStats;
    use g80_isa::InstClass;

    fn sample_report() -> LaunchReport {
        let cfg = GpuConfig::geforce_8800_gtx();
        let mut sm = SmStats {
            cycles: 77,
            warp_instructions: 5,
            ..Default::default()
        };
        sm.by_class.insert(InstClass::Exit, 1);
        LaunchReport {
            stats: KernelStats::merge("r", &cfg, vec![sm], 4, 0, 32, 1, 1),
            served: Served::Disk,
            counters: MemoCounters {
                hits: 1,
                misses: 2,
                disk_hits: 3,
                disk_misses: 4,
                disk_evictions: 5,
                dedup_fast_blocks: 6,
                dedup_sim_blocks: 7,
                dedup_fallbacks: 8,
            },
            rows: RowCounters {
                uniform: 9,
                affine: 10,
                full: 11,
            },
            net: NetCounters {
                disconnects: 12,
                frames_retried: 13,
                bytes_resent: 14,
                reconnects: 15,
            },
        }
    }

    #[test]
    fn report_roundtrips() {
        let r = sample_report();
        let bytes = r.encode();
        let back = LaunchReport::decode(&bytes).expect("roundtrip");
        assert_eq!(back.served, Served::Disk);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.rows, r.rows);
        assert_eq!(back.net, r.net);
        assert_eq!(back.stats.cycles, r.stats.cycles);
        assert_eq!(back.stats.by_class, r.stats.by_class);
        assert_eq!(bytes, back.encode(), "canonical re-encoding");
    }

    #[test]
    fn report_rejects_skew_truncation_and_trailing_bytes() {
        let r = sample_report();
        let mut bytes = r.encode();
        assert!(LaunchReport::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut skew = bytes.clone();
        skew[0] ^= 0xff; // version
        assert!(LaunchReport::decode(&skew).is_none());
        bytes.push(0);
        assert!(LaunchReport::decode(&bytes).is_none());
    }

    #[test]
    fn launch_reported_matches_launch() {
        use g80_isa::builder::KernelBuilder;
        let mut b = KernelBuilder::new("report_double");
        let buf = b.param();
        let tid = b.tid_x();
        let byte = b.shl(tid, 2u32);
        let a = b.iadd(byte, buf);
        let v = b.ld_global(a, 0);
        let d = b.fadd(v, v);
        b.st_global(a, 0, d);
        let k = b.build();
        let cfg = GpuConfig::geforce_8800_gtx();
        let dims = LaunchDims {
            grid: (1, 1),
            block: (32, 1, 1),
        };
        let mk_mem = || {
            let mem = DeviceMemory::new(256);
            for i in 0..32u32 {
                mem.write(i * 4, Value::from_f32(i as f32));
            }
            mem
        };
        let mem = mk_mem();
        let report =
            launch_reported(&cfg, &k, dims, &[Value::from_u32(0)], &mem).expect("launch ok");
        let mem2 = mk_mem();
        let direct =
            crate::launch::launch(&cfg, &k, dims, &[Value::from_u32(0)], &mem2).expect("launch ok");
        assert_eq!(report.stats.cycles, direct.cycles);
        assert_eq!(report.stats.warp_instructions, direct.warp_instructions);
        assert_eq!(report.stats.stall_cycles, direct.stall_cycles);
        assert_eq!(mem.read(12).as_f32(), 6.0);
    }
}
